"""Kernel micro-benchmarks: vectorized formulation vs retained reference loop.

Each test times one vectorized fleet/edge kernel against the private
``_reference_*`` Python loop it replaced, asserts they still agree
bit-for-bit on the benchmarked workload, and records the speedup for the
``--json`` document (see ``conftest.record_measurement``).  Workloads are
sized to take milliseconds, so the suite doubles as the CI smoke job.

Run::

    PYTHONPATH=src pytest benchmarks/bench_kernels.py -q --json kernels.json
"""

from __future__ import annotations

import time

import numpy as np

from repro.edge import async_fl
from repro.edge.devices import DevicePopulation
from repro.edge.selection import (
    _reference_run_selection,
    run_selection,
    synthesize_population,
)
from repro.fleet.capacity_planning import _reference_capacity_totals
from repro.fleet.cluster import Cluster
from repro.fleet.growth import (
    OptimizationArea,
    _reference_composed_half_gains,
    composed_half_gains,
)
from repro.fleet.multitenancy import (
    _reference_pack_first_fit_decreasing,
    pack_first_fit_decreasing,
)
from repro.fleet.server import AI_TRAINING_SKU
from repro.fleet.utilization import UtilizationDistribution
from repro.workloads.growthtrends import GrowthTrend


def _best_of(fn, repeats: int = 5) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _record_pair(record, name: str, fast_fn, slow_fn) -> None:
    fast_s = _best_of(fast_fn)
    slow_s = _best_of(slow_fn)
    record(
        f"kernel:{name}",
        vectorized_s=fast_s,
        reference_s=slow_s,
        speedup=slow_s / fast_s if fast_s > 0 else float("inf"),
    )


class TestClusterKernels:
    def test_cluster_power(self, record):
        cluster = Cluster("bench", AI_TRAINING_SKU, 5000)
        rng = np.random.default_rng(0)
        cluster.set_utilizations(rng.uniform(0.0, 1.0, 5000))
        cluster.power_servers(4000)
        assert cluster.current_power().watts == cluster._reference_current_power().watts
        _record_pair(
            record,
            "cluster_power",
            cluster.current_power,
            cluster._reference_current_power,
        )


class TestPackingKernel:
    def test_first_fit_decreasing(self, record):
        rng = np.random.default_rng(1)
        demands = np.clip(rng.beta(2.0, 3.0, 2000), 0.05, 0.95)
        fast = pack_first_fit_decreasing(demands, 4, 1.0)
        slow = _reference_pack_first_fit_decreasing(demands, 4, 1.0)
        assert np.array_equal(fast.device_loads, slow.device_loads)
        _record_pair(
            record,
            "pack_first_fit_decreasing",
            lambda: pack_first_fit_decreasing(demands, 4, 1.0),
            lambda: _reference_pack_first_fit_decreasing(demands, 4, 1.0),
        )


class TestGrowthKernels:
    def test_composed_half_gains(self, record):
        areas = tuple(
            OptimizationArea(f"area-{i}", tuple(0.02 * (j + 1) for j in range(8)))
            for i in range(40)
        )
        assert np.array_equal(
            composed_half_gains(areas), _reference_composed_half_gains(areas)
        )
        _record_pair(
            record,
            "composed_half_gains",
            lambda: composed_half_gains(areas),
            lambda: _reference_composed_half_gains(areas),
        )

    def test_capacity_totals(self, record):
        trend = GrowthTrend("bench", factor=4.0, span_years=3.5)
        years = np.arange(24, dtype=float)
        assert np.array_equal(
            1000 * trend.values_at(years),
            _reference_capacity_totals(1000, years, trend),
        )
        _record_pair(
            record,
            "capacity_totals",
            lambda: 1000 * trend.values_at(years),
            lambda: _reference_capacity_totals(1000, years, trend),
        )


class TestUtilizationKernel:
    def test_fractions_in_bands(self, record):
        dist = UtilizationDistribution(2.0, 3.0)
        bands = tuple((0.01 * i, 0.01 * i + 0.008) for i in range(90))
        assert np.array_equal(
            dist.fractions_in_bands(bands), dist._reference_fractions_in_bands(bands)
        )
        _record_pair(
            record,
            "fractions_in_bands",
            lambda: dist.fractions_in_bands(bands),
            lambda: dist._reference_fractions_in_bands(bands),
        )


class TestEdgeKernels:
    def test_run_sync(self, record):
        population = synthesize_population(n_clients=2000, seed=0)
        args = (population, 400, 32, 7)
        assert async_fl.run_sync(*args) == async_fl._reference_run_sync(*args)
        _record_pair(
            record,
            "fl_run_sync",
            lambda: async_fl.run_sync(*args),
            lambda: async_fl._reference_run_sync(*args),
        )

    def test_run_async(self, record):
        population = synthesize_population(n_clients=2000, seed=0)
        args = (population, 800, 64, 8, 7)
        assert async_fl.run_async(*args) == async_fl._reference_run_async(*args)
        _record_pair(
            record,
            "fl_run_async",
            lambda: async_fl.run_async(*args),
            lambda: async_fl._reference_run_async(*args),
        )

    def test_run_selection(self, record):
        population = synthesize_population(n_clients=3000, seed=0)
        for strategy in ("fastest", "energy-aware"):
            args = (population, strategy, 120, 40, None, 0.8, 7)
            assert run_selection(*args) == _reference_run_selection(*args)
            _record_pair(
                record,
                f"fl_run_selection_{strategy}",
                lambda a=args: run_selection(*a),
                lambda a=args: _reference_run_selection(*a),
            )

    def test_straggler_slowdown(self, record):
        population = DevicePopulation(n_devices=2000, speed_sigma=0.6)
        assert population.straggler_slowdown(
            40, 7
        ) == population._reference_straggler_slowdown(40, 7)
        _record_pair(
            record,
            "straggler_slowdown",
            lambda: population.straggler_slowdown(40, 7),
            lambda: population._reference_straggler_slowdown(40, 7),
        )
