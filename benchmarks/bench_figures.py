"""Benchmarks regenerating every figure of the paper (Figures 1-12)."""


def test_fig01_arxiv_growth(bench):
    bench("fig1", rounds=3)


def test_fig02_growth_trends(bench):
    bench("fig2", rounds=5)


def test_fig03_phase_splits(bench):
    bench("fig3", rounds=5)


def test_fig04_operational_footprint(bench):
    bench("fig4", rounds=5)


def test_fig05_overall_footprint(bench):
    bench("fig5", rounds=5)


def test_fig06_optimization_stack(bench):
    bench("fig6", rounds=5)


def test_fig07_lm_ladder(bench):
    bench("fig7", rounds=5)


def test_fig08_jevons(bench):
    bench("fig8", rounds=5)


def test_fig09_utilization_sweep(bench):
    bench("fig9", rounds=5)


def test_fig10_utilization_histogram(bench):
    bench("fig10", rounds=3)


def test_fig11_federated_learning(bench):
    bench("fig11", rounds=1)


def test_fig12_scaling_pareto(bench):
    bench("fig12", rounds=3)
