"""Ablation benchmarks for the Section-IV design directions."""


def test_ablation_scheduling(bench):
    bench("ablation-sched", rounds=1)


def test_ablation_earlystop(bench):
    bench("ablation-earlystop", rounds=3)


def test_ablation_nas(bench):
    bench("ablation-nas", rounds=1)


def test_ablation_compression(bench):
    bench("ablation-compression", rounds=3)
