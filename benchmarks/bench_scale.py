"""Performance benchmarks of the library's own primitives at scale.

Unlike the figure benches (which regenerate paper results), these guard
the *throughput* of the substrates a user would stress on real fleet
data: the scheduler on thousands of jobs, year-long grid synthesis and
pricing, Monte-Carlo sampling, and the recommender training loop.
"""

import numpy as np

from repro.carbon.grid import synthesize_grid_trace
from repro.core.uncertainty import monte_carlo_footprint
from repro.dataeff.recommenders import BiasMF
from repro.dataeff.synthetic import LatentFactorWorld
from repro.fleet.scheduler import schedule_fifo
from repro.lifecycle.jobs import EXPERIMENTATION_JOBS
from repro.scheduling.carbon_aware import schedule_carbon_aware
from repro.scheduling.jobs import synthesize_jobs
from repro.workloads.traces import experiment_arrivals


def test_scale_fifo_scheduler_5k_jobs(benchmark):
    """FIFO+backfill over ~5k jobs on a 2048-GPU cluster."""
    stream = experiment_arrivals(EXPERIMENTATION_JOBS, jobs_per_day=700, days=7, seed=0)

    def run():
        return schedule_fifo(stream, total_gpus=2048, horizon_hours=1000)

    schedule = benchmark.pedantic(run, rounds=2, iterations=1)
    assert schedule.mean_utilization > 0


def test_scale_carbon_aware_200_jobs(benchmark):
    """Greedy carbon-aware placement of 200 deferrable jobs."""
    grid = synthesize_grid_trace(336, seed=0)
    jobs = synthesize_jobs(200, 336, seed=0)

    def run():
        return schedule_carbon_aware(jobs, grid, 336, capacity_kw=20_000.0)

    outcome = benchmark.pedantic(run, rounds=2, iterations=1)
    assert outcome.total_carbon.kg > 0


def test_scale_year_long_grid(benchmark):
    """Synthesize and price a full year of hourly grid data."""

    def run():
        grid = synthesize_grid_trace(8766, seed=1)
        profile = np.full(8766, 100.0)
        return grid.emissions_for_profile(profile)

    carbon = benchmark.pedantic(run, rounds=3, iterations=1)
    assert carbon.kg > 0


def test_scale_monte_carlo_100k(benchmark):
    """100k-sample footprint distribution."""

    def run():
        return monte_carlo_footprint(1e6, n_samples=100_000, seed=0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.mean_kg > 0


def test_scale_biasmf_training(benchmark):
    """BiasMF SGD over 100k interactions (the dataeff substrate)."""
    world = LatentFactorWorld(n_users=2000, n_items=800, seed=0)
    data = world.sample(100_000, seed_offset=0)

    def run():
        return BiasMF(n_epochs=2, seed=0).fit(data)

    model = benchmark.pedantic(run, rounds=1, iterations=1)
    assert model._U is not None
