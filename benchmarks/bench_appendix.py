"""Benchmarks regenerating the appendix experiments."""


def test_appendix_ssl(bench):
    bench("appendix-ssl", rounds=5)


def test_appendix_disaggregation(bench):
    bench("appendix-disagg", rounds=3)
