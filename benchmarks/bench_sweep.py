"""Stacked-sweep throughput benchmarks (the BENCH_6 source).

Times the stacked sweep kernel (:func:`repro.core.sweep.evaluate_work_stacked`)
against the retained scalar reference path
(:func:`repro.core.sweep._reference_evaluate_stacked`) at 100 / 1,000 /
10,000 Sobol points, asserting bit-equality on every benchmarked workload
before recording scenarios/sec for the ``--json`` document.  The PR's
acceptance bound — the stacked path is at least 20x faster at 10k points —
is asserted here, so a kernel regression fails the bench suite, not just
the committed baseline.

Run::

    PYTHONPATH=src pytest benchmarks/bench_sweep.py -q --json sweep.json
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.sweep import (
    DEFAULT_RANGES,
    SweepSpec,
    _reference_evaluate_stacked,
    evaluate_work_stacked,
    run_sweep,
    sample_points,
)

#: The 10k-point acceptance bound from the PR issue.
MIN_SPEEDUP_AT_10K = 20.0


def _spec(n_points: int) -> SweepSpec:
    """A Sobol spec over the default four knobs, sized exactly to ``n``."""
    return SweepSpec(ranges=DEFAULT_RANGES, sampling="sobol", n_points=n_points, seed=0)


def _best_of(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestSweepThroughput:
    @pytest.mark.parametrize("n_points", (100, 1_000, 10_000))
    def test_stacked_vs_scalar(self, record, n_points):
        spec = _spec(n_points)
        base = spec.base_scenario()
        params = sample_points(spec)

        fast = evaluate_work_stacked(spec.busy_device_hours, base, params)
        slow = _reference_evaluate_stacked(spec.busy_device_hours, base, params)
        assert np.array_equal(fast.energy_kwh, slow.energy_kwh)
        assert np.array_equal(fast.operational_kg, slow.operational_kg)
        assert np.array_equal(fast.embodied_kg, slow.embodied_kg)
        assert np.array_equal(fast.total_kg, slow.total_kg)

        repeats = 5 if n_points < 10_000 else 3
        fast_s = _best_of(
            lambda: evaluate_work_stacked(spec.busy_device_hours, base, params),
            repeats,
        )
        slow_s = _best_of(
            lambda: _reference_evaluate_stacked(spec.busy_device_hours, base, params),
            repeats,
        )
        speedup = slow_s / fast_s if fast_s > 0 else float("inf")
        record(
            f"sweep:n={n_points}",
            n_points=n_points,
            stacked_s=fast_s,
            scalar_s=slow_s,
            stacked_scenarios_per_s=n_points / fast_s if fast_s > 0 else float("inf"),
            scalar_scenarios_per_s=n_points / slow_s if slow_s > 0 else float("inf"),
            speedup=speedup,
        )
        if n_points == 10_000:
            assert speedup >= MIN_SPEEDUP_AT_10K
        print(
            f"\nn={n_points}: stacked {fast_s * 1e3:.3f} ms, "
            f"scalar {slow_s * 1e3:.3f} ms, speedup {speedup:.1f}x"
        )


class TestSweepPipeline:
    def test_chunked_run_sweep_end_to_end(self, record):
        """The full pipeline (chunking + cache + reports) at 10k points."""
        spec = _spec(10_000)
        t0 = time.perf_counter()
        outcome = run_sweep(spec)
        elapsed = time.perf_counter() - t0
        assert len(outcome.results) == 10_000
        payload = outcome.to_payload()
        record(
            "sweep:pipeline_10k",
            n_points=10_000,
            wall_s=elapsed,
            scenarios_per_s=10_000 / elapsed if elapsed > 0 else float("inf"),
            pareto_points=payload["headline"]["pareto_points"],
        )
