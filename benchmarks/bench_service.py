"""Service throughput/latency benchmarks (the BENCH_5 source).

Starts a real carbon-query service (worker pool + batching + LRU) and
drives it with the deterministic loadgen mix at 1/4/16 concurrent
clients, recording throughput, client-side latency percentiles, and the
server's cache hit rates for the ``--json`` document.  A separate test
pins the headline cache claim: the warm-cache p50 of an experiment query
is at least 5x lower than its cold p50 (the LRU serves bytes; cold runs
execute the experiment).

Run::

    PYTHONPATH=src pytest benchmarks/bench_service.py -q --json service.json
"""

from __future__ import annotations

import http.client
import statistics
import time

import pytest

from repro.service import ServiceConfig, start_service
from repro.service.loadgen import run_load

#: Experiments used by the warm-vs-cold measurement: a spread of cheap
#: and mid-weight executions, all far above LRU-lookup cost when cold.
COLD_WARM_EXPERIMENTS = ("fig1", "fig5", "fig9", "fig12", "text-gpudays", "text-quant")


@pytest.fixture(scope="module")
def service():
    handle = start_service(
        ServiceConfig(port=0, workers=2, batch_window_s=0.002, lru_size=512)
    )
    try:
        yield handle
    finally:
        handle.stop()


@pytest.mark.parametrize("clients", (1, 4, 16))
def test_service_load(service, record, clients):
    """Soak the default mix; zero 5xx allowed at every concurrency level."""
    report = run_load(
        service.service.config.host,
        service.port,
        clients=clients,
        duration_s=3.0,
        seed=clients,
    )
    assert report.requests > 0
    assert report.errors_5xx == 0
    assert report.transport_errors == 0
    cache = (report.server_metrics or {}).get("response_cache", {})
    requests_block = (report.server_metrics or {}).get("requests", {})
    record(
        f"service_load:clients={clients}",
        clients=clients,
        requests=report.requests,
        throughput_rps=round(report.throughput_rps, 1),
        p50_s=report.latency_s["p50_s"],
        p90_s=report.latency_s["p90_s"],
        p99_s=report.latency_s["p99_s"],
        max_s=report.latency_s["max_s"],
        errors_5xx=report.errors_5xx,
        server_cache_hit_rate=cache.get("hit_rate"),
        answered_from_cache_rate=requests_block.get("answered_from_cache_rate"),
    )
    print()
    print(report.render())


def test_warm_cache_p50_at_least_5x_faster_than_cold(record):
    """The acceptance bound: warm p50 <= cold p50 / 5, on a fresh LRU."""
    handle = start_service(
        ServiceConfig(port=0, workers=0, batch_window_s=0.0, lru_size=512)
    )
    try:
        conn = http.client.HTTPConnection(
            handle.service.config.host, handle.port, timeout=300
        )

        def timed_get(path: str) -> float:
            started = time.perf_counter()
            conn.request("GET", path)
            response = conn.getresponse()
            response.read()
            assert response.status == 200
            return time.perf_counter() - started

        cold = [timed_get(f"/experiments/{exp_id}") for exp_id in COLD_WARM_EXPERIMENTS]
        warm = [
            timed_get(f"/experiments/{exp_id}")
            for _round in range(5)
            for exp_id in COLD_WARM_EXPERIMENTS
        ]
        conn.close()
    finally:
        handle.stop()

    cold_p50 = statistics.median(cold)
    warm_p50 = statistics.median(warm)
    record(
        "service_cache:warm_vs_cold",
        experiments=len(COLD_WARM_EXPERIMENTS),
        cold_p50_s=cold_p50,
        warm_p50_s=warm_p50,
        speedup=round(cold_p50 / warm_p50, 1) if warm_p50 else None,
    )
    print(f"\ncold p50 {cold_p50 * 1e3:.2f}ms, warm p50 {warm_p50 * 1e3:.2f}ms")
    assert warm_p50 * 5 <= cold_p50, (
        f"warm p50 {warm_p50:.6f}s not 5x below cold p50 {cold_p50:.6f}s"
    )
