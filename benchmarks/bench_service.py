"""Service throughput/latency benchmarks (the BENCH_5 and BENCH_8 sources).

Starts a real carbon-query service (worker pool + batching + LRU) and
drives it with the deterministic loadgen mix at 1/4/16 concurrent
clients, recording throughput, client-side latency percentiles, and the
server's cache hit rates for the ``--json`` document.  A separate test
pins the headline cache claim: the warm-cache p50 of an experiment query
is at least 5x lower than its cold p50 (the LRU serves bytes; cold runs
execute the experiment).

The fabric churn benchmarks (BENCH_8) measure what consistent-hash
sharding buys on a cache-capacity-bound workload: a cycling deck of
:data:`CHURN_DISTINCT` unique schedule queries — larger than one node's
response LRU, so a single node evicts every entry before its revisit and
pays a full scheduler run per request — against a 1/2/4-replica fabric
whose per-shard working set fits each replica's LRU again.  Pass
``--replicas N`` to run one fleet size (the CI smoke uses ``2``).

Run::

    PYTHONPATH=src pytest benchmarks/bench_service.py -q --json service.json
"""

from __future__ import annotations

import http.client
import statistics
import time

import pytest

from repro.service import ServiceConfig, start_service
from repro.service.loadgen import build_churn_mix, run_load
from repro.service.router import RouterConfig, start_router

#: Experiments used by the warm-vs-cold measurement: a spread of cheap
#: and mid-weight executions, all far above LRU-lookup cost when cold.
COLD_WARM_EXPERIMENTS = ("fig1", "fig5", "fig9", "fig12", "text-gpudays", "text-quant")


@pytest.fixture(scope="module")
def service():
    handle = start_service(
        ServiceConfig(port=0, workers=2, batch_window_s=0.002, lru_size=512)
    )
    try:
        yield handle
    finally:
        handle.stop()


@pytest.mark.parametrize("clients", (1, 4, 16))
def test_service_load(service, record, clients):
    """Soak the default mix; zero 5xx allowed at every concurrency level."""
    report = run_load(
        service.service.config.host,
        service.port,
        clients=clients,
        duration_s=3.0,
        seed=clients,
    )
    assert report.requests > 0
    assert report.errors_5xx == 0
    assert report.transport_errors == 0
    cache = (report.server_metrics or {}).get("response_cache", {})
    requests_block = (report.server_metrics or {}).get("requests", {})
    record(
        f"service_load:clients={clients}",
        clients=clients,
        requests=report.requests,
        throughput_rps=round(report.throughput_rps, 1),
        p50_s=report.latency_s["p50_s"],
        p90_s=report.latency_s["p90_s"],
        p99_s=report.latency_s["p99_s"],
        max_s=report.latency_s["max_s"],
        errors_5xx=report.errors_5xx,
        server_cache_hit_rate=cache.get("hit_rate"),
        answered_from_cache_rate=requests_block.get("answered_from_cache_rate"),
    )
    print()
    print(report.render())


def test_warm_cache_p50_at_least_5x_faster_than_cold(record):
    """The acceptance bound: warm p50 <= cold p50 / 5, on a fresh LRU."""
    handle = start_service(
        ServiceConfig(port=0, workers=0, batch_window_s=0.0, lru_size=512)
    )
    try:
        conn = http.client.HTTPConnection(
            handle.service.config.host, handle.port, timeout=300
        )

        def timed_get(path: str) -> float:
            started = time.perf_counter()
            conn.request("GET", path)
            response = conn.getresponse()
            response.read()
            assert response.status == 200
            return time.perf_counter() - started

        cold = [timed_get(f"/experiments/{exp_id}") for exp_id in COLD_WARM_EXPERIMENTS]
        warm = [
            timed_get(f"/experiments/{exp_id}")
            for _round in range(5)
            for exp_id in COLD_WARM_EXPERIMENTS
        ]
        conn.close()
    finally:
        handle.stop()

    cold_p50 = statistics.median(cold)
    warm_p50 = statistics.median(warm)
    record(
        "service_cache:warm_vs_cold",
        experiments=len(COLD_WARM_EXPERIMENTS),
        cold_p50_s=cold_p50,
        warm_p50_s=warm_p50,
        speedup=round(cold_p50 / warm_p50, 1) if warm_p50 else None,
    )
    print(f"\ncold p50 {cold_p50 * 1e3:.2f}ms, warm p50 {warm_p50 * 1e3:.2f}ms")
    assert warm_p50 * 5 <= cold_p50, (
        f"warm p50 {warm_p50:.6f}s not 5x below cold p50 {cold_p50:.6f}s"
    )


# ---------------------------------------------------------------------------
# Fabric churn scaling (BENCH_8)
# ---------------------------------------------------------------------------

#: Unique schedule queries in the churn deck.  Above one node's response
#: LRU (256), below the aggregate capacity of two (512) even with the
#: ring's worst-case shard imbalance.
CHURN_DISTINCT = 320

#: Replica LRU size pinned so the single-node/fabric comparison does not
#: depend on the service default drifting.
CHURN_LRU_SIZE = 256

#: Acceptance floors for aggregate warm throughput vs the single node.
#: Measured headroom is an order of magnitude above these (a miss is a
#: ~15-25ms scheduler run; a hit is a sub-ms proxied LRU lookup).
CHURN_MIN_SPEEDUP = {2: 1.6, 4: 2.5}

CHURN_SOAK_S = 5.0
CHURN_CLIENTS = 4


def _warm_deck(host: str, port: int, deck: list[str], cycles: int = 2) -> None:
    """Drive the full deck ``cycles`` times over one keep-alive connection."""
    conn = http.client.HTTPConnection(host, port, timeout=300)
    try:
        for _cycle in range(cycles):
            for path in deck:
                conn.request("GET", path)
                response = conn.getresponse()
                response.read()
                assert response.status == 200, (response.status, path)
    finally:
        conn.close()


def _churn_soak(host: str, port: int, deck: list[str]):
    _warm_deck(host, port, deck)
    report = run_load(
        host, port, clients=CHURN_CLIENTS, duration_s=CHURN_SOAK_S, deck=deck
    )
    assert report.requests > 0
    assert report.errors_5xx == 0
    assert report.transport_errors == 0
    return report


@pytest.fixture(scope="module")
def churn_baseline(record):
    """Warm single-node churn throughput: the fabric comparison floor."""
    deck = build_churn_mix(0, CHURN_DISTINCT)
    handle = start_service(
        ServiceConfig(port=0, workers=0, batch_window_s=0.0, lru_size=CHURN_LRU_SIZE)
    )
    try:
        report = _churn_soak(handle.service.config.host, handle.port, deck)
    finally:
        handle.stop()
    cache = (report.server_metrics or {}).get("response_cache", {})
    record(
        "fabric_churn:single-node",
        distinct=CHURN_DISTINCT,
        lru_size=CHURN_LRU_SIZE,
        clients=CHURN_CLIENTS,
        requests=report.requests,
        throughput_rps=round(report.throughput_rps, 1),
        p50_s=report.latency_s["p50_s"],
        p99_s=report.latency_s["p99_s"],
        cache_hit_rate=cache.get("hit_rate"),
    )
    print(f"\nsingle-node churn: {report.throughput_rps:,.1f} req/s")
    return report.throughput_rps


def test_fabric_churn_scaling(record, churn_baseline, fabric_replicas):
    """Aggregate LRU capacity, not CPU count, is what the fabric scales.

    On one core a replica adds no compute; it adds 256 response slots and
    a shard that fits them.  The floors (1.6x at 2 replicas, 2.5x at 4)
    are the BENCH_8 acceptance gates; 1 replica has no floor — it prices
    the router hop on a workload the fabric cannot help.
    """
    deck = build_churn_mix(0, CHURN_DISTINCT)
    config = RouterConfig(
        port=0,
        replicas=fabric_replicas,
        replica_args=("--workers", "0", "--lru-size", str(CHURN_LRU_SIZE)),
    )
    handle = start_router(config)
    try:
        report = _churn_soak(config.host, handle.port, deck)
    finally:
        handle.stop()

    speedup = report.throughput_rps / churn_baseline
    cache = (report.server_metrics or {}).get("response_cache", {})
    record(
        f"fabric_churn:replicas={fabric_replicas}",
        replicas=fabric_replicas,
        distinct=CHURN_DISTINCT,
        lru_size=CHURN_LRU_SIZE,
        clients=CHURN_CLIENTS,
        requests=report.requests,
        throughput_rps=round(report.throughput_rps, 1),
        p50_s=report.latency_s["p50_s"],
        p99_s=report.latency_s["p99_s"],
        cache_hit_rate=cache.get("hit_rate"),
        speedup_vs_single=round(speedup, 2),
    )
    print(
        f"\nfabric x{fabric_replicas}: {report.throughput_rps:,.1f} req/s "
        f"({speedup:.2f}x single-node)"
    )
    floor = CHURN_MIN_SPEEDUP.get(fabric_replicas)
    if floor is not None:
        assert speedup >= floor, (
            f"{fabric_replicas}-replica fabric at {speedup:.2f}x "
            f"single-node throughput, below the {floor}x floor"
        )
