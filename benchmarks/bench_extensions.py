"""Benchmarks for the extension experiments (Section IV directions)."""


def test_ext_moe(bench):
    bench("ext-moe", rounds=5)


def test_ext_scopes(bench):
    bench("ext-scopes", rounds=5)


def test_ext_geo(bench):
    bench("ext-geo", rounds=1)


def test_ext_fl_selection(bench):
    bench("ext-flselect", rounds=1)


def test_ext_idle(bench):
    bench("ext-idle", rounds=1)


def test_ext_carbon_nas(bench):
    bench("ext-carbonnas", rounds=1)


def test_ext_leaderboard(bench):
    bench("ext-leaderboard", rounds=5)


def test_ext_predictive_tracking(bench):
    bench("ext-predict", rounds=3)


def test_ext_capacity_planning(bench):
    bench("ext-capacity", rounds=5)


def test_ext_serving_mechanics(bench):
    bench("ext-serving", rounds=1)


def test_ext_sdc_injection(bench):
    bench("ext-sdc", rounds=1)


def test_ext_multitenancy(bench):
    bench("ext-tenancy", rounds=1)


def test_ext_forecast(bench):
    bench("ext-forecast", rounds=1)


def test_ext_uncertainty(bench):
    bench("ext-uncertainty", rounds=3)


def test_ext_hardware_choice(bench):
    bench("ext-hwchoice", rounds=3)


def test_ext_async_fl(bench):
    bench("ext-asyncfl", rounds=1)


def test_ext_sharding(bench):
    bench("ext-sharding", rounds=3)


def test_ext_time_varying(bench):
    bench("ext-tvtracking", rounds=1)


def test_ext_autoscale(bench):
    bench("ext-autoscale", rounds=3)


def test_ext_ingestion(bench):
    bench("ext-ingestion", rounds=1)


def test_ext_bom(bench):
    bench("ext-bom", rounds=5)


def test_ext_memory_pooling(bench):
    bench("ext-mempool", rounds=1)
