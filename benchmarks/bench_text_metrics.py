"""Benchmarks regenerating the paper's in-text quantitative claims."""


def test_text_gpudays(bench):
    bench("text-gpudays", rounds=3)


def test_text_quantization(bench):
    bench("text-quant", rounds=3)


def test_text_sampling(bench):
    bench("text-sampling", rounds=1)


def test_text_halflife(bench):
    bench("text-halflife", rounds=1)
