"""Streaming incremental-accounting benchmarks (the BENCH_9 source).

Times one O(Δ) :meth:`repro.core.incremental.IncrementalAccounting.fold`
against the full batch recompute (:func:`repro.core.incremental.reference_replay`)
it replaces, at 1-month / 1-year / 5-year horizons, asserting
bit-equality on every benchmarked state before timing.  The PR's
acceptance bounds — a per-tick update at least 50x faster than the
batch recompute at the 5-year horizon, and a per-tick cost that stays
flat (O(Δ), not O(horizon)) as the trace grows 61x — are asserted with
plain ``assert`` so they gate even under ``--benchmark-disable``.

Run::

    PYTHONPATH=src pytest benchmarks/bench_stream.py -q --json stream.json
"""

from __future__ import annotations

import time

import numpy as np

from repro.carbon.grid import synthesize_grid_trace
from repro.core.incremental import IncrementalAccounting, reference_replay
from repro.units import HOURS_PER_YEAR

#: Acceptance floor: one incremental fold vs one full batch recompute at
#: the 5-year horizon.  Measured headroom is ~3 orders of magnitude.
MIN_SPEEDUP_AT_5_YEARS = 50.0

#: Acceptance ceiling on per-tick cost growth across a 61x horizon blowup
#: (720 h -> 43,830 h).  A truly O(horizon) fold would grow ~61x; the
#: windowed fold's prefix tail is bounded by the revision lag, so the
#: per-tick cost must stay within noise of flat.
MAX_PER_TICK_GROWTH = 8.0

#: (label, hours): 1 month, 1 year, 5 years (Julian, via the shared
#: year convention — no inline hours-per-year literals).
HORIZONS = (
    ("1-month", 720),
    ("1-year", int(HOURS_PER_YEAR)),
    ("5-year", int(5 * HOURS_PER_YEAR)),
)

#: Folds timed per horizon; each revises one of the newest 48 hours (the
#: live-feed revision window), the streaming steady state.
TIMED_FOLDS = 256


def _populated_state(hours: int) -> tuple[IncrementalAccounting, list[tuple[int, float]]]:
    """A fully-observed state over ``hours`` and its tick log."""
    intensity = np.asarray(
        synthesize_grid_trace(hours, seed=9).intensity_kg_per_kwh, dtype=float
    )
    state = IncrementalAccounting(np.ones(hours), pue=1.1)
    log = [(h, float(intensity[h])) for h in range(hours)]
    state.fold_many(log)
    return state, log


def _revision_ticks(hours: int, count: int) -> list[tuple[int, float]]:
    """``count`` revisions cycling over the newest 48 hours."""
    rng = np.random.default_rng(9)
    recent = np.arange(max(0, hours - 48), hours)
    return [
        (int(h), float(v))
        for h, v in zip(
            rng.choice(recent, size=count),
            rng.uniform(0.05, 0.9, size=count),
        )
    ]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestStreamingUpdateCost:
    def test_incremental_vs_batch_recompute(self, record):
        per_tick: dict[str, float] = {}
        speedups: dict[str, float] = {}
        for label, hours in HORIZONS:
            state, log = _populated_state(hours)
            revisions = _revision_ticks(hours, TIMED_FOLDS)

            # Bit-equality before timing: the state being benchmarked is
            # exactly the batch recompute of its own tick log — including
            # after every revision it is about to be timed on.
            assert state.snapshot() == reference_replay(
                np.ones(hours), log, pue=1.1
            )
            probe_log = list(log) + revisions
            probe = _populated_state(hours)[0]
            probe.fold_many(revisions)
            assert probe.snapshot() == reference_replay(
                np.ones(hours), probe_log, pue=1.1
            )

            t0 = time.perf_counter()
            state.fold_many(revisions)
            fold_s = (time.perf_counter() - t0) / len(revisions)

            replay_log = list(log) + revisions
            replay_s = _best_of(
                lambda: reference_replay(np.ones(hours), replay_log, pue=1.1),
                3 if hours > 10_000 else 5,
            )
            speedup = replay_s / fold_s if fold_s > 0 else float("inf")
            per_tick[label] = fold_s
            speedups[label] = speedup
            record(
                f"stream:horizon={label}",
                hours=hours,
                per_tick_fold_s=fold_s,
                batch_replay_s=replay_s,
                folds_per_s=1.0 / fold_s if fold_s > 0 else float("inf"),
                speedup=speedup,
            )
            print(
                f"\n{label} ({hours}h): fold {fold_s * 1e6:.1f} us/tick, "
                f"replay {replay_s * 1e3:.2f} ms, speedup {speedup:.0f}x"
            )

        # Acceptance floors (hold under --benchmark-disable too).
        assert speedups["5-year"] >= MIN_SPEEDUP_AT_5_YEARS
        growth = per_tick["5-year"] / per_tick["1-month"]
        assert growth <= MAX_PER_TICK_GROWTH, (
            f"per-tick fold cost grew {growth:.1f}x from 1 month to 5 years "
            f"— the update path is no longer O(Δ)"
        )
        record(
            "stream:acceptance",
            min_speedup_5yr=MIN_SPEEDUP_AT_5_YEARS,
            measured_speedup_5yr=speedups["5-year"],
            max_per_tick_growth=MAX_PER_TICK_GROWTH,
            measured_per_tick_growth=growth,
        )
