"""Shared helpers for the benchmark harness.

Each bench regenerates one paper figure/experiment via the experiment
registry, times it with pytest-benchmark, and prints the same rows/series
the paper reports (run with ``pytest benchmarks/ --benchmark-only -s`` to
see them inline).
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import run_experiment


def bench_experiment(benchmark, experiment_id: str, rounds: int = 1) -> None:
    """Run one experiment under the benchmark and print its rows."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,), rounds=rounds, iterations=1
    )
    print()
    print(result.render())


@pytest.fixture
def bench(benchmark):
    def _run(experiment_id: str, rounds: int = 1) -> None:
        bench_experiment(benchmark, experiment_id, rounds)

    return _run
