"""Shared helpers for the benchmark harness.

Each bench regenerates one paper figure/experiment via the experiment
registry, times it with pytest-benchmark, and prints the same rows/series
the paper reports (run with ``pytest benchmarks/ --benchmark-only -s`` to
see them inline).

Machine-readable output: passing ``--json PATH`` to any benchmark run
collects every measurement (experiment timings from ``bench``, kernel
reference-vs-vectorized timings from ``bench_kernels.py``) into one JSON
document written at session end.  ``BENCH_4.json`` in this directory is a
committed baseline assembled from that output — see
``docs/PERFORMANCE.md`` for how to read and refresh it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.registry import run_experiment

#: Measurements accumulated for ``--json`` (name -> row of numbers).
_JSON_RESULTS: dict[str, dict[str, object]] = {}


def pytest_addoption(parser):
    group = parser.getgroup("sustainable-ai benchmarks")
    group.addoption(
        "--json",
        dest="sustainable_ai_bench_json",
        metavar="PATH",
        default=None,
        help="write all benchmark measurements to PATH as JSON",
    )
    group.addoption(
        "--replicas",
        dest="sustainable_ai_bench_replicas",
        type=int,
        metavar="N",
        default=None,
        help="run the fabric churn benchmarks at N replicas only "
        "(default: sweep 1, 2 and 4)",
    )


def pytest_generate_tests(metafunc):
    if "fabric_replicas" in metafunc.fixturenames:
        chosen = metafunc.config.getoption("sustainable_ai_bench_replicas")
        counts = (1, 2, 4) if chosen is None else (chosen,)
        metafunc.parametrize("fabric_replicas", counts)


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("sustainable_ai_bench_json", None)
    if not path or not _JSON_RESULTS:
        return
    doc = {"measurements": dict(sorted(_JSON_RESULTS.items()))}
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def record_measurement(name: str, **row: object) -> None:
    """Add one named measurement row to the ``--json`` document."""
    _JSON_RESULTS[name] = dict(row)


def bench_experiment(benchmark, experiment_id: str, rounds: int = 1) -> None:
    """Run one experiment under the benchmark and print its rows."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,), rounds=rounds, iterations=1
    )
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is not None:  # absent under --benchmark-disable (smoke mode)
        record_measurement(
            f"experiment:{experiment_id}",
            min_s=float(stats.min),
            mean_s=float(stats.mean),
            rounds=rounds,
        )
    print()
    print(result.render())


@pytest.fixture(scope="session")
def record():
    """The :func:`record_measurement` hook, bound to this session's store.

    Tests must use this fixture rather than importing the function — a
    direct import would load a *second* ``conftest`` module instance with
    its own (never-written) measurement dict.
    """
    return record_measurement


@pytest.fixture
def bench(benchmark):
    def _run(experiment_id: str, rounds: int = 1) -> None:
        bench_experiment(benchmark, experiment_id, rounds)

    return _run
