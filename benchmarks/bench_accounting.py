"""Micro-benchmarks of the vectorized accounting engine vs the old loops.

The PR that introduced :class:`repro.core.series.HourlySeries` replaced
two per-hour Python loops — battery arbitrage in
``repro/scheduling/storage.py`` and the FIFO scheduler's hourly sweep in
``repro/fleet/scheduler.py`` — with run-based / event-driven vectorized
equivalents.  These benches pin the speedup on a 5-year hourly horizon
so a regression back to per-hour iteration is visible.
"""

import heapq

import numpy as np

from repro import units
from repro.carbon.grid import synthesize_grid_trace
from repro.core.series import HourlySeries
from repro.fleet.scheduler import schedule_fifo
from repro.lifecycle.jobs import EXPERIMENTATION_JOBS
from repro.scheduling.storage import Battery, _arbitrage_segments, _arbitrage_sequential
from repro.workloads.traces import experiment_arrivals

FIVE_YEARS = int(5 * units.HOURS_PER_YEAR)


def _five_year_inputs():
    # Multi-day clean/dirty regimes (wind lulls and fronts): the
    # long-duration storage case the paper motivates, and the one the
    # run-based vectorization targets.  Thresholds sit between regime
    # levels so each regime is one charge/discharge/neutral run.
    rng = np.random.default_rng(0)
    load = rng.uniform(20.0, 150.0, FIVE_YEARS)
    blocks = []
    total = 0
    while total < FIVE_YEARS:
        length = int(rng.integers(36, 120))
        level = rng.choice([0.08, 0.45, 0.75])
        blocks.append(np.full(length, level) + rng.normal(0.0, 0.005, length))
        total += length
    intensity = np.abs(np.concatenate(blocks)[:FIVE_YEARS])
    battery = Battery(capacity_kwh=2000.0, max_power_kw=80.0)
    return load, intensity, battery, 0.2, 0.6


def test_arbitrage_loop_5_years(benchmark):
    """Per-hour reference loop: one Python iteration per simulated hour."""
    load, intensity, battery, low, high = _five_year_inputs()

    def run():
        return _arbitrage_sequential(load, intensity, battery, low, high)

    soc, _ = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(soc) == FIVE_YEARS


def test_arbitrage_vectorized_5_years(benchmark):
    """Run-based vectorized policy over the same 5-year horizon."""
    load, intensity, battery, low, high = _five_year_inputs()

    def run():
        return _arbitrage_segments(load, intensity, battery, low, high)

    soc, grid_kwh = benchmark.pedantic(run, rounds=3, iterations=1)
    ref_soc, ref_kwh = _arbitrage_sequential(load, intensity, battery, low, high)
    assert np.array_equal(soc, ref_soc) and np.array_equal(grid_kwh, ref_kwh)


def _hourly_fifo_busy(stream, total_gpus, horizon_hours):
    """The pre-refactor scheduler sweep: one Python iteration per hour."""
    n = len(stream)
    order = np.argsort(stream.start_hours, kind="stable")
    submit = stream.start_hours[order]
    durations = stream.duration_hours[order]
    gpus = stream.n_gpus[order]
    free = total_gpus
    releases, queue, next_job = [], [], 0
    busy = np.zeros(horizon_hours)
    for hour in range(horizon_hours):
        t = float(hour)
        while releases and releases[0][0] <= t:
            _, released = heapq.heappop(releases)
            free += released
        while next_job < n and submit[next_job] <= t:
            queue.append(next_job)
            next_job += 1
        placed = []
        for pos, job_idx in enumerate(queue):
            need = int(gpus[job_idx])
            if need <= free:
                free -= need
                heapq.heappush(releases, (t + float(durations[job_idx]), need))
                placed.append(pos)
        for pos in reversed(placed):
            queue.pop(pos)
        busy[hour] = total_gpus - free
    return busy


def test_fifo_hourly_loop_5_years(benchmark):
    """Hour-by-hour FIFO sweep of a sparse stream over 5 years."""
    stream = experiment_arrivals(EXPERIMENTATION_JOBS, jobs_per_day=2, days=90, seed=0)

    def run():
        return _hourly_fifo_busy(stream, 256, FIVE_YEARS)

    busy = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(busy) == FIVE_YEARS


def test_fifo_event_driven_5_years(benchmark):
    """Event-driven FIFO over the same stream and horizon."""
    stream = experiment_arrivals(EXPERIMENTATION_JOBS, jobs_per_day=2, days=90, seed=0)

    def run():
        return schedule_fifo(stream, 256, FIVE_YEARS)

    schedule = benchmark.pedantic(run, rounds=3, iterations=1)
    np.testing.assert_array_equal(
        schedule.busy_gpus, _hourly_fifo_busy(stream, 256, FIVE_YEARS)
    )


def test_emissions_integration_5_years(benchmark):
    """The central kWh x intensity integration on a 5-year series."""
    grid = synthesize_grid_trace(FIVE_YEARS, seed=1)
    series = HourlySeries(np.random.default_rng(1).uniform(0.0, 100.0, FIVE_YEARS))

    def run():
        return series.emissions(grid)

    carbon = benchmark.pedantic(run, rounds=5, iterations=1)
    assert carbon.kg > 0
