"""Footprint record tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.footprint import (
    EmbodiedFootprint,
    OperationalFootprint,
    PHASE_ORDER,
    Phase,
    PhaseFootprint,
    TotalFootprint,
)
from repro.core.quantities import Carbon, Energy
from repro.errors import UnitError


def make_op(**phase_kg: float) -> OperationalFootprint:
    mapping = {}
    for name, kg in phase_kg.items():
        phase = Phase(name.replace("_", "-"))
        mapping[phase] = (Energy(kg * 2.0), Carbon(kg))
    return OperationalFootprint.from_mapping(mapping)


class TestOperationalFootprint:
    def test_total_energy_and_carbon(self):
        op = make_op(data=10.0, inference=30.0)
        assert op.carbon.kg == 40.0
        assert op.energy.kwh == 80.0

    def test_duplicate_phase_rejected(self):
        pf = PhaseFootprint(Phase.DATA, Energy(1.0), Carbon(1.0))
        with pytest.raises(UnitError):
            OperationalFootprint((pf, pf))

    def test_missing_phase_reads_zero(self):
        op = make_op(data=10.0)
        assert op.phase_carbon(Phase.INFERENCE).kg == 0.0
        assert op.phase_energy(Phase.INFERENCE).kwh == 0.0

    def test_carbon_shares_sum_to_one(self):
        op = make_op(data=10.0, offline_training=20.0, inference=70.0)
        shares = op.carbon_shares()
        assert math.isclose(sum(shares.values()), 1.0)
        assert math.isclose(shares[Phase.INFERENCE], 0.7)

    def test_empty_shares(self):
        op = OperationalFootprint(())
        assert op.carbon_shares() == {}

    def test_training_inference_split_excludes_data(self):
        op = make_op(data=100.0, offline_training=30.0, inference=70.0)
        train, infer = op.training_inference_split()
        assert math.isclose(train, 0.3)
        assert math.isclose(infer, 0.7)

    def test_split_counts_all_training_phases(self):
        op = make_op(
            experimentation=10.0,
            offline_training=20.0,
            online_training=20.0,
            inference=50.0,
        )
        train, infer = op.training_inference_split()
        assert math.isclose(train, 0.5)
        assert math.isclose(infer, 0.5)

    def test_merged_sums_phasewise(self):
        a = make_op(data=10.0, inference=5.0)
        b = make_op(inference=15.0, offline_training=2.0)
        merged = a.merged(b)
        assert merged.phase_carbon(Phase.DATA).kg == 10.0
        assert merged.phase_carbon(Phase.INFERENCE).kg == 20.0
        assert merged.phase_carbon(Phase.OFFLINE_TRAINING).kg == 2.0

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=2,
        )
    )
    def test_merge_preserves_total(self, kgs):
        a = make_op(data=kgs[0])
        b = make_op(data=kgs[1])
        assert math.isclose(
            a.merged(b).carbon.kg, kgs[0] + kgs[1], rel_tol=1e-9, abs_tol=1e-9
        )

    def test_merged_respects_phase_order(self):
        a = make_op(inference=1.0)
        b = make_op(data=1.0)
        merged = a.merged(b)
        phases = [pf.phase for pf in merged.phases]
        assert phases == [p for p in PHASE_ORDER if p in phases]


class TestPhaseFootprint:
    def test_scaled(self):
        pf = PhaseFootprint(Phase.DATA, Energy(2.0), Carbon(4.0))
        scaled = pf.scaled(0.5)
        assert scaled.energy.kwh == 1.0
        assert scaled.carbon.kg == 2.0

    def test_scaled_rejects_negative(self):
        pf = PhaseFootprint(Phase.DATA, Energy(2.0), Carbon(4.0))
        with pytest.raises(UnitError):
            pf.scaled(-1.0)


class TestEmbodiedFootprint:
    def test_amortized_cannot_exceed_manufacturing(self):
        with pytest.raises(UnitError):
            EmbodiedFootprint(amortized=Carbon(10.0), total_manufacturing=Carbon(5.0))

    def test_zero_manufacturing_means_unchecked(self):
        fp = EmbodiedFootprint(amortized=Carbon(10.0))
        assert fp.amortized.kg == 10.0


class TestTotalFootprint:
    def test_shares_sum_to_one(self):
        total = TotalFootprint(
            name="t",
            operational=make_op(inference=70.0),
            embodied=EmbodiedFootprint(Carbon(30.0)),
        )
        assert math.isclose(total.embodied_share + total.operational_share, 1.0)
        assert total.carbon.kg == 100.0

    def test_describe_contains_name_and_shares(self):
        total = TotalFootprint(
            name="my-task",
            operational=make_op(inference=70.0),
            embodied=EmbodiedFootprint(Carbon(30.0)),
        )
        text = total.describe()
        assert "my-task" in text
        assert "30%" in text

    def test_zero_total_has_zero_shares(self):
        total = TotalFootprint(
            name="idle",
            operational=OperationalFootprint(()),
            embodied=EmbodiedFootprint(Carbon.zero()),
        )
        assert total.embodied_share == 0.0
        assert total.operational_share == 0.0
