"""Jevons model, Figure-6 stack, utilization distribution, simulator tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CalibrationError, UnitError
from repro.fleet.growth import (
    FIG6_AREAS,
    JevonsModel,
    OptimizationArea,
    average_half_gain,
    composed_half_gains,
    implied_demand_growth,
)
from repro.fleet.simulator import FleetSimulator, datacenter_electricity_series
from repro.fleet.utilization import (
    EXPERIMENTATION_UTILIZATION,
    OPTIMIZED_TRAINING_UTILIZATION,
    UtilizationDistribution,
    utilization_histogram,
)
from repro.lifecycle.jobs import EXPERIMENTATION_JOBS
from repro.workloads.traces import experiment_arrivals


class TestJevons:
    def test_paper_net_reduction(self):
        assert JevonsModel().net_reduction(4) == pytest.approx(0.285, abs=1e-9)

    def test_counterfactual_grows(self):
        traj = JevonsModel().counterfactual_trajectory(4)
        assert np.all(np.diff(traj) > 0)

    def test_avoided_is_efficiency_compounding(self):
        model = JevonsModel()
        assert model.avoided_power_fraction(4) == pytest.approx(1 - 0.8**4)

    def test_implied_demand_growth(self):
        g = implied_demand_growth()
        assert g**4 * 0.8**4 == pytest.approx(1 - 0.285)

    @settings(max_examples=25)
    @given(
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        st.floats(min_value=1.0, max_value=1.5, allow_nan=False),
    )
    def test_trajectory_starts_at_one(self, gain, growth):
        model = JevonsModel(gain, growth)
        traj = model.power_trajectory(4)
        assert traj[0] == pytest.approx(1.0)

    def test_no_efficiency_means_pure_growth(self):
        model = JevonsModel(0.0, 1.1)
        np.testing.assert_allclose(
            model.power_trajectory(3), model.counterfactual_trajectory(3)
        )

    def test_validation(self):
        with pytest.raises(UnitError):
            JevonsModel(efficiency_gain_per_half=1.0)
        with pytest.raises(CalibrationError):
            implied_demand_growth(net_reduction=1.0)


class TestFig6Stack:
    def test_average_near_20_percent(self):
        assert average_half_gain() == pytest.approx(0.20, abs=0.01)

    def test_each_half_near_20_percent(self):
        for gain in composed_half_gains():
            assert 0.17 < gain < 0.23

    def test_composition_less_than_sum(self):
        # Multiplicative composition < naive addition of gains.
        for i, total in enumerate(composed_half_gains()):
            naive = sum(a.gains_per_half[i] for a in FIG6_AREAS)
            assert total < naive

    def test_mismatched_halves_rejected(self):
        areas = (
            OptimizationArea("a", (0.1, 0.1)),
            OptimizationArea("b", (0.1,)),
        )
        with pytest.raises(CalibrationError):
            composed_half_gains(areas)

    def test_gain_range_validated(self):
        with pytest.raises(UnitError):
            OptimizationArea("bad", (1.0,))


class TestUtilizationDistribution:
    def test_paper_band_dominant(self):
        band = EXPERIMENTATION_UTILIZATION.fraction_in_band(0.3, 0.5)
        assert band > 0.5

    def test_mode_in_band(self):
        assert 0.3 <= EXPERIMENTATION_UTILIZATION.mode <= 0.5

    def test_optimized_shifted_right(self):
        assert (
            OPTIMIZED_TRAINING_UTILIZATION.mean > EXPERIMENTATION_UTILIZATION.mean
        )

    def test_histogram_sums_to_one(self):
        _, fractions = utilization_histogram(n_workflows=20_000)
        assert np.sum(fractions) == pytest.approx(1.0)

    def test_samples_in_unit_interval(self):
        samples = EXPERIMENTATION_UTILIZATION.sample(1000, seed=3)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_band_validation(self):
        with pytest.raises(UnitError):
            EXPERIMENTATION_UTILIZATION.fraction_in_band(0.5, 0.3)

    def test_param_validation(self):
        with pytest.raises(UnitError):
            UtilizationDistribution(alpha=0.0)


class TestFleetSimulator:
    def test_run_produces_consistent_totals(self):
        stream = experiment_arrivals(EXPERIMENTATION_JOBS, 50.0, 7.0, seed=1)
        sim = FleetSimulator(training_gpus=512, inference_servers=200)
        result = sim.run(stream, hours=168)
        assert result.it_energy.kwh > 0
        assert result.facility_energy.kwh == pytest.approx(
            result.it_energy.kwh * 1.1, rel=1e-9
        )
        assert result.operational_carbon.kg > 0
        assert result.embodied_total.kg > 0

    def test_capacity_split_sums_to_one(self):
        stream = experiment_arrivals(EXPERIMENTATION_JOBS, 50.0, 7.0, seed=1)
        result = FleetSimulator(training_gpus=512, inference_servers=200).run(
            stream, hours=168
        )
        split = result.capacity_split()
        assert split["training"] + split["inference"] == pytest.approx(1.0)

    def test_electricity_series_anchor(self):
        series = datacenter_electricity_series()
        assert series[2020].mwh == pytest.approx(7.17e6)

    def test_electricity_series_monotone(self):
        series = datacenter_electricity_series()
        values = [series[y].mwh for y in sorted(series)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(UnitError):
            FleetSimulator(training_gpus=0)
