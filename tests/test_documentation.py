"""Documentation coverage: every public item carries a docstring.

The paper's own call-to-action is measurement and disclosure; this
repository holds itself to the analogous standard for its API surface.
"""

import importlib
import inspect
import pkgutil


import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in ALL_MODULES if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_public_classes_documented(self):
        missing = []
        for module in ALL_MODULES:
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export; documented at its home
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_public_functions_documented(self):
        missing = []
        for module in ALL_MODULES:
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_all_exports_resolve(self):
        for module in ALL_MODULES:
            exported = getattr(module, "__all__", None)
            if exported is None:
                continue
            for name in exported:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"

    def test_experiment_registry_complete(self):
        # Every experiment id renders and carries notes tying it to the
        # paper (the per-experiment provenance EXPERIMENTS.md relies on).
        from repro.experiments.registry import EXPERIMENTS

        assert len(EXPERIMENTS) >= 40
        for exp_id in ("fig1", "fig12", "text-quant", "ext-sdc"):
            assert exp_id in EXPERIMENTS
