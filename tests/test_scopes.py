"""GHG scope accounting tests."""

import pytest

from repro.carbon.offsets import NO_PROGRAM
from repro.carbon.scopes import (
    GHGInventory,
    SCOPE3_CATEGORIES,
    ai_embodied_growth,
    hyperscaler_inventory,
)
from repro.core.quantities import Carbon
from repro.errors import UnitError


class TestGHGInventory:
    def test_scope3_share_exceeds_half_market_based(self):
        # The paper: >50% of emissions are Scope 3 (value chain).
        inventory = hyperscaler_inventory()
        assert inventory.scope3_share(market_based=True) > 0.5

    def test_market_based_scope2_is_zero_with_matching(self):
        inventory = hyperscaler_inventory()
        assert inventory.scope2_market.kg == 0.0
        assert inventory.scope2_location.kg > 0.0

    def test_no_procurement_keeps_scope2(self):
        inventory = GHGInventory(
            scope1=Carbon(10.0),
            scope2_location=Carbon(100.0),
            scope3={"capital-goods": Carbon(50.0)},
            procurement=NO_PROGRAM,
        )
        assert inventory.scope2_market.kg == 100.0
        assert inventory.total(market_based=True).kg == 160.0

    def test_unknown_category_rejected(self):
        with pytest.raises(UnitError, match="capital-goods"):
            GHGInventory(
                scope1=Carbon(1.0),
                scope2_location=Carbon(1.0),
                scope3={"yachts": Carbon(1.0)},
            )

    def test_all_standard_categories_accepted(self):
        scope3 = {c: Carbon(1.0) for c in SCOPE3_CATEGORIES}
        inventory = GHGInventory(Carbon(0.0), Carbon(0.0), scope3)
        assert inventory.scope3_total.kg == pytest.approx(len(SCOPE3_CATEGORIES))

    def test_capital_goods_default_zero(self):
        inventory = GHGInventory(Carbon(1.0), Carbon(1.0))
        assert inventory.capital_goods().kg == 0.0


class TestAIGrowth:
    def test_growth_scales_only_ai_share(self):
        inventory = hyperscaler_inventory()
        capital = inventory.capital_goods()
        grown = ai_embodied_growth(inventory, 0.5, 2.9)
        expected = capital.kg * 0.5 + capital.kg * 0.5 * 2.9
        assert grown.kg == pytest.approx(expected)

    def test_zero_share_means_no_change(self):
        inventory = hyperscaler_inventory()
        grown = ai_embodied_growth(inventory, 0.0, 10.0)
        assert grown.kg == pytest.approx(inventory.capital_goods().kg)

    def test_validation(self):
        inventory = hyperscaler_inventory()
        with pytest.raises(UnitError):
            ai_embodied_growth(inventory, 1.5, 2.0)
        with pytest.raises(UnitError):
            ai_embodied_growth(inventory, 0.5, 0.0)
