"""``Ledger.gc`` and the ``sustainable-ai ledger gc`` CLI.

The retention contract under test: epochs are the pins — every bundle
any epoch references (the golden epoch ``"0"`` included) survives every
gc pass no matter how old — while unpinned runs older than the cutoff
are pruned with their now-unreferenced bundles, and surviving journals
compact to one line per run/bundle (a long-lived service run's N delta
lines become 1).
"""

import pytest

from repro.core.ledger import GOLDEN_EPOCH, Ledger
from repro.experiments.runner import main
from tests.test_ledger import make_bundle


@pytest.fixture
def store(tmp_path):
    return Ledger.open(tmp_path / "ledger")


def bundle_for(exp_id, value=1.0):
    return make_bundle(experiment_id=exp_id, metrics=(("total_kg", value),))


class TestRetention:
    def test_old_runs_prune_and_their_bundles_go(self, store):
        store.record_run([bundle_for("fig-a")], run_id="old", recorded_at=1000.0)
        store.record_run([bundle_for("fig-b", 2.0)], run_id="new", recorded_at=9000.0)
        report = store.gc(older_than=5000.0)
        assert report.runs_pruned == ("old",)
        assert report.runs_kept == 1
        assert report.bundles_removed == 1
        reloaded = Ledger.open(store.directory)
        assert set(reloaded.runs) == {"new"}
        assert len(reloaded.bundles) == 1

    def test_runs_without_timestamps_are_never_pruned(self, store):
        store.record_run([bundle_for("fig-a")], run_id="undated")
        report = store.gc(older_than=1e12)
        assert report.runs_pruned == ()
        assert set(Ledger.open(store.directory).runs) == {"undated"}

    def test_no_cutoff_means_compaction_only(self, store):
        store.record_run([bundle_for("fig-a")], run_id="old", recorded_at=1.0)
        report = store.gc()
        assert report.runs_pruned == ()
        assert report.runs_kept == 1

    def test_epoch_pinned_bundles_survive_any_cutoff(self, store):
        pinned = bundle_for("fig-a")
        store.record_run([pinned], run_id="old", recorded_at=1000.0)
        store.pin_epoch("base", run_id="old")
        report = store.gc(older_than=1e12)
        # The run is pruned but its epoch-pinned bundle is not.
        assert report.runs_pruned == ("old",)
        assert report.bundles_removed == 0
        reloaded = Ledger.open(store.directory)
        assert pinned.bundle_id in reloaded.bundles
        assert reloaded.epochs["base"]["experiments"] == {"fig-a": pinned.bundle_id}

    def test_golden_epoch_zero_is_never_collected(self, store):
        golden = bundle_for("fig-g", 3.0)
        store.pin_epoch(GOLDEN_EPOCH, {"fig-g": golden})
        store.record_run([bundle_for("fig-a")], run_id="old", recorded_at=1000.0)
        report = store.gc(older_than=1e12)
        assert report.epochs_pinned == 1
        reloaded = Ledger.open(store.directory)
        assert golden.bundle_id in reloaded.bundles
        assert GOLDEN_EPOCH in reloaded.epochs


class TestCompaction:
    def test_service_delta_lines_consolidate_to_one_run_line(self, store):
        # The service's record-on-execute path appends one runs.jsonl
        # delta line per executed query; gc rewrites them as one line.
        for index in range(10):
            store.update_run(
                "service", bundle_for(f"fig-{index}"), recorded_at=9000.0
            )
        report = store.gc()
        assert report.lines_before == 10 + 10  # 10 bundle + 10 run deltas
        assert report.lines_after == 10 + 1
        assert report.bytes_after < report.bytes_before
        reloaded = Ledger.open(store.directory)
        assert len(reloaded.runs["service"].experiments) == 10

    def test_duplicate_bundle_lines_dedupe(self, store):
        bundle = bundle_for("fig-a")
        store.record_run([bundle], run_id="r1", recorded_at=9000.0)
        store.record_run([bundle], run_id="r2", recorded_at=9000.0)
        report = store.gc()
        assert report.bundles_kept == 1
        text = (store.directory / "bundles.jsonl").read_text()
        assert text.count(bundle.bundle_id) == 1

    def test_dry_run_reports_without_modifying(self, store):
        store.record_run([bundle_for("fig-a")], run_id="old", recorded_at=1000.0)
        before = (store.directory / "runs.jsonl").read_bytes()
        report = store.gc(older_than=5000.0, dry_run=True)
        assert report.dry_run
        assert report.runs_pruned == ("old",)
        assert (store.directory / "runs.jsonl").read_bytes() == before
        assert "old" in store.runs
        assert "would prune" in report.render()

    def test_in_memory_ledger_compacts_dicts_only(self):
        store = Ledger()
        store.record_run([bundle_for("fig-a")], run_id="old", recorded_at=1000.0)
        report = store.gc(older_than=5000.0)
        assert report.runs_pruned == ("old",)
        assert store.runs == {}
        assert report.lines_before == 0


class TestCli:
    def test_gc_via_cutoff(self, store, capsys):
        store.record_run([bundle_for("fig-a")], run_id="old", recorded_at=1000.0)
        store.record_run([bundle_for("fig-b", 2.0)], run_id="new", recorded_at=9000.0)
        code = main(
            ["ledger", "gc", "--ledger-dir", str(store.directory), "--cutoff", "5000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pruned 1 run(s)" in out
        assert set(Ledger.open(store.directory).runs) == {"new"}

    def test_gc_dry_run_flag(self, store, capsys):
        store.record_run([bundle_for("fig-a")], run_id="old", recorded_at=1000.0)
        code = main(
            [
                "ledger",
                "gc",
                "--ledger-dir",
                str(store.directory),
                "--cutoff",
                "5000",
                "--dry-run",
            ]
        )
        assert code == 0
        assert "would prune 1 run(s)" in capsys.readouterr().out
        assert "old" in Ledger.open(store.directory).runs

    def test_gc_rejects_negative_age(self, store, capsys):
        code = main(
            [
                "ledger",
                "gc",
                "--ledger-dir",
                str(store.directory),
                "--older-than-days",
                "-1",
            ]
        )
        assert code == 2

    def test_gc_compact_only_default(self, store, capsys):
        for index in range(3):
            store.update_run("service", bundle_for(f"fig-{index}"), recorded_at=1.0)
        code = main(["ledger", "gc", "--ledger-dir", str(store.directory)])
        assert code == 0
        assert "pruned 0 run(s)" in capsys.readouterr().out
        assert len(Ledger.open(store.directory).runs["service"].experiments) == 3
