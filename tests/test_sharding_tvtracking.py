"""Sharding planner and time-varying accounting tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.carbon.grid import GridTrace, constant_grid_trace, synthesize_grid_trace
from repro.carbon.intensity import CarbonIntensity
from repro.core.quantities import Energy
from repro.errors import TelemetryError, UnitError
from repro.models.dlrm import DLRMSpec, EmbeddingTableSpec, make_dlrm
from repro.models.sharding import (
    alltoall_bytes_per_step,
    shard_tables,
    sharding_study,
)
from repro.telemetry.time_varying import (
    TimeVaryingAccountant,
    account_constant_run,
    best_and_worst_start,
)


MODEL = make_dlrm("RM", n_tables=24, rows_per_table=20_000_000, dim=96)


class TestSharding:
    def test_all_tables_assigned(self):
        plan = shard_tables(MODEL, device_memory_bytes=32e9)
        assert len(plan.assignments) == len(MODEL.tables)
        assert plan.n_devices >= 1

    def test_memory_cap_respected(self):
        plan = shard_tables(MODEL, device_memory_bytes=32e9, memory_headroom=0.85)
        assert np.all(plan.device_bytes <= 32e9 * 0.85 + 1e-6)

    def test_bytes_conserved(self):
        plan = shard_tables(MODEL, device_memory_bytes=32e9)
        assert np.sum(plan.device_bytes) == pytest.approx(MODEL.embedding_bytes)

    def test_reasonably_balanced(self):
        plan = shard_tables(MODEL, device_memory_bytes=32e9)
        assert plan.imbalance < 1.5

    def test_bigger_devices_fewer_shards(self):
        small = shard_tables(MODEL, device_memory_bytes=16e9)
        large = shard_tables(MODEL, device_memory_bytes=64e9)
        assert large.n_devices <= small.n_devices

    def test_oversized_table_rejected(self):
        huge = DLRMSpec(
            "huge",
            (EmbeddingTableSpec(rows=10_000_000_000, dim=128),),
            MODEL.bottom_mlp,
            MODEL.top_mlp,
        )
        with pytest.raises(UnitError, match="row-wise"):
            shard_tables(huge, device_memory_bytes=32e9)

    def test_single_device_no_communication(self):
        tiny = make_dlrm("tiny", n_tables=4, rows_per_table=1000, dim=8)
        plan = shard_tables(tiny, device_memory_bytes=32e9)
        assert plan.n_devices == 1
        assert alltoall_bytes_per_step(tiny, plan, 1024) == 0.0

    def test_communication_scales_with_batch(self):
        plan = shard_tables(MODEL, device_memory_bytes=32e9)
        small = alltoall_bytes_per_step(MODEL, plan, 1024)
        large = alltoall_bytes_per_step(MODEL, plan, 4096)
        assert large == pytest.approx(4 * small)

    def test_study_compression_dividend(self):
        compressed_tables = tuple(
            EmbeddingTableSpec(max(1, t.rows // 100), t.dim, t.lookups_per_sample)
            for t in MODEL.tables
        )
        compressed = DLRMSpec("c", compressed_tables, MODEL.bottom_mlp, MODEL.top_mlp)
        rows = sharding_study(MODEL, compressed)
        assert rows[1].n_devices < rows[0].n_devices
        assert rows[1].alltoall_gb_per_step <= rows[0].alltoall_gb_per_step


GRID = synthesize_grid_trace(168, seed=7)


class TestTimeVaryingAccounting:
    def test_flat_grid_matches_static(self):
        flat = constant_grid_trace(CarbonIntensity(0.4), 48)
        acc = account_constant_run(flat, power_kw=10.0, duration_hours=5.0)
        assert acc.carbon().kg == pytest.approx(acc.static_carbon().kg, rel=1e-9)
        assert acc.attribution_error() == pytest.approx(0.0, abs=1e-9)

    def test_energy_conserved(self):
        acc = account_constant_run(GRID, power_kw=10.0, duration_hours=7.5)
        assert acc.total_energy().kwh == pytest.approx(75.0)
        assert acc.duration_hours == pytest.approx(7.5)

    def test_boundary_splitting_exact(self):
        # One 2-hour interval across hours with intensities 0.2 and 0.6
        # must price half the energy at each.  (Built directly: cached
        # traces from constant_grid_trace are frozen and shared.)
        intensity = np.full(24, 0.2)
        intensity[1] = 0.6
        trace = GridTrace(
            solar_share=np.zeros(24),
            wind_share=np.zeros(24),
            intensity_kg_per_kwh=intensity,
        )
        acc = TimeVaryingAccountant(grid=trace, start_hour=0)
        acc.record_interval(Energy(10.0), 2 * 3600.0)
        assert acc.carbon().kg == pytest.approx(5 * 0.2 + 5 * 0.6)

    def test_periodic_wrap(self):
        acc = account_constant_run(GRID, power_kw=10.0, duration_hours=5.0, start_hour=166)
        assert acc.carbon().kg > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 167))
    def test_bounded_by_trace_extremes(self, start):
        acc = account_constant_run(GRID, power_kw=10.0, duration_hours=6.0, start_hour=start)
        kg = acc.carbon().kg
        lo = float(GRID.intensity_kg_per_kwh.min()) * 60.0
        hi = float(GRID.intensity_kg_per_kwh.max()) * 60.0
        assert lo - 1e-9 <= kg <= hi + 1e-9

    def test_best_and_worst_spread(self):
        spread = best_and_worst_start(GRID, 10.0, 10.0)
        assert spread["best_kg"] < spread["mean_kg"] < spread["worst_kg"]
        assert spread["worst_over_best"] > 1.2

    def test_validation(self):
        acc = TimeVaryingAccountant(grid=GRID)
        with pytest.raises(TelemetryError):
            acc.record_interval(Energy(1.0), 0.0)
        with pytest.raises(TelemetryError):
            account_constant_run(GRID, 1.0, 0.0)
