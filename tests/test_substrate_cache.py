"""Substrate memoization tests: shared traces are cached, frozen, correct."""

import warnings

import numpy as np
import pytest

from repro.carbon.grid import constant_grid_trace, synthesize_grid_trace
from repro.carbon.intensity import CarbonIntensity
from repro.core.memo import clear_substrate_caches, memoized_substrate, substrate_cache_info
from repro.lifecycle.jobs import EXPERIMENTATION_JOBS
from repro.workloads.traces import diurnal_demand, experiment_arrivals


class TestMemoizedSubstrate:
    def test_identical_calls_share_one_object(self):
        synthesize_grid_trace.cache_clear()
        a = synthesize_grid_trace(168, seed=123)
        b = synthesize_grid_trace(168, seed=123)
        assert a is b
        info = synthesize_grid_trace.cache_info()
        assert info.misses == 1
        assert info.hits == 1

    def test_different_args_do_not_collide(self):
        a = synthesize_grid_trace(168, seed=1)
        b = synthesize_grid_trace(168, seed=2)
        assert a is not b
        assert not np.allclose(a.intensity_kg_per_kwh, b.intensity_kg_per_kwh)

    def test_cached_arrays_are_frozen(self):
        trace = synthesize_grid_trace(72, seed=5)
        with pytest.raises(ValueError):
            trace.intensity_kg_per_kwh[0] = 0.0
        demand = diurnal_demand(48, seed=3)
        with pytest.raises(ValueError):
            demand[0] = 99.0

    def test_demand_and_arrivals_cached(self):
        diurnal_demand.cache_clear()
        experiment_arrivals.cache_clear()
        assert diurnal_demand(168, seed=0) is diurnal_demand(168, seed=0)
        stream = experiment_arrivals(EXPERIMENTATION_JOBS, 10.0, 7.0, seed=0)
        assert experiment_arrivals(EXPERIMENTATION_JOBS, 10.0, 7.0, seed=0) is stream

    def test_constant_trace_cached_by_intensity_value(self):
        a = constant_grid_trace(CarbonIntensity(0.4), 24)
        b = constant_grid_trace(CarbonIntensity(0.4), 24)
        c = constant_grid_trace(CarbonIntensity(0.5), 24)
        assert a is b
        assert a is not c

    def test_registry_and_clear(self):
        synthesize_grid_trace(24, seed=77)
        info = substrate_cache_info()
        assert "synthesize_grid_trace" in info
        assert info["synthesize_grid_trace"].size >= 1
        clear_substrate_caches()
        assert substrate_cache_info()["synthesize_grid_trace"].size == 0

    def test_unhashable_args_bypass_cache(self):
        calls = []

        @memoized_substrate
        def build(x):
            calls.append(x)
            return np.asarray(x, dtype=float)

        with pytest.warns(RuntimeWarning, match="bypass"):
            build([1.0, 2.0])
        build([1.0, 2.0])  # list is unhashable -> no caching, no error
        assert len(calls) == 2
        build((1.0, 2.0))
        build((1.0, 2.0))
        assert len(calls) == 3
        info = build.cache_info()
        assert info.bypasses == 2
        assert info.misses == 1 and info.hits == 1

    def test_bypass_warning_fires_once_per_substrate(self):
        @memoized_substrate
        def build_other(x):
            return np.asarray(x, dtype=float)

        with pytest.warns(RuntimeWarning, match="build_other"):
            build_other([1.0])
        # Second bypass of the same substrate stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            build_other([2.0])
        assert build_other.cache_info().bypasses == 2
