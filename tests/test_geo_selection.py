"""Geo scheduling and FL client-selection tests."""

import numpy as np
import pytest

from repro.errors import SchedulingError, UnitError
from repro.scheduling.carbon_aware import schedule_carbon_aware
from repro.scheduling.geo import Region, default_regions, schedule_geo
from repro.scheduling.jobs import DeferrableJob, synthesize_jobs
from repro.edge.selection import (
    compare_strategies,
    run_selection,
    synthesize_population,
)


HORIZON = 168
REGIONS = default_regions(HORIZON, seed=0)
JOBS = synthesize_jobs(30, HORIZON, seed=0)


class TestGeoScheduling:
    def test_geo_beats_single_region(self):
        home = REGIONS[0]
        single = schedule_carbon_aware(JOBS, home.grid, HORIZON, home.capacity_kw)
        geo = schedule_geo(JOBS, REGIONS, HORIZON)
        assert geo.total_carbon.kg < single.total_carbon.kg

    def test_work_migrates_to_clean_regions(self):
        geo = schedule_geo(JOBS, REGIONS, HORIZON)
        clean = geo.region_share("solar-west") + geo.region_share("wind-north")
        assert clean > 0.5

    def test_all_jobs_placed(self):
        geo = schedule_geo(JOBS, REGIONS, HORIZON)
        assert set(geo.placements) == {j.job_id for j in JOBS}

    def test_placements_respect_windows(self):
        geo = schedule_geo(JOBS, REGIONS, HORIZON)
        by_id = {j.job_id: j for j in JOBS}
        for job_id, (_, start) in geo.placements.items():
            job = by_id[job_id]
            assert job.submit_hour <= start <= job.latest_start

    def test_migration_overhead_discourages_moves(self):
        free = schedule_geo(JOBS, REGIONS, HORIZON, migration_overhead_fraction=0.0)
        costly = schedule_geo(JOBS, REGIONS, HORIZON, migration_overhead_fraction=0.5)
        home_share_free = free.region_share("fossil-east")
        home_share_costly = costly.region_share("fossil-east")
        assert home_share_costly >= home_share_free

    def test_region_capacity_respected(self):
        # Re-run and verify per-region power profiles never exceed capacity
        # by reconstructing them from placements.
        geo = schedule_geo(JOBS, REGIONS, HORIZON)
        by_id = {j.job_id: j for j in JOBS}
        profiles = {r.name: np.zeros(HORIZON) for r in REGIONS}
        for job_id, (region, start) in geo.placements.items():
            job = by_id[job_id]
            profiles[region][start : start + job.duration_hours] += job.power_kw
        for region in REGIONS:
            assert np.all(profiles[region.name] <= region.capacity_kw + 1e-6)

    def test_empty_regions_rejected(self):
        with pytest.raises(UnitError):
            schedule_geo(JOBS, [], HORIZON)

    def test_unknown_home_rejected(self):
        with pytest.raises(UnitError):
            schedule_geo(JOBS, REGIONS, HORIZON, home_region="atlantis")

    def test_deadline_beyond_horizon_rejected(self):
        bad = [DeferrableJob(0, 0, 4, 10.0, deadline_hour=HORIZON + 100)]
        with pytest.raises(SchedulingError):
            schedule_geo(bad, REGIONS, HORIZON)

    def test_region_validation(self):
        with pytest.raises(UnitError):
            Region("bad", REGIONS[0].grid, capacity_kw=0.0)


class TestClientSelection:
    def test_energy_aware_cheapest(self):
        outcomes = compare_strategies(rounds=50, seed=1)
        assert (
            outcomes["energy-aware"].total_energy.kwh
            < outcomes["random"].total_energy.kwh
        )

    def test_fastest_has_shortest_rounds(self):
        outcomes = compare_strategies(rounds=50, seed=1)
        assert (
            outcomes["fastest"].mean_round_time_s
            <= outcomes["random"].mean_round_time_s
        )

    def test_selective_strategies_less_fair(self):
        outcomes = compare_strategies(rounds=50, seed=1)
        assert (
            outcomes["energy-aware"].participation_gini
            > outcomes["random"].participation_gini
        )

    def test_deterministic_per_seed(self):
        a = run_selection(synthesize_population(seed=2), "random", rounds=20, seed=3)
        b = run_selection(synthesize_population(seed=2), "random", rounds=20, seed=3)
        assert a.total_energy.kwh == b.total_energy.kwh

    def test_unknown_strategy_rejected(self):
        with pytest.raises(UnitError):
            run_selection(synthesize_population(seed=0), "psychic")

    def test_population_validation(self):
        with pytest.raises(UnitError):
            synthesize_population(n_clients=0)
