"""CLI runner tests."""

import json

import pytest

from repro.experiments.runner import main


class TestCLI:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert "fig1" in out
        assert "fig12" in out
        assert "ext-moe" in out
        assert len(out) >= 30

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "812" in out

    def test_run_quiet_headlines_only(self, capsys):
        assert main(["run", "fig7", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "total_gain" in out
        assert "cumulative gain" not in out  # the table column is suppressed

    def test_json_export(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert main(["run", "fig8", "--json", str(target)]) == 0
        data = json.loads(target.read_text())
        assert len(data) == 1
        assert data[0]["experiment_id"] == "fig8"
        assert data[0]["headline"]["net_two_year_reduction"] == pytest.approx(0.285)
        assert data[0]["rows"]

    def test_unknown_experiment_raises(self):
        from repro.errors import RegistryError

        with pytest.raises(RegistryError):
            main(["run", "fig99"])

    def test_report_writes_markdown(self, tmp_path, capsys, monkeypatch):
        # Patch the registry down to two fast experiments so the report
        # command is exercised without a multi-minute full run.
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(
            runner_mod, "experiment_ids", lambda: ("fig7", "fig8")
        )
        target = tmp_path / "report.md"
        assert main(["report", str(target)]) == 0
        text = target.read_text()
        assert "# Live reproduction report" in text
        assert "## fig7" in text
        assert "## fig8" in text
        assert "total_gain" in text
