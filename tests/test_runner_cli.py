"""CLI runner tests: run/report/verify commands, exit codes, parallelism."""

import json

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments import golden
from repro.experiments.runner import main


@pytest.fixture
def small_registry(monkeypatch):
    """Patch the runner down to two fast experiments."""
    monkeypatch.setattr(runner_mod, "experiment_ids", lambda: ("fig7", "fig8"))


class TestCLI:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert "fig1" in out
        assert "fig12" in out
        assert "ext-moe" in out
        assert len(out) >= 30
        assert out[0] == "fig1"  # figures first, deterministically

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "812" in out

    def test_run_quiet_headlines_only(self, capsys):
        assert main(["run", "fig7", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "total_gain" in out
        assert "cumulative gain" not in out  # the table column is suppressed

    def test_json_export(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert main(["run", "fig8", "--json", str(target)]) == 0
        data = json.loads(target.read_text())
        assert len(data) == 1
        assert data[0]["experiment_id"] == "fig8"
        assert data[0]["headline"]["net_two_year_reduction"] == pytest.approx(0.285)
        assert data[0]["rows"]

    def test_unknown_experiment_exit_code_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "fig9" in err  # closest-match suggestion

    def test_bad_jobs_exit_code_2(self, capsys):
        assert main(["run", "fig7", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_argparse_usage_error_returns_2(self, capsys):
        assert main(["frobnicate"]) == 2

    def test_report_writes_markdown(self, tmp_path, capsys, small_registry):
        target = tmp_path / "report.md"
        assert main(["report", str(target), "--jobs", "1"]) == 0
        text = target.read_text()
        assert "# Live reproduction report" in text
        assert "## fig7" in text
        assert "## fig8" in text
        assert "total_gain" in text
        # Every section carries its headline bullets.
        assert text.count("## ") == 2
        assert "- **total_gain**:" in text

    def test_run_all_json_roundtrip(self, tmp_path, capsys, small_registry):
        target = tmp_path / "all.json"
        assert main(["run", "all", "--quiet", "--jobs", "1", "--json", str(target)]) == 0
        data = json.loads(target.read_text())
        assert [p["experiment_id"] for p in data] == ["fig7", "fig8"]
        from repro.experiments.registry import run_experiment
        from repro.experiments.runner import _result_payload

        for payload in data:
            assert payload == _result_payload(run_experiment(payload["experiment_id"]))

    def test_parallel_json_identical_to_sequential(self, tmp_path, capsys, small_registry):
        seq = tmp_path / "seq.json"
        par = tmp_path / "par.json"
        assert main(["run", "all", "--quiet", "--jobs", "1", "--json", str(seq)]) == 0
        assert main(["run", "all", "--quiet", "--jobs", "2", "--json", str(par)]) == 0
        assert seq.read_bytes() == par.read_bytes()


class TestProfileFlag:
    def test_profile_prints_report_and_embeds_json(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert main(["run", "fig7", "--quiet", "--profile", "--json", str(target)]) == 0
        out = capsys.readouterr().out
        assert "profile: slowest experiments" in out
        assert "profile: substrate cache" in out
        data = json.loads(target.read_text())
        profile = data[0]["profile"]
        assert profile["wall_s"] >= 0.0
        assert profile["cpu_s"] >= 0.0
        assert profile["peak_rss_kb"] > 0
        assert isinstance(profile["cache"], dict)

    def test_without_flag_json_has_no_profile_key(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert main(["run", "fig7", "--quiet", "--json", str(target)]) == 0
        data = json.loads(target.read_text())
        assert "profile" not in data[0]
        assert "profile:" not in capsys.readouterr().out

    def test_profiled_json_matches_unprofiled_modulo_profile_key(
        self, tmp_path, capsys
    ):
        plain = tmp_path / "plain.json"
        profiled = tmp_path / "profiled.json"
        assert main(["run", "fig8", "--quiet", "--json", str(plain)]) == 0
        assert main(["run", "fig8", "--quiet", "--profile", "--json", str(profiled)]) == 0
        a = json.loads(plain.read_text())[0]
        b = json.loads(profiled.read_text())[0]
        b.pop("profile")
        assert a == b


class TestCacheCommand:
    # ``ext-autoscale`` is a cheap experiment that builds a memoized
    # substrate (``diurnal_demand``), so a cold run with the disk tier on
    # writes at least one entry.  The in-process tier is cleared first —
    # a warm memory tier would never consult the disk.
    @pytest.fixture(autouse=True)
    def _cold_memory_tier(self):
        from repro.core.memo import clear_substrate_caches

        clear_substrate_caches()

    def test_stats_on_populated_directory(self, tmp_path, monkeypatch, capsys):
        from repro.core.diskcache import CACHE_DIR_ENV_VAR

        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        assert main(["run", "ext-autoscale", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "entr" in out  # entry/entries rows
        assert "registered substrates" in out

    def test_clear_removes_entries(self, tmp_path, monkeypatch, capsys):
        from repro.core.diskcache import CACHE_DIR_ENV_VAR

        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        assert main(["run", "ext-autoscale", "--quiet"]) == 0
        assert list(tmp_path.rglob("*.pkl"))
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert not list(tmp_path.rglob("*.pkl"))

    def test_explicit_cache_dir_flag(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "empty")]) == 0
        out = capsys.readouterr().out
        assert "(no entries)" in out

    def test_run_cache_dir_flag_exports_env(self, tmp_path, monkeypatch, capsys):
        import os

        from repro.core.diskcache import CACHE_DIR_ENV_VAR

        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        assert main(
            ["run", "ext-autoscale", "--quiet", "--cache-dir", str(tmp_path)]
        ) == 0
        assert os.environ[CACHE_DIR_ENV_VAR] == str(tmp_path)
        assert list(tmp_path.rglob("*.pkl"))

    def test_no_disk_cache_flag_disables_tier(self, tmp_path, monkeypatch, capsys):
        from repro.core.diskcache import CACHE_DIR_ENV_VAR

        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        assert main(["run", "ext-autoscale", "--quiet", "--no-disk-cache"]) == 0
        assert not list(tmp_path.rglob("*.pkl"))

    def test_cache_dir_and_no_disk_cache_conflict(self, tmp_path, capsys):
        code = main(
            ["run", "fig7", "--cache-dir", str(tmp_path), "--no-disk-cache"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestSweepCommand:
    SMALL = ["--param", "utilization=0.3:0.9:8", "--param", "pue=1.1:1.6:4"]

    def test_default_grid_runs_and_reports(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "stacked sweep: 288 scenario(s)" in out
        assert "sensitivity (one-at-a-time swing, descending):" in out
        assert "pareto frontier" in out
        assert "utilization" in out

    def test_json_bytes_match_service_serializer(self, tmp_path, capsys):
        """The CLI --json file is the canonical service/library bytes."""
        from repro.service import parse_query, render_payload

        target = tmp_path / "sweep.json"
        assert main(["sweep", *self.SMALL, "--quiet", "--json", str(target)]) == 0
        params = {
            "busy_device_hours": 1000.0,
            "ranges": [
                {"name": "utilization", "lo": 0.3, "hi": 0.9, "points": 8},
                {"name": "pue", "lo": 1.1, "hi": 1.6, "points": 4},
            ],
            "sampling": "grid",
        }
        assert target.read_bytes() == render_payload(
            parse_query("sweep", params).execute()
        )

    def test_scalar_check_passes_bit_for_bit(self, capsys):
        assert main(["sweep", *self.SMALL, "--scalar-check", "8"]) == 0
        assert "bit-equal to the scalar path" in capsys.readouterr().out

    def test_sobol_runs_are_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        flags = ["--sampling", "sobol", "--points", "64", "--seed", "7", "--quiet"]
        assert main(["sweep", *flags, "--json", str(a)]) == 0
        assert main(["sweep", *flags, "--json", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        assert json.loads(a.read_text())["headline"]["n_points"] == 64.0

    def test_quiet_suppresses_report(self, capsys):
        assert main(["sweep", *self.SMALL, "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--param", "tdp=1:2"],
            ["sweep", "--param", "utilization"],
            ["sweep", "--param", "utilization=0.3"],
            ["sweep", "--param", "utilization=lo:0.9"],
            ["sweep", "--param", "utilization=0.3:0.9:2:9"],
            ["sweep", "--param", "utilization=0.9:0.3"],
            ["sweep", "--chunk-points", "0"],
            ["sweep", "--scalar-check", "-1"],
            ["sweep", "--cache-dir", "/tmp/x", "--no-disk-cache"],
        ],
    )
    def test_usage_errors_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err

    def test_cache_dir_resumes_from_completed_chunks(self, tmp_path, monkeypatch, capsys):
        """A re-run with the same --cache-dir replays chunks from disk."""
        from repro.core.diskcache import CACHE_DIR_ENV_VAR
        from repro.core.sweep import sweep_chunk

        monkeypatch.setenv(CACHE_DIR_ENV_VAR, "off")
        flags = [*self.SMALL, "--chunk-points", "8", "--quiet"]
        assert main(["sweep", *flags, "--cache-dir", str(tmp_path)]) == 0
        assert list(tmp_path.rglob("*.pkl"))
        # Simulate a fresh process: the in-memory tier is gone, the disk
        # tier survives, so the second run is pure disk hits.
        sweep_chunk.cache_clear()
        assert main(["sweep", *flags, "--cache-dir", str(tmp_path)]) == 0
        # Every chunk misses the (cleared) memory tier but is served from
        # disk — no chunk is recomputed.
        info = sweep_chunk.cache_info()
        assert info.disk_hits == 4
        assert info.disk_misses == 0


class TestVerifyCommand:
    def test_update_then_verify_ok(self, tmp_path, capsys, small_registry):
        baselines = tmp_path / "baselines.json"
        assert main([
            "verify", "--update", "--check-invariants", "--quiet",
            "--jobs", "1", "--baselines", str(baselines),
        ]) == 0
        assert baselines.exists()
        assert main(["verify", "--quiet", "--jobs", "1", "--baselines", str(baselines)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_update_refuses_without_check_invariants(self, tmp_path, capsys, small_registry):
        baselines = tmp_path / "baselines.json"
        assert main([
            "verify", "--update", "--quiet", "--jobs", "1", "--baselines", str(baselines),
        ]) == 2
        assert "requires --check-invariants" in capsys.readouterr().err
        assert not baselines.exists()

    def test_drift_exit_code_1(self, tmp_path, capsys, small_registry):
        baselines = tmp_path / "baselines.json"
        assert main([
            "verify", "--update", "--check-invariants", "--quiet",
            "--jobs", "1", "--baselines", str(baselines),
        ]) == 0
        doc = json.loads(baselines.read_text())
        doc["experiments"]["fig7"]["headline"]["total_gain"] *= 1.05
        baselines.write_text(json.dumps(doc))
        assert main(["verify", "--quiet", "--jobs", "1", "--baselines", str(baselines)]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out
        assert "total_gain" in out

    def test_missing_baselines_exit_code_2(self, tmp_path, capsys, small_registry):
        missing = tmp_path / "nope.json"
        assert main(["verify", "--quiet", "--jobs", "1", "--baselines", str(missing)]) == 2
        assert "not found" in capsys.readouterr().err

    def test_checked_in_baselines_cover_all_experiments(self):
        from repro.experiments.registry import experiment_ids

        doc = golden.load_baselines(golden.DEFAULT_BASELINES_PATH)
        assert set(doc["experiments"]) == set(experiment_ids())
