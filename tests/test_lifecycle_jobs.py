"""Job duration model tests (paper percentile calibration)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CalibrationError
from repro.lifecycle.jobs import (
    EXPERIMENTATION_JOBS,
    JobDurationModel,
    PRODUCTION_TRAINING_JOBS,
    TRILLION_PARAM_THRESHOLD_GPU_DAYS,
    expected_cluster_gpu_days,
)


class TestPaperCalibration:
    def test_experimentation_percentiles(self):
        assert EXPERIMENTATION_JOBS.quantile(0.5) == pytest.approx(1.5)
        assert EXPERIMENTATION_JOBS.quantile(0.99) == pytest.approx(24.0)

    def test_production_percentiles(self):
        assert PRODUCTION_TRAINING_JOBS.quantile(0.5) == pytest.approx(2.96)
        assert PRODUCTION_TRAINING_JOBS.quantile(0.99) == pytest.approx(125.0)

    def test_trillion_param_tail_exists_but_is_rare(self):
        frac = PRODUCTION_TRAINING_JOBS.exceedance_fraction(
            TRILLION_PARAM_THRESHOLD_GPU_DAYS
        )
        assert 0.0 < frac < 0.01

    def test_samples_match_quantiles(self):
        samples = EXPERIMENTATION_JOBS.sample_gpu_days(200_000, seed=0)
        assert np.percentile(samples, 50) == pytest.approx(1.5, rel=0.05)
        assert np.percentile(samples, 99) == pytest.approx(24.0, rel=0.10)


class TestJobDurationModel:
    @settings(max_examples=30)
    @given(
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        st.floats(min_value=1.5, max_value=100.0, allow_nan=False),
    )
    def test_fit_reproduces_percentiles(self, p50, ratio):
        p99 = p50 * ratio
        model = JobDurationModel.from_percentiles(p50, p99)
        assert math.isclose(model.quantile(0.5), p50, rel_tol=1e-9)
        assert math.isclose(model.quantile(0.99), p99, rel_tol=1e-9)

    def test_mean_exceeds_median(self):
        # Lognormal is right-skewed.
        assert EXPERIMENTATION_JOBS.mean_gpu_days > EXPERIMENTATION_JOBS.median_gpu_days

    def test_invalid_percentiles_rejected(self):
        with pytest.raises(CalibrationError):
            JobDurationModel.from_percentiles(5.0, 4.0)
        with pytest.raises(CalibrationError):
            JobDurationModel.from_percentiles(0.0, 4.0)

    def test_quantile_range_checked(self):
        with pytest.raises(CalibrationError):
            EXPERIMENTATION_JOBS.quantile(1.5)

    def test_gpu_hours_conversion(self):
        days = EXPERIMENTATION_JOBS.sample_gpu_days(100, seed=1)
        hours = EXPERIMENTATION_JOBS.sample_gpu_hours(100, seed=1)
        np.testing.assert_allclose(hours, days * 24.0)

    def test_exceedance_monotone(self):
        assert EXPERIMENTATION_JOBS.exceedance_fraction(
            1.0
        ) > EXPERIMENTATION_JOBS.exceedance_fraction(10.0)

    def test_exceedance_at_zero_is_one(self):
        assert EXPERIMENTATION_JOBS.exceedance_fraction(0.0) == 1.0

    def test_expected_cluster_gpu_days(self):
        total = expected_cluster_gpu_days(EXPERIMENTATION_JOBS, 100)
        assert math.isclose(total, EXPERIMENTATION_JOBS.mean_gpu_days * 100)

    def test_negative_sample_count_rejected(self):
        with pytest.raises(CalibrationError):
            EXPERIMENTATION_JOBS.sample_gpu_days(-1)
