"""FLOP estimator tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitError
from repro.models.flops import (
    TRANSFORMER_BIG,
    TransformerConfig,
    XLMR_LM,
    device_hours_for_flops,
    mlp_forward_flops,
    mlp_params,
)


class TestTransformerConfig:
    def test_param_count_scales_quadratically_in_width(self):
        narrow = TransformerConfig(12, 512, 8, 2048, vocab_size=1000)
        wide = TransformerConfig(12, 1024, 16, 4096, vocab_size=1000)
        layer_narrow = narrow.n_params - narrow.embedding_params
        layer_wide = wide.n_params - wide.embedding_params
        assert layer_wide / layer_narrow == pytest.approx(4.0, rel=0.01)

    def test_transformer_big_param_scale(self):
        # Transformer Big is ~210M parameters.
        assert 1.5e8 < TRANSFORMER_BIG.n_params < 3.5e8

    def test_xlmr_param_scale(self):
        # XLM-R large is ~550M parameters.
        assert 3e8 < XLMR_LM.n_params < 8e8

    def test_heads_must_divide_width(self):
        with pytest.raises(UnitError):
            TransformerConfig(2, 100, 3, 400)

    def test_training_flops_triple_forward(self):
        fwd = TRANSFORMER_BIG.forward_flops_per_token(512)
        train = TRANSFORMER_BIG.training_flops(1.0, 512)
        assert train == pytest.approx(3 * fwd)

    def test_forward_flops_grow_with_seq_len(self):
        assert TRANSFORMER_BIG.forward_flops_per_token(
            2048
        ) > TRANSFORMER_BIG.forward_flops_per_token(128)

    @given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
    def test_training_flops_linear_in_tokens(self, tokens):
        one = TRANSFORMER_BIG.training_flops(1e6)
        many = TRANSFORMER_BIG.training_flops(tokens)
        assert math.isclose(many, tokens / 1e6 * one, rel_tol=1e-9, abs_tol=1.0)

    def test_untied_embeddings_double(self):
        tied = TransformerConfig(2, 128, 2, 512, vocab_size=1000, tied_embeddings=True)
        untied = TransformerConfig(
            2, 128, 2, 512, vocab_size=1000, tied_embeddings=False
        )
        assert untied.embedding_params == 2 * tied.embedding_params


class TestMLP:
    def test_forward_flops(self):
        assert mlp_forward_flops((10, 20, 5)) == 2 * (10 * 20 + 20 * 5)

    def test_params_include_bias(self):
        assert mlp_params((10, 20)) == 10 * 20 + 20

    def test_needs_two_layers(self):
        with pytest.raises(UnitError):
            mlp_forward_flops((10,))


class TestDeviceHours:
    def test_basic(self):
        # 1e12 FLOPs at 1 TFLOP/s effective = 1 second.
        hours = device_hours_for_flops(3.6e15, peak_tflops=1.0, efficiency=1.0)
        assert hours == pytest.approx(1.0)

    def test_efficiency_scales_time(self):
        full = device_hours_for_flops(1e18, 10.0, efficiency=1.0)
        half = device_hours_for_flops(1e18, 10.0, efficiency=0.5)
        assert half == pytest.approx(2 * full)

    def test_validation(self):
        with pytest.raises(UnitError):
            device_hours_for_flops(-1.0, 10.0)
        with pytest.raises(UnitError):
            device_hours_for_flops(1.0, 0.0)
        with pytest.raises(UnitError):
            device_hours_for_flops(1.0, 1.0, efficiency=0.0)
