"""Shared helpers for the carbon-query service test suites.

Not a test module (the name avoids the ``test_*.py`` pattern): it holds
the tiny synchronous HTTP client the conformance/robustness/property
suites and the load tests use against :func:`repro.service.start_service`
instances.  Everything here speaks plain ``http.client`` so the tests
exercise the service through a genuinely independent HTTP stack.
"""

from __future__ import annotations

import contextlib
import http.client
import json
from dataclasses import dataclass

from repro.service import ServiceConfig, start_service


@dataclass
class HttpReply:
    """One response as seen by a test client."""

    status: int
    body: bytes

    def json(self) -> dict:
        return json.loads(self.body)


class ServiceClient:
    """A keep-alive HTTP/1.1 client bound to one service instance."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(self, method: str, path: str, body: bytes | None = None) -> HttpReply:
        conn = self._connection()
        try:
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = conn.getresponse()
            reply = HttpReply(response.status, response.read())
        except (http.client.HTTPException, OSError):
            # The server closed the connection (drain, Connection: close);
            # retry exactly once on a fresh connection.
            self.close()
            conn = self._connection()
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = conn.getresponse()
            reply = HttpReply(response.status, response.read())
        if response.will_close:
            self.close()
        return reply

    def get(self, path: str) -> HttpReply:
        return self._request("GET", path)

    def post(self, path: str, payload: dict) -> HttpReply:
        return self._request("POST", path, json.dumps(payload).encode("utf-8"))

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


@contextlib.contextmanager
def running_service(**overrides):
    """A live service (ephemeral port) plus a client, torn down on exit."""
    config = ServiceConfig(**{"port": 0, "workers": 0, "batch_window_s": 0.0, **overrides})
    handle = start_service(config)
    client = ServiceClient(config.host, handle.port)
    try:
        yield handle, client
    finally:
        client.close()
        handle.stop()
