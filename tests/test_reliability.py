"""Reliability tests: checkpointing, wear-out, disaggregation."""

import numpy as np
import pytest

from repro.errors import UnitError
from repro.reliability.checkpoints import (
    CheckpointPolicy,
    partial_recovery_benefit,
    simulate_training_run,
    young_daly_interval,
)
from repro.reliability.disaggregation import (
    PAPER_PIPELINE,
    PipelineThroughput,
    disaggregation_impact,
)
from repro.reliability.faults import (
    WearoutModel,
    carbon_optimal_lifetime,
    fleet_sdc_incidents,
)


class TestCheckpointing:
    def test_young_daly(self):
        interval = young_daly_interval(mtbf_hours=50.0, checkpoint_cost_hours=0.25)
        assert interval == pytest.approx(np.sqrt(2 * 0.25 * 50.0))

    def test_no_failures_only_checkpoint_overhead(self):
        outcome = simulate_training_run(
            work_hours=100.0,
            mtbf_hours=1e9,
            policy=CheckpointPolicy(interval_hours=10.0, checkpoint_cost_hours=0.1),
            seed=0,
        )
        assert outcome.n_failures == 0
        assert outcome.lost_hours == 0.0
        assert outcome.checkpoint_hours == pytest.approx(0.9, abs=0.11)

    def test_failures_lose_work(self):
        outcome = simulate_training_run(
            work_hours=200.0,
            mtbf_hours=20.0,
            policy=CheckpointPolicy(interval_hours=10.0),
            seed=1,
        )
        assert outcome.n_failures > 0
        assert outcome.lost_hours > 0
        assert outcome.goodput < 1.0

    def test_partial_recovery_beats_full(self):
        result = partial_recovery_benefit(seed=2)
        assert result["partial_overhead"] < result["full_overhead"]
        assert result["wasted_hours_saved"] > 0

    def test_near_optimal_interval_beats_extremes(self):
        mtbf = 30.0
        optimal = young_daly_interval(mtbf, 0.05)
        overheads = {}
        for interval in (optimal / 20, optimal, optimal * 20):
            outcome = simulate_training_run(
                500.0, mtbf, CheckpointPolicy(interval, 0.05), seed=3
            )
            overheads[interval] = outcome.overhead_fraction
        assert overheads[optimal] <= min(overheads[optimal / 20], overheads[optimal * 20])

    def test_total_hours_accounting(self):
        outcome = simulate_training_run(
            100.0, 50.0, CheckpointPolicy(5.0, 0.1), seed=4
        )
        assert outcome.total_hours == pytest.approx(
            outcome.useful_hours + outcome.checkpoint_hours + outcome.lost_hours
        )
        assert outcome.useful_hours == 100.0

    def test_policy_validation(self):
        with pytest.raises(UnitError):
            CheckpointPolicy(interval_hours=0.0)
        with pytest.raises(UnitError):
            CheckpointPolicy(1.0, rollback_fraction=0.0)


class TestWearout:
    def test_hazard_increases_with_age(self):
        model = WearoutModel()
        assert model.incident_rate_at(4.0) > model.incident_rate_at(1.0)

    def test_expected_incidents_superlinear(self):
        model = WearoutModel()
        assert model.expected_incidents(8.0) > 2 * model.expected_incidents(4.0)

    def test_carbon_optimal_lifetime_interior(self):
        best, lifetimes, annualized = carbon_optimal_lifetime(WearoutModel())
        assert lifetimes.min() < best < lifetimes.max()
        assert 3.0 <= best <= 6.0  # near the paper's 3-5 year practice

    def test_fault_tolerance_extends_optimal_lifetime(self):
        base, _, _ = carbon_optimal_lifetime(WearoutModel(), detection_coverage=0.0)
        hardened, _, _ = carbon_optimal_lifetime(
            WearoutModel(), detection_coverage=0.9
        )
        assert hardened > base

    def test_fleet_incidents_scale(self):
        model = WearoutModel()
        one = fleet_sdc_incidents(1, 3.0, model)
        many = fleet_sdc_incidents(1000, 3.0, model)
        assert many == pytest.approx(1000 * one)

    def test_validation(self):
        with pytest.raises(UnitError):
            WearoutModel(base_rate_per_year=0.0)
        with pytest.raises(UnitError):
            WearoutModel(shape=0.5)


class TestDisaggregation:
    def test_paper_throughput_gain(self):
        assert PAPER_PIPELINE.throughput_gain == pytest.approx(0.5625, abs=0.01)

    def test_gain_capped_by_trainer(self):
        pipeline = PipelineThroughput(100.0, 50.0, 500.0)
        assert pipeline.disaggregated_rate == 100.0

    def test_impact_saves_net_embodied(self):
        impact = disaggregation_impact()
        assert impact.net_embodied_saving > 0

    def test_hours_saved_fraction(self):
        impact = disaggregation_impact()
        gain = impact.throughput_gain
        assert impact.trainer_hours_saved_fraction == pytest.approx(
            gain / (1 + gain)
        )

    def test_validation(self):
        with pytest.raises(UnitError):
            PipelineThroughput(0.0, 1.0, 1.0)
