"""The service's ledger surface: record-on-execute and /ledger endpoints.

Inline workers (``workers=0``) keep these fast; the service records every
executed query as a claim bundle in the run ``"service"``, auto-imports
the golden baselines as epoch "0", and answers ``/ledger``,
``/ledger/diff``, and ``/ledger/trace``.
"""

import pytest

from repro.core.ledger import GOLDEN_EPOCH, Ledger

from tests.serviceutil import running_service


@pytest.fixture(scope="module")
def service():
    with running_service() as (handle, client):
        yield handle, client


class TestLedgerSummary:
    def test_epoch_zero_is_imported_on_startup(self, service):
        _handle, client = service
        reply = client.get("/ledger")
        assert reply.status == 200
        doc = reply.json()
        assert GOLDEN_EPOCH in doc["epochs"]
        assert doc["bundles"] >= 45
        assert doc["errors"] == 0

    def test_metrics_carries_the_ledger_block(self, service):
        _handle, client = service
        doc = client.get("/metrics").json()
        assert doc["ledger"]["bundles"] >= 45
        assert doc["ledger"]["errors"] == 0

    def test_post_is_method_not_allowed(self, service):
        _handle, client = service
        assert client.post("/ledger", {}).status == 405

    def test_unknown_route_names_the_ledger_endpoints(self, service):
        _handle, client = service
        reply = client.get("/nope")
        assert reply.status == 404
        assert "/ledger/trace" in reply.json()["error"]["message"]
        # Ledger subpaths follow the service's prefix convention: wrong
        # method/path combinations under a known prefix get a 405.
        assert client.post("/ledger/diff", {}).status == 405


class TestRecordOnExecute:
    def test_experiment_queries_land_in_the_service_run(self, service):
        handle, client = service
        assert client.get("/experiments/fig7").status == 200
        led = handle.service.ledger
        assert "service" in led.runs
        bundle = led.resolve("service")["fig7"]
        assert bundle.status == "ok"
        assert bundle.provenance.source == "service"
        assert bundle.provenance.recorded_at is not None

    def test_cache_hits_do_not_rerecord(self, service):
        handle, client = service
        assert client.get("/experiments/fig8").status == 200
        before = len(handle.service.ledger.bundles)
        assert client.get("/experiments/fig8").status == 200  # LRU hit
        assert len(handle.service.ledger.bundles) == before

    def test_parameterized_queries_record_their_config(self, service):
        handle, client = service
        assert client.get("/footprint?busy_device_hours=123.5").status == 200
        led = handle.service.ledger
        eids = [e for e in led.resolve("service") if e.startswith("footprint:")]
        assert eids
        bundle = led.resolve("service")[eids[0]]
        config = bundle.provenance.config["query"]
        assert config["busy_device_hours"] == 123.5

    def test_recorded_payload_reconstructs_the_response_bytes(self, service):
        handle, client = service
        reply = client.get("/experiments/fig7")
        bundle = handle.service.ledger.resolve("service")["fig7"]
        assert bundle.reconstruct() == reply.body


class TestDiffEndpoint:
    def test_service_run_diffs_clean_against_the_golden_epoch(self, service):
        _handle, client = service
        client.get("/experiments/fig7")
        reply = client.get(f"/ledger/diff?a={GOLDEN_EPOCH}&b=service&strict=false")
        assert reply.status == 200
        doc = reply.json()
        # The experiment queries match their golden claims; ad-hoc
        # footprint queries have no baseline and are only flagged there.
        assert all(d["kind"] == "missing-baseline" for d in doc["drifts"])
        assert all(not d["experiment_id"].startswith("fig") for d in doc["drifts"])

    def test_self_diff_of_the_epoch_is_clean(self, service):
        _handle, client = service
        doc = client.get(f"/ledger/diff?a={GOLDEN_EPOCH}&b={GOLDEN_EPOCH}").json()
        assert doc["ok"] is True
        assert doc["n_experiments"] == 49
        assert doc["n_metrics"] == 164

    def test_missing_refs_are_bad_requests(self, service):
        _handle, client = service
        reply = client.get("/ledger/diff?a=0")
        assert reply.status == 400
        assert reply.json()["error"]["kind"] == "bad-request"

    def test_unknown_refs_are_bad_requests(self, service):
        _handle, client = service
        reply = client.get("/ledger/diff?a=0&b=never-recorded")
        assert reply.status == 400
        assert reply.json()["error"]["kind"] == "unknown-ref"


class TestTraceEndpoint:
    def test_traces_a_recorded_claim(self, service):
        handle, client = service
        client.get("/experiments/fig7")
        bundle = handle.service.ledger.resolve("service")["fig7"]
        metric = bundle.claims[0].metric
        reply = client.get(f"/ledger/trace?experiment_id=fig7&metric={metric}")
        assert reply.status == 200
        doc = reply.json()
        assert doc["ref"] == "service"
        assert doc["bundle_id"] == bundle.bundle_id
        assert doc["provenance"]["source"] == "service"

    def test_epoch_claims_are_traceable_without_execution(self, service):
        _handle, client = service
        reply = client.get(
            "/ledger/trace?experiment_id=ext-geo"
            f"&metric=geo_vs_single_region_saving&ref={GOLDEN_EPOCH}"
        )
        assert reply.status == 200
        assert reply.json()["provenance"]["source"] == "golden-import"

    def test_unknown_claims_are_404(self, service):
        _handle, client = service
        reply = client.get("/ledger/trace?experiment_id=fig7&metric=nope")
        assert reply.status == 404
        assert reply.json()["error"]["kind"] == "unknown-claim"

    def test_missing_params_are_bad_requests(self, service):
        _handle, client = service
        assert client.get("/ledger/trace?experiment_id=fig7").status == 400


class TestPersistentLedger:
    def test_ledger_dir_survives_the_service(self, tmp_path):
        ledger_dir = tmp_path / "led"
        with running_service(ledger_dir=str(ledger_dir)) as (_handle, client):
            assert client.get("/experiments/fig7").status == 200
        led = Ledger.open(ledger_dir)
        assert GOLDEN_EPOCH in led.epochs
        assert led.resolve("service")["fig7"].status == "ok"
