"""Scenario / what-if sweep tests (Figure 9 machinery)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.carbon.intensity import SOLAR_LIFECYCLE
from repro.core.scenario import (
    Scenario,
    evaluate_work,
    renewable_variant,
    utilization_sweep,
)
from repro.errors import UnitError

utils = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)


NAN, INF = float("nan"), float("inf")

#: (kwargs, match) — every bad knob must raise a *structured* UnitError at
#: construction instead of leaking NaN/inf into downstream footprints.
BAD_SCENARIOS = [
    ({"utilization": 0.0}, "utilization"),
    ({"utilization": -0.2}, "utilization"),
    ({"utilization": 1.5}, "utilization"),
    ({"utilization": NAN}, "utilization"),
    ({"utilization": INF}, "utilization"),
    ({"board_power_fraction": 0.0}, "board power"),
    ({"board_power_fraction": NAN}, "board power"),
    ({"infrastructure_embodied_factor": 0.5}, "infrastructure"),
    ({"infrastructure_embodied_factor": NAN}, "infrastructure"),
    ({"lifetime_years": 0.0}, "lifetime"),
    ({"lifetime_years": -3.0}, "lifetime"),
    ({"lifetime_years": NAN}, "lifetime"),
    ({"lifetime_years": INF}, "lifetime"),
    ({"pue": 0.9}, "PUE"),
    ({"pue": NAN}, "PUE"),
    ({"pue": INF}, "PUE"),
    ({"devices_per_server": 0}, "devices_per_server"),
]

#: Bad work quanta for evaluate_work itself.
BAD_BUSY_HOURS = [(-1.0, "non-negative"), (NAN, "finite"), (INF, "finite")]


class TestScenario:
    @pytest.mark.parametrize("kwargs,match", BAD_SCENARIOS)
    def test_validation_table(self, kwargs, match):
        with pytest.raises(UnitError, match=match):
            Scenario(**kwargs)

    @pytest.mark.parametrize("kwargs,match", BAD_SCENARIOS)
    def test_but_revalidates(self, kwargs, match):
        # dataclasses.replace re-runs __post_init__, so a valid scenario
        # cannot be mutated-by-copy into an invalid one.
        with pytest.raises(UnitError, match=match):
            Scenario().but(**kwargs)

    def test_but_creates_modified_copy(self):
        base = Scenario()
        changed = base.but(utilization=0.8)
        assert changed.utilization == 0.8
        assert base.utilization == 0.45


class TestEvaluateWork:
    def test_zero_work_zero_footprint(self):
        result = evaluate_work(0.0, Scenario())
        assert result.total.kg == 0.0

    @given(utils, utils)
    def test_total_decreases_with_utilization(self, u1, u2):
        lo, hi = sorted((u1, u2))
        if hi - lo < 1e-6:
            return
        low = evaluate_work(1000.0, Scenario(utilization=lo))
        high = evaluate_work(1000.0, Scenario(utilization=hi))
        assert high.total.kg <= low.total.kg + 1e-9

    def test_both_components_scale_inverse_utilization(self):
        a = evaluate_work(1000.0, Scenario(utilization=0.4))
        b = evaluate_work(1000.0, Scenario(utilization=0.8))
        assert math.isclose(a.operational.kg, 2 * b.operational.kg, rel_tol=1e-9)
        assert math.isclose(a.embodied.kg, 2 * b.embodied.kg, rel_tol=1e-9)

    def test_renewable_variant_reduces_operational_only(self):
        grey = evaluate_work(1000.0, Scenario())
        green = evaluate_work(1000.0, renewable_variant(Scenario()))
        assert green.operational.kg < grey.operational.kg
        assert math.isclose(green.embodied.kg, grey.embodied.kg)

    def test_renewable_uses_solar_lifecycle(self):
        scenario = renewable_variant(Scenario())
        assert scenario.intensity is SOLAR_LIFECYCLE

    def test_embodied_share_rises_with_cleanliness(self):
        grey = evaluate_work(1000.0, Scenario())
        green = evaluate_work(1000.0, renewable_variant(Scenario()))
        assert green.embodied_share > grey.embodied_share

    @pytest.mark.parametrize("busy,match", BAD_BUSY_HOURS)
    def test_bad_work_rejected(self, busy, match):
        with pytest.raises(UnitError, match=match):
            evaluate_work(busy, Scenario())

    def test_longer_lifetime_less_embodied(self):
        short = evaluate_work(1000.0, Scenario(lifetime_years=3.0))
        long = evaluate_work(1000.0, Scenario(lifetime_years=5.0))
        assert long.embodied.kg < short.embodied.kg


class TestSweep:
    def test_paper_factors(self):
        sweep = utilization_sweep(1000.0, np.array([0.3, 0.8]))
        ratio = sweep[0].total.kg / sweep[1].total.kg
        assert 2.3 < ratio < 3.2  # "~3x" from 30% -> 80%

    def test_sweep_length(self):
        sweep = utilization_sweep(10.0, np.linspace(0.2, 0.8, 7))
        assert len(sweep) == 7

    def test_renewable_gain_near_2x(self):
        grey = evaluate_work(1000.0, Scenario(utilization=0.8))
        green = evaluate_work(
            1000.0, renewable_variant(Scenario(utilization=0.8))
        )
        assert 1.5 < grey.total.kg / green.total.kg < 3.0
