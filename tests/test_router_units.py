"""Pure-logic units of the fabric router (no sockets, no subprocesses).

Covers the pieces the conformance/chaos tiers exercise only end-to-end:
``RouterConfig`` validation, the fleet metrics rollup
(:func:`~repro.service.router.merge_replica_metrics`), routing-key
derivation (canonical cache keys for parseable queries, stable raw-line
fallbacks otherwise), and the ``fabric`` CLI flags -> config mapping.
"""

import argparse

import pytest

from repro.errors import ServiceError
from repro.service import queries
from repro.service.http import Request
from repro.service.router import (
    CarbonQueryRouter,
    RouterConfig,
    add_fabric_flags,
    merge_replica_metrics,
    router_config_from_args,
)


def make_request(
    method: str = "GET",
    path: str = "/",
    params: dict | None = None,
    body: bytes = b"",
    raw_target: str = "",
) -> Request:
    return Request(
        method=method,
        path=path,
        params=params or {},
        headers={},
        body=body,
        raw_target=raw_target or path,
    )


class TestRouterConfig:
    def test_defaults_are_valid(self):
        config = RouterConfig()
        assert config.replicas >= 1
        assert config.backends == ()

    @pytest.mark.parametrize(
        "kwargs",
        (
            {"replicas": 0},
            {"vnodes": 0},
            {"health_interval_s": 0.0},
            {"eject_after": 0},
            {"proxy_timeout_s": -1.0},
            {"drain_timeout_s": -0.1},
        ),
    )
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(ServiceError):
            RouterConfig(**kwargs)

    def test_attached_mode_allows_zero_managed_replicas(self):
        config = RouterConfig(replicas=0, backends=("http://127.0.0.1:9001",))
        assert config.backends == ("http://127.0.0.1:9001",)


class TestMetricsRollup:
    def _doc(self, total: int, hits: int, misses: int, mean_s: float) -> dict:
        return {
            "service": {"workers": 2, "uptime_s": 10.0, "experiments": 45},
            "requests": {
                "total": total,
                "by_endpoint": {"/footprint": total},
                "by_status": {"200": total},
                "rejected_429": 0,
                "timeouts_504": 0,
                "server_errors_5xx": 0,
                "cache_states": {"hit": hits, "miss": misses},
                "latency_s": {
                    "/footprint": {"count": total, "mean_s": mean_s, "max_s": 2 * mean_s}
                },
            },
            "response_cache": {
                "hits": hits,
                "misses": misses,
                "evictions": 1,
                "size": misses,
                "maxsize": 256,
            },
            "batching": {"executions": misses, "coalesced": 3, "failures": 0, "in_flight": 0},
            "substrate_cache": {"per_substrate": {"grid": {"hits": hits, "misses": misses}}},
            "sweeps": {"submitted": 1, "completed": 1},
            "ledger": {"errors": 0},
        }

    def test_counters_sum_and_rates_recompute(self):
        merged = merge_replica_metrics([self._doc(10, 8, 2, 0.001), self._doc(30, 15, 15, 0.003)])
        assert merged["service"]["replicas"] == 2
        assert merged["service"]["workers"] == 4
        assert merged["requests"]["total"] == 40
        assert merged["requests"]["by_status"] == {"200": 40}
        # The rate comes from summed counters, not a mean of per-replica
        # rates: (8+15)/(10+30) — the busy replica dominates.
        assert merged["requests"]["answered_from_cache_rate"] == pytest.approx(23 / 40)
        assert merged["response_cache"]["hit_rate"] == pytest.approx(23 / 40)
        assert merged["response_cache"]["maxsize"] == 512
        assert merged["batching"]["coalesced"] == 6
        assert merged["sweeps"] == {"completed": 2, "submitted": 2}

    def test_latency_mean_is_count_weighted_and_percentiles_drop(self):
        merged = merge_replica_metrics([self._doc(10, 0, 10, 0.001), self._doc(30, 0, 30, 0.003)])
        latency = merged["requests"]["latency_s"]["/footprint"]
        assert latency["count"] == 40
        assert latency["mean_s"] == pytest.approx((10 * 0.001 + 30 * 0.003) / 40)
        assert latency["max_s"] == pytest.approx(0.006)
        assert "p99_s" not in latency

    def test_empty_fleet_merges_to_zeroes(self):
        merged = merge_replica_metrics([])
        assert merged["service"]["replicas"] == 0
        assert merged["requests"]["total"] == 0
        assert merged["requests"]["answered_from_cache_rate"] is None
        assert merged["response_cache"]["hit_rate"] is None


@pytest.fixture()
def router() -> CarbonQueryRouter:
    return CarbonQueryRouter(
        RouterConfig(port=0, replicas=0, backends=("http://127.0.0.1:9001",))
    )


class TestRoutingKey:
    def test_experiment_requests_key_on_canonical_cache_key(self, router):
        endpoint, key = router.routing_key(make_request(path="/experiments/fig7"))
        assert endpoint == "/experiments/{id}"
        expected = queries.parse_query("experiment", {"experiment_id": "fig7"})
        assert key == expected.cache_key()

    def test_get_and_post_schedule_share_a_key(self, router):
        get = router.routing_key(
            make_request(
                path="/schedule/carbon-aware",
                params={"n_jobs": "25", "grid_seed": "1"},
            )
        )
        post = router.routing_key(
            make_request(
                method="POST",
                path="/schedule/carbon-aware",
                body=b'{"n_jobs": 25, "grid_seed": 1}',
            )
        )
        assert get == post
        assert get[0] == "/schedule/carbon-aware"

    def test_equivalent_footprint_spellings_collapse(self, router):
        a = router.routing_key(
            make_request(path="/footprint", params={"busy_device_hours": "1000"})
        )
        b = router.routing_key(
            make_request(path="/footprint", params={"busy_device_hours": "1000.0"})
        )
        assert a == b

    def test_malformed_query_falls_back_to_raw_line(self, router):
        endpoint, key = router.routing_key(
            make_request(
                path="/footprint",
                params={"busy_device_hours": "not-a-number"},
                raw_target="/footprint?busy_device_hours=not-a-number",
            )
        )
        assert endpoint == "/footprint"
        assert key == "GET /footprint?busy_device_hours=not-a-number"

    def test_unknown_paths_route_stably(self, router):
        first = router.routing_key(make_request(path="/nope", raw_target="/nope?x=1"))
        second = router.routing_key(make_request(path="/nope", raw_target="/nope?x=1"))
        assert first == second == ("(proxy)", "GET /nope?x=1")

    def test_ledger_paths_group_under_one_endpoint_label(self, router):
        endpoint, _key = router.routing_key(make_request(path="/ledger/diff"))
        assert endpoint == "/ledger"

    def test_stream_cursors_share_the_spec_key(self, router):
        # Every poll of one stream must pin to one replica — the one
        # holding the live frontier state — so the ring key strips the
        # transport params (cursor/wait_s/max_ticks) before parsing.
        first = router.routing_key(
            make_request(
                path="/stream",
                params={"hours": "48", "grid_seed": "1", "cursor": "0", "wait_s": "0"},
            )
        )
        later = router.routing_key(
            make_request(
                path="/stream",
                params={
                    "hours": "48",
                    "grid_seed": "1",
                    "cursor": "40",
                    "wait_s": "5",
                    "max_ticks": "8",
                },
            )
        )
        assert first == later
        assert first[0] == "/stream"
        expected = queries.parse_query("stream", {"hours": "48", "grid_seed": "1"})
        assert first[1] == expected.cache_key()

    def test_distinct_stream_specs_key_apart(self, router):
        a = router.routing_key(
            make_request(path="/stream", params={"hours": "48", "grid_seed": "1"})
        )
        b = router.routing_key(
            make_request(path="/stream", params={"hours": "48", "grid_seed": "2"})
        )
        assert a != b

    def test_malformed_stream_query_falls_back_to_raw_line(self, router):
        endpoint, key = router.routing_key(
            make_request(
                path="/stream",
                params={"hours": "not-a-number"},
                raw_target="/stream?hours=not-a-number",
            )
        )
        assert endpoint == "/stream"
        assert key == "GET /stream?hours=not-a-number"


class TestFabricFlags:
    def _parse(self, argv: list[str]):
        parser = argparse.ArgumentParser()
        add_fabric_flags(parser)
        return parser.parse_args(argv)

    def test_defaults_round_trip(self):
        config = router_config_from_args(self._parse([]))
        assert config == RouterConfig()

    def test_workers_and_lru_map_into_replica_args(self):
        config = router_config_from_args(
            self._parse(["--workers", "0", "--lru-size", "64", "--replica-arg=--batch-window=0"])
        )
        assert config.replica_args == (
            "--workers",
            "0",
            "--lru-size",
            "64",
            "--batch-window=0",
        )

    def test_backends_and_drain_knobs(self):
        config = router_config_from_args(
            self._parse(
                [
                    "--backend",
                    "http://127.0.0.1:9001",
                    "--backend",
                    "http://127.0.0.1:9002",
                    "--proxy-timeout",
                    "0",
                    "--no-restart",
                ]
            )
        )
        assert config.backends == ("http://127.0.0.1:9001", "http://127.0.0.1:9002")
        assert config.proxy_timeout_s is None
        assert config.restart_replicas is False

    def test_ledger_gc_and_stream_knobs_pass_through_to_replicas(self):
        config = router_config_from_args(
            self._parse(
                [
                    "--ledger-gc-interval",
                    "30",
                    "--max-streams",
                    "8",
                    "--stream-tick-hz",
                    "16",
                ]
            )
        )
        assert config.replica_args == (
            "--ledger-gc-interval",
            "30.0",
            "--max-streams",
            "8",
            "--stream-tick-hz",
            "16.0",
        )
