"""Cluster scheduler invariants (incl. hypothesis stream generation)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.fleet.scheduler import schedule_fifo
from repro.lifecycle.jobs import EXPERIMENTATION_JOBS
from repro.workloads.traces import ExperimentStream, experiment_arrivals


def make_stream(seed: int = 0, jobs_per_day: float = 30.0) -> ExperimentStream:
    return experiment_arrivals(EXPERIMENTATION_JOBS, jobs_per_day, days=5, seed=seed)


class TestScheduleFIFO:
    def test_all_jobs_eventually_run(self):
        stream = make_stream()
        schedule = schedule_fifo(stream, total_gpus=256, horizon_hours=2000)
        assert len(schedule.records) == len(stream)

    def test_no_job_starts_before_submission(self):
        schedule = schedule_fifo(make_stream(), 256, horizon_hours=2000)
        for record in schedule.records:
            assert record.start_hour >= record.submit_hour

    def test_busy_gpus_never_exceed_capacity(self):
        schedule = schedule_fifo(make_stream(), 128, horizon_hours=3000)
        assert np.all(schedule.busy_gpus <= 128)
        assert np.all(schedule.busy_gpus >= 0)

    def test_oversized_job_rejected(self):
        stream = ExperimentStream(
            start_hours=np.array([0.0]),
            duration_hours=np.array([1.0]),
            n_gpus=np.array([999]),
        )
        with pytest.raises(SchedulingError):
            schedule_fifo(stream, total_gpus=8)

    def test_smaller_cluster_longer_waits(self):
        stream = make_stream(jobs_per_day=60.0)
        small = schedule_fifo(stream, 64, horizon_hours=4000)
        large = schedule_fifo(stream, 1024, horizon_hours=4000)
        assert small.mean_wait_hours >= large.mean_wait_hours

    def test_utilization_series_in_unit_interval(self):
        schedule = schedule_fifo(make_stream(), 256, horizon_hours=2000)
        series = schedule.utilization_series()
        assert np.all((series >= 0) & (series <= 1))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_capacity_invariant_random_streams(self, seed):
        stream = make_stream(seed=seed, jobs_per_day=20.0)
        if len(stream) == 0:
            return
        schedule = schedule_fifo(stream, 96, horizon_hours=2500)
        assert np.all(schedule.busy_gpus <= 96)
        assert len(schedule.records) == len(stream)

    def test_backfill_at_least_as_good(self):
        stream = make_stream(jobs_per_day=50.0)
        with_bf = schedule_fifo(stream, 64, horizon_hours=4000, backfill=True)
        without = schedule_fifo(stream, 64, horizon_hours=4000, backfill=False)
        assert with_bf.mean_wait_hours <= without.mean_wait_hours + 1e-9

    def test_gpu_hour_conservation(self):
        # Total busy GPU-hours equals the sum of scheduled job demands
        # (within the hourly discretization).
        stream = make_stream(jobs_per_day=10.0)
        schedule = schedule_fifo(stream, 512, horizon_hours=4000)
        scheduled = sum(r.n_gpus * r.duration_hours for r in schedule.records)
        busy = float(np.sum(schedule.busy_gpus))
        assert busy == pytest.approx(scheduled, rel=0.1)
