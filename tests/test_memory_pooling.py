"""Memory-pooling (rack disaggregation) tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnitError
from repro.fleet.memory_pooling import (
    MemoryDemandModel,
    pooling_scaling_curve,
    pooling_study,
)


class TestDemandModel:
    def test_sample_shape_and_positivity(self):
        demand = MemoryDemandModel(n_servers=8).sample(hours=100, seed=0)
        assert demand.shape == (100, 8)
        assert np.all(demand > 0)

    def test_bursts_raise_peaks(self):
        calm = MemoryDemandModel(n_servers=8, burst_probability=0.0)
        bursty = MemoryDemandModel(n_servers=8, burst_probability=0.2)
        assert bursty.sample(500, seed=1).max() > calm.sample(500, seed=1).max()

    def test_deterministic_per_seed(self):
        model = MemoryDemandModel()
        np.testing.assert_array_equal(model.sample(50, seed=2), model.sample(50, seed=2))

    def test_validation(self):
        with pytest.raises(UnitError):
            MemoryDemandModel(n_servers=0)
        with pytest.raises(UnitError):
            MemoryDemandModel(burst_probability=1.5)


class TestPoolingStudy:
    def test_pooling_never_needs_more_than_dedicated(self):
        result = pooling_study(seed=0)
        assert result.pooled_gb <= result.dedicated_gb
        assert 0.0 <= result.dram_saving_fraction < 1.0

    def test_meaningful_saving_at_rack_scale(self):
        result = pooling_study(seed=0)
        assert result.dram_saving_fraction > 0.3
        assert result.embodied_avoided.kg > 0

    def test_stranded_fraction_substantial(self):
        result = pooling_study(seed=0)
        assert result.stranded_fraction_dedicated > 0.3

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100))
    def test_invariants_across_seeds(self, seed):
        result = pooling_study(hours=300, seed=seed)
        assert result.pooled_gb <= result.dedicated_gb + 1e-9
        assert 0.0 <= result.stranded_fraction_dedicated < 1.0

    def test_saving_grows_with_rack_size(self):
        curve = pooling_scaling_curve(rack_sizes=(4, 64), seed=0)
        assert curve[1][1] > curve[0][1]

    def test_no_bursts_little_saving(self):
        # Without bursts, peaks and means coincide (modulo noise), so
        # pooling saves much less.
        calm = pooling_study(
            MemoryDemandModel(burst_probability=0.0, noise_gb=2.0), seed=0
        )
        bursty = pooling_study(seed=0)
        assert calm.dram_saving_fraction < bursty.dram_saving_fraction

    def test_headroom_validation(self):
        with pytest.raises(UnitError):
            pooling_study(headroom=0.9)
