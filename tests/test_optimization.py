"""Optimization ladder, Pareto tooling, early stopping, NAS tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.quantities import Energy, Power
from repro.errors import UnitError
from repro.optimization.earlystop import (
    EarlyStopPolicy,
    LearningCurveModel,
    run_early_stopping,
    sweep_tolerance,
)
from repro.optimization.ladder import (
    LM_LADDER,
    LM_LADDER_MINIMUM_GAIN,
    OptimizationLadder,
    OptimizationStep,
)
from repro.optimization.nas import (
    bayesian_search,
    default_response_surface,
    grid_search_cost,
    random_search,
    sample_efficiency_gain,
    trials_to_reach,
)
from repro.optimization.pareto import (
    Candidate,
    hypervolume_2d,
    knee_point,
    pareto_front,
    scalarize,
)


class TestLadder:
    def test_paper_total_exceeds_800x(self):
        assert LM_LADDER.total_gain > LM_LADDER_MINIMUM_GAIN
        assert LM_LADDER.total_gain == pytest.approx(812.04, rel=1e-6)

    def test_cumulative_monotone(self):
        gains = [g for _, g in LM_LADDER.cumulative_gains()]
        assert all(a < b for a, b in zip(gains, gains[1:]))

    def test_footprint_series_descends(self):
        series = LM_LADDER.footprint_series(Power.from_mw(10.0))
        watts = [p.watts for _, p in series]
        assert all(a > b for a, b in zip(watts, watts[1:]))
        assert watts[0] / watts[-1] == pytest.approx(LM_LADDER.total_gain)

    def test_energy_saved(self):
        saved = LM_LADDER.energy_saved(Energy(812.04))
        assert saved.kwh == pytest.approx(811.04, rel=1e-3)

    def test_empty_ladder_rejected(self):
        with pytest.raises(UnitError):
            OptimizationLadder(())

    def test_nonpositive_gain_rejected(self):
        with pytest.raises(UnitError):
            OptimizationStep("bad", 0.0)


CANDS = [
    Candidate("cheap-bad", {"energy": 1.0, "error": 0.5}),
    Candidate("mid", {"energy": 2.0, "error": 0.3}),
    Candidate("pricey-good", {"energy": 5.0, "error": 0.1}),
    Candidate("dominated", {"energy": 6.0, "error": 0.4}),
]


class TestPareto:
    def test_front_excludes_dominated(self):
        front = pareto_front(CANDS, ("energy", "error"))
        names = {c.name for c in front}
        assert names == {"cheap-bad", "mid", "pricey-good"}

    def test_scalarize_weights(self):
        best_energy = scalarize(CANDS, {"energy": 1.0, "error": 0.0})
        assert best_energy.name == "cheap-bad"
        best_error = scalarize(CANDS, {"energy": 0.0, "error": 1.0})
        assert best_error.name == "pricey-good"

    def test_knee_point_on_front(self):
        knee = knee_point(CANDS, ("energy", "error"))
        assert knee.name in {"cheap-bad", "mid", "pricey-good"}

    def test_hypervolume_monotone_in_points(self):
        ref = (10.0, 1.0)
        small = hypervolume_2d(np.array([[5.0, 0.5]]), ref)
        more = hypervolume_2d(np.array([[5.0, 0.5], [2.0, 0.8]]), ref)
        assert more > small

    def test_hypervolume_ignores_beyond_reference(self):
        ref = (1.0, 1.0)
        assert hypervolume_2d(np.array([[2.0, 2.0]]), ref) == 0.0

    def test_missing_objective_rejected(self):
        with pytest.raises(UnitError):
            pareto_front(CANDS, ("energy", "latency"))

    @settings(max_examples=20)
    @given(st.integers(0, 10_000))
    def test_front_members_not_dominated(self, seed):
        rng = np.random.default_rng(seed)
        cands = [
            Candidate(f"c{i}", {"a": float(a), "b": float(b)})
            for i, (a, b) in enumerate(rng.uniform(0, 1, (20, 2)))
        ]
        front = pareto_front(cands, ("a", "b"))
        assert front
        for member in front:
            for other in cands:
                dominates = (
                    other.objectives["a"] <= member.objectives["a"]
                    and other.objectives["b"] <= member.objectives["b"]
                    and (
                        other.objectives["a"] < member.objectives["a"]
                        or other.objectives["b"] < member.objectives["b"]
                    )
                )
                assert not dominates


class TestEarlyStop:
    def test_saves_compute_without_regret_at_default(self):
        result = run_early_stopping()
        assert result.compute_saving_fraction > 0.3
        assert result.regret <= 0.05

    def test_tighter_tolerance_saves_more(self):
        model = LearningCurveModel(seed=1)
        sweep = sweep_tolerance(np.array([0.05, 0.4]), model)
        assert sweep[0][1] >= sweep[1][1]

    def test_zero_tolerance_keeps_only_leader(self):
        result = run_early_stopping(policy=EarlyStopPolicy(tolerance=0.0))
        assert result.compute_saving_fraction > 0.5

    def test_policy_validation(self):
        with pytest.raises(UnitError):
            EarlyStopPolicy(check_interval=0)
        with pytest.raises(UnitError):
            EarlyStopPolicy(tolerance=-0.1)

    def test_curves_shape(self):
        curves = LearningCurveModel(n_workflows=8, total_steps=100).curves()
        assert curves.shape == (8, 100)


class TestNAS:
    def test_grid_explodes(self):
        assert grid_search_cost(10, 4).trials == 10_000

    def test_grid_overhead(self):
        assert grid_search_cost(8, 4).overhead_vs(1.0) == 4096.0

    def test_random_search_improves_monotonically(self):
        outcome = random_search(default_response_surface, 3, 50, seed=0)
        assert np.all(np.diff(outcome.history) <= 0)

    def test_bayesian_beats_random_on_median(self):
        gains = sample_efficiency_gain(n_trials=200, n_seeds=3)
        assert gains["efficiency_gain"] > 1.5

    def test_trials_to_reach(self):
        outcome = random_search(default_response_surface, 2, 50, seed=1)
        threshold = outcome.history[-1]
        hit = trials_to_reach(outcome, threshold)
        assert hit is not None and 1 <= hit <= 50

    def test_trials_to_reach_never(self):
        outcome = random_search(default_response_surface, 2, 10, seed=1)
        assert trials_to_reach(outcome, -100.0) is None

    def test_bayesian_needs_trials(self):
        with pytest.raises(UnitError):
            bayesian_search(default_response_surface, 2, n_trials=4, n_init=8)
