"""Device catalog and power model tests."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.energy.devices import (
    A100,
    CLIENT_DEVICE,
    DeviceClass,
    DeviceSpec,
    P100,
    V100,
    WIRELESS_ROUTER,
    catalog,
    device,
    gpu_memory_growth_ratio,
)
from repro.energy.power_model import PowerModel
from repro.errors import UnitError

utilizations = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestCatalog:
    def test_lookup_roundtrip(self):
        for name in catalog():
            assert device(name).name == name

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="NVIDIA V100"):
            device("GTX 9090")

    def test_paper_edge_powers(self):
        # Appendix B methodology: 3 W device, 7.5 W router.
        assert CLIENT_DEVICE.tdp_watts == 3.0
        assert WIRELESS_ROUTER.tdp_watts == 7.5

    def test_memory_growth_under_2x_per_2_years(self):
        # V100 (2018, 32 GB) -> A100 (2021, 80 GB): 2.5x over 3 years
        # means <2x per 2 years, the paper's point.
        ratio = gpu_memory_growth_ratio(V100, A100)
        per_2yr = ratio ** (2.0 / (A100.release_year - V100.release_year))
        assert per_2yr < 2.0

    def test_spec_validation(self):
        with pytest.raises(UnitError):
            DeviceSpec("bad", DeviceClass.GPU, 0.0, 0.1)
        with pytest.raises(UnitError):
            DeviceSpec("bad", DeviceClass.GPU, 100.0, 1.5)


class TestPowerModel:
    def test_idle_and_peak(self):
        model = PowerModel(V100)
        assert model.power_at(0.0).watts == pytest.approx(V100.tdp_watts * 0.15)
        assert model.power_at(1.0).watts == pytest.approx(V100.tdp_watts)

    @given(utilizations, utilizations)
    def test_monotone_in_utilization(self, u1, u2):
        model = PowerModel(V100)
        lo, hi = sorted((u1, u2))
        assert model.power_at(lo).watts <= model.power_at(hi).watts + 1e-12

    def test_rejects_out_of_range(self):
        with pytest.raises(UnitError):
            PowerModel(V100).power_at(1.5)

    def test_series_matches_scalar(self):
        model = PowerModel(P100)
        us = np.linspace(0, 1, 11)
        series = model.power_series(us)
        for u, w in zip(us, series):
            assert math.isclose(w, model.power_at(float(u)).watts)

    def test_series_validates(self):
        with pytest.raises(UnitError):
            PowerModel(P100).power_series(np.array([1.2]))

    @given(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
    def test_energy_per_work_decreases_with_utilization(self, u):
        # The core utilization argument: static power amortizes.
        model = PowerModel(V100)
        assert model.energy_per_unit_work(u) <= model.energy_per_unit_work(u / 2)

    def test_energy_per_work_infinite_at_zero(self):
        assert PowerModel(V100).energy_per_unit_work(0.0) == float("inf")

    def test_energy_for(self):
        model = PowerModel(V100)
        assert model.energy_for(1.0, 10.0).kwh == pytest.approx(3.0)

    def test_alpha_validation(self):
        with pytest.raises(UnitError):
            PowerModel(V100, alpha=0.0)
