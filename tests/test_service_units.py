"""Unit tests for the carbon-query service building blocks.

Covers the pieces below the HTTP surface: query parsing/normalization
(:mod:`repro.service.queries`), the bounded response LRU, the service
telemetry counters, and the regression pinning the ``/metrics``
substrate-cache block against direct :mod:`repro.core.memo` accounting
(the worker ``stats_delta`` ride-back).
"""

from __future__ import annotations

import json

import pytest

from repro.core import memo
from repro.errors import QueryError, TelemetryError
from repro.service import (
    ExperimentQuery,
    FootprintQuery,
    ResponseCache,
    ScheduleQuery,
    execute_query_task,
    parse_query,
    payload_to_result,
    render_payload,
)
from repro.telemetry.counters import LatencyReservoir, ServiceCounters
from tests.serviceutil import running_service


class TestQueryParsing:
    def test_experiment_query_round_trip(self):
        query = parse_query("experiment", {"experiment_id": "fig7"})
        assert isinstance(query, ExperimentQuery)
        assert query.fault_target() == "fig7"
        assert query.cache_key() == 'experiment?{"experiment_id":"fig7"}'

    def test_unknown_experiment_rejected_with_hint(self):
        with pytest.raises(QueryError, match="GET /experiments"):
            parse_query("experiment", {"experiment_id": "fig999"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError, match="unknown query kind"):
            parse_query("teleportation", {})

    def test_footprint_string_and_number_forms_share_a_key(self):
        """GET delivers strings, POST numbers; both normalize identically."""
        via_strings = parse_query(
            "footprint", {"busy_device_hours": "1000", "pue": "1.5"}
        )
        via_numbers = parse_query("footprint", {"busy_device_hours": 1000, "pue": 1.5})
        assert isinstance(via_strings, FootprintQuery)
        assert via_strings.cache_key() == via_numbers.cache_key()

    def test_footprint_defaults_mirror_scenario_defaults(self):
        query = parse_query("footprint", {"busy_device_hours": 1})
        assert query.utilization == 0.45
        assert query.pue == 1.10
        assert query.lifetime_years == 4.0
        assert query.devices_per_server == 2
        assert query.intensity_label == "us-average"

    @pytest.mark.parametrize(
        "params",
        [
            {},  # busy_device_hours is required
            {"busy_device_hours": "ten"},
            {"busy_device_hours": float("inf")},
            {"busy_device_hours": True},  # booleans are not numbers
            {"busy_device_hours": 1, "utilization": 0},
            {"busy_device_hours": 1, "pue": 0.5},
            {"busy_device_hours": 1, "devices_per_server": 2.5},
            {"busy_device_hours": 1, "region": "narnia"},
            {"busy_device_hours": 1, "region": "us-average", "intensity_kg_per_kwh": 0.1},
            {"busy_device_hours": 1, "typo_knob": 2},
        ],
    )
    def test_footprint_rejects_bad_parameters(self, params):
        with pytest.raises(QueryError):
            parse_query("footprint", params)

    def test_schedule_horizon_must_fit_grid(self):
        with pytest.raises(QueryError, match="must not exceed 'grid_hours'"):
            parse_query("schedule", {"horizon_hours": 169, "grid_hours": 168})

    def test_schedule_defaults_and_key_stability(self):
        query = parse_query("schedule", {})
        assert isinstance(query, ScheduleQuery)
        assert query.n_jobs == 60
        assert query.capacity_kw is None
        # The key is a pure function of the normalized parameters.
        assert query.cache_key() == parse_query("schedule", {"n_jobs": "60"}).cache_key()

    def test_render_payload_is_canonical(self):
        body = render_payload({"b": 1, "a": {"z": 2, "y": 3}})
        assert body == b'{\n  "a": {\n    "y": 3,\n    "z": 2\n  },\n  "b": 1\n}\n'


class TestExecuteQueryTask:
    def test_ships_payload_and_stats_delta(self):
        params = json.dumps({"n_jobs": 6, "grid_seed": 87650})
        outcome = execute_query_task("schedule", params, in_worker=False)
        assert "headline" in outcome["payload"]
        # A cold grid seed means at least one substrate miss rode back.
        assert memo.totals(outcome["stats_delta"])["misses"] >= 1

    def test_payload_to_result_bridges_all_payload_shapes(self, all_results):
        direct = all_results["fig7"]
        assert payload_to_result(direct.to_payload()).headline == direct.headline
        footprint = parse_query("footprint", {"busy_device_hours": 10}).execute()
        bridged = payload_to_result(footprint)
        assert bridged.experiment_id == "service-footprint"
        assert bridged.headline == footprint["headline"]


class TestResponseCache:
    def test_lru_eviction_order_and_counters(self):
        cache = ResponseCache(maxsize=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        assert cache.get("a") == b"1"  # refreshes a's recency
        cache.put("c", b"3")  # evicts b, the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == b"1"
        assert cache.get("c") == b"3"
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 3
        assert stats["misses"] == 1
        assert stats["size"] == 2
        assert stats["hit_rate"] == pytest.approx(0.75)

    def test_zero_size_disables_caching(self):
        cache = ResponseCache(maxsize=0)
        cache.put("a", b"1")
        assert cache.get("a") is None
        assert len(cache) == 0


class TestLatencyReservoir:
    def test_percentiles_nearest_rank(self):
        reservoir = LatencyReservoir(capacity=100)
        for ms in range(1, 101):  # 0.001 .. 0.100
            reservoir.observe(ms / 1000)
        snap = reservoir.snapshot()
        assert snap["count"] == 100
        assert snap["p50_s"] == pytest.approx(0.050)
        assert snap["p90_s"] == pytest.approx(0.090)
        assert snap["p99_s"] == pytest.approx(0.099)
        assert snap["max_s"] == pytest.approx(0.100)

    def test_sliding_window_keeps_lifetime_count(self):
        reservoir = LatencyReservoir(capacity=4)
        for _ in range(10):
            reservoir.observe(0.5)
        reservoir.observe(0.1)
        snap = reservoir.snapshot()
        assert snap["count"] == 11
        assert snap["p50_s"] == pytest.approx(0.5)  # window holds 3x0.5 + 0.1

    def test_rejects_negative_latency(self):
        with pytest.raises(TelemetryError):
            LatencyReservoir().observe(-0.001)
        with pytest.raises(TelemetryError):
            LatencyReservoir(capacity=0)


class TestServiceCounters:
    def test_snapshot_aggregates_by_endpoint_and_status(self):
        counters = ServiceCounters()
        counters.record("/footprint", 200, 0.01, cache_state="miss")
        counters.record("/footprint", 200, 0.002, cache_state="hit")
        counters.record("/footprint", 429, 0.0001)
        counters.record("/metrics", 200, 0.001)
        counters.record("/footprint", 504, 0.3)
        snap = counters.snapshot()
        assert snap["total"] == 5
        assert snap["by_endpoint"] == {"/footprint": 4, "/metrics": 1}
        assert snap["by_status"] == {"200": 3, "429": 1, "504": 1}
        assert snap["rejected_429"] == 1
        assert snap["timeouts_504"] == 1
        assert snap["server_errors_5xx"] == 1
        assert snap["answered_from_cache_rate"] == pytest.approx(0.5)
        assert snap["latency_s"]["/footprint"]["count"] == 4


class TestLoadgen:
    def test_mix_is_deterministic_and_valid(self):
        from repro.experiments.registry import experiment_ids
        from repro.service.loadgen import DEFAULT_EXPERIMENTS, build_mix

        assert build_mix(7) == build_mix(7)
        assert build_mix(7) != build_mix(8)
        assert set(DEFAULT_EXPERIMENTS) <= set(experiment_ids())

    def test_run_load_reports_and_gates(self, capsys):
        from repro.service.loadgen import run_load

        with running_service(workers=0, lru_size=128) as (handle, _client):
            report = run_load(
                handle.service.config.host,
                handle.port,
                clients=2,
                duration_s=30.0,
                requests_per_client=5,
                seed=1,
            )
        assert report.requests == 10
        assert report.errors_5xx == 0
        assert report.transport_errors == 0
        assert report.by_status == {"200": 10}
        assert report.latency_s["count"] == 10
        assert report.server_metrics is not None
        rendered = report.render()
        assert "10 requests from 2 client(s)" in rendered
        assert "p99" in rendered

    def test_main_gates_on_p99_bound(self, tmp_path, capsys):
        """An absurd p99 bound turns the report into a failing gate."""
        from repro.service.loadgen import main

        with running_service(workers=0, lru_size=128) as (handle, _client):
            url = f"http://{handle.service.config.host}:{handle.port}"
            report_path = tmp_path / "load.json"
            status = main(
                [
                    "--url",
                    url,
                    "--clients",
                    "1",
                    "--duration",
                    "5",
                    "--requests",
                    "4",
                    "--fail-on-5xx",
                    "--max-p99",
                    "0.0",
                    "--json",
                    str(report_path),
                ]
            )
        assert status == 1
        captured = capsys.readouterr()
        assert "exceeds bound" in captured.err
        written = json.loads(report_path.read_text())
        assert written["requests"] == 4
        assert written["errors_5xx"] == 0


class TestMetricsStatsRideBack:
    """Regression: worker substrate stats merge into ``/metrics`` exactly.

    The worker task ships ``memo.stats_delta`` back to the service
    process; the ``/metrics`` ``substrate_cache`` block must equal the
    delta a direct in-process run of the same queries measures — the
    service adds no phantom traffic and loses none.
    """

    QUERIES = [{"n_jobs": 7, "grid_seed": 90000 + i} for i in range(3)]

    def _direct_delta(self):
        before = memo.stats_snapshot()
        for spec in self.QUERIES:
            # Distinct seed namespace, same shape of work as the service side.
            parse_query("schedule", {**spec, "grid_seed": spec["grid_seed"] + 500}).execute()
        return memo.stats_delta(before, memo.stats_snapshot())

    def test_metrics_substrate_block_matches_direct_accounting(self):
        direct_delta = self._direct_delta()
        with running_service(workers=1, lru_size=16) as (_handle, client):
            for spec in self.QUERIES:
                query_string = "&".join(f"{k}={v}" for k, v in spec.items())
                assert client.get(f"/schedule/carbon-aware?{query_string}").status == 200
            served = client.get("/metrics").json()["substrate_cache"]
            # Repeats are served by the LRU: substrate traffic must not move.
            for spec in self.QUERIES:
                query_string = "&".join(f"{k}={v}" for k, v in spec.items())
                assert client.get(f"/schedule/carbon-aware?{query_string}").status == 200
            after_repeats = client.get("/metrics").json()["substrate_cache"]

        assert served["totals"] == memo.totals(direct_delta)
        assert served["per_substrate"] == {
            name: dict(row) for name, row in sorted(direct_delta.items())
        }
        assert after_repeats == served
        assert served["totals"]["misses"] >= len(self.QUERIES)
