"""DLRM cost model and quantization tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnitError
from repro.models.dlrm import DLRMSpec, EmbeddingTableSpec, make_dlrm
from repro.models.quantization import (
    QuantizationScheme,
    RM2_SCHEME,
    apply_quantization,
    latency_gain_on_small_memory_device,
)


class TestEmbeddingTable:
    def test_sizes(self):
        t = EmbeddingTableSpec(rows=1000, dim=64)
        assert t.n_params == 64_000
        assert t.size_bytes == 256_000.0

    def test_bytes_per_sample(self):
        t = EmbeddingTableSpec(rows=1000, dim=64, lookups_per_sample=3)
        assert t.bytes_read_per_sample == 3 * 64 * 4.0

    def test_validation(self):
        with pytest.raises(UnitError):
            EmbeddingTableSpec(rows=0, dim=64)


class TestDLRMSpec:
    def test_embedding_dominates_size(self):
        # Paper: embeddings can exceed 95% of model bytes.
        model = make_dlrm("RM")
        assert model.embedding_size_share > 0.95

    def test_param_accounting_consistent(self):
        model = make_dlrm("RM", n_tables=4, rows_per_table=1000)
        assert model.n_params == model.embedding_params + model.mlp_params

    def test_inference_roofline_memory_bound(self):
        model = make_dlrm("RM")
        # Huge compute, tiny bandwidth: memory path dominates.
        slow_mem = model.inference_time_s(1e15, 1e9)
        fast_mem = model.inference_time_s(1e15, 1e12)
        assert slow_mem > fast_mem

    def test_batch_scales_latency(self):
        model = make_dlrm("RM", n_tables=4, rows_per_table=1000)
        assert model.inference_time_s(1e12, 1e10, batch_size=8) == pytest.approx(
            8 * model.inference_time_s(1e12, 1e10, batch_size=1)
        )

    def test_fits_in_memory(self):
        model = make_dlrm("RM", n_tables=2, rows_per_table=1000, dim=8)
        assert model.fits_in_memory(1e9)
        assert not model.fits_in_memory(1e3)

    def test_scaled_embeddings(self):
        model = make_dlrm("RM", n_tables=2, rows_per_table=1000)
        bigger = model.scaled_embeddings(row_factor=2.0)
        assert bigger.embedding_params == pytest.approx(
            2 * model.embedding_params, rel=0.01
        )

    def test_needs_tables(self):
        with pytest.raises(UnitError):
            DLRMSpec(name="x", tables=(), bottom_mlp=(1, 2), top_mlp=(2, 1))


class TestQuantization:
    def test_rm2_paper_numbers(self):
        impact = apply_quantization(make_dlrm("RM2"), RM2_SCHEME)
        assert impact.size_reduction == pytest.approx(0.15, abs=0.01)
        assert impact.bandwidth_reduction == pytest.approx(0.207, abs=0.01)

    def test_full_fp16_halves_size(self):
        scheme = QuantizationScheme(embedding_fraction=1.0, mlp_fraction=1.0)
        impact = apply_quantization(make_dlrm("RM"), scheme)
        assert impact.size_reduction == pytest.approx(0.5, abs=0.01)

    def test_rm1_latency_gain_paper(self):
        rm1 = make_dlrm("RM1", n_tables=30, rows_per_table=2_000_000)
        gain = latency_gain_on_small_memory_device(
            rm1, QuantizationScheme(embedding_fraction=1.0, mlp_fraction=1.0)
        )
        assert gain == pytest.approx(2.5, rel=0.1)

    @settings(max_examples=25)
    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_more_quantization_more_reduction(self, fraction):
        model = make_dlrm("RM", n_tables=4, rows_per_table=10_000)
        partial = apply_quantization(
            model, QuantizationScheme(embedding_fraction=fraction, hotness_skew=1.0)
        )
        full = apply_quantization(
            model, QuantizationScheme(embedding_fraction=1.0, hotness_skew=1.0)
        )
        assert partial.size_reduction <= full.size_reduction + 1e-12

    def test_cannot_increase_precision(self):
        with pytest.raises(UnitError):
            QuantizationScheme(from_bits=16, to_bits=32)

    def test_bandwidth_amplified_by_hotness(self):
        model = make_dlrm("RM", n_tables=4, rows_per_table=10_000)
        cold = apply_quantization(
            model, QuantizationScheme(embedding_fraction=0.3, hotness_skew=1.0)
        )
        hot = apply_quantization(
            model, QuantizationScheme(embedding_fraction=0.3, hotness_skew=1.5)
        )
        assert hot.bandwidth_reduction > cold.bandwidth_reduction

    def test_quantized_model_still_usable(self):
        impact = apply_quantization(make_dlrm("RM"), RM2_SCHEME)
        assert impact.quantized.inference_time_s(1e12, 1e10) > 0
