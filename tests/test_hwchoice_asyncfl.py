"""Hardware-choice and async-FL tests."""

import pytest

from repro.carbon.intensity import CARBON_FREE
from repro.core.quantities import Carbon
from repro.edge.async_fl import run_async, run_sync, sync_vs_async
from repro.edge.selection import synthesize_population
from repro.errors import UnitError
from repro.fleet.hardware_choice import (
    ALL_PLATFORMS,
    ASIC_PLATFORM,
    CPU_PLATFORM,
    GPU_PLATFORM,
    PlatformChoice,
    break_even_lifetime,
    carbon_per_exawork,
    effective_efficiency,
    platform_ranking,
)


class TestEffectiveEfficiency:
    def test_cpu_never_degrades(self):
        assert effective_efficiency(CPU_PLATFORM, 10.0) == pytest.approx(1.0)

    def test_asic_advantage_decays(self):
        fresh = effective_efficiency(ASIC_PLATFORM, 0.0)
        aged = effective_efficiency(ASIC_PLATFORM, 6.0)
        assert fresh == pytest.approx(ASIC_PLATFORM.relative_efficiency)
        assert aged < fresh
        assert aged > 1.0  # never falls below the CPU baseline

    def test_slower_churn_preserves_advantage(self):
        fast = effective_efficiency(ASIC_PLATFORM, 6.0, algorithm_cadence_years=1.0)
        slow = effective_efficiency(ASIC_PLATFORM, 6.0, algorithm_cadence_years=4.0)
        assert slow > fast

    def test_validation(self):
        with pytest.raises(UnitError):
            effective_efficiency(CPU_PLATFORM, -1.0)
        with pytest.raises(UnitError):
            PlatformChoice("bad", 0.0, Carbon(1.0), 0.5, 1.0)


class TestCarbonPerWork:
    def test_gpu_beats_cpu_always(self):
        for years in (1.0, 5.0, 10.0):
            assert carbon_per_exawork(GPU_PLATFORM, years) < carbon_per_exawork(
                CPU_PLATFORM, years
            )

    def test_asic_best_for_short_deployments(self):
        ranking = platform_ranking(2.0)
        assert ranking[0][0] == "ASIC"

    def test_crossover_exists_under_fast_churn(self):
        crossover = break_even_lifetime(ASIC_PLATFORM, GPU_PLATFORM)
        assert crossover is not None
        assert 5.0 < crossover < 12.0

    def test_no_crossover_under_slow_churn(self):
        crossover = break_even_lifetime(
            ASIC_PLATFORM, GPU_PLATFORM, algorithm_cadence_years=4.0
        )
        assert crossover is None

    def test_carbon_free_supply_leaves_only_embodied(self):
        # With clean energy, only embodied carbon remains, so every
        # platform's kg-per-work falls, and the residual cost is exactly
        # embodied / lifetime work.
        for platform in (CPU_PLATFORM, GPU_PLATFORM, ASIC_PLATFORM):
            dirty = carbon_per_exawork(platform, 4.0)
            clean = carbon_per_exawork(platform, 4.0, intensity=CARBON_FREE)
            assert clean < dirty
            assert clean > 0.0  # embodied never disappears

    def test_ranking_covers_all_platforms(self):
        ranking = platform_ranking(3.0)
        assert {name for name, _ in ranking} == {p.name for p in ALL_PLATFORMS}

    def test_validation(self):
        with pytest.raises(UnitError):
            carbon_per_exawork(CPU_PLATFORM, 0.0)


POPULATION = synthesize_population(n_clients=2000, seed=1)


class TestAsyncFL:
    def test_async_much_faster_at_same_updates(self):
        outcomes = sync_vs_async(POPULATION, target_updates=3200, seed=1)
        assert outcomes["async"].wall_clock_s < outcomes["sync"].wall_clock_s / 2

    def test_energy_comparable(self):
        outcomes = sync_vs_async(POPULATION, target_updates=3200, seed=1)
        ratio = (
            outcomes["async"].total_energy.kwh / outcomes["sync"].total_energy.kwh
        )
        assert 0.7 < ratio < 1.3

    def test_async_pays_in_staleness(self):
        outcomes = sync_vs_async(POPULATION, target_updates=3200, seed=1)
        assert outcomes["sync"].mean_staleness == 0.0
        assert outcomes["async"].mean_staleness > 0.0
        assert outcomes["async"].p95_staleness >= outcomes["async"].mean_staleness

    def test_update_counts_match_target(self):
        sync = run_sync(POPULATION, target_updates=1000, cohort_size=64, seed=2)
        asyn = run_async(POPULATION, target_updates=1000, seed=2)
        assert sync.updates_applied >= 1000
        assert asyn.updates_applied == 1000

    def test_larger_buffer_lowers_version_churn(self):
        small = run_async(POPULATION, target_updates=2000, buffer_size=2, seed=3)
        large = run_async(POPULATION, target_updates=2000, buffer_size=50, seed=3)
        # Fewer version bumps -> lower measured staleness in versions.
        assert large.mean_staleness < small.mean_staleness

    def test_validation(self):
        with pytest.raises(UnitError):
            run_sync(POPULATION, target_updates=0)
        with pytest.raises(UnitError):
            run_async(POPULATION, target_updates=10, buffer_size=0)
