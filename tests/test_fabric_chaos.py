"""Chaos/failover tier: the fabric survives replica death and bad replicas.

Two failure grammars are exercised end to end:

* **Process death** — SIGKILL a managed replica mid-traffic.  The router
  must absorb it (transport error -> eject -> next ring node) so clients
  see zero 5xx, then respawn the replica and rejoin it to the ring.
* **Injected faults** — a replica whose experiment execution raises (the
  :mod:`repro.testing.faults` ``raise:<id>`` directive) answers 500; the
  router retries the idempotent query on the next preference node and
  the client still gets the canonical 200 bytes.

The router runs in-process (coverage for the failover paths); replicas
are real subprocesses with ``--workers 0`` so killing one cannot orphan
pool workers.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.service import parse_query, render_payload
from repro.service.hashring import HashRing
from repro.service.loadgen import spawn_service
from repro.service.router import RouterConfig, start_router
from repro.testing import faults
from tests.serviceutil import ServiceClient

pytestmark = pytest.mark.slow


def _router_doc(client: ServiceClient) -> dict:
    return client.get("/metrics").json()["router"]


def _wait_for(predicate, deadline_s: float = 60.0, interval_s: float = 0.1):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError("condition not met within the deadline")


class TestReplicaDeath:
    def test_sigkill_fails_over_ejects_respawns_and_rejoins(self):
        config = RouterConfig(
            port=0,
            replicas=2,
            replica_args=("--workers", "0"),
            health_interval_s=0.1,
        )
        handle = start_router(config)
        client = ServiceClient(config.host, handle.port)
        try:
            # Warm both shards so the post-kill reads have cached owners.
            paths = [f"/footprint?busy_device_hours={100 * i}" for i in range(1, 9)]
            for path in paths:
                assert client.get(path).status == 200

            doc = _router_doc(client)
            victim = doc["replicas"][0]
            assert victim["healthy"] and isinstance(victim["pid"], int)
            os.kill(victim["pid"], signal.SIGKILL)

            # Every request during the outage must still answer 200: the
            # first hit on the dead replica ejects it and fails over.
            for _round in range(3):
                for path in paths:
                    assert client.get(path).status == 200

            doc = _router_doc(client)
            assert doc["failovers"] >= 1
            dead = next(r for r in doc["replicas"] if r["name"] == victim["name"])
            assert dead["ejections"] >= 1

            # The supervisor respawns the victim and the health loop
            # rejoins it with a fresh pid.
            recovered = _wait_for(
                lambda: next(
                    (
                        r
                        for r in _router_doc(client)["replicas"]
                        if r["name"] == victim["name"]
                        and r["healthy"]
                        and r["pid"] not in (None, victim["pid"])
                    ),
                    None,
                )
            )
            assert recovered["restarts"] >= 1
            assert _router_doc(client)["rejoins"] >= 1

            # The rejoined fleet serves the whole deck again, no errors.
            for path in paths:
                assert client.get(path).status == 200
            statuses = client.get("/metrics").json()["requests"]["by_status"]
            assert all(int(code) < 500 for code in statuses)
        finally:
            client.close()
            handle.stop()

    def test_router_healthz_degrades_while_a_replica_is_down(self):
        config = RouterConfig(
            port=0,
            replicas=2,
            replica_args=("--workers", "0"),
            health_interval_s=0.1,
            restart_replicas=False,
        )
        handle = start_router(config)
        client = ServiceClient(config.host, handle.port)
        try:
            doc = _router_doc(client)
            os.kill(doc["replicas"][0]["pid"], signal.SIGKILL)
            health = _wait_for(
                lambda: (
                    lambda d: d if d["replicas"]["healthy"] == 1 else None
                )(client.get("/healthz").json())
            )
            assert health["status"] == "ok"  # one healthy replica still serves
            assert health["replicas"] == {"healthy": 1, "total": 2}
            # With restarts disabled the victim stays down but traffic
            # keyed to its shard is still answered by the survivor.
            for i in range(1, 9):
                assert client.get(f"/footprint?busy_device_hours={100 * i}").status == 200
        finally:
            client.close()
            handle.stop()


class TestInjectedFaults:
    EXPERIMENT = "fig7"

    def test_faulty_owner_is_retried_on_the_next_ring_node(self, monkeypatch):
        """``raise:fig7`` on fig7's owner -> 500 upstream, 200 downstream."""
        key = parse_query("experiment", {"experiment_id": self.EXPERIMENT}).cache_key()
        owner_index = int(HashRing(("replica-0", "replica-1")).owner(key).split("-")[1])

        monkeypatch.setenv(faults.FAULTS_ENV_VAR, f"raise:{self.EXPERIMENT}")
        faulty_proc, faulty_port = spawn_service(["--workers", "0"])
        monkeypatch.delenv(faults.FAULTS_ENV_VAR)
        clean_proc, clean_port = spawn_service(["--workers", "0"])
        procs = [faulty_proc, clean_proc]

        ports = [0, 0]
        ports[owner_index] = faulty_port
        ports[1 - owner_index] = clean_port
        config = RouterConfig(
            port=0,
            replicas=0,
            backends=tuple(f"http://127.0.0.1:{port}" for port in ports),
        )
        handle = start_router(config)
        client = ServiceClient(config.host, handle.port)
        try:
            # The fault is real: the owner answers 500 when asked directly.
            direct = ServiceClient("127.0.0.1", faulty_port)
            assert direct.get(f"/experiments/{self.EXPERIMENT}").status == 500
            direct.close()

            # Through the fabric the same query is retried on the clean
            # replica and returns the canonical bytes.
            reply = client.get(f"/experiments/{self.EXPERIMENT}")
            assert reply.status == 200
            from repro.experiments.registry import run_experiment

            assert reply.body == render_payload(
                run_experiment(self.EXPERIMENT).to_payload()
            )
            assert _router_doc(client)["retried_5xx"] >= 1
        finally:
            client.close()
            handle.stop()
            for proc in procs:
                proc.send_signal(signal.SIGTERM)
            for proc in procs:
                try:
                    proc.wait(timeout=30)
                finally:
                    if proc.stdout is not None:
                        proc.stdout.close()
