"""Federated learning / edge tests (Figure 11 machinery)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.carbon.intensity import WORLD_AVERAGE
from repro.edge.comparison import figure11_bars, fl_vs_centralized_ratio
from repro.edge.devices import DevicePopulation, SMARTPHONE_EMBODIED
from repro.edge.energy_model import (
    DEVICE_POWER_W,
    ParticipationRecord,
    ROUTER_POWER_W,
    batch_energy_kwh,
    participation_energy,
)
from repro.edge.fl import analyze_app, analyze_logs, communication_optimization_gain
from repro.edge.logs import FL1, FL2, FLAppConfig, generate_logs
from repro.errors import UnitError


class TestEnergyModel:
    def test_paper_powers(self):
        assert DEVICE_POWER_W == 3.0
        assert ROUTER_POWER_W == 7.5

    def test_participation_energy(self):
        record = ParticipationRecord(compute_s=3600.0, download_s=0.0, upload_s=0.0)
        assert participation_energy(record).kwh == pytest.approx(3.0 / 1000.0)

    def test_communication_uses_router_power(self):
        record = ParticipationRecord(compute_s=0.0, download_s=1800.0, upload_s=1800.0)
        assert participation_energy(record).kwh == pytest.approx(7.5 / 1000.0)

    @given(
        st.floats(min_value=0, max_value=1e5, allow_nan=False),
        st.floats(min_value=0, max_value=1e5, allow_nan=False),
    )
    def test_batch_matches_singles(self, compute, comm):
        compute_kwh, comm_kwh = batch_energy_kwh(
            np.array([compute]), np.array([comm / 2]), np.array([comm / 2])
        )
        record = ParticipationRecord(compute, comm / 2, comm / 2)
        assert math.isclose(
            compute_kwh + comm_kwh,
            participation_energy(record).kwh,
            rel_tol=1e-9,
            abs_tol=1e-15,
        )

    def test_negative_durations_rejected(self):
        with pytest.raises(UnitError):
            ParticipationRecord(-1.0, 0.0, 0.0)


class TestLogs:
    def test_log_volume(self):
        logs = generate_logs(FL1, days=10, seed=0)
        expected = FL1.clients_per_round * FL1.rounds_per_day * 10
        assert logs.n_participations == pytest.approx(expected, rel=0.01)

    def test_deterministic(self):
        a = generate_logs(FL1, days=5, seed=3)
        b = generate_logs(FL1, days=5, seed=3)
        np.testing.assert_array_equal(a.compute_s, b.compute_s)

    def test_bigger_model_longer_transfers(self):
        small = FLAppConfig("s", 100, 1.0, model_mb=5.0, median_compute_s=60.0)
        big = FLAppConfig("b", 100, 1.0, model_mb=50.0, median_compute_s=60.0)
        s_logs = generate_logs(small, days=10, seed=0)
        b_logs = generate_logs(big, days=10, seed=0)
        assert b_logs.total_communication_s > s_logs.total_communication_s

    def test_validation(self):
        with pytest.raises(UnitError):
            FLAppConfig("bad", 0, 1.0, 1.0, 1.0)
        with pytest.raises(UnitError):
            generate_logs(FL1, days=0)


class TestAnalysis:
    def test_footprint_components(self):
        fp = analyze_app(FL1, days=30, seed=0)
        assert fp.compute_energy.kwh > 0
        assert fp.communication_energy.kwh > 0
        assert fp.carbon.kg > 0
        assert 0 < fp.communication_share < 1

    def test_carbon_uses_intensity(self):
        logs = generate_logs(FL1, days=10, seed=0)
        fp = analyze_logs(logs, WORLD_AVERAGE)
        assert fp.carbon.kg == pytest.approx(
            fp.total_energy.kwh * WORLD_AVERAGE.kg_per_kwh
        )

    def test_communication_compression_gain(self):
        fp = analyze_app(FL2, days=10, seed=0)
        saved = communication_optimization_gain(fp, compression_ratio=4.0)
        assert saved.kwh == pytest.approx(fp.communication_energy.kwh * 0.75)

    def test_compression_below_one_rejected(self):
        fp = analyze_app(FL2, days=10, seed=0)
        with pytest.raises(UnitError):
            communication_optimization_gain(fp, 0.5)


class TestFigure11:
    def test_six_bars(self):
        bars = figure11_bars(days=30)
        assert len(bars) == 6
        assert [b.label for b in bars] == [
            "FL-1",
            "FL-2",
            "P100-Base",
            "TPU-Base",
            "P100-Green",
            "TPU-Green",
        ]

    def test_fl_comparable_to_centralized(self):
        # "Comparable" = same order of magnitude.
        ratio = fl_vs_centralized_ratio(days=90, seed=0)
        assert 0.3 < ratio < 3.0

    def test_green_bars_near_zero(self):
        bars = {b.label: b.carbon.kg for b in figure11_bars(days=30)}
        assert bars["P100-Green"] == 0.0
        assert bars["TPU-Green"] == 0.0

    def test_tpu_cleaner_than_p100(self):
        bars = {b.label: b.carbon.kg for b in figure11_bars(days=30)}
        assert bars["TPU-Base"] < bars["P100-Base"]


class TestDevicePopulation:
    def test_straggler_slowdown_grows_with_cohort(self):
        pop = DevicePopulation(2000, speed_sigma=0.5)
        small = pop.straggler_slowdown(8, seed=0)
        large = pop.straggler_slowdown(128, seed=0)
        assert large > small > 1.0

    def test_embodied_accounting(self):
        pop = DevicePopulation(1000)
        carbon = pop.fl_embodied_carbon(total_compute_s=3600.0 * 100)
        expected = pop.embodied_rate_per_active_hour(SMARTPHONE_EMBODIED) * 100
        assert carbon.kg == pytest.approx(expected)

    def test_manufacturing_share(self):
        # 74% of a ~70 kg lifecycle.
        assert SMARTPHONE_EMBODIED.kg == pytest.approx(70.0 * 0.74)

    def test_validation(self):
        with pytest.raises(UnitError):
            DevicePopulation(0)
