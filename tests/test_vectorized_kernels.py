"""Bit-exactness of the vectorized fleet/edge kernels vs their references.

Every kernel that replaced a per-hour/per-device Python loop retains the
original loop as a private ``_reference_*`` implementation; this suite
proves, over Hypothesis-generated configurations, that the numpy
formulation reproduces the loop *bit-for-bit* (``==`` on floats, never
``allclose``) — the property the golden-baseline harness relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.edge import async_fl
from repro.edge.devices import DevicePopulation
from repro.edge.selection import _reference_run_selection, run_selection
from repro.fleet.capacity_planning import _reference_capacity_totals
from repro.fleet.cluster import Cluster
from repro.fleet.growth import (
    _reference_composed_half_gains,
    composed_half_gains,
)
from repro.fleet.multitenancy import (
    _reference_pack_first_fit_decreasing,
    pack_first_fit_decreasing,
)
from repro.fleet.server import AI_TRAINING_SKU, STORAGE_SKU, WEB_SKU
from repro.fleet.utilization import UtilizationDistribution
from repro.testing import strategies as strat

pytestmark = pytest.mark.property

SKUS = (WEB_SKU, STORAGE_SKU, AI_TRAINING_SKU)


class TestClusterKernels:
    @given(
        sku_index=st.integers(0, len(SKUS) - 1),
        n_servers=st.integers(1, 96),
        n_powered=st.integers(0, 96),
        seed=st.integers(0, 2**16),
    )
    def test_power_and_utilization_match_server_loop(
        self, sku_index, n_servers, n_powered, seed
    ):
        cluster = Cluster("c", SKUS[sku_index], n_servers)
        rng = np.random.default_rng(seed)
        cluster.set_utilizations(rng.uniform(0.0, 1.0, n_servers))
        cluster.power_servers(min(n_powered, n_servers))
        assert cluster.current_power().watts == cluster._reference_current_power().watts
        assert cluster.mean_utilization() == cluster._reference_mean_utilization()
        assert cluster.powered_count == sum(1 for s in cluster.servers if s.powered)


class TestPackingKernel:
    @given(
        demands=strat.gpu_demand_arrays(),
        max_tenants=st.integers(1, 10),
        capacity=st.floats(0.5, 1.0, allow_nan=False),
    )
    def test_first_fit_decreasing_matches_reference(
        self, demands, max_tenants, capacity
    ):
        fast = pack_first_fit_decreasing(demands, max_tenants, capacity)
        slow = _reference_pack_first_fit_decreasing(demands, max_tenants, capacity)
        assert fast.n_devices == slow.n_devices
        assert np.array_equal(fast.device_loads, slow.device_loads)
        assert np.array_equal(fast.tenants_per_device, slow.tenants_per_device)


class TestGrowthKernels:
    @given(areas=strat.optimization_areas())
    def test_composed_half_gains_matches_reference(self, areas):
        assert np.array_equal(
            composed_half_gains(areas), _reference_composed_half_gains(areas)
        )

    @given(
        trend=strat.growth_trends(),
        initial_servers=st.integers(1, 100_000),
        horizon=st.integers(1, 12),
    )
    def test_capacity_totals_match_reference(self, trend, initial_servers, horizon):
        years = np.arange(horizon + 1)
        assert np.array_equal(
            initial_servers * trend.values_at(years),
            _reference_capacity_totals(initial_servers, years, trend),
        )

    @given(trend=strat.growth_trends(), horizon=st.integers(0, 12))
    def test_values_at_matches_scalar_value_at(self, trend, horizon):
        years = np.arange(horizon + 1)
        scalars = np.array([trend.value_at(float(y)) for y in years])
        assert np.array_equal(trend.values_at(years), scalars)


class TestUtilizationKernel:
    @given(
        alpha=st.floats(0.2, 20.0, allow_nan=False),
        beta=st.floats(0.2, 20.0, allow_nan=False),
        seed=st.integers(0, 2**16),
        n_bands=st.integers(1, 6),
    )
    def test_band_masses_match_scalar_cdf_calls(self, alpha, beta, seed, n_bands):
        dist = UtilizationDistribution(alpha, beta)
        edges = np.sort(np.random.default_rng(seed).uniform(0.0, 1.0, 2 * n_bands))
        bands = tuple(
            (float(edges[2 * i]), float(edges[2 * i + 1])) for i in range(n_bands)
        )
        assert np.array_equal(
            dist.fractions_in_bands(bands), dist._reference_fractions_in_bands(bands)
        )


class TestEdgeFLKernels:
    @given(
        population=strat.client_populations(),
        target_updates=st.integers(1, 800),
        cohort_size=st.integers(1, 48),
        seed=st.integers(0, 2**10),
    )
    def test_run_sync_matches_reference(
        self, population, target_updates, cohort_size, seed
    ):
        cohort_size = min(cohort_size, len(population))
        assert async_fl.run_sync(
            population, target_updates, cohort_size, seed
        ) == async_fl._reference_run_sync(population, target_updates, cohort_size, seed)

    @given(
        population=strat.client_populations(),
        target_updates=st.integers(1, 800),
        concurrency=st.integers(1, 128),
        buffer_size=st.integers(1, 16),
        seed=st.integers(0, 2**10),
    )
    def test_run_async_matches_reference(
        self, population, target_updates, concurrency, buffer_size, seed
    ):
        assert async_fl.run_async(
            population, target_updates, concurrency, buffer_size, seed
        ) == async_fl._reference_run_async(
            population, target_updates, concurrency, buffer_size, seed
        )

    @settings(max_examples=40)
    @given(
        population=st.one_of(
            strat.client_populations(max_clients=200),
            strat.quantized_client_populations(),
        ),
        strategy=st.sampled_from(("random", "fastest", "energy-aware")),
        rounds=st.integers(1, 40),
        cohort_size=st.integers(1, 32),
        availability=st.floats(0.05, 1.0, allow_nan=False),
        seed=st.integers(0, 2**10),
    )
    def test_run_selection_matches_reference(
        self, population, strategy, rounds, cohort_size, availability, seed
    ):
        cohort_size = min(cohort_size, len(population))
        args = (population, strategy, rounds, cohort_size, None, availability, seed)
        assert run_selection(*args) == _reference_run_selection(*args)

    @given(
        population=strat.device_populations(),
        cohort_size=st.integers(1, 64),
        seed=st.integers(0, 2**10),
    )
    def test_straggler_slowdown_matches_reference(self, population, cohort_size, seed):
        assert population.straggler_slowdown(
            cohort_size, seed
        ) == population._reference_straggler_slowdown(cohort_size, seed)


class TestStragglerTrialShape:
    def test_quantized_speeds_still_exact(self):
        # Degenerate sigma=0 population: every device identical (max ties).
        population = DevicePopulation(n_devices=10, speed_sigma=0.0)
        assert population.straggler_slowdown(4) == pytest.approx(1.0)
        assert population.straggler_slowdown(
            4
        ) == population._reference_straggler_slowdown(4)
