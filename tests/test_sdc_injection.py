"""SDC fault-injection tests on real recommender training."""

import pytest

from repro.dataeff.synthetic import LatentFactorWorld
from repro.errors import UnitError
from repro.reliability.sdc_injection import (
    SDCInjectionConfig,
    sdc_study,
    train_with_sdc,
)


WORLD = LatentFactorWorld(n_users=300, n_items=200, seed=3)
DATA = WORLD.sample(10_000, seed_offset=0)


class TestConfig:
    def test_validation(self):
        with pytest.raises(UnitError):
            SDCInjectionConfig(faults_per_epoch=-1.0)
        with pytest.raises(UnitError):
            SDCInjectionConfig(corruption_scale=0.5)
        with pytest.raises(UnitError):
            SDCInjectionConfig(cells_per_fault=0)


class TestInjection:
    def test_fault_free_baseline_learns(self):
        result = train_with_sdc(
            DATA, SDCInjectionConfig(faults_per_epoch=0.0), n_epochs=6
        )
        assert result.label == "fault-free"
        assert result.cells_corrupted == 0
        assert result.ndcg > 0.3

    def test_sdc_degrades_accuracy(self):
        clean = train_with_sdc(
            DATA, SDCInjectionConfig(faults_per_epoch=0.0), n_epochs=8
        )
        faulty = train_with_sdc(
            DATA,
            SDCInjectionConfig(faults_per_epoch=1.5, cells_per_fault=16),
            n_epochs=8,
        )
        assert faulty.cells_corrupted > 0
        assert faulty.ndcg < clean.ndcg

    def test_guard_recovers_accuracy(self):
        # A rate where faults are damaging but the model retains enough
        # uncorrupted rows for the guard's repairs to matter; at extreme
        # rates (a large fraction of all parameters hit) nothing recovers.
        config = SDCInjectionConfig(faults_per_epoch=1.5, cells_per_fault=16)
        faulty = train_with_sdc(DATA, config, guard=False, n_epochs=8)
        guarded = train_with_sdc(DATA, config, guard=True, n_epochs=8)
        assert guarded.rows_repaired > 0
        assert guarded.ndcg > faulty.ndcg

    def test_study_structure(self):
        results = sdc_study(DATA, fault_rates=(0.0, 2.0))
        labels = [r.label for r in results]
        assert labels == ["fault-free", "unprotected", "guarded"]

    def test_run_validation(self):
        with pytest.raises(UnitError):
            train_with_sdc(DATA, n_epochs=0)
        with pytest.raises(UnitError):
            train_with_sdc(DATA, guard=True, guard_threshold=1.0)
