"""Predictive tracking and capacity-planning tests."""

import numpy as np
import pytest

from repro.carbon.grid import constant_grid_trace, synthesize_grid_trace
from repro.carbon.intensity import CarbonIntensity
from repro.core.quantities import Carbon, Energy
from repro.errors import TelemetryError, UnitError
from repro.fleet.capacity_planning import (
    consolidation_study,
    plan_capacity,
)
from repro.telemetry.predict import (
    EpochMeasurement,
    abort_recommendation,
    predict_training_cost,
    recommend_start_hour,
)
from repro.workloads.growthtrends import GrowthTrend


def measurements(n=5, base=2.0, slope=0.0):
    return [
        EpochMeasurement(i, Energy(base + slope * i), 1800.0) for i in range(n)
    ]


class TestPrediction:
    def test_flat_epochs_extrapolate_linearly(self):
        pred = predict_training_cost(measurements(5, base=2.0), planned_epochs=50)
        assert pred.predicted_energy.kwh == pytest.approx(100.0, rel=1e-6)

    def test_trend_captured(self):
        pred = predict_training_cost(
            measurements(5, base=2.0, slope=0.1), planned_epochs=10
        )
        expected = sum(2.0 + 0.1 * i for i in range(10))
        assert pred.predicted_energy.kwh == pytest.approx(expected, rel=1e-6)

    def test_band_contains_point_estimate(self):
        pred = predict_training_cost(measurements(5), planned_epochs=20)
        assert pred.predicted_energy_low.kwh <= pred.predicted_energy.kwh
        assert pred.predicted_energy.kwh <= pred.predicted_energy_high.kwh

    def test_duration_prediction(self):
        pred = predict_training_cost(measurements(4), planned_epochs=8)
        assert pred.predicted_duration_hours == pytest.approx(8 * 0.5)

    def test_needs_two_measurements(self):
        with pytest.raises(TelemetryError):
            predict_training_cost(measurements(1), planned_epochs=10)

    def test_cannot_measure_more_than_planned(self):
        with pytest.raises(TelemetryError):
            predict_training_cost(measurements(5), planned_epochs=3)

    def test_remaining_energy(self):
        pred = predict_training_cost(measurements(5), planned_epochs=10)
        assert pred.remaining_energy.kwh == pytest.approx(
            pred.predicted_energy.kwh / 2, rel=1e-6
        )


class TestRecommendation:
    def test_greenest_hour_never_worse_than_now(self):
        pred = predict_training_cost(measurements(5), planned_epochs=48)
        grid = synthesize_grid_trace(168, seed=5)
        _, now, best = recommend_start_hour(pred, grid)
        assert best.kg <= now.kg + 1e-9

    def test_flat_grid_indifferent(self):
        pred = predict_training_cost(measurements(5), planned_epochs=24)
        grid = constant_grid_trace(CarbonIntensity(0.4), 168)
        _, now, best = recommend_start_hour(pred, grid)
        assert best.kg == pytest.approx(now.kg)

    def test_abort_recommendation(self):
        pred = predict_training_cost(measurements(5), planned_epochs=100)
        over = abort_recommendation(pred, Carbon(1.0))
        under = abort_recommendation(pred, Carbon(1e9))
        assert over["over_budget"] is True
        assert under["over_budget"] is False


class TestCapacityPlanning:
    def test_totals_follow_growth(self):
        plan = plan_capacity(initial_servers=1000, horizon_years=3)
        assert plan.servers_total[0] == pytest.approx(1000)
        assert plan.servers_total[-1] > plan.servers_total[0]

    def test_embodied_positive_after_year_zero(self):
        plan = plan_capacity(initial_servers=1000, horizon_years=3)
        assert plan.server_embodied[0] == 0.0
        assert np.all(plan.server_embodied[1:] > 0)
        assert plan.total_embodied().kg > 0

    def test_replacement_adds_purchases(self):
        base = plan_capacity(1000, 3, replacement_rate=0.0)
        repl = plan_capacity(1000, 3, replacement_rate=0.25)
        assert repl.total_embodied().kg > base.total_embodied().kg

    def test_flat_growth_means_no_new_embodied(self):
        flat = GrowthTrend("flat", 1.0000001, 1.5)
        plan = plan_capacity(1000, 3, growth=flat)
        assert plan.total_embodied().kg == pytest.approx(0.0, abs=1e3)

    def test_validation(self):
        with pytest.raises(UnitError):
            plan_capacity(0, 3)
        with pytest.raises(UnitError):
            plan_capacity(100, 3, replacement_rate=1.5)


class TestConsolidation:
    def test_accelerators_need_far_fewer_servers(self):
        result = consolidation_study()
        assert result.server_reduction > 0.9

    def test_embodied_saving_positive(self):
        result = consolidation_study()
        assert result.embodied_saving > 0.5

    def test_accelerator_power_lower_for_same_throughput(self):
        result = consolidation_study()
        assert result.accelerator_power.watts < result.cpu_power.watts

    def test_validation(self):
        with pytest.raises(UnitError):
            consolidation_study(required_tflops=0.0)
