"""The ``sustainable-ai ledger`` CLI: record, show, diff, trace.

Runs against a temp ledger directory with the runner patched down to
fast experiments, exercising the full in-process CLI path (parse ->
execute -> record -> reload), including the byte-identity contract of
``ledger show --payload``.
"""

import json

import pytest

import repro.experiments.runner as runner_mod
from repro.core import ledger
from repro.core.canonical import canonical_bytes
from repro.core.ledger import GOLDEN_EPOCH, Ledger
from repro.experiments.registry import run_experiment
from repro.experiments.runner import main
from repro.testing import faults


@pytest.fixture
def small_registry(monkeypatch):
    monkeypatch.setattr(runner_mod, "experiment_ids", lambda: ("fig7", "fig8"))


@pytest.fixture
def ledger_dir(tmp_path, monkeypatch):
    monkeypatch.delenv(ledger.LEDGER_DIR_ENV_VAR, raising=False)
    return tmp_path / "ledger"


def record(ledger_dir, *extra):
    return main(
        ["ledger", "record", "all", "--ledger-dir", str(ledger_dir),
         "--run-id", "r1", "--recorded-at", "1000.0", "--quiet", "--jobs", "1",
         *extra]
    )


class TestRecord:
    def test_records_a_run_and_pins_the_golden_epoch(
        self, ledger_dir, capsys, small_registry
    ):
        assert record(ledger_dir) == 0
        out = capsys.readouterr().out
        assert "recorded 2 bundle(s) (0 failed) as run 'r1'" in out
        assert "imported golden baselines as epoch '0'" in out
        led = Ledger.open(ledger_dir)
        assert set(led.resolve("r1")) == {"fig7", "fig8"}
        # golden/baselines.json auto-imports as epoch "0" on first record.
        assert GOLDEN_EPOCH in led.epochs
        assert len(led.resolve(GOLDEN_EPOCH)) == 49
        bundle = led.resolve("r1")["fig7"]
        assert bundle.provenance.recorded_at == 1000.0
        assert bundle.provenance.invariant_status == "not-checked"

    def test_check_invariants_stamps_provenance(
        self, ledger_dir, capsys, small_registry
    ):
        assert record(ledger_dir, "--check-invariants") == 0
        led = Ledger.open(ledger_dir)
        assert led.resolve("r1")["fig7"].provenance.invariant_status == "ok"

    def test_failed_experiments_are_recorded_and_exit_nonzero(
        self, ledger_dir, capsys, small_registry, monkeypatch
    ):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "raise:fig7")
        assert record(ledger_dir, "--retries", "0") == 1
        led = Ledger.open(ledger_dir)
        bundle = led.resolve("r1")["fig7"]
        assert bundle.status == "failed"
        assert bundle.error["kind"] == "exception"
        assert led.resolve("r1")["fig8"].status == "ok"

    def test_missing_ledger_dir_is_a_usage_error(self, capsys, small_registry):
        assert main(["ledger", "show"]) == 2
        err = capsys.readouterr().err
        assert "--ledger-dir" in err
        assert ledger.LEDGER_DIR_ENV_VAR in err

    def test_env_var_names_the_directory(
        self, tmp_path, capsys, small_registry, monkeypatch
    ):
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV_VAR, str(tmp_path / "env-led"))
        assert main(
            ["ledger", "record", "fig7", "--run-id", "r-env", "--quiet", "--jobs", "1"]
        ) == 0
        assert "r-env" in Ledger.open(tmp_path / "env-led").runs


class TestShow:
    def test_bare_show_lists_refs(self, ledger_dir, capsys, small_registry):
        record(ledger_dir)
        capsys.readouterr()
        assert main(["ledger", "show", "--ledger-dir", str(ledger_dir)]) == 0
        out = capsys.readouterr().out
        assert "r1" in out and GOLDEN_EPOCH in out

    def test_ref_table_lists_bundles(self, ledger_dir, capsys, small_registry):
        record(ledger_dir)
        capsys.readouterr()
        assert main(["ledger", "show", "r1", "--ledger-dir", str(ledger_dir)]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "fig8" in out

    def test_experiment_bundle_is_canonical_json(
        self, ledger_dir, capsys, small_registry
    ):
        record(ledger_dir)
        capsys.readouterr()
        assert main(
            ["ledger", "show", "r1", "--experiment", "fig7",
             "--ledger-dir", str(ledger_dir)]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["experiment_id"] == "fig7"
        assert doc["bundle_id"] == Ledger.open(ledger_dir).resolve("r1")["fig7"].bundle_id

    def test_payload_bytes_reconstruct_the_original_record(
        self, ledger_dir, capsys, small_registry
    ):
        # The acceptance contract: any historical report reconstructs
        # byte-identically from the ledger alone.
        record(ledger_dir)
        capsys.readouterr()
        assert main(
            ["ledger", "show", "r1", "--experiment", "fig7", "--payload",
             "--ledger-dir", str(ledger_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert out.encode("utf-8") == canonical_bytes(run_experiment("fig7").to_payload())

    def test_payload_requires_an_experiment(self, ledger_dir, capsys, small_registry):
        record(ledger_dir)
        assert main(
            ["ledger", "show", "r1", "--payload", "--ledger-dir", str(ledger_dir)]
        ) == 2
        assert "--experiment" in capsys.readouterr().err


class TestDiff:
    def test_partial_diff_against_the_golden_epoch_is_clean(
        self, ledger_dir, capsys, small_registry
    ):
        record(ledger_dir)
        capsys.readouterr()
        assert main(
            ["ledger", "diff", GOLDEN_EPOCH, "r1", "--partial",
             "--ledger-dir", str(ledger_dir)]
        ) == 0
        assert "OK — no drift beyond tolerance" in capsys.readouterr().out

    def test_strict_diff_flags_the_unrun_experiments(
        self, ledger_dir, capsys, small_registry
    ):
        record(ledger_dir)
        capsys.readouterr()
        assert main(
            ["ledger", "diff", GOLDEN_EPOCH, "r1", "--ledger-dir", str(ledger_dir)]
        ) == 1
        assert "stale-baseline" in capsys.readouterr().out

    def test_unknown_ref_is_a_usage_error(self, ledger_dir, capsys, small_registry):
        record(ledger_dir)
        assert main(
            ["ledger", "diff", "nope", "r1", "--ledger-dir", str(ledger_dir)]
        ) == 2
        assert "unknown ledger ref" in capsys.readouterr().err


class TestTrace:
    def test_trace_resolves_provenance(self, ledger_dir, capsys, small_registry):
        record(ledger_dir, "--check-invariants")
        capsys.readouterr()
        metric = next(iter(run_experiment("fig7").headline))
        assert main(
            ["ledger", "trace", "fig7", metric, "--ledger-dir", str(ledger_dir)]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["experiment_id"] == "fig7"
        assert doc["metric"] == metric
        assert doc["ref"] == "r1"
        assert doc["provenance"]["invariant_status"] == "ok"
        assert doc["provenance"]["code_version"]["python"]

    def test_trace_names_substrate_digests_for_memoized_experiments(
        self, ledger_dir, capsys, monkeypatch
    ):
        monkeypatch.setattr(runner_mod, "experiment_ids", lambda: ("ablation-sched",))
        record(ledger_dir)
        capsys.readouterr()
        assert main(
            ["ledger", "trace", "ablation-sched", "shifting_saving",
             "--ledger-dir", str(ledger_dir)]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        substrates = doc["provenance"]["substrates"]
        assert any(
            ref["substrate"] == "synthesize_grid_trace" and ref["digest"]
            for ref in substrates
        )

    def test_unknown_claim_is_a_usage_error(self, ledger_dir, capsys, small_registry):
        record(ledger_dir)
        assert main(
            ["ledger", "trace", "fig7", "nope", "--ledger-dir", str(ledger_dir)]
        ) == 2
        assert "no claim 'nope'" in capsys.readouterr().err
