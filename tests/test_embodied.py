"""Embodied carbon amortization tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.carbon.embodied import (
    AmortizationPolicy,
    CPU_SERVER_EMBODIED,
    GPU_SERVER_EMBODIED,
    embodied_for_device_hours,
    operational_embodied_split,
)
from repro.core.quantities import Carbon
from repro.errors import UnitError


class TestAnchors:
    def test_paper_values(self):
        assert GPU_SERVER_EMBODIED.kg == 2000.0
        assert CPU_SERVER_EMBODIED.kg == 1000.0  # half, per the paper


class TestAmortizationPolicy:
    def test_defaults_match_paper_midpoints(self):
        policy = AmortizationPolicy()
        assert policy.lifetime_years == 4.0  # 3-5 years
        assert policy.average_utilization == 0.45  # 30-60%

    def test_validation(self):
        with pytest.raises(UnitError):
            AmortizationPolicy(lifetime_years=0)
        with pytest.raises(UnitError):
            AmortizationPolicy(average_utilization=0.0)
        with pytest.raises(UnitError):
            AmortizationPolicy(average_utilization=1.5)

    def test_full_lifetime_amortizes_everything(self):
        policy = AmortizationPolicy()
        total = policy.amortize(GPU_SERVER_EMBODIED, policy.utilized_hours)
        assert math.isclose(total.kg, GPU_SERVER_EMBODIED.kg, rel_tol=1e-9)

    def test_amortization_capped_at_manufacturing(self):
        policy = AmortizationPolicy()
        over = policy.amortize(GPU_SERVER_EMBODIED, policy.utilized_hours * 10)
        assert over.kg == GPU_SERVER_EMBODIED.kg

    def test_lower_utilization_charges_more_per_hour(self):
        busy = AmortizationPolicy(average_utilization=0.9)
        idle = AmortizationPolicy(average_utilization=0.3)
        assert idle.rate_per_utilized_hour(GPU_SERVER_EMBODIED) > busy.rate_per_utilized_hour(
            GPU_SERVER_EMBODIED
        )

    @given(
        st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
        st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    )
    def test_amortize_monotone_in_hours(self, utilization, lifetime, hours):
        policy = AmortizationPolicy(lifetime, utilization)
        less = policy.amortize(GPU_SERVER_EMBODIED, hours)
        more = policy.amortize(GPU_SERVER_EMBODIED, hours * 1.5)
        assert more.kg >= less.kg

    def test_amortize_rejects_negative(self):
        with pytest.raises(UnitError):
            AmortizationPolicy().amortize(GPU_SERVER_EMBODIED, -1.0)

    def test_multiple_servers_scale(self):
        policy = AmortizationPolicy()
        one = policy.amortize(GPU_SERVER_EMBODIED, 100.0, n_servers=1)
        four = policy.amortize(GPU_SERVER_EMBODIED, 100.0, n_servers=4)
        assert math.isclose(four.kg, 4 * one.kg)


class TestHelpers:
    def test_embodied_for_device_hours(self):
        carbon = embodied_for_device_hours(100.0)
        policy = AmortizationPolicy()
        expected = policy.rate_per_utilized_hour(GPU_SERVER_EMBODIED) * 100.0
        assert math.isclose(carbon.kg, expected)

    def test_split(self):
        emb, op = operational_embodied_split(Carbon(70.0), Carbon(30.0))
        assert math.isclose(emb, 0.3)
        assert math.isclose(op, 0.7)

    def test_split_zero_total(self):
        assert operational_embodied_split(Carbon.zero(), Carbon.zero()) == (0.0, 0.0)
