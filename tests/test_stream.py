"""Unit tests for the streaming grid-intensity engine.

Deterministic, example-based coverage of the tick feed, the forecast
ladder, the O(Δ) incremental accounting, the delta payloads, and the
live fleet simulator.  The exhaustive bit-equality laws live in the
Hypothesis suite (``tests/test_stream_property.py``); this module pins
concrete behaviors and the validation surface.
"""

import numpy as np
import pytest

from repro.carbon.stream import (
    MAX_STREAM_HOURS,
    StreamSpec,
    advice_at,
    load_profile,
    rolling_forecast,
    simulate_tick_trace,
    stream_delta_payload,
    stream_state_at,
    truth_trace,
)
from repro.core.incremental import (
    AccountingSnapshot,
    IncrementalAccounting,
    reference_replay,
)
from repro.errors import UnitError
from repro.fleet.livesim import LiveFleetParams, run_live_fleet

SPEC = StreamSpec(hours=240, grid_seed=7, feed_seed=7)


class TestStreamSpec:
    def test_defaults_are_valid(self):
        spec = StreamSpec()
        assert spec.hours == 168
        assert spec.to_params()["hours"] == 168

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hours": 47},  # below the 2-day minimum
            {"hours": MAX_STREAM_HOURS + 1},
            {"late_probability": 1.5},
            {"stall_probability": 0.6},  # stalls capped at 0.5
            {"pue": 0.9},
            {"forecast_horizon_hours": 500},
            {"max_late_hours": 0},
            {"min_powered_fraction": 0.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(UnitError):
            StreamSpec(**kwargs)

    def test_forecast_horizon_must_fit_stream(self):
        with pytest.raises(UnitError):
            StreamSpec(hours=48, forecast_horizon_hours=72)


class TestTickFeed:
    def test_deterministic_per_seed(self):
        assert simulate_tick_trace(SPEC) == simulate_tick_trace(SPEC)
        other = StreamSpec(hours=240, grid_seed=7, feed_seed=8)
        assert simulate_tick_trace(SPEC) != simulate_tick_trace(other)

    def test_every_hour_eventually_exact(self):
        ticks = simulate_tick_trace(SPEC)
        truth = np.asarray(truth_trace(SPEC).intensity_kg_per_kwh)
        final = {}
        for tick in ticks:
            final[tick.hour] = tick.intensity_kg_per_kwh
        assert sorted(final) == list(range(SPEC.hours))
        assert all(final[h] == truth[h] for h in range(SPEC.hours))

    def test_revisions_correct_preliminary_values(self):
        spec = StreamSpec(
            hours=240, revision_probability=0.8, revision_noise=0.2, feed_seed=3
        )
        ticks = simulate_tick_trace(spec)
        revisions = [t for t in ticks if t.kind == "revise"]
        assert revisions, "a revision-heavy spec produced no revisions"
        truth = np.asarray(truth_trace(spec).intensity_kg_per_kwh)
        for revision in revisions:
            assert revision.intensity_kg_per_kwh == truth[revision.hour]

    def test_clean_feed_is_in_order(self):
        spec = StreamSpec(
            hours=100,
            late_probability=0.0,
            revision_probability=0.0,
            stall_probability=0.0,
        )
        ticks = simulate_tick_trace(spec)
        assert len(ticks) == spec.hours
        assert [t.hour for t in ticks] == list(range(spec.hours))
        assert all(t.kind == "observe" for t in ticks)

    def test_stalls_delay_but_never_drop(self):
        stalled = StreamSpec(hours=240, stall_probability=0.3, feed_seed=5)
        ticks = simulate_tick_trace(stalled)
        assert {t.hour for t in ticks} == set(range(stalled.hours))
        # A stall window produces a catch-up burst: some emit slot carries
        # far more events than the per-hour norm.
        by_slot: dict = {}
        for tick in ticks:
            by_slot[tick.emit_slot] = by_slot.get(tick.emit_slot, 0) + 1
        assert max(by_slot.values()) > 3


class TestRollingForecast:
    def test_ladder_sources(self):
        assert rolling_forecast(np.array([]), 24)[1] == "cold"
        assert rolling_forecast(np.full(5, 0.4), 24)[1] == "flat"
        assert rolling_forecast(np.full(48, 0.4), 24)[1] == "persistence"
        assert rolling_forecast(np.full(200, 0.4), 24)[1] == "rolling"
        assert rolling_forecast(np.full(48, 0.4), 24, stalled=True)[1] == "diurnal"

    def test_forecast_shapes_and_values(self):
        forecast, source = rolling_forecast(np.array([]), 12)
        assert source == "cold" and np.array_equal(forecast, np.zeros(12))
        forecast, source = rolling_forecast(np.array([0.1, 0.7]), 12)
        assert source == "flat" and np.array_equal(forecast, np.full(12, 0.7))

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(UnitError):
            rolling_forecast(np.full(48, 0.4), 0)


class TestIncrementalAccounting:
    def test_empty_state_is_zero(self):
        acc = IncrementalAccounting(np.ones(48))
        assert acc.it_energy_kwh == 0.0
        assert acc.operational_kg == 0.0
        assert acc.contiguous_hours == 0
        assert np.isnan(acc.intensity_at(0))

    def test_fold_validation(self):
        acc = IncrementalAccounting(np.ones(48))
        with pytest.raises(UnitError):
            acc.fold(48, 0.4)
        with pytest.raises(UnitError):
            acc.fold(-1, 0.4)
        with pytest.raises(UnitError):
            acc.fold(0, -0.1)
        with pytest.raises(UnitError):
            acc.fold(0, float("nan"))
        with pytest.raises(UnitError):
            IncrementalAccounting(np.ones(48), pue=0.5)
        with pytest.raises(UnitError):
            IncrementalAccounting(np.ones(48), window_hours=0)

    def test_revision_replaces_exactly(self):
        acc = IncrementalAccounting(np.full(48, 2.0), pue=1.5)
        acc.fold(0, 0.9)  # preliminary
        acc.fold(0, 0.4)  # revision
        assert acc.intensity_at(0) == 0.4
        assert acc.hours_observed == 1
        assert acc.ticks_folded == 2
        assert acc.operational_kg == 2.0 * 1.5 * 0.4

    def test_out_of_order_window_gap_matches_replay(self):
        # Regression: a tick jumping several windows past the frontier
        # must fill the gap windows' prefix entries (found by Hypothesis).
        acc = IncrementalAccounting(np.ones(48), window_hours=1)
        log = [(1, 0.5), (16, 0.5), (0, 0.5)]
        acc.fold_many(log)
        assert acc.snapshot() == reference_replay(
            np.ones(48), log, window_hours=1
        )
        assert acc.it_energy_kwh == 3.0

    def test_snapshot_matches_replay_on_real_feed(self):
        ticks = simulate_tick_trace(SPEC)
        load = load_profile(SPEC)
        acc = IncrementalAccounting(
            load, pue=SPEC.pue, window_hours=SPEC.window_hours
        )
        acc.fold_many((t.hour, t.intensity_kg_per_kwh) for t in ticks)
        assert acc.snapshot() == reference_replay(
            load,
            [(t.hour, t.intensity_kg_per_kwh) for t in ticks],
            pue=SPEC.pue,
            window_hours=SPEC.window_hours,
        )

    def test_snapshot_payload_round_trip(self):
        snap = AccountingSnapshot(
            hours=48,
            ticks_folded=10,
            hours_observed=9,
            contiguous_hours=4,
            it_energy_kwh=120.0,
            operational_kg=13.5,
        )
        payload = snap.to_payload()
        assert AccountingSnapshot(**payload) == snap


class TestAdvice:
    def test_cold_state_never_defers(self):
        state = IncrementalAccounting(load_profile(SPEC), pue=SPEC.pue)
        advice = advice_at(SPEC, state, 0)
        assert advice.forecast_source == "cold"
        assert not advice.defer_recommended
        assert advice.recommended_powered_fraction == 1.0

    def test_stall_detection_uses_feed_clock(self):
        state = stream_state_at(SPEC, 0)
        stalled = advice_at(SPEC, state, SPEC.stall_detect_hours)
        fresh = advice_at(SPEC, state, 0)
        assert stalled.stalled and not fresh.stalled

    def test_powered_fraction_respects_floor(self):
        ticks = simulate_tick_trace(SPEC)
        state = stream_state_at(SPEC, len(ticks), ticks=ticks)
        advice = advice_at(SPEC, state, ticks[-1].emit_slot)
        assert (
            SPEC.min_powered_fraction
            <= advice.recommended_powered_fraction
            <= 1.0
        )


class TestDeltaPayloads:
    def test_cursor_validation(self):
        ticks = simulate_tick_trace(SPEC)
        with pytest.raises(UnitError):
            stream_delta_payload(SPEC, 5, 2, ticks=ticks)
        with pytest.raises(UnitError):
            stream_delta_payload(SPEC, 0, len(ticks) + 1, ticks=ticks)

    def test_state_must_match_cursor(self):
        ticks = simulate_tick_trace(SPEC)
        wrong = stream_state_at(SPEC, 3, ticks=ticks)
        with pytest.raises(UnitError):
            stream_delta_payload(SPEC, 0, 5, ticks=ticks, state=wrong)

    def test_payload_shape_and_done_flag(self):
        ticks = simulate_tick_trace(SPEC)
        partial = stream_delta_payload(SPEC, 0, 5, ticks=ticks)
        assert set(partial) == {
            "stream",
            "from_seq",
            "to_seq",
            "total_ticks",
            "done",
            "ticks",
            "accounting",
            "advice",
        }
        assert not partial["done"]
        assert len(partial["ticks"]) == 5
        full = stream_delta_payload(SPEC, 0, len(ticks), ticks=ticks)
        assert full["done"]
        assert full["accounting"]["hours_observed"] == SPEC.hours
        assert full["accounting"]["facility_energy_kwh"] == pytest.approx(
            full["accounting"]["it_energy_kwh"] * SPEC.pue
        )


class TestLiveFleet:
    def test_outcome_structure(self):
        outcome = run_live_fleet(
            LiveFleetParams(spec=StreamSpec(hours=240, grid_seed=3, feed_seed=3))
        )
        assert outcome.hours == 240
        assert outcome.baseline_kg > 0.0
        assert outcome.live_kg > 0.0
        assert outcome.saving_fraction == pytest.approx(
            1.0 - outcome.live_kg / outcome.baseline_kg
        )
        assert 0.0 < outcome.mean_powered_fraction <= 1.0
        assert sum(outcome.forecast_sources.values()) == outcome.hours
        payload = outcome.to_payload()
        assert payload["hours"] == 240

    def test_deferral_conserves_work(self):
        params = LiveFleetParams(
            spec=StreamSpec(hours=240, grid_seed=3, feed_seed=3),
            deferrable_fraction=0.4,
            max_defer_hours=8,
        )
        outcome = run_live_fleet(params)
        # Every deferred demand-hour is eventually drained or reported
        # as leftover backlog at the horizon.
        assert outcome.deferred_demand_hours == pytest.approx(
            outcome.drained_demand_hours + outcome.leftover_demand_hours
        )

    def test_carbon_aware_fleet_saves_carbon(self):
        outcome = run_live_fleet(
            LiveFleetParams(spec=StreamSpec(hours=336, grid_seed=0, feed_seed=0))
        )
        assert outcome.saving_fraction > 0.0

    def test_zero_deferrable_fraction_defers_nothing(self):
        outcome = run_live_fleet(
            LiveFleetParams(
                spec=StreamSpec(hours=240, grid_seed=3, feed_seed=3),
                deferrable_fraction=0.0,
            )
        )
        assert outcome.deferred_demand_hours == 0.0
        assert outcome.leftover_demand_hours == 0.0

    def test_param_validation(self):
        with pytest.raises(UnitError):
            LiveFleetParams(deferrable_fraction=1.0)
        with pytest.raises(UnitError):
            LiveFleetParams(max_defer_hours=0)
