"""Unit conversion tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units

finite_positive = st.floats(
    min_value=1e-9, max_value=1e12, allow_nan=False, allow_infinity=False
)


class TestEnergyConversions:
    def test_joules_kwh_roundtrip_exact_value(self):
        assert units.joules_to_kwh(3.6e6) == 1.0
        assert units.kwh_to_joules(1.0) == 3.6e6

    @given(finite_positive)
    def test_joules_kwh_roundtrip(self, joules):
        assert math.isclose(
            units.kwh_to_joules(units.joules_to_kwh(joules)), joules, rel_tol=1e-12
        )

    @given(finite_positive)
    def test_mwh_kwh_roundtrip(self, mwh):
        assert math.isclose(
            units.kwh_to_mwh(units.mwh_to_kwh(mwh)), mwh, rel_tol=1e-12
        )

    def test_wh_to_kwh(self):
        assert units.wh_to_kwh(1500.0) == 1.5


class TestMassConversions:
    def test_kg_tonne_roundtrip_value(self):
        assert units.tonnes_to_kg(2.5) == 2500.0
        assert units.kg_to_tonnes(2500.0) == 2.5

    def test_pounds(self):
        assert math.isclose(units.pounds_to_kg(1.0), 0.45359237)

    def test_grams(self):
        assert units.grams_to_kg(1000.0) == 1.0


class TestWattsHours:
    def test_basic(self):
        assert units.watts_hours_to_kwh(1000.0, 2.0) == 2.0

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            units.watts_hours_to_kwh(-1.0, 1.0)

    def test_rejects_negative_hours(self):
        with pytest.raises(ValueError):
            units.watts_hours_to_kwh(1.0, -1.0)

    @given(finite_positive, finite_positive)
    def test_bilinear(self, watts, hours):
        single = units.watts_hours_to_kwh(watts, hours)
        doubled = units.watts_hours_to_kwh(2 * watts, hours)
        assert math.isclose(doubled, 2 * single, rel_tol=1e-9)


class TestGpuDays:
    def test_conversion(self):
        assert units.gpu_days(2.0) == 48.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            units.gpu_days(-1.0)


class TestRates:
    def test_per_year_to_per_hour(self):
        assert math.isclose(
            units.per_year_to_per_hour(units.HOURS_PER_YEAR), 1.0
        )

    def test_hours_per_year_value(self):
        assert math.isclose(units.HOURS_PER_YEAR, 8766.0)
