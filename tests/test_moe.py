"""Sparsely-activated model trade-off tests."""

import pytest

from repro.errors import UnitError
from repro.models.moe import (
    SWITCH_LIKE,
    SparseModelConfig,
    TrainingSystemModel,
    compare_sparse_vs_dense,
    compare_vs_quality_matched_dense,
    dense_equivalent,
)


class TestSparseModelConfig:
    def test_param_accounting(self):
        config = SparseModelConfig("m", 1e9, 8, 1e9, experts_per_token=2)
        assert config.total_params == pytest.approx(9e9)
        assert config.activated_params == pytest.approx(3e9)
        assert config.sparsity_gain == pytest.approx(3.0)

    def test_switch_like_scale(self):
        assert SWITCH_LIKE.total_params > 1.4e12  # ~1.5T total
        assert SWITCH_LIKE.activated_params < 1.5e10  # ~10B activated
        assert SWITCH_LIKE.sparsity_gain > 100

    def test_dense_equivalent_has_same_totals(self):
        dense = dense_equivalent(SWITCH_LIKE)
        assert dense.total_params == pytest.approx(SWITCH_LIKE.total_params, rel=1e-6)
        assert dense.activated_params == pytest.approx(dense.total_params, rel=1e-6)

    def test_validation(self):
        with pytest.raises(UnitError):
            SparseModelConfig("bad", 1e9, 0, 1e9)
        with pytest.raises(UnitError):
            SparseModelConfig("bad", 1e9, 4, 1e9, experts_per_token=5)


class TestTrainingSystemModel:
    def test_devices_scale_with_params(self):
        system = TrainingSystemModel()
        small = SparseModelConfig("s", 1e9, 1, 1e6)
        assert system.devices_required(SWITCH_LIKE) > system.devices_required(small)

    def test_energy_scales_with_activated_params(self):
        system = TrainingSystemModel()
        sparse_e = system.training_energy(SWITCH_LIKE, 1e9)
        dense_e = system.training_energy(dense_equivalent(SWITCH_LIKE), 1e9)
        ratio = dense_e.kwh / sparse_e.kwh
        assert ratio == pytest.approx(SWITCH_LIKE.sparsity_gain, rel=0.01)

    def test_negative_tokens_rejected(self):
        with pytest.raises(UnitError):
            TrainingSystemModel().training_energy(SWITCH_LIKE, -1.0)


class TestComparisons:
    def test_capacity_matched_operational_win(self):
        result = compare_sparse_vs_dense(SWITCH_LIKE)
        assert result.operational_saving > 0.9
        # Equal total capacity -> equal resident memory -> equal embodied.
        assert result.embodied_ratio == pytest.approx(1.0)

    def test_quality_matched_embodied_cost(self):
        result = compare_vs_quality_matched_dense(SWITCH_LIKE)
        # Sparse still wins operationally per token...
        assert result.operational_saving > 0.0
        # ...but pays multi-x embodied (the paper's warning).
        assert result.embodied_ratio > 3.0

    def test_totals_consistent(self):
        result = compare_sparse_vs_dense(SWITCH_LIKE)
        assert result.sparse_total.kg == pytest.approx(
            result.sparse_operational.kg + result.sparse_embodied.kg
        )

    def test_pue_validated(self):
        with pytest.raises(UnitError):
            compare_sparse_vs_dense(SWITCH_LIKE, pue=0.9)
