"""Server SKU, cluster, and auto-scaling tests."""

import numpy as np
import pytest

from repro.core.quantities import Power
from repro.energy.devices import CPU_SERVER, V100
from repro.errors import SimulationError, UnitError
from repro.fleet.autoscale import (
    AutoScalerConfig,
    autoscale_tier,
    opportunistic_training_hours,
)
from repro.fleet.cluster import Cluster
from repro.fleet.server import (
    AI_TRAINING_SKU,
    Server,
    ServerSKU,
    WEB_SKU,
)
from repro.workloads.traces import diurnal_demand


class TestServerSKU:
    def test_power_includes_accelerators(self):
        cpu_only = ServerSKU("cpu", CPU_SERVER)
        with_gpus = AI_TRAINING_SKU
        assert with_gpus.power_at(0.5).watts > cpu_only.power_at(0.5).watts

    def test_peak_vs_idle(self):
        assert AI_TRAINING_SKU.peak_power.watts > AI_TRAINING_SKU.idle_power.watts

    def test_accelerator_consistency_checked(self):
        with pytest.raises(UnitError):
            ServerSKU("bad", CPU_SERVER, accelerator=V100, n_accelerators=0)
        with pytest.raises(UnitError):
            ServerSKU("bad", CPU_SERVER, n_accelerators=4)

    def test_server_power_toggles(self):
        server = Server(WEB_SKU, 0)
        server.set_utilization(0.5)
        assert server.current_power().watts > 0
        server.powered = False
        assert server.current_power().watts == 0.0

    def test_utilization_validated(self):
        server = Server(WEB_SKU, 0)
        with pytest.raises(UnitError):
            server.set_utilization(1.5)


class TestCluster:
    def test_embodied_total(self):
        cluster = Cluster("c", WEB_SKU, 10)
        assert cluster.embodied_total().kg == pytest.approx(WEB_SKU.embodied.kg * 10)

    def test_power_servers(self):
        cluster = Cluster("c", WEB_SKU, 10)
        cluster.set_uniform_utilization(0.5)
        full = cluster.current_power().watts
        cluster.power_servers(5)
        assert cluster.powered_count == 5
        assert cluster.current_power().watts < full

    def test_power_servers_bounds(self):
        cluster = Cluster("c", WEB_SKU, 4)
        with pytest.raises(SimulationError):
            cluster.power_servers(5)

    def test_set_utilizations_shape_checked(self):
        cluster = Cluster("c", WEB_SKU, 4)
        with pytest.raises(UnitError):
            cluster.set_utilizations(np.array([0.5, 0.5]))

    def test_mean_utilization_only_powered(self):
        cluster = Cluster("c", WEB_SKU, 4)
        cluster.set_uniform_utilization(0.8)
        cluster.power_servers(2)
        assert cluster.mean_utilization() == pytest.approx(0.8)

    def test_headroom(self):
        cluster = Cluster("c", WEB_SKU, 2, power_budget=Power(1000.0))
        cluster.set_uniform_utilization(0.0)
        assert cluster.headroom().watts <= 1000.0

    def test_energy_over_hours(self):
        cluster = Cluster("c", WEB_SKU, 2)
        cluster.set_uniform_utilization(1.0)
        energy = cluster.energy_over_hours(10.0)
        assert energy.kwh == pytest.approx(
            2 * WEB_SKU.peak_power.watts * 10 / 1000.0
        )


class TestAutoscale:
    def test_frees_up_to_quarter(self):
        result = autoscale_tier(diurnal_demand(168, seed=0), 1000)
        assert 0.15 < result.peak_freed_fraction < 0.40  # paper: "up to 25%"

    def test_saves_energy(self):
        result = autoscale_tier(diurnal_demand(168, seed=0), 1000)
        assert result.energy_saving_fraction > 0.0

    def test_respects_floor(self):
        config = AutoScalerConfig(min_powered_fraction=0.9)
        result = autoscale_tier(diurnal_demand(168, seed=0), 100, config=config)
        assert np.all(result.powered_servers >= 90)

    def test_never_exceeds_tier(self):
        result = autoscale_tier(diurnal_demand(168, seed=1), 500)
        assert np.all(result.powered_servers <= 500)
        assert np.all(result.freed_servers >= 0)

    def test_demand_validated(self):
        with pytest.raises(UnitError):
            autoscale_tier(np.array([1.5]), 10)

    def test_opportunistic_hours(self):
        result = autoscale_tier(diurnal_demand(48, seed=0), 100)
        hours = opportunistic_training_hours(result)
        assert hours == pytest.approx(float(np.sum(result.freed_servers)))
        gpu_hours = opportunistic_training_hours(result, gpus_per_server=8)
        assert gpu_hours == pytest.approx(8 * hours)
