"""Report rendering tests."""

import pytest

from repro.core.footprint import (
    EmbodiedFootprint,
    OperationalFootprint,
    Phase,
    PhaseFootprint,
    TotalFootprint,
)
from repro.core.quantities import Carbon, Energy
from repro.core.report import (
    footprint_report,
    format_bar,
    format_bar_chart,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 22.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0]
        assert "bb" in lines[3]

    def test_floats_formatted(self):
        text = format_table(["v"], [[1234.5678]])
        assert "1,230" in text or "1,234" in text or "1.23e+03" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatBar:
    def test_full_bar(self):
        assert format_bar(1.0, width=10) == "#" * 10

    def test_clamps(self):
        assert format_bar(2.0, width=10) == "#" * 10
        assert format_bar(-1.0, width=10) == ""

    def test_chart_scales_to_max(self):
        chart = format_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            format_bar_chart(["a"], [1.0, 2.0])

    def test_chart_all_zero(self):
        chart = format_bar_chart(["a"], [0.0])
        assert "#" not in chart


class TestFootprintReport:
    def test_report_contains_phases_and_equivalence(self):
        op = OperationalFootprint(
            (
                PhaseFootprint(Phase.OFFLINE_TRAINING, Energy(10.0), Carbon(100.0)),
                PhaseFootprint(Phase.INFERENCE, Energy(20.0), Carbon(300.0)),
            )
        )
        fp = TotalFootprint("task-x", op, EmbodiedFootprint(Carbon(50.0)))
        text = footprint_report([fp])
        assert "task-x" in text
        assert "offline-training" in text
        assert "inference" in text
        assert "miles" in text
