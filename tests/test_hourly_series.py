"""The HourlySeries accounting engine: algebra, context, and equivalences.

Three layers of guarantees:

* property-style algebra tests of :class:`repro.core.series.HourlySeries`
  (randomized values via hypothesis, alignment and immutability checks);
* :class:`repro.core.context.AccountingContext` semantics (grid XOR
  static intensity, PUE, amortization policy);
* equivalence tests pinning each refactored consumer to an in-test
  reference implementation of its pre-refactor hour-by-hour loop, plus a
  grep-based boundary test proving the ``kWh x intensity`` integration
  happens only inside ``repro/core/``.
"""

import heapq
import re
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.carbon.embodied import AmortizationPolicy, GPU_SERVER_EMBODIED
from repro.carbon.grid import constant_grid_trace, synthesize_grid_trace
from repro.carbon.intensity import CarbonIntensity, US_AVERAGE
from repro.core.context import AccountingContext
from repro.core.quantities import Carbon, Energy
from repro.core.series import HourlySeries
from repro.errors import UnitError
from repro.fleet.idle import IdleGovernor
from repro.fleet.scheduler import JobRecord, schedule_fifo
from repro.lifecycle.ingestion_sim import IngestionPipelineSpec, simulate_pipeline
from repro.lifecycle.jobs import EXPERIMENTATION_JOBS
from repro.scheduling.jobs import DeferrableJob
from repro.scheduling.storage import Battery, _arbitrage_segments, _arbitrage_sequential, run_arbitrage
from repro.telemetry.time_varying import TimeVaryingAccountant
from repro.workloads.traces import experiment_arrivals

hourly_values = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=48,
)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(UnitError):
            HourlySeries(np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(UnitError):
            HourlySeries(np.ones((2, 3)))

    def test_rejects_negative(self):
        with pytest.raises(UnitError):
            HourlySeries(np.array([1.0, -0.5]))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(UnitError):
            HourlySeries(np.array([1.0, np.nan]))
        with pytest.raises(UnitError):
            HourlySeries(np.array([np.inf]))

    def test_copies_input(self):
        source = np.array([1.0, 2.0, 3.0])
        series = HourlySeries(source)
        source[0] = 99.0
        assert series.values[0] == 1.0

    def test_values_are_read_only(self):
        series = HourlySeries(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            series.values[0] = 5.0

    def test_constant_and_zeros(self):
        flat = HourlySeries.constant(3.5, 4)
        assert len(flat) == 4 and flat.hours == 4
        np.testing.assert_array_equal(flat.values, np.full(4, 3.5))
        np.testing.assert_array_equal(HourlySeries.zeros(3).values, np.zeros(3))
        with pytest.raises(UnitError):
            HourlySeries.constant(1.0, 0)

    def test_from_power_watts(self):
        series = HourlySeries.from_power_watts(np.array([500.0, 1500.0]))
        np.testing.assert_array_equal(series.values, [0.5, 1.5])


class TestAlgebra:
    @settings(max_examples=30, deadline=None)
    @given(hourly_values, hourly_values)
    def test_add_is_commutative(self, a, b):
        n = min(len(a), len(b))
        x, y = HourlySeries(np.array(a[:n])), HourlySeries(np.array(b[:n]))
        np.testing.assert_array_equal((x + y).values, (y + x).values)

    @settings(max_examples=30, deadline=None)
    @given(hourly_values)
    def test_add_matches_elementwise_sum(self, a):
        x = HourlySeries(np.array(a))
        np.testing.assert_array_equal((x + x).values, 2.0 * np.array(a))

    def test_add_rejects_misaligned(self):
        with pytest.raises(UnitError):
            HourlySeries.zeros(3) + HourlySeries.zeros(4)

    def test_add_rejects_non_series(self):
        with pytest.raises(TypeError):
            HourlySeries.zeros(3) + 1.0

    @settings(max_examples=30, deadline=None)
    @given(hourly_values, st.floats(min_value=0.0, max_value=100.0))
    def test_scale_distributes_over_add(self, a, factor):
        x = HourlySeries(np.array(a))
        np.testing.assert_allclose(
            (x + x).scale(factor).values,
            (x.scale(factor) + x.scale(factor)).values,
            rtol=1e-12,
            atol=1e-290,  # subnormal inputs underflow asymmetrically
        )

    @settings(max_examples=30, deadline=None)
    @given(hourly_values, st.floats(min_value=0.0, max_value=100.0))
    def test_mul_forms_agree(self, a, factor):
        x = HourlySeries(np.array(a))
        np.testing.assert_array_equal((x * factor).values, (factor * x).values)
        np.testing.assert_array_equal((x * factor).values, x.scale(factor).values)

    def test_scale_rejects_negative_and_series(self):
        with pytest.raises(UnitError):
            HourlySeries.zeros(3).scale(-1.0)
        with pytest.raises(UnitError):
            HourlySeries.zeros(3).scale(HourlySeries.zeros(3))

    @settings(max_examples=30, deadline=None)
    @given(hourly_values, st.floats(min_value=0.0, max_value=1e6))
    def test_minimum_maximum_bracket(self, a, cap):
        x = HourlySeries(np.array(a))
        lo, hi = x.minimum(cap), x.maximum(cap)
        assert np.all(lo.values <= hi.values)
        np.testing.assert_array_equal(np.maximum(lo.values, hi.values), hi.values)
        np.testing.assert_array_equal(
            x.minimum(x).values, x.values
        )  # idempotent against itself

    def test_minimum_rejects_misaligned(self):
        with pytest.raises(UnitError):
            HourlySeries.zeros(3).minimum(HourlySeries.zeros(5))

    @settings(max_examples=30, deadline=None)
    @given(hourly_values, st.integers(min_value=1, max_value=120))
    def test_tile_is_periodic(self, a, horizon):
        x = HourlySeries(np.array(a))
        tiled = x.tile_to(horizon)
        assert len(tiled) == horizon
        for i in (0, horizon // 2, horizon - 1):
            assert tiled.values[i] == x.values[i % len(x)]

    def test_tile_rejects_non_positive(self):
        with pytest.raises(UnitError):
            HourlySeries.zeros(3).tile_to(0)

    @settings(max_examples=30, deadline=None)
    @given(hourly_values)
    def test_reductions(self, a):
        arr = np.array(a)
        x = HourlySeries(arr)
        assert x.total() == pytest.approx(float(np.sum(arr)), rel=1e-12)
        assert x.mean() == pytest.approx(float(np.mean(arr)), rel=1e-12)
        assert x.peak() == float(np.max(arr))
        assert x.integrate().kwh == x.total()


class TestStreamingOps:
    def test_append_adds_one_hour(self):
        series = HourlySeries(np.array([1.0, 2.0]))
        grown = series.append(3.0)
        np.testing.assert_array_equal(grown.values, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(series.values, [1.0, 2.0])  # immutable

    def test_append_validates_like_the_constructor(self):
        with pytest.raises(UnitError):
            HourlySeries.zeros(2).append(-1.0)
        with pytest.raises(UnitError):
            HourlySeries.zeros(2).append(float("nan"))

    def test_extend_accepts_series_and_arrays(self):
        base = HourlySeries(np.array([1.0, 2.0]))
        np.testing.assert_array_equal(
            base.extend(HourlySeries(np.array([3.0]))).values, [1.0, 2.0, 3.0]
        )
        np.testing.assert_array_equal(
            base.extend([3.0, 4.0]).values, [1.0, 2.0, 3.0, 4.0]
        )
        assert base.extend([]) is base

    def test_extend_rejects_bad_shapes(self):
        with pytest.raises(UnitError):
            HourlySeries.zeros(2).extend(np.ones((2, 2)))

    def test_window_is_half_open(self):
        series = HourlySeries(np.arange(1.0, 6.0))
        np.testing.assert_array_equal(series.window(1, 3).values, [2.0, 3.0])
        np.testing.assert_array_equal(series.window(0, 5).values, series.values)

    @pytest.mark.parametrize("bounds", [(-1, 3), (3, 3), (2, 1), (0, 6)])
    def test_window_rejects_bad_bounds(self, bounds):
        with pytest.raises(UnitError):
            HourlySeries(np.arange(1.0, 6.0)).window(*bounds)

    def test_append_then_window_round_trips(self):
        series = HourlySeries.zeros(3)
        for value in (1.0, 2.0):
            series = series.append(value)
        np.testing.assert_array_equal(series.window(3, 5).values, [1.0, 2.0])


class TestEmissions:
    def test_constant_grid_equals_static_product(self):
        grid = constant_grid_trace(US_AVERAGE, 48)
        series = HourlySeries(np.linspace(0.0, 10.0, 48))
        expected = series.total() * US_AVERAGE.kg_per_kwh
        assert series.emissions(grid).kg == pytest.approx(expected, rel=1e-12)

    def test_matches_hourly_reference(self):
        grid = synthesize_grid_trace(72, seed=3)
        values = np.random.default_rng(0).uniform(0.0, 50.0, 30)
        series = HourlySeries(values)
        for start in (0, 5, 70):  # 70 + 30 wraps past the trace end
            reference = sum(
                values[h] * grid.intensity_at(start + h).kg_per_kwh
                for h in range(len(values))
            )
            assert series.emissions(grid, start_hour=start).kg == pytest.approx(
                reference, rel=1e-12
            )

    def test_agrees_with_grid_emissions_for_profile(self):
        grid = synthesize_grid_trace(168, seed=1)
        profile = np.random.default_rng(1).uniform(0.0, 20.0, 168)
        assert HourlySeries(profile).emissions(grid, start_hour=7).kg == (
            grid.emissions_for_profile(profile, start_hour=7).kg
        )


class TestAccountingContext:
    def test_rejects_grid_and_intensity_together(self):
        with pytest.raises(UnitError):
            AccountingContext(
                grid=constant_grid_trace(US_AVERAGE, 24), intensity=US_AVERAGE
            )

    def test_rejects_pue_below_one(self):
        with pytest.raises(UnitError):
            AccountingContext(intensity=US_AVERAGE, pue=0.9)

    def test_static_operational_applies_pue(self):
        context = AccountingContext(intensity=CarbonIntensity(0.4, "test"), pue=1.5)
        series = HourlySeries.constant(10.0, 24)
        assert context.operational(series).kg == pytest.approx(
            10.0 * 24 * 1.5 * 0.4, rel=1e-12
        )

    def test_grid_operational_matches_series_emissions(self):
        grid = synthesize_grid_trace(96, seed=5)
        context = AccountingContext(grid=grid, pue=1.2)
        series = HourlySeries(np.random.default_rng(2).uniform(0.0, 5.0, 96))
        expected = series.scale(1.2).emissions(grid, start_hour=3).kg
        assert context.operational(series, start_hour=3).kg == expected

    def test_operational_requires_a_source(self):
        bare = AccountingContext()
        with pytest.raises(UnitError):
            bare.operational(HourlySeries.zeros(4))
        with pytest.raises(UnitError):
            bare.operational_for_energy(Energy(1.0))

    def test_energy_fallback_uses_grid_average(self):
        grid = synthesize_grid_trace(120, seed=7)
        context = AccountingContext(grid=grid, pue=1.1)
        energy = Energy(100.0)
        expected = 100.0 * 1.1 * grid.average_intensity().kg_per_kwh
        assert context.operational_for_energy(energy).kg == pytest.approx(
            expected, rel=1e-12
        )

    def test_facility_series_and_energy(self):
        context = AccountingContext(intensity=US_AVERAGE, pue=1.4)
        series = HourlySeries.constant(2.0, 6)
        np.testing.assert_allclose(
            context.facility_series(series).values, np.full(6, 2.8), rtol=1e-12
        )
        assert context.facility_energy(Energy(10.0)).kwh == pytest.approx(14.0)

    def test_amortized_embodied_is_linear_in_hours(self):
        policy = AmortizationPolicy(lifetime_years=4.0, average_utilization=1.0)
        context = AccountingContext(intensity=US_AVERAGE, amortization=policy)
        rate = policy.rate_per_utilized_hour(GPU_SERVER_EMBODIED)
        got = context.amortized_embodied(GPU_SERVER_EMBODIED, 1000.0, n_servers=3.0)
        assert got.kg == pytest.approx(rate * 1000.0 * 3.0, rel=1e-12)
        with pytest.raises(UnitError):
            context.amortized_embodied(GPU_SERVER_EMBODIED, -1.0)

    def test_infrastructure_factor_scales_rate(self):
        base = AmortizationPolicy()
        heavy = AmortizationPolicy(infrastructure_factor=1.5)
        manufacturing = Carbon(1000.0)
        assert heavy.rate_per_utilized_hour(manufacturing) == pytest.approx(
            1.5 * base.rate_per_utilized_hour(manufacturing), rel=1e-12
        )

    def test_devices_per_server_divides_device_rate(self):
        policy = AmortizationPolicy(devices_per_server=8.0)
        manufacturing = Carbon(1000.0)
        assert policy.rate_per_device_hour(manufacturing) == pytest.approx(
            policy.rate_per_utilized_hour(manufacturing) / 8.0, rel=1e-12
        )
        with pytest.raises(UnitError):
            AmortizationPolicy(devices_per_server=0.0)
        with pytest.raises(UnitError):
            AmortizationPolicy(infrastructure_factor=0.5)


def _reference_fifo(stream, total_gpus, horizon_hours, backfill=True):
    """The pre-refactor hour-by-hour FIFO loop, kept as the test oracle."""
    n = len(stream)
    order = np.argsort(stream.start_hours, kind="stable")
    submit = stream.start_hours[order]
    durations = stream.duration_hours[order]
    gpus = stream.n_gpus[order]
    free = total_gpus
    releases, queue, next_job = [], [], 0
    records = []
    busy = np.zeros(horizon_hours)
    for hour in range(horizon_hours):
        t = float(hour)
        while releases and releases[0][0] <= t:
            _, released = heapq.heappop(releases)
            free += released
        while next_job < n and submit[next_job] <= t:
            queue.append(next_job)
            next_job += 1
        placed = []
        for pos, job_idx in enumerate(queue):
            need = int(gpus[job_idx])
            if need <= free:
                free -= need
                end = t + float(durations[job_idx])
                heapq.heappush(releases, (end, need))
                records.append(
                    JobRecord(
                        job_id=int(order[job_idx]),
                        submit_hour=float(submit[job_idx]),
                        start_hour=t,
                        end_hour=end,
                        n_gpus=need,
                    )
                )
                placed.append(pos)
            elif not backfill:
                break
        for pos in reversed(placed):
            queue.pop(pos)
        busy[hour] = total_gpus - free
    return records, busy


class TestConsumerEquivalences:
    """Each refactored consumer reproduces its pre-refactor loop exactly."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("backfill", [True, False])
    def test_fifo_scheduler_matches_hourly_loop(self, seed, backfill):
        stream = experiment_arrivals(
            EXPERIMENTATION_JOBS, jobs_per_day=40, days=3, seed=seed
        )
        horizon = 200
        schedule = schedule_fifo(stream, 64, horizon, backfill=backfill)
        records, busy = _reference_fifo(stream, 64, horizon, backfill=backfill)
        np.testing.assert_array_equal(schedule.busy_gpus, busy)
        assert schedule.records == records

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_storage_segments_match_sequential(self, seed):
        rng = np.random.default_rng(seed)
        hours = int(rng.integers(24, 400))
        load = rng.uniform(0.0, 200.0, hours)
        intensity = rng.uniform(0.05, 0.9, hours)
        battery = Battery(
            capacity_kwh=float(rng.uniform(50.0, 500.0)),
            max_power_kw=float(rng.uniform(10.0, 150.0)),
            round_trip_efficiency=float(rng.uniform(0.7, 1.0)),
        )
        low, high = np.percentile(intensity, [25.0, 60.0])
        soc_a, kwh_a = _arbitrage_sequential(load, intensity, battery, low, high)
        soc_b, kwh_b = _arbitrage_segments(load, intensity, battery, low, high)
        np.testing.assert_array_equal(soc_a, soc_b)
        np.testing.assert_array_equal(kwh_a, kwh_b)

    def test_storage_outcome_matches_manual_accounting(self):
        grid = synthesize_grid_trace(168, seed=9)
        load = np.random.default_rng(9).uniform(10.0, 120.0, 168)
        battery = Battery(capacity_kwh=300.0, max_power_kw=60.0)
        outcome = run_arbitrage(load, grid, battery)
        intensity = grid.intensity_kg_per_kwh
        assert outcome.carbon_without.kg == pytest.approx(
            float(np.sum(load * intensity)), rel=1e-12
        )
        soc, grid_kwh = _arbitrage_sequential(
            load,
            intensity,
            battery,
            float(np.percentile(intensity, 25.0)),
            float(np.percentile(intensity, 50.0)),
        )
        assert outcome.carbon_with.kg == pytest.approx(
            float(np.sum(grid_kwh * intensity)), rel=1e-12
        )
        np.testing.assert_array_equal(outcome.state_of_charge_kwh, soc)

    def test_deferrable_job_carbon_matches_old_formula(self):
        grid = synthesize_grid_trace(168, seed=4)
        job = DeferrableJob(
            job_id=0, submit_hour=0, duration_hours=30, power_kw=75.0, deadline_hour=100
        )
        for start in (0, 17, 160):  # last one wraps around the trace
            reference = 75.0 * sum(
                grid.intensity_kg_per_kwh[(start + h) % len(grid)]
                for h in range(30)
            )
            assert job.carbon_at(grid, start).kg == pytest.approx(reference, rel=1e-12)

    def test_time_varying_accountant_matches_chunk_loop(self):
        grid = synthesize_grid_trace(96, seed=6)
        rng = np.random.default_rng(6)
        accountant = TimeVaryingAccountant(grid=grid, start_hour=5)
        intervals = [
            (float(rng.uniform(0.5, 30.0)), float(rng.uniform(300.0, 9000.0)))
            for _ in range(40)
        ]
        for kwh, duration_s in intervals:
            accountant.record_interval(Energy(kwh), duration_s)
        # Pre-refactor accounting: price each boundary-split chunk as it
        # is walked, instead of binning into a profile first.
        kg = 0.0
        clock = 5.0
        for kwh, duration_s in intervals:
            hours = duration_s / 3600.0
            remaining, position = hours, clock
            while remaining > 1e-12:
                step = min(remaining, (int(position) + 1) - position)
                kg += kwh * (step / hours) * grid.intensity_at(int(position)).kg_per_kwh
                position += step
                remaining -= step
            clock += hours
        assert accountant.carbon().kg == pytest.approx(kg, rel=1e-9)

    @pytest.mark.parametrize("slo_ms", [0.05, 1.0])
    def test_idle_choose_indices_matches_scalar_choose(self, slo_ms):
        governor = IdleGovernor(latency_slo_ms=slo_ms)
        predictions = np.random.default_rng(8).exponential(40.0, 500)
        chosen = governor.choose_indices(predictions)
        for value, index in zip(predictions, chosen):
            assert governor.menu[index] == governor.choose(float(value))

    @pytest.mark.parametrize("jitter", [0.0, 0.25])
    def test_ingestion_matches_per_second_loop(self, jitter):
        spec = IngestionPipelineSpec()
        result = simulate_pipeline(spec, n_workers=5, duration_s=300, jitter=jitter, seed=3)
        rng = np.random.default_rng(3)
        supply = min(spec.storage_read_rate, 5 * spec.transform_rate_per_worker)
        queue = consumed = stalled = depth = 0.0
        for _ in range(300):
            produced = supply * float(rng.lognormal(0.0, jitter)) if jitter else supply
            available = queue + produced
            take = min(available, spec.trainer_consume_rate)
            if take < spec.trainer_consume_rate - 1e-9:
                stalled += 1.0 - take / spec.trainer_consume_rate
            queue = min(spec.queue_capacity_batches, available - take)
            consumed += take
            depth += queue
        assert result.throughput_batches_per_s == pytest.approx(consumed / 300, rel=1e-12)
        assert result.trainer_stall_fraction == pytest.approx(stalled / 300, rel=1e-12, abs=1e-15)
        assert result.mean_queue_depth == pytest.approx(depth / 300, rel=1e-12)


INTEGRATION_PATTERN = re.compile(
    r"(\*\s*[\w.\[\]]*intensity_kg_per_kwh)|(intensity_kg_per_kwh[\w.\[\]]*\s*\*)"
)


def test_carbon_integration_lives_only_in_core():
    """No module outside repro/core multiplies kWh by an intensity array.

    The hourly accounting identity must flow through
    ``HourlySeries.emissions`` so simulators cannot silently diverge.
    """
    src = Path(__file__).resolve().parents[1] / "src" / "repro"
    core = src / "core"
    offenders = []
    for path in sorted(src.rglob("*.py")):
        if core in path.parents:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if INTEGRATION_PATTERN.search(line):
                offenders.append(f"{path.relative_to(src)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "hourly kWh x intensity multiplication outside repro/core/ "
        "(route it through HourlySeries.emissions):\n" + "\n".join(offenders)
    )


HOURS_PER_YEAR_LITERAL = re.compile(r"\b8766\b|\b8760\b")


def test_hours_per_year_literal_lives_only_in_units():
    """No module hardcodes hours-per-year (8766 Julian / 8760 calendar).

    Annualized accounting must go through ``repro.units.HOURS_PER_YEAR``
    so every amortization uses the same year convention; an inline
    literal would silently reintroduce the calendar-vs-Julian mismatch
    the unification PR removed.
    """
    src = Path(__file__).resolve().parents[1] / "src" / "repro"
    units = src / "units.py"
    offenders = []
    for path in sorted(src.rglob("*.py")):
        if path == units:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if HOURS_PER_YEAR_LITERAL.search(line):
                offenders.append(f"{path.relative_to(src)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "hours-per-year literal outside repro/core/units.py "
        "(use the shared HOURS_PER_YEAR constant):\n" + "\n".join(offenders)
    )
