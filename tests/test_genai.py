"""The GenAI workload layer: specs, laws, experiments, service, ledger.

Covers the :mod:`repro.workloads.genai` subsystem end to end:

* structured spec validation (the 10+-row boundary table of rejected
  knobs, each with its :class:`~repro.errors.UnitError` message);
* the exact workload laws the invariant registry names (energy linear
  in tokens, inverse in MFU, checkpoint overhead vanishing, serving
  additivity, the crossover metamorphic);
* the grep-enforced confinement of the diurnal sinusoid to
  ``repro.workloads.traces`` (mirroring the PR-2 kWh x intensity gate);
* registration of the four golden experiments and their byte-exact
  round trips through the runner envelope, the ``/footprint`` genai
  queries, and ``ledger show --payload``.
"""

from __future__ import annotations

import math
import re
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.core.canonical import canonical_bytes
from repro.energy.devices import A100_TENSOR, V100_TENSOR
from repro.errors import QueryError, UnitError
from repro.experiments.registry import experiment_ids, get_spec, run_experiment
from repro.service import parse_query, render_payload
from repro.testing.invariants import check_result
from repro.workloads.genai import (
    MODEL_INVENTORY,
    GenAIFootprint,
    LifetimeCrossover,
    LLMServingSpec,
    LLMTrainingSpec,
    default_genai_context,
    default_serving_spec,
    inventory_spec,
    kv_cache_gb_per_request,
    lifetime_crossover,
    scale_qps,
    serving_fleet,
    serving_footprint,
    training_footprint,
)
from repro.workloads.traces import diurnal_demand

GENAI_EXPERIMENTS = (
    "ext-genai-inventory",
    "ext-genai-crossover",
    "ext-genai-fleet",
    "ext-genai-checkpoint",
)


def training(**overrides) -> LLMTrainingSpec:
    base = dict(name="t", n_params=7.0e9, n_tokens=1.4e11, n_accelerators=512)
    base.update(overrides)
    return LLMTrainingSpec(**base)


def serving(**overrides) -> LLMServingSpec:
    base = dict(name="s", n_params=7.0e9, peak_qps=100.0, hours=72)
    base.update(overrides)
    return LLMServingSpec(**base)


# ---------------------------------------------------------------------------
# Spec validation: the boundary table
# ---------------------------------------------------------------------------


class TestSpecValidation:
    BOUNDARY_TABLE = [
        # (constructor, overrides, message fragment)
        (training, {"n_params": -1.0}, "n_params must be positive"),
        (training, {"n_tokens": float("nan")}, "n_tokens must be finite"),
        (training, {"mfu": 0.0}, "mfu must be in (0, 1]"),
        (training, {"mfu": 1.5}, "mfu must be in (0, 1]"),
        (training, {"n_accelerators": 0}, "n_accelerators must be a positive integer"),
        (training, {"checkpoint_interval_hours": 0.0},
         "checkpoint_interval_hours must be positive"),
        (training, {"checkpoint_cost_hours": -0.1},
         "checkpoint_cost_hours must be non-negative"),
        (training, {"mtbf_hours": float("inf")}, "mtbf_hours must be finite"),
        (training, {"failed_run_fraction": 11.0}, "at most 10"),
        (serving, {"peak_qps": 0.0}, "peak_qps must be positive"),
        (serving, {"batch_size": 0}, "batch_size must be a positive integer"),
        (serving, {"hours": 0}, "hours must be a positive integer"),
        (serving, {"trough_fraction": 0.0}, "trough_fraction must be in (0, 1]"),
        (serving, {"tokens_per_request": float("-inf")},
         "tokens_per_request must be finite"),
        (serving, {"n_params": 4.5e10}, "do not fit"),
        (serving, {"context_tokens": 2.0e5}, "does not fit beside the weights"),
    ]

    @pytest.mark.parametrize(
        "factory, overrides, fragment",
        BOUNDARY_TABLE,
        ids=[
            f"{factory.__name__}-{next(iter(overrides))}-{i}"
            for i, (factory, overrides, _) in enumerate(BOUNDARY_TABLE)
        ],
    )
    def test_invalid_knob_is_rejected_with_structured_message(
        self, factory, overrides, fragment
    ):
        with pytest.raises(UnitError, match=re.escape(fragment)):
            factory(**overrides)

    def test_valid_specs_construct(self):
        assert training().n_params == 7.0e9
        assert serving().peak_qps == 100.0

    def test_empty_name_is_rejected(self):
        with pytest.raises(UnitError, match="name must be non-empty"):
            training(name="")
        with pytest.raises(UnitError, match="name must be non-empty"):
            serving(name="")

    def test_inventory_lookup_is_structured(self):
        assert inventory_spec("llm-7b").n_params == 7.0e9
        with pytest.raises(UnitError, match="unknown model"):
            inventory_spec("llm-9000b")

    def test_inventory_is_chinchilla_ordered(self):
        params = [spec.n_params for spec in MODEL_INVENTORY]
        assert params == sorted(params)
        assert len(MODEL_INVENTORY) >= 4


# ---------------------------------------------------------------------------
# Training laws
# ---------------------------------------------------------------------------


class TestTrainingLaws:
    def test_energy_exactly_linear_in_tokens(self):
        spec = training()
        assert replace(spec, n_tokens=spec.n_tokens * 2.0).it_energy.joules == (
            pytest.approx(2.0 * spec.it_energy.joules, rel=1e-12)
        )

    def test_energy_exactly_inverse_in_mfu(self):
        spec = training(mfu=0.5)
        assert replace(spec, mfu=0.25).it_energy.joules == pytest.approx(
            2.0 * spec.it_energy.joules, rel=1e-12
        )

    def test_flops_model_is_six_params_tokens(self):
        spec = training(n_params=1e9, n_tokens=1e10)
        assert spec.total_training_flops == 6.0 * 1e9 * 1e10

    def test_tensor_core_peak_drives_device_hours(self):
        """The same run on V100 tensor cores takes 312/125 x the hours."""
        a100 = training()
        v100 = training(accelerator=V100_TENSOR)
        assert v100.base_accelerator_hours / a100.base_accelerator_hours == (
            pytest.approx(A100_TENSOR.peak_tflops / V100_TENSOR.peak_tflops)
        )

    def test_overhead_multiplier_compounds_restart_and_failed_runs(self):
        spec = training()
        expected = (1.0 + spec.checkpoint_write_overhead
                    + spec.expected_lost_work_fraction) * (
            1.0 + spec.failed_run_fraction
        )
        assert spec.overhead_multiplier == pytest.approx(expected, rel=1e-12)

    def test_checkpoint_overhead_vanishes_with_interval(self):
        spec = training(checkpoint_interval_hours=1e9)
        assert spec.checkpoint_write_overhead <= 1e-9
        assert training().restart_overhead_fraction >= 0.0

    def test_young_daly_interval_minimizes_overhead(self):
        spec = training()
        optimum = spec.optimal_checkpoint_interval_hours
        best = replace(spec, checkpoint_interval_hours=optimum)
        for factor in (0.1, 0.5, 2.0, 10.0):
            other = replace(spec, checkpoint_interval_hours=optimum * factor)
            assert best.restart_overhead_fraction <= other.restart_overhead_fraction

    def test_zero_cost_checkpointing_has_no_optimum(self):
        assert training(checkpoint_cost_hours=0.0).optimal_checkpoint_interval_hours == 0.0

    def test_it_series_integrates_to_it_energy(self):
        spec = training()
        assert spec.it_series().integrate().joules == pytest.approx(
            spec.it_energy.joules, rel=1e-12
        )
        assert len(spec.it_series().values) == math.ceil(spec.wall_clock_hours)

    def test_footprint_splits_operational_and_embodied(self):
        fp = training_footprint(training())
        assert isinstance(fp, GenAIFootprint)
        assert fp.total.kg == pytest.approx(fp.operational.kg + fp.embodied.kg)
        assert 0.0 < fp.embodied_share < 1.0
        assert fp.operational_share + fp.embodied_share == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# KV-cache geometry and serving laws
# ---------------------------------------------------------------------------


class TestServingLaws:
    def test_kv_cache_monotone_in_context(self):
        assert kv_cache_gb_per_request(7e9, 2048.0) == pytest.approx(
            2.0 * kv_cache_gb_per_request(7e9, 1024.0)
        )

    def test_kv_pressure_caps_the_effective_batch(self):
        roomy = serving(batch_size=8)
        assert roomy.effective_batch == 8
        squeezed = serving(batch_size=512, context_tokens=8192.0)
        assert squeezed.effective_batch == squeezed.kv_capped_batch < 512
        assert squeezed.joules_per_token > serving(batch_size=512).joules_per_token

    def test_throughput_saturates_with_batch(self):
        spec = serving()
        assert spec.device_tokens_per_s(32) < 2.0 * spec.device_tokens_per_s(16)
        assert spec.device_tokens_per_s(1024) < spec.peak_tokens_per_s

    def test_demand_trace_is_the_shared_diurnal_helper(self):
        """Bit-equal to a direct ``diurnal_demand`` call — one sinusoid."""
        spec = serving()
        expected = diurnal_demand(
            hours=spec.hours,
            peak=1.0,
            trough_fraction=spec.trough_fraction,
            seed=spec.demand_seed,
        )
        assert np.array_equal(spec.demand_trace(), expected)

    def test_energy_additive_across_qps_splits(self):
        spec = serving()
        whole = spec.it_series().integrate().joules
        parts = (
            scale_qps(spec, 0.3).it_series().integrate().joules
            + scale_qps(spec, 0.7).it_series().integrate().joules
        )
        assert parts == pytest.approx(whole, rel=1e-9)

    def test_busy_device_hours_scale_with_qps(self):
        spec = serving()
        assert scale_qps(spec, 2.0).busy_device_hours == pytest.approx(
            2.0 * spec.busy_device_hours, rel=1e-12
        )

    def test_serving_fleet_sizes_for_peak_and_autoscales(self):
        fleet = serving_fleet(default_serving_spec(peak_qps=2000.0))
        assert fleet.tier_servers == math.ceil(fleet.spec.accelerators_at_peak / 8)
        assert fleet.autoscale.energy_saving_fraction >= 0.0
        assert 0.0 < fleet.embodied_share < 1.0
        assert fleet.total.kg == pytest.approx(
            fleet.operational.kg + fleet.embodied.kg
        )

    def test_serving_footprint_embodied_rides_busy_hours(self):
        spec = serving()
        context = default_genai_context()
        assert serving_footprint(scale_qps(spec, 2.0), context).embodied.kg == (
            pytest.approx(2.0 * serving_footprint(spec, context).embodied.kg, rel=1e-12)
        )


class TestCrossover:
    def test_doubling_qps_halves_the_crossover(self):
        context = default_genai_context()
        train = inventory_spec("llm-7b")
        serve = default_serving_spec()
        base = lifetime_crossover(train, serve, context)
        doubled = lifetime_crossover(train, scale_qps(serve, 2.0), context)
        assert doubled.crossover_days == pytest.approx(
            base.crossover_days / 2.0, rel=1e-9
        )
        assert doubled.crossover_days < base.crossover_days

    def test_inference_share_grows_toward_one(self):
        crossing = lifetime_crossover(
            inventory_spec("llm-7b"), default_serving_spec(), default_genai_context()
        )
        year1 = crossing.inference_share_after(365.0)
        year4 = crossing.inference_share_after(4 * 365.0)
        assert 0.0 < year1 < year4 < 1.0

    def test_idle_model_never_crosses(self):
        crossing = LifetimeCrossover(training_total_kg=1000.0, serving_kg_per_day=0.0)
        assert crossing.crossover_days == math.inf
        assert crossing.inference_share_after(365.0) == 0.0


# ---------------------------------------------------------------------------
# Diurnal-shape confinement (mirrors the PR-2 kWh x intensity gate)
# ---------------------------------------------------------------------------

SINUSOID_PATTERN = re.compile(r"\b(?:np|numpy|math)\s*\.\s*(?:cos|sin)\s*\(")


def test_diurnal_sinusoid_lives_only_in_traces():
    """No workloads module re-derives the diurnal shape.

    ``repro.workloads.serving`` and ``repro.workloads.genai`` must share
    :func:`repro.workloads.traces.diurnal_demand` rather than duplicate
    the sinusoid, so a scenario comparing the two is comparing workloads
    — not accidentally-different day shapes.
    """
    workloads = Path(__file__).resolve().parents[1] / "src" / "repro" / "workloads"
    offenders = []
    for path in sorted(workloads.rglob("*.py")):
        if path.name == "traces.py":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if SINUSOID_PATTERN.search(line):
                offenders.append(f"{path.relative_to(workloads)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "diurnal sinusoid outside repro/workloads/traces.py "
        "(share diurnal_demand instead):\n" + "\n".join(offenders)
    )


def test_genai_imports_the_shared_trace_helper():
    genai_src = (
        Path(__file__).resolve().parents[1] / "src" / "repro" / "workloads" / "genai.py"
    )
    assert "diurnal_demand" in genai_src.read_text()


# ---------------------------------------------------------------------------
# Experiments: registration, determinism, invariants
# ---------------------------------------------------------------------------


class TestExperiments:
    def test_all_four_registered_as_extensions(self):
        ids = experiment_ids()
        assert len(ids) >= 49
        for eid in GENAI_EXPERIMENTS:
            assert eid in ids
            assert get_spec(eid).category == "extension"

    @pytest.mark.parametrize("eid", GENAI_EXPERIMENTS)
    def test_results_satisfy_every_result_invariant(self, all_results, eid):
        assert check_result(all_results[eid]) == []

    @pytest.mark.parametrize("eid", GENAI_EXPERIMENTS)
    def test_payload_round_trips_byte_identically(self, all_results, eid):
        from repro.experiments.base import ExperimentResult

        payload = all_results[eid].to_payload()
        restored = ExperimentResult.from_payload(payload)
        assert canonical_bytes(restored.to_payload()) == canonical_bytes(payload)

    def test_reruns_are_byte_identical(self):
        first = canonical_bytes(run_experiment("ext-genai-crossover").to_payload())
        second = canonical_bytes(run_experiment("ext-genai-crossover").to_payload())
        assert first == second

    def test_crossover_headline_obeys_the_metamorphic_law(self, all_results):
        headline = all_results["ext-genai-crossover"].headline
        assert headline["crossover_days_2x_qps"] == pytest.approx(
            headline["crossover_days_base"] / 2.0, rel=1e-9
        )

    def test_checkpoint_headline_pins_the_young_daly_optimum(self, all_results):
        headline = all_results["ext-genai-checkpoint"].headline
        assert headline["overhead_fraction_at_optimum"] <= (
            headline["overhead_fraction_at_1h"]
        )
        assert headline["young_daly_interval_hours"] > 0.0


# ---------------------------------------------------------------------------
# Service queries (parser-level; HTTP conformance lives in the slow tier)
# ---------------------------------------------------------------------------


class TestGenAIQueries:
    def test_model_name_normalizes_to_its_expansion(self):
        spec = inventory_spec("llm-7b")
        by_model = parse_query("genai", {"workload": "llm-training", "model": "llm-7b"})
        by_knobs = parse_query(
            "genai",
            {
                "workload": "llm-training",
                "n_params": spec.n_params,
                "n_tokens": spec.n_tokens,
                "mfu": spec.mfu,
                "n_accelerators": spec.n_accelerators,
            },
        )
        assert by_model.cache_key() == by_knobs.cache_key()
        assert render_payload(by_model.execute()) == render_payload(by_knobs.execute())

    def test_training_query_matches_library_path(self):
        query = parse_query("genai", {"workload": "llm-training", "model": "llm-1b"})
        fp = training_footprint(
            replace(inventory_spec("llm-1b"), name="service-genai"),
            query._context(),
        )
        headline = query.execute()["headline"]
        assert headline["total_kg"] == fp.total.kg
        assert headline["embodied_share"] == fp.embodied_share

    def test_serving_query_matches_library_path(self):
        query = parse_query("genai", {"workload": "llm-serving", "peak_qps": 250})
        headline = query.execute()["headline"]
        spec = query._spec()
        fp = serving_footprint(spec, query._context())
        assert headline["total_kg"] == fp.total.kg
        assert headline["joules_per_token"] == spec.joules_per_token

    def test_service_payload_bridges_to_result_invariants(self):
        from repro.service.queries import payload_to_result

        payload = parse_query(
            "genai", {"workload": "llm-serving", "peak_qps": 50}
        ).execute()
        result = payload_to_result(payload)
        assert result.experiment_id == "service-genai"
        assert check_result(result) == []

    @pytest.mark.parametrize(
        "params, fragment",
        [
            ({"workload": "llm-cooking"}, "workload"),
            ({"workload": "llm-serving", "model": "llm-7b"}, "llm-training"),
            ({"workload": "llm-training", "model": "llm-7b", "mfu": 0.5}, "not both"),
            ({"workload": "llm-training", "mfu": 2}, "mfu"),
            ({"workload": "llm-serving", "n_params": 4.5e10}, "do not fit"),
            ({"workload": "llm-training", "accelerator": "abacus"}, "accelerator"),
            ({"workload": "llm-training", "bogus": 1}, "unknown parameter"),
        ],
    )
    def test_bad_queries_raise_structured_errors(self, params, fragment):
        with pytest.raises(QueryError, match=re.escape(fragment)):
            parse_query("genai", params)


# ---------------------------------------------------------------------------
# Ledger round trip
# ---------------------------------------------------------------------------


def test_ledger_payload_round_trips_byte_identically(tmp_path, capsys, monkeypatch):
    """``ledger show --payload`` reconstructs the genai record exactly."""
    from repro.core import ledger as ledger_mod
    from repro.experiments.runner import main

    monkeypatch.delenv(ledger_mod.LEDGER_DIR_ENV_VAR, raising=False)
    ledger_dir = tmp_path / "ledger"
    assert main(
        ["ledger", "record", "ext-genai-checkpoint", "--ledger-dir", str(ledger_dir),
         "--run-id", "r-genai", "--recorded-at", "1000.0", "--quiet", "--jobs", "1"]
    ) == 0
    capsys.readouterr()
    assert main(
        ["ledger", "show", "r-genai", "--experiment", "ext-genai-checkpoint",
         "--payload", "--ledger-dir", str(ledger_dir)]
    ) == 0
    out = capsys.readouterr().out
    expected = canonical_bytes(run_experiment("ext-genai-checkpoint").to_payload())
    assert out.encode("utf-8") == expected
