"""Scaling law and compression model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnitError
from repro.models.compression import (
    dhe,
    embodied_operational_tradeoff,
    tt_rec,
    uncompressed,
)
from repro.models.dlrm import EmbeddingTableSpec
from repro.models.scaling_laws import (
    BAIDU_AUC_LAW,
    GPT3_BLEU_LAW,
    LogLinearQuality,
    RecommendationScalingLaw,
    pareto_front,
)


class TestLogLinearQuality:
    def test_gpt3_anchor(self):
        assert GPT3_BLEU_LAW.quality_at(1.0) == pytest.approx(5.0)
        assert GPT3_BLEU_LAW.quality_at(1000.0) == pytest.approx(40.0)

    def test_baidu_anchor(self):
        gain = BAIDU_AUC_LAW.quality_at(1000.0) - BAIDU_AUC_LAW.quality_at(1.0)
        assert gain == pytest.approx(0.030)

    def test_inversion(self):
        ratio = GPT3_BLEU_LAW.size_ratio_for(40.0)
        assert ratio == pytest.approx(1000.0, rel=1e-6)

    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(UnitError):
            GPT3_BLEU_LAW.quality_at(0.0)


class TestRecommendationScalingLaw:
    def test_star_comparison_paper_numbers(self):
        stars = RecommendationScalingLaw().star_comparison()
        assert stars["energy_ratio"] == pytest.approx(4.0, rel=0.01)
        assert stars["ne_degradation"] == pytest.approx(0.004, abs=0.001)

    def test_power_law_exponent_tiny(self):
        exponent = RecommendationScalingLaw().fitted_energy_exponent()
        assert 0.002 <= exponent <= 0.006

    @settings(max_examples=30)
    @given(
        st.floats(min_value=0.5, max_value=32.0, allow_nan=False),
        st.floats(min_value=0.5, max_value=32.0, allow_nan=False),
    )
    def test_ne_decreases_with_scale(self, d, m):
        law = RecommendationScalingLaw()
        assert law.normalized_entropy(d * 2, m) <= law.normalized_entropy(d, m)
        assert law.normalized_entropy(d, m * 2) <= law.normalized_entropy(d, m)

    def test_ne_bounded_below_by_asymptote(self):
        law = RecommendationScalingLaw()
        assert law.normalized_entropy(1e6, 1e6) > law.ne_inf

    def test_energy_per_step_sublinear(self):
        law = RecommendationScalingLaw()
        assert law.energy_per_step_kwh(8.0) < 8.0 * law.energy_per_step_kwh(1.0)

    def test_total_energy_linear_in_data(self):
        law = RecommendationScalingLaw()
        assert law.total_training_energy_kwh(4.0, 1.0) == pytest.approx(
            4 * law.total_training_energy_kwh(1.0, 1.0)
        )

    def test_curves_shapes(self):
        law = RecommendationScalingLaw()
        scales = np.geomspace(1, 16, 5)
        e, ne = law.tandem_curve(scales)
        assert len(e) == len(ne) == 5
        assert np.all(np.diff(ne) < 0)  # quality improves along the frontier
        assert np.all(np.diff(e) > 0)  # at increasing energy

    def test_data_scaling_curve_constant_energy(self):
        law = RecommendationScalingLaw()
        e, _ = law.data_scaling_curve(np.array([1.0, 2.0, 4.0]))
        assert np.allclose(e, e[0])


class TestParetoFront:
    def test_simple_domination(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0], [0.5, 3.0]])
        mask = pareto_front(pts)
        assert mask.tolist() == [True, False, True]

    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_front_is_nondominated(self, points):
        pts = np.array(points)
        mask = pareto_front(pts)
        assert np.any(mask)  # at least one survivor
        front = pts[mask]
        for p in front:
            dominated = np.all(pts <= p, axis=1) & np.any(pts < p, axis=1)
            assert not np.any(dominated)

    def test_rejects_bad_shape(self):
        with pytest.raises(UnitError):
            pareto_front(np.array([1.0, 2.0]))


class TestCompression:
    TABLE = EmbeddingTableSpec(rows=10_000_000, dim=64, lookups_per_sample=2)

    def test_tt_rec_exceeds_100x(self):
        assert tt_rec(self.TABLE).memory_reduction > 100.0

    def test_tt_rec_training_overhead_negligible(self):
        assert tt_rec(self.TABLE).training_time_factor < 1.2

    def test_dhe_removes_table(self):
        result = dhe(self.TABLE)
        assert result.memory_reduction > 50.0
        assert result.lookup_flops > 0

    def test_uncompressed_reference(self):
        ref = uncompressed(self.TABLE)
        assert ref.memory_reduction == 1.0
        assert ref.lookup_flops == 0.0

    def test_rank_tradeoff(self):
        low_rank = tt_rec(self.TABLE, rank=4)
        high_rank = tt_rec(self.TABLE, rank=64)
        assert low_rank.memory_reduction > high_rank.memory_reduction

    def test_tradeoff_accounting(self):
        tradeoff = embodied_operational_tradeoff(tt_rec(self.TABLE))
        assert 0 < tradeoff["memory_freed_fraction"] <= 1.0
        assert tradeoff["extra_compute_kwh_per_run"] >= 0.0

    def test_validation(self):
        with pytest.raises(UnitError):
            tt_rec(self.TABLE, rank=0)
        with pytest.raises(UnitError):
            dhe(self.TABLE, n_hashes=0)
