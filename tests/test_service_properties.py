"""Property-based tests: service responses are invariant-clean and stable.

Hypothesis drives randomized footprint/schedule parameters through a live
service (with ``SUSTAINABLE_AI_CHECK_INVARIANTS`` enabled, so the
runtime accounting self-checks fire inside the execution too) and asserts
that every 200 response:

* passes the PR-3 result-invariant registry after bridging through
  :func:`repro.service.payload_to_result` (non-negative carbon/energy,
  shares inside the unit interval, finite numbers);
* is byte-stable: repeating the identical query returns identical bytes.

The service is started once per module; Hypothesis examples travel over
real HTTP.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.carbon.intensity import regions  # noqa: E402
from repro.core.series import CHECK_ENV_VAR  # noqa: E402
from repro.service import payload_to_result  # noqa: E402
from repro.testing.invariants import check_result  # noqa: E402
from tests.serviceutil import running_service  # noqa: E402

pytestmark = pytest.mark.property

_SERVICE_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def service(request):
    import os

    previous = os.environ.get(CHECK_ENV_VAR)
    os.environ[CHECK_ENV_VAR] = "1"
    try:
        with running_service(workers=0, lru_size=512) as (handle, client):
            yield handle, client
    finally:
        if previous is None:
            os.environ.pop(CHECK_ENV_VAR, None)
        else:
            os.environ[CHECK_ENV_VAR] = previous


footprint_params = st.fixed_dictionaries(
    {
        "busy_device_hours": st.floats(0.0, 1e9, allow_nan=False),
        "utilization": st.floats(0.05, 1.0, allow_nan=False),
        "pue": st.floats(1.0, 3.0, allow_nan=False),
        "lifetime_years": st.floats(0.5, 10.0, allow_nan=False),
        "region": st.sampled_from(regions()),
        "devices_per_server": st.integers(1, 16),
        "board_power_fraction": st.floats(0.1, 1.0, allow_nan=False),
        "infrastructure_factor": st.floats(1.0, 10.0, allow_nan=False),
    }
)

schedule_params = st.fixed_dictionaries(
    {
        "n_jobs": st.integers(1, 40),
        "seed": st.integers(0, 10_000),
        "horizon_hours": st.integers(24, 168),
        "grid_seed": st.integers(0, 50),
    }
)


class TestFootprintProperties:
    @_SERVICE_SETTINGS
    @given(params=footprint_params)
    def test_response_is_invariant_clean_and_byte_stable(self, service, params):
        _handle, client = service
        first = client.post("/footprint", params)
        assert first.status == 200, first.body
        violations = check_result(payload_to_result(first.json()))
        assert violations == [], violations
        assert client.post("/footprint", params).body == first.body

    @_SERVICE_SETTINGS
    @given(params=footprint_params)
    def test_headline_is_internally_consistent(self, service, params):
        _handle, client = service
        headline = client.post("/footprint", params).json()["headline"]
        assert headline["total_kg"] == pytest.approx(
            headline["operational_kg"] + headline["embodied_kg"]
        )
        if headline["total_kg"] > 0:
            assert headline["operational_share"] + headline["embodied_share"] == (
                pytest.approx(1.0)
            )
        # PUE >= 1 means the facility never draws less than the IT load.
        assert headline["facility_energy_kwh"] >= headline["it_energy_kwh"] - 1e-9


class TestScheduleProperties:
    @_SERVICE_SETTINGS
    @given(params=schedule_params)
    def test_response_is_invariant_clean_and_byte_stable(self, service, params):
        _handle, client = service
        first = client.post("/schedule/carbon-aware", params)
        assert first.status == 200, first.body
        violations = check_result(payload_to_result(first.json()))
        assert violations == [], violations
        payload = first.json()
        headline = payload["headline"]
        # Without a capacity bound, carbon-aware placement never emits more
        # than immediate placement on the same trace.
        assert headline["carbon_aware_kg"] <= headline["immediate_kg"] + 1e-9
        assert headline["deadline_misses"] == 0.0
        assert len(payload["start_hours"]) == params["n_jobs"]
        assert client.post("/schedule/carbon-aware", params).body == first.body
