"""EPA equivalence calculator tests."""

import math

from hypothesis import given, strategies as st

from repro.core.equivalences import describe, equivalences, miles_driven
from repro.core.quantities import Carbon


class TestEquivalences:
    def test_meena_scale_miles(self):
        # The paper: Meena's footprint ~ 242,231 miles driven.  96.4 t at
        # the EPA factor should land in that neighborhood.
        miles = miles_driven(Carbon.from_tonnes(96.4))
        assert 230_000 < miles < 255_000

    def test_zero_carbon_zero_equivalents(self):
        eq = equivalences(Carbon.zero())
        assert all(v == 0.0 for v in eq.as_dict().values())

    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_linear_in_carbon(self, kg):
        one = equivalences(Carbon(1.0)).passenger_vehicle_miles
        many = equivalences(Carbon(kg)).passenger_vehicle_miles
        assert math.isclose(many, kg * one, rel_tol=1e-9, abs_tol=1e-9)

    def test_describe_mentions_miles(self):
        assert "miles" in describe(Carbon.from_tonnes(1.0))

    def test_as_dict_has_all_keys(self):
        eq = equivalences(Carbon(100.0)).as_dict()
        assert set(eq) == {
            "passenger_vehicle_miles",
            "passenger_vehicle_years",
            "homes_electricity_years",
            "gallons_of_gasoline",
            "tree_seedlings_grown_10yr",
            "smartphone_charges",
        }
