"""SSL-efficiency (Appendix C) tests."""

import pytest

from repro.errors import UnitError
from repro.ssl_efficiency.pretraining import (
    PAWS_PRETRAINING,
    PretrainingRegime,
    SIMCLR_PRETRAINING,
    SUPERVISED_TRAINING,
    amortized_cost_per_task,
    effort_ratio,
    label_cost_break_even,
    regimes_table,
)


class TestRegimes:
    def test_paper_anchor_points(self):
        assert SUPERVISED_TRAINING.top1_accuracy == 76.1
        assert SUPERVISED_TRAINING.epochs == 90.0
        assert SIMCLR_PRETRAINING.top1_accuracy == 69.3
        assert PAWS_PRETRAINING.label_fraction == 0.10
        assert PAWS_PRETRAINING.epochs == 200.0

    def test_labels_worth_roughly_10x(self):
        ratio = effort_ratio(SIMCLR_PRETRAINING, SUPERVISED_TRAINING)
        assert 9.0 < ratio < 13.0

    def test_paws_closes_most_of_the_gap(self):
        gap_ssl = SUPERVISED_TRAINING.top1_accuracy - SIMCLR_PRETRAINING.top1_accuracy
        gap_paws = SUPERVISED_TRAINING.top1_accuracy - PAWS_PRETRAINING.top1_accuracy
        assert gap_paws < gap_ssl / 5

    def test_amortization_reduces_cost_per_task(self):
        one = amortized_cost_per_task(SIMCLR_PRETRAINING, 1)
        twenty = amortized_cost_per_task(SIMCLR_PRETRAINING, 20)
        assert twenty < one
        # At high task counts, cost approaches the fine-tune epochs.
        thousand = amortized_cost_per_task(SIMCLR_PRETRAINING, 1000)
        assert thousand == pytest.approx(
            SIMCLR_PRETRAINING.finetune_epochs_per_task, rel=0.02
        )

    def test_break_even_positive(self):
        assert label_cost_break_even() > 0

    def test_regimes_table_rows(self):
        table = regimes_table()
        assert [r["regime"] for r in table] == [
            "supervised",
            "simclr-ssl",
            "paws-semi",
        ]
        supervised_row = table[0]
        assert supervised_row["epochs_vs_supervised"] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(UnitError):
            PretrainingRegime("bad", 0.0, 10.0, 0.5)
        with pytest.raises(UnitError):
            PretrainingRegime("bad", 50.0, 0.0, 0.5)
        with pytest.raises(UnitError):
            amortized_cost_per_task(SIMCLR_PRETRAINING, 0)


class TestRegimeCarbon:
    def test_paws_anchor_reproduced(self):
        from repro.ssl_efficiency.pretraining import PAWS_GPU_HOURS, regime_carbon

        # "Running on 64 V100 GPUs, this takes roughly 16 hours".
        carbon = regime_carbon(PAWS_PRETRAINING)
        assert carbon["gpu_hours"] == pytest.approx(PAWS_GPU_HOURS)
        assert carbon["gpu_hours"] == pytest.approx(64 * 16)

    def test_carbon_scales_with_epochs(self):
        from repro.ssl_efficiency.pretraining import regime_carbon

        supervised = regime_carbon(SUPERVISED_TRAINING)
        ssl = regime_carbon(SIMCLR_PRETRAINING)
        assert ssl["carbon_kg"] / supervised["carbon_kg"] == pytest.approx(
            effort_ratio(SIMCLR_PRETRAINING, SUPERVISED_TRAINING), rel=1e-6
        )

    def test_table_carries_carbon(self):
        table = regimes_table()
        assert all("carbon_kg" in row for row in table)
        assert all(float(row["carbon_kg"]) > 0 for row in table)

    def test_anchor_validation(self):
        from repro.ssl_efficiency.pretraining import regime_carbon

        with pytest.raises(UnitError):
            regime_carbon(SUPERVISED_TRAINING, gpu_hours_per_epoch=0.0)
        with pytest.raises(UnitError):
            regime_carbon(SUPERVISED_TRAINING, pue=0.9)
