"""Concurrency and failure-path tests for the carbon-query service.

Exercises the operational half of the service contract: duplicate
in-flight queries coalesce onto one execution, the bounded queue sheds
load with structured 429s, per-request timeouts yield structured 504s,
injected worker crashes (via :mod:`repro.testing.faults`, the same env
grammar the experiment runner hardens against) surface as structured
500s and the pool rebuilds, and SIGTERM drains in-flight requests before
the process exits.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import ServiceConfig, parse_query, render_payload
from repro.testing import faults
from tests.serviceutil import ServiceClient, running_service


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"workers": -1},
            {"batch_window_s": -0.1},
            {"max_queue": 0},
            {"request_timeout_s": 0.0},
            {"lru_size": -1},
            {"drain_timeout_s": -1.0},
            {"max_sweeps": 0},
        ],
    )
    def test_bad_knobs_rejected(self, overrides):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            ServiceConfig(**overrides)


class TestBatching:
    def test_duplicate_queries_coalesce_to_one_execution(self):
        """8 concurrent identical schedule queries -> 1 substrate build."""
        with running_service(workers=0, batch_window_s=0.25, lru_size=16) as (
            handle,
            client0,
        ):
            host, port = client0.host, client0.port
            path = "/schedule/carbon-aware?n_jobs=12&grid_seed=424242"
            expected = render_payload(
                parse_query("schedule", {"n_jobs": 12, "grid_seed": 424242}).execute()
            )

            def one_request(_index: int) -> bytes:
                client = ServiceClient(host, port)
                try:
                    reply = client.get(path)
                    assert reply.status == 200, reply.body
                    return reply.body
                finally:
                    client.close()

            with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
                bodies = [
                    f.result(timeout=120)
                    for f in [pool.submit(one_request, i) for i in range(8)]
                ]
            assert all(body == expected for body in bodies)

            metrics = client0.get("/metrics").json()
            batching = metrics["batching"]
            assert batching["executions"] == 1
            assert batching["coalesced"] == 7
            # One execution -> exactly one substrate-cache access for the
            # grid trace (a hit here: computing `expected` above already
            # warmed the in-process cache this inline service shares).
            totals = metrics["substrate_cache"]["totals"]
            assert totals["hits"] + totals["misses"] == 1
            assert metrics["requests"]["by_status"]["200"] >= 8

    def test_distinct_queries_are_not_delayed_into_one(self):
        with running_service(workers=0, batch_window_s=0.02, lru_size=16) as (
            _handle,
            client,
        ):
            first = client.get("/footprint?busy_device_hours=1")
            second = client.get("/footprint?busy_device_hours=2")
            assert first.status == second.status == 200
            assert first.body != second.body
            metrics = client.get("/metrics").json()
            assert metrics["batching"]["executions"] == 2
            assert metrics["batching"]["coalesced"] == 0


class TestBackpressure:
    def test_overload_returns_structured_429(self, monkeypatch):
        """Queue bound 2 + slow executions -> excess requests shed as 429."""
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "timeout:schedule:0.6")
        with running_service(
            workers=0, batch_window_s=0.0, max_queue=2, lru_size=16
        ) as (handle, client0):
            host, port = client0.host, client0.port

            def one_request(index: int) -> tuple[int, dict]:
                client = ServiceClient(host, port)
                try:
                    reply = client.get(
                        f"/schedule/carbon-aware?n_jobs=5&seed={index}"
                    )
                    return reply.status, reply.json()
                finally:
                    client.close()

            with concurrent.futures.ThreadPoolExecutor(max_workers=6) as pool:
                outcomes = [
                    f.result(timeout=120)
                    for f in [pool.submit(one_request, i) for i in range(6)]
                ]
            statuses = sorted(status for status, _body in outcomes)
            assert 429 in statuses, statuses
            assert 200 in statuses, statuses
            for status, body in outcomes:
                if status == 429:
                    assert body["error"]["kind"] == "overloaded"
                    assert "max queue" in body["error"]["message"]
            metrics = client0.get("/metrics").json()
            assert metrics["requests"]["rejected_429"] == statuses.count(429)

    def test_healthz_and_metrics_bypass_admission(self, monkeypatch):
        """Diagnostics stay reachable even when the query queue is full."""
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "timeout:footprint:0.8")
        with running_service(workers=0, max_queue=1, lru_size=4) as (handle, client0):
            host, port = client0.host, client0.port
            with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
                blocked = pool.submit(
                    lambda: ServiceClient(host, port).get("/footprint?busy_device_hours=3")
                )
                time.sleep(0.2)  # let the slow query occupy the queue
                assert client0.get("/healthz").status == 200
                assert client0.get("/metrics").status == 200
                assert blocked.result(timeout=120).status == 200


class TestTimeouts:
    def test_slow_query_yields_structured_504(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "timeout:footprint:5.0")
        with running_service(
            workers=0, request_timeout_s=0.15, lru_size=4
        ) as (_handle, client):
            reply = client.get("/footprint?busy_device_hours=9")
            assert reply.status == 504
            error = reply.json()["error"]
            assert error["kind"] == "timeout"
            assert "0.15" in error["message"]
            metrics = client.get("/metrics").json()
            assert metrics["requests"]["timeouts_504"] == 1


class TestWorkerCrash:
    def test_injected_crash_returns_500_and_pool_recovers(self, monkeypatch):
        """A hard worker death mid-request is a structured 500, not a hang.

        The crash fault hard-exits the pool worker (breaking the
        ``ProcessPoolExecutor``), mirroring the runner's fault-injection
        harness; the service rebuilds the pool so the next query works.
        """
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "crash:footprint@0")
        with running_service(workers=1, lru_size=4) as (handle, client):
            reply = client.get("/footprint?busy_device_hours=4")
            assert reply.status == 500
            assert reply.json()["error"]["kind"] == "crash"
            # Pool is rebuilt; a different target is unaffected by the fault.
            ok = client.get("/schedule/carbon-aware?n_jobs=5")
            assert ok.status == 200
            metrics = client.get("/metrics").json()
            assert metrics["requests"]["server_errors_5xx"] == 1

    def test_injected_raise_inline_returns_500(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "raise:schedule")
        with running_service(workers=0, lru_size=4) as (_handle, client):
            reply = client.get("/schedule/carbon-aware?n_jobs=5")
            assert reply.status == 500
            assert reply.json()["error"]["kind"] == "injected-fault"


class TestBadRequests:
    @pytest.mark.parametrize(
        "path, status, kind",
        [
            ("/experiments/not-a-real-experiment", 404, "unknown-experiment"),
            ("/footprint", 400, "bad-request"),  # missing busy_device_hours
            ("/footprint?busy_device_hours=-5", 400, "bad-request"),
            ("/footprint?busy_device_hours=nan", 400, "bad-request"),
            ("/footprint?busy_device_hours=1&bogus=2", 400, "bad-request"),
            ("/footprint?busy_device_hours=1&region=atlantis", 400, "bad-request"),
            ("/schedule/carbon-aware?n_jobs=0", 400, "bad-request"),
            ("/schedule/carbon-aware?horizon_hours=3", 400, "bad-request"),
            ("/nope", 404, "not-found"),
        ],
    )
    def test_structured_error_bodies(self, path, status, kind):
        with running_service(workers=0, lru_size=4) as (_handle, client):
            reply = client.get(path)
            assert reply.status == status
            assert reply.json()["error"]["kind"] == kind

    def test_post_with_invalid_json_body_is_400(self):
        with running_service(workers=0, lru_size=4) as (_handle, client):
            conn = client._connection()
            conn.request(
                "POST",
                "/footprint",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["error"]["kind"] == "bad-request"
            client.close()

    def test_method_not_allowed(self):
        with running_service(workers=0, lru_size=4) as (_handle, client):
            conn = client._connection()
            conn.request("DELETE", "/footprint")
            response = conn.getresponse()
            assert response.status == 405
            assert json.loads(response.read())["error"]["kind"] == "method-not-allowed"
            client.close()


class TestGracefulDrain:
    @pytest.mark.slow
    def test_sigterm_drains_in_flight_request(self, tmp_path):
        """SIGTERM mid-request: the response still arrives, exit code is 0."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        env[faults.FAULTS_ENV_VAR] = "timeout:footprint:1.0"
        env["SUSTAINABLE_AI_CACHE_DIR"] = "off"
        metrics_path = tmp_path / "final_metrics.json"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--port",
                "0",
                "--workers",
                "0",
                "--drain-timeout",
                "10",
                "--metrics-json",
                str(metrics_path),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on http://" in banner, banner
            port = int(banner.split("http://")[1].split()[0].rsplit(":", 1)[1])

            with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
                in_flight = pool.submit(
                    lambda: ServiceClient("127.0.0.1", port).get(
                        "/footprint?busy_device_hours=6"
                    )
                )
                time.sleep(0.3)  # request is now sleeping inside the fault
                proc.send_signal(signal.SIGTERM)
                reply = in_flight.result(timeout=60)
            assert reply.status == 200
            assert b"total_kg" in reply.body
            assert proc.wait(timeout=60) == 0
            # The shutdown path exported its final counters.
            final = json.loads(metrics_path.read_text())
            assert final["requests"]["by_status"]["200"] >= 1
            assert final["service"]["draining"] is True
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()

    def test_in_process_drain_rejects_new_work(self):
        """After shutdown is requested, late queries get a structured 503."""
        with running_service(workers=0, lru_size=4) as (handle, client):
            assert client.get("/healthz").json()["status"] == "ok"
        # handle.stop() already joined the thread; a second stop is a no-op
        # because the loop has exited cleanly.
        assert not handle.thread.is_alive()


def _wait_sweep(client, sweep_id, deadline_s=60.0):
    """Poll a sweep to completion, returning every observed progress doc."""
    observed = []
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        poll = client.get(f"/sweep/{sweep_id}")
        assert poll.status == 200
        doc = poll.json()
        observed.append(doc)
        if doc["status"] != "running":
            return observed
        time.sleep(0.02)
    raise AssertionError("sweep did not finish within the deadline")


SOBOL_SWEEP = {
    "busy_device_hours": 1000.0,
    "ranges": [{"name": "utilization", "lo": 0.3, "hi": 0.8, "points": 1}],
    "sampling": "sobol",
    "n_points": 1024,  # 2 chunks at the service granularity of 512
    "seed": 7,
}


class TestSweepRobustness:
    def test_progress_is_monotone_while_chunks_crawl(self, monkeypatch):
        """Injected per-chunk delay -> polls observe only forward progress."""
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "timeout:sweep:0.2")
        with running_service(workers=0, lru_size=16) as (_handle, client):
            sweep_id = client.post("/sweep", dict(SOBOL_SWEEP)).json()["sweep_id"]
            observed = _wait_sweep(client, sweep_id)
            counts = [doc["completed_points"] for doc in observed]
            assert counts == sorted(counts)
            assert observed[-1]["status"] == "done"
            assert observed[-1]["completed_points"] == 1024

    def test_result_while_running_is_409_with_progress(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "timeout:sweep:0.5")
        with running_service(workers=0, lru_size=16) as (_handle, client):
            sweep_id = client.post("/sweep", dict(SOBOL_SWEEP)).json()["sweep_id"]
            early = client.get(f"/sweep/{sweep_id}/result")
            assert early.status == 409
            doc = early.json()
            assert doc["error"]["kind"] == "not-finished"
            assert doc["total_points"] == 1024
            _wait_sweep(client, sweep_id)
            assert client.get(f"/sweep/{sweep_id}/result").status == 200

    def test_worker_crash_mid_sweep_resumes_from_failed_chunk(self, monkeypatch):
        """``crash:sweep@0`` kills attempt 0 of every chunk; the manager
        rebuilds the pool, retries only the dead chunk, and the final
        bytes still equal the direct library call."""
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "crash:sweep@0")
        with running_service(workers=1, lru_size=16) as (_handle, client):
            sweep_id = client.post("/sweep", dict(SOBOL_SWEEP)).json()["sweep_id"]
            final = _wait_sweep(client, sweep_id)[-1]
            assert final["status"] == "done"
            assert final["retries"] >= 2  # both chunks crashed once
            result = client.get(f"/sweep/{sweep_id}/result")
            assert result.status == 200
        monkeypatch.delenv(faults.FAULTS_ENV_VAR)
        expected = render_payload(parse_query("sweep", dict(SOBOL_SWEEP)).execute())
        assert result.body == expected

    def test_inline_crash_downgrades_and_still_resumes(self, monkeypatch):
        """Inline mode turns the crash into an exception; same retry path."""
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "crash:sweep@0")
        with running_service(workers=0, lru_size=16) as (_handle, client):
            sweep_id = client.post("/sweep", dict(SOBOL_SWEEP)).json()["sweep_id"]
            final = _wait_sweep(client, sweep_id)[-1]
            assert final["status"] == "done"
            assert final["retries"] >= 2

    def test_unrecoverable_fault_fails_the_job_structurally(self, monkeypatch):
        """A fault injected on every attempt exhausts the retry budget."""
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "raise:sweep")
        with running_service(workers=0, lru_size=16) as (_handle, client):
            sweep_id = client.post("/sweep", dict(SOBOL_SWEEP)).json()["sweep_id"]
            final = _wait_sweep(client, sweep_id)[-1]
            assert final["status"] == "failed"
            assert "InjectedFault" in final["error"]
            reply = client.get(f"/sweep/{sweep_id}/result")
            assert reply.status == 500
            assert reply.json()["error"]["kind"] == "sweep-failed"

    def test_sweep_admission_sheds_excess_with_429(self, monkeypatch):
        """max_sweeps=1 + a slow job -> a second spec is shed, rejoining
        the running spec is not."""
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "timeout:sweep:1.0")
        with running_service(workers=0, lru_size=16, max_sweeps=1) as (
            handle,
            client,
        ):
            first = client.post("/sweep", dict(SOBOL_SWEEP))
            assert first.status == 202
            other = dict(SOBOL_SWEEP, seed=99)
            shed = client.post("/sweep", other)
            assert shed.status == 429
            assert shed.json()["error"]["kind"] == "overloaded"
            rejoin = client.post("/sweep", dict(SOBOL_SWEEP))
            assert rejoin.status == 202
            assert rejoin.json()["sweep_id"] == first.json()["sweep_id"]
            metrics = client.get("/metrics").json()
            assert metrics["sweeps"]["active"] == 1
            _wait_sweep(client, first.json()["sweep_id"])

    def test_method_not_allowed_on_sweep_routes(self):
        with running_service(workers=0, lru_size=4) as (_handle, client):
            assert client.post("/sweep/abc", {}).status == 405
