"""Checked quantity type tests, incl. hypothesis arithmetic properties."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.quantities import Carbon, Energy, Power, carbon_sum, energy_sum
from repro.errors import UnitError

magnitudes = st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False)


class TestEnergy:
    def test_constructors(self):
        assert Energy.from_joules(3.6e6).kwh == 1.0
        assert Energy.from_wh(500.0).kwh == 0.5
        assert Energy.from_mwh(2.0).kwh == 2000.0
        assert Energy.zero().kwh == 0.0

    def test_rejects_negative(self):
        with pytest.raises(UnitError):
            Energy(-1.0)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(UnitError):
            Energy(float("nan"))
        with pytest.raises(UnitError):
            Energy(float("inf"))

    @given(magnitudes, magnitudes)
    def test_addition_commutes(self, a, b):
        assert (Energy(a) + Energy(b)).isclose(Energy(b) + Energy(a))

    @given(magnitudes, positive)
    def test_scale_then_divide_roundtrips(self, a, k):
        scaled = Energy(a) * k
        assert (scaled / k).isclose(Energy(a), rel_tol=1e-9)

    def test_subtraction_cannot_go_negative(self):
        with pytest.raises(UnitError):
            Energy(1.0) - Energy(2.0)

    def test_division_by_energy_gives_ratio(self):
        assert Energy(10.0) / Energy(5.0) == 2.0

    def test_division_by_zero_energy_rejected(self):
        with pytest.raises(UnitError):
            Energy(1.0) / Energy(0.0)

    def test_ordering(self):
        assert Energy(1.0) < Energy(2.0)
        assert Energy(2.0) <= Energy(2.0)

    def test_str_scales_units(self):
        assert "kWh" in str(Energy(5.0))
        assert "MWh" in str(Energy(5000.0))
        assert "GWh" in str(Energy(5e6))

    def test_cross_type_multiplication_rejected(self):
        with pytest.raises(TypeError):
            Energy(1.0) * Energy(1.0)


class TestPower:
    def test_constructors(self):
        assert Power.from_kw(1.5).watts == 1500.0
        assert Power.from_mw(2.0).watts == 2e6

    def test_over_hours(self):
        assert Power(1000.0).over_hours(3.0).kwh == 3.0

    def test_over_seconds(self):
        assert math.isclose(Power(1000.0).over_seconds(3600.0).kwh, 1.0)

    @given(st.floats(min_value=0, max_value=1e7, allow_nan=False), positive)
    def test_energy_proportional_to_time(self, watts, hours):
        e1 = Power(watts).over_hours(hours)
        e2 = Power(watts).over_hours(2 * hours)
        assert math.isclose(e2.kwh, 2 * e1.kwh, rel_tol=1e-9, abs_tol=1e-12)

    def test_subtract_underflow_rejected(self):
        with pytest.raises(UnitError):
            Power(1.0) - Power(2.0)

    def test_str(self):
        assert "W" in str(Power(50.0))
        assert "kW" in str(Power(5e3))
        assert "MW" in str(Power(5e6))


class TestCarbon:
    def test_constructors(self):
        assert Carbon.from_tonnes(1.0).kg == 1000.0
        assert Carbon.from_grams(500.0).kg == 0.5

    def test_views(self):
        c = Carbon(1500.0)
        assert c.tonnes == 1.5
        assert c.grams == 1.5e6

    @given(magnitudes, magnitudes)
    def test_sum_matches_add(self, a, b):
        assert carbon_sum([Carbon(a), Carbon(b)]).isclose(Carbon(a) + Carbon(b))

    def test_division_gives_ratio(self):
        assert Carbon(10.0) / Carbon(4.0) == 2.5

    def test_str_scales(self):
        assert "gCO2e" in str(Carbon(0.5))
        assert "kgCO2e" in str(Carbon(5.0))
        assert "tCO2e" in str(Carbon(5000.0))


class TestSums:
    def test_energy_sum_empty(self):
        assert energy_sum([]).kwh == 0.0

    def test_energy_sum_type_checked(self):
        with pytest.raises(UnitError):
            energy_sum([Energy(1.0), 2.0])

    def test_carbon_sum_type_checked(self):
        with pytest.raises(UnitError):
            carbon_sum([Carbon(1.0), Energy(1.0)])

    @given(st.lists(magnitudes, max_size=20))
    def test_energy_sum_matches_float_sum(self, values):
        total = energy_sum([Energy(v) for v in values])
        assert math.isclose(total.kwh, sum(values), rel_tol=1e-9, abs_tol=1e-9)
