"""Serving mechanics tests: Zipf, LRU/Che, derived ladder rungs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CalibrationError, UnitError
from repro.workloads.serving import (
    AcceleratorServing,
    ServingWorkload,
    ZipfPopularity,
    che_hit_ratio,
    derived_ladder_gains,
    simulate_lru_hit_ratio,
)


class TestZipfPopularity:
    def test_probabilities_normalized_and_sorted(self):
        p = ZipfPopularity(1000).probabilities()
        assert np.sum(p) == pytest.approx(1.0)
        assert np.all(np.diff(p) <= 0)

    def test_sample_in_range(self):
        samples = ZipfPopularity(100).sample(1000, seed=0)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_head_dominates(self):
        pop = ZipfPopularity(10_000, exponent=1.1)
        p = pop.probabilities()
        assert np.sum(p[:100]) > 0.3

    def test_validation(self):
        with pytest.raises(UnitError):
            ZipfPopularity(0)
        with pytest.raises(UnitError):
            ZipfPopularity(10, exponent=0.0)


class TestCheApproximation:
    def test_matches_simulation(self):
        pop = ZipfPopularity(50_000, 1.05)
        cache = 2_500
        che = che_hit_ratio(pop, cache)
        sim = simulate_lru_hit_ratio(pop, cache, n_requests=150_000, seed=1)
        assert che == pytest.approx(sim, abs=0.03)

    def test_full_cache_hits_everything(self):
        pop = ZipfPopularity(1000)
        assert che_hit_ratio(pop, 1000) == 1.0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=5))
    def test_monotone_in_cache_size(self, k):
        pop = ZipfPopularity(10_000, 1.0)
        small = che_hit_ratio(pop, 100 * k)
        large = che_hit_ratio(pop, 200 * k)
        assert large >= small

    def test_hit_ratio_in_unit_interval(self):
        pop = ZipfPopularity(10_000, 0.8)
        h = che_hit_ratio(pop, 500)
        assert 0.0 < h < 1.0


class TestServingWorkload:
    def test_caching_gain_monotone_in_cache(self):
        workload = ServingWorkload(catalog_size=100_000)
        assert workload.caching_gain(0.2) > workload.caching_gain(0.01)

    def test_gain_bounded_by_cost_ratio(self):
        workload = ServingWorkload(catalog_size=10_000)
        assert workload.caching_gain(1.0) <= 1.0 / workload.cost_ratio + 1e-9

    def test_inversion_roundtrip(self):
        workload = ServingWorkload(catalog_size=100_000)
        fraction = workload.cache_fraction_for_gain(5.0)
        assert workload.caching_gain(fraction) == pytest.approx(5.0, rel=0.02)

    def test_unreachable_gain_rejected(self):
        workload = ServingWorkload(catalog_size=1000)
        ceiling = 1.0 / workload.cost_ratio
        with pytest.raises(CalibrationError):
            workload.cache_fraction_for_gain(ceiling * 2)

    def test_validation(self):
        with pytest.raises(UnitError):
            ServingWorkload(compute_joules_per_request=0.0)
        with pytest.raises(UnitError):
            ServingWorkload(
                compute_joules_per_request=1.0, lookup_joules_per_request=2.0
            )


class TestDerivedLadder:
    def test_gpu_gain_near_paper(self):
        assert AcceleratorServing().gpu_gain == pytest.approx(10.1, rel=0.05)

    def test_default_ladder_lands_near_800x(self):
        gains = derived_ladder_gains()
        assert gains["caching"] == pytest.approx(6.7, rel=0.02)
        assert 700 < gains["total"] < 900

    def test_cache_sizing_is_feasible(self):
        gains = derived_ladder_gains()
        assert 0.0 < gains["cache_fraction"] < 0.5

    def test_explicit_cache_fraction_respected(self):
        gains = derived_ladder_gains(cache_fraction=0.01)
        assert gains["cache_fraction"] == 0.01
        assert gains["caching"] < 6.7
