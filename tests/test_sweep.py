"""Unit tests of the stacked scenario-sweep engine (repro.core.sweep).

The bit-exactness *property* suite lives in ``test_sweep_property.py``;
this module pins the deterministic mechanics: sampling order, chunking,
disk-cache resumption, validation errors, and the sensitivity/Pareto
reports.
"""

import json

import numpy as np
import pytest

from repro.core import memo
from repro.core.scenario import Scenario, evaluate_work
from repro.core.sweep import (
    DEFAULT_RANGES,
    MAX_SWEEP_POINTS,
    PARAMETER_BOUNDS,
    ParameterRange,
    SweepSpec,
    _reference_evaluate_stacked,
    evaluate_work_stacked,
    pareto_frontier,
    run_sweep,
    sample_points,
    scenario_at,
    spec_from_params,
    spec_to_params,
    sweep_chunk,
    sweep_sensitivity,
)
from repro.errors import UnitError

NAN, INF = float("nan"), float("inf")


class TestParameterRange:
    def test_axis_endpoints(self):
        axis = ParameterRange("pue", 1.1, 2.0, 4).axis()
        assert axis[0] == 1.1 and axis[-1] == 2.0 and len(axis) == 4

    def test_single_point_axis(self):
        assert list(ParameterRange("pue", 1.5, 1.5, 1).axis()) == [1.5]

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"name": "tdp_watts", "lo": 1.0, "hi": 2.0}, "unknown sweep parameter"),
            ({"name": "pue", "lo": 2.0, "hi": 1.0}, "lo <= hi"),
            ({"name": "pue", "lo": 0.5, "hi": 2.0}, "must lie within"),
            ({"name": "utilization", "lo": 0.5, "hi": 2.0}, "must lie within"),
            ({"name": "pue", "lo": 1.0, "hi": NAN}, "finite"),
            ({"name": "pue", "lo": 1.0, "hi": 2.0, "points": 0}, ">= 1 point"),
        ],
    )
    def test_validation_table(self, kwargs, match):
        with pytest.raises(UnitError, match=match):
            ParameterRange(**kwargs)


class TestSweepSpec:
    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"busy_device_hours": -1.0}, "non-negative"),
            ({"busy_device_hours": NAN}, "finite"),
            ({"busy_device_hours": INF}, "finite"),
            ({"ranges": ()}, "at least one"),
            ({"sampling": "random"}, "grid.*sobol|sobol.*grid"),
            ({"sampling": "sobol", "n_points": 0}, "n_points"),
            ({"intensity_kg_per_kwh": -0.1}, "intensity"),
            ({"devices_per_server": 0}, "devices_per_server"),
            (
                {
                    "ranges": (
                        ParameterRange("pue", 1.0, 2.0, 3),
                        ParameterRange("pue", 1.0, 2.0, 3),
                    )
                },
                "duplicate",
            ),
        ],
    )
    def test_validation_table(self, kwargs, match):
        with pytest.raises(UnitError, match=match):
            SweepSpec(**kwargs)

    def test_grid_cap(self):
        big = tuple(
            ParameterRange(name, *PARAMETER_BOUNDS[name], points=101)
            for name in ("pue", "utilization", "lifetime_years")
        )
        with pytest.raises(UnitError, match="cap"):
            SweepSpec(ranges=big)

    def test_total_points(self):
        assert SweepSpec().total_points() == 6 * 4 * 3 * 4
        assert SweepSpec(sampling="sobol", n_points=77).total_points() == 77

    def test_spec_json_round_trip_is_exact(self):
        spec = SweepSpec(
            busy_device_hours=123.456,
            ranges=(ParameterRange("utilization", 0.313, 0.797, 5),),
            sampling="sobol",
            n_points=99,
            seed=7,
            intensity_kg_per_kwh=0.271828,
        )
        rebuilt = spec_from_params(json.loads(json.dumps(spec_to_params(spec))))
        assert rebuilt == spec

    def test_spec_from_params_rejects_malformed_ranges(self):
        with pytest.raises(UnitError, match="malformed"):
            spec_from_params({"busy_device_hours": 1.0, "ranges": [{"lo": 1.0}]})


class TestSampling:
    def test_grid_raster_order(self):
        spec = SweepSpec(
            ranges=(
                ParameterRange("pue", 1.0, 2.0, 2),
                ParameterRange("utilization", 0.4, 0.8, 3),
            )
        )
        points = sample_points(spec)
        # pue is the slower axis (SWEEP_PARAMETERS order), utilization raster-scans.
        assert list(points["pue"]) == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        assert np.allclose(points["utilization"], [0.4, 0.6, 0.8] * 2)

    def test_grid_deterministic(self):
        a, b = sample_points(SweepSpec()), sample_points(SweepSpec())
        for name in a:
            assert np.array_equal(a[name], b[name])

    def test_sobol_deterministic_and_seeded(self):
        spec = SweepSpec(sampling="sobol", n_points=65, seed=5)
        a, b = sample_points(spec), sample_points(spec)
        other = sample_points(SweepSpec(sampling="sobol", n_points=65, seed=6))
        for name in a:
            assert np.array_equal(a[name], b[name])
        assert any(not np.array_equal(a[name], other[name]) for name in a)

    def test_sobol_within_bounds(self):
        spec = SweepSpec(
            sampling="sobol",
            n_points=200,
            ranges=(ParameterRange("lifetime_years", 3.0, 5.0, 1),),
        )
        values = sample_points(spec)["lifetime_years"]
        assert len(values) == 200
        assert values.min() >= 3.0 and values.max() <= 5.0


class TestStackedKernel:
    def test_bit_equal_on_default_grid(self):
        spec = SweepSpec()
        points = sample_points(spec)
        base = spec.base_scenario()
        fast = evaluate_work_stacked(spec.busy_device_hours, base, points)
        slow = _reference_evaluate_stacked(spec.busy_device_hours, base, points)
        assert np.array_equal(fast.energy_kwh, slow.energy_kwh)
        assert np.array_equal(fast.operational_kg, slow.operational_kg)
        assert np.array_equal(fast.embodied_kg, slow.embodied_kg)
        assert np.array_equal(fast.total_kg, slow.total_kg)
        assert np.array_equal(fast.embodied_share, slow.embodied_share)

    def test_single_point_matches_evaluate_work(self):
        base = Scenario()
        fast = evaluate_work_stacked(
            500.0, base, {"pue": np.array([1.3]), "utilization": np.array([0.6])}
        )
        scalar = evaluate_work(
            500.0, scenario_at(base, {"pue": 1.3, "utilization": 0.6})
        )
        assert fast.energy_kwh[0] == scalar.energy.kwh
        assert fast.operational_kg[0] == scalar.operational.kg
        assert fast.embodied_kg[0] == scalar.embodied.kg

    @pytest.mark.parametrize(
        "params,match",
        [
            ({"tdp": np.array([1.0])}, "unknown sweep parameter"),
            ({"pue": np.array([[1.0]])}, "1-D"),
            ({"pue": np.array([])}, "non-empty"),
            (
                {"pue": np.array([1.0]), "utilization": np.array([0.5, 0.6])},
                "disagree on length",
            ),
            ({"pue": np.array([1.5, NAN])}, r"'pue' must be finite; point 1"),
            ({"pue": np.array([1.5, INF, INF])}, r"'pue' must be finite; point 1"),
            ({"utilization": np.array([0.5, 0.0])}, r"'utilization'.*point 1"),
            ({"utilization": np.array([1.5])}, r"'utilization'.*point 0"),
            ({"lifetime_years": np.array([4.0, -1.0])}, r"'lifetime_years'.*point 1"),
            ({"intensity_scale": np.array([-0.5])}, r"'intensity_scale'.*point 0"),
        ],
    )
    def test_bad_axis_table(self, params, match):
        with pytest.raises(UnitError, match=match):
            evaluate_work_stacked(100.0, Scenario(), params)

    @pytest.mark.parametrize("busy,match", [(-1.0, "non-negative"), (NAN, "finite"), (INF, "finite")])
    def test_bad_busy_hours(self, busy, match):
        with pytest.raises(UnitError, match=match):
            evaluate_work_stacked(busy, Scenario(), {"pue": np.array([1.5])})

    def test_no_swept_parameters_rejected(self):
        with pytest.raises(UnitError, match="at least one"):
            evaluate_work_stacked(100.0, Scenario(), {})


class TestRunSweep:
    def test_chunked_equals_unchunked_bit_for_bit(self):
        spec = SweepSpec()
        memo.clear_substrate_caches()
        chunked = run_sweep(spec, chunk_points=37)
        whole = run_sweep(spec, chunk_points=10**6)
        assert np.array_equal(chunked.results.total_kg, whole.results.total_kg)
        assert np.array_equal(chunked.results.energy_kwh, whole.results.energy_kwh)

    def test_progress_monotone_and_complete(self):
        spec = SweepSpec(sampling="sobol", n_points=100)
        seen = []
        run_sweep(spec, chunk_points=30, progress=lambda done, total: seen.append((done, total)))
        assert seen == [(30, 100), (60, 100), (90, 100), (100, 100)]

    def test_resumes_from_disk_cache(self, tmp_path, monkeypatch):
        from repro.core.diskcache import CACHE_DIR_ENV_VAR

        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        spec = SweepSpec(sampling="sobol", n_points=64, seed=11)
        memo.clear_substrate_caches()
        cold = run_sweep(spec, chunk_points=16)
        # A fresh process would hit the disk tier: clearing the in-process
        # tier simulates the restart, and the rerun must be disk-hits only.
        sweep_chunk.cache_clear()
        warm = run_sweep(spec, chunk_points=16)
        info = sweep_chunk.cache_info()
        assert info.disk_hits == 4 and info.misses == 4
        assert np.array_equal(cold.results.total_kg, warm.results.total_kg)

    def test_payload_is_canonical_json(self):
        outcome = run_sweep(SweepSpec(sampling="sobol", n_points=32))
        payload = outcome.to_payload(include_points=True)
        encoded = json.dumps(payload, sort_keys=True)
        assert json.loads(encoded)["headline"]["n_points"] == 32.0
        assert len(payload["points"]["energy_kwh"]) == 32


class TestReports:
    def test_sensitivity_sorted_and_anchored(self):
        spec = SweepSpec()
        bars = sweep_sensitivity(spec)
        swings = [b.swing_kg for b in bars]
        assert swings == sorted(swings, reverse=True)
        # Utilization is the paper's dominant lever over these ranges.
        assert bars[0].parameter == "utilization"
        base_total = evaluate_work(spec.busy_device_hours, spec.base_scenario()).total.kg
        assert all(b.base_total_kg == base_total for b in bars)

    def test_sensitivity_matches_scalar_endpoints(self):
        spec = SweepSpec(ranges=(ParameterRange("pue", 1.1, 1.9, 3),))
        (bar,) = sweep_sensitivity(spec)
        base = spec.base_scenario()
        assert bar.low_total_kg == evaluate_work(
            spec.busy_device_hours, scenario_at(base, {"pue": 1.1})
        ).total.kg
        assert bar.high_total_kg == evaluate_work(
            spec.busy_device_hours, scenario_at(base, {"pue": 1.9})
        ).total.kg

    def test_pareto_hand_crafted(self):
        #               dominated  frontier  frontier  dominated  frontier
        total = np.array([5.0,      4.0,      2.0,      9.0,       1.0])
        speed = np.array([0.9,      0.9,      0.5,      0.4,       0.3])
        frontier = pareto_frontier(total, speed)
        assert list(frontier) == [1, 2, 4]

    def test_pareto_duplicate_points_collapse(self):
        total = np.array([3.0, 3.0, 3.0])
        speed = np.array([0.5, 0.5, 0.5])
        assert list(pareto_frontier(total, speed)) == [0]

    def test_pareto_grid_degenerates_to_single_point(self):
        # Carbon falls monotonically with utilization, so on a separable
        # grid the max-throughput column contains the global minimum and
        # dominates everything (documented in docs/SWEEPS.md).
        outcome = run_sweep(SweepSpec())
        assert len(outcome.pareto_indices()) == 1

    def test_pareto_shape_mismatch(self):
        with pytest.raises(UnitError, match="1-D"):
            pareto_frontier(np.array([1.0]), np.array([1.0, 2.0]))


class TestDefaults:
    def test_default_ranges_are_the_papers_levers(self):
        names = {r.name for r in DEFAULT_RANGES}
        assert names == {"utilization", "pue", "lifetime_years", "intensity_scale"}

    def test_cap_is_sane(self):
        assert MAX_SWEEP_POINTS >= 10_000
