"""Leaderboard metrics and multi-objective search tests."""

import numpy as np
import pytest

from repro.core.metrics import (
    Leaderboard,
    RankingPolicy,
    Submission,
    marginal_quality_cost,
)
from repro.core.quantities import Carbon, Energy
from repro.errors import UnitError
from repro.optimization.monas import (
    ArchitectureSpace,
    accuracy_only_search,
    carbon_aware_gain,
    nsga_lite,
)


BOARD = Leaderboard(
    (
        Submission("big", 0.92, Energy(1000.0), Carbon(400.0)),
        Submission("mid", 0.91, Energy(100.0), Carbon(40.0)),
        Submission("small", 0.88, Energy(10.0), Carbon(4.0)),
    )
)


class TestLeaderboard:
    def test_quality_only_picks_biggest(self):
        assert BOARD.winner().name == "big"

    def test_efficiency_policies_rerank(self):
        assert BOARD.winner(RankingPolicy.QUALITY_PER_KWH).name == "small"
        assert BOARD.winner(RankingPolicy.QUALITY_PER_KG).name == "small"

    def test_budget_policy(self):
        winner = BOARD.winner(RankingPolicy.QUALITY_AT_BUDGET, Carbon(50.0))
        assert winner.name == "mid"

    def test_budget_requires_value(self):
        with pytest.raises(UnitError):
            BOARD.rank(RankingPolicy.QUALITY_AT_BUDGET)

    def test_impossible_budget_rejected(self):
        with pytest.raises(UnitError):
            BOARD.rank(RankingPolicy.QUALITY_AT_BUDGET, Carbon(1.0))

    def test_ranking_change_counts_moves(self):
        assert BOARD.ranking_change(RankingPolicy.QUALITY_PER_KG) > 0

    def test_duplicate_names_rejected(self):
        with pytest.raises(UnitError):
            Leaderboard((BOARD.submissions[0], BOARD.submissions[0]))

    def test_submission_requires_energy(self):
        with pytest.raises(UnitError):
            Submission("free", 0.9, Energy(0.0), Carbon(0.0))

    def test_marginal_cost(self):
        cost = marginal_quality_cost(
            BOARD.submissions[2], BOARD.submissions[0]
        )
        assert cost["quality_gain"] == pytest.approx(0.04)
        assert cost["kwh_per_quality_point"] == pytest.approx(990.0 / 0.04)

    def test_marginal_cost_requires_gain(self):
        with pytest.raises(UnitError):
            marginal_quality_cost(BOARD.submissions[0], BOARD.submissions[2])


class TestArchitectureSpace:
    SPACE = ArchitectureSpace(seed=1)

    def test_evaluate_bounds(self):
        error, energy = self.SPACE.evaluate(np.full(self.SPACE.n_dims, 0.5))
        assert 0 < error < 1
        assert energy > 0

    def test_capacity_reduces_error(self):
        lo, _ = self.SPACE.evaluate(np.zeros(self.SPACE.n_dims))
        hi, _ = self.SPACE.evaluate(np.ones(self.SPACE.n_dims))
        assert hi < lo

    def test_out_of_range_rejected(self):
        with pytest.raises(UnitError):
            self.SPACE.evaluate(np.full(self.SPACE.n_dims, 1.5))

    def test_shape_checked(self):
        with pytest.raises(UnitError):
            self.SPACE.evaluate(np.zeros(self.SPACE.n_dims + 1))


class TestSearch:
    def test_nsga_front_nondominated(self):
        result = nsga_lite(ArchitectureSpace(seed=0), population=20, generations=8)
        front = result.front()
        for point in front:
            dominated = np.all(result.points <= point, axis=1) & np.any(
                result.points < point, axis=1
            )
            assert not np.any(dominated)

    def test_carbon_aware_gain_positive(self):
        gains = carbon_aware_gain(seed=0)
        assert gains["energy_saving_factor"] > 1.5

    def test_min_energy_within_slack_monotone(self):
        result = nsga_lite(ArchitectureSpace(seed=0), population=20, generations=8)
        tight = result.min_energy_within(0.005)
        loose = result.min_energy_within(0.05)
        assert loose <= tight

    def test_accuracy_only_search_shape(self):
        result = accuracy_only_search(ArchitectureSpace(seed=0), n_trials=50)
        assert result.points.shape == (50, 2)
        assert result.evaluations == 50

    def test_validation(self):
        with pytest.raises(UnitError):
            nsga_lite(ArchitectureSpace(), population=2)
        with pytest.raises(UnitError):
            accuracy_only_search(ArchitectureSpace(), n_trials=0)
