"""The consistent-hash ring: units plus the Hypothesis-backed laws.

The fabric's routing correctness reduces to four ring properties —
balance, minimal disruption on join and on leave, and a well-formed
preference (failover) order.  They are registered as named substrate
invariants in :mod:`repro.testing.invariants` (``ring-*``); the property
class here maps them over generated fleets, and the quantitative tests
pin the *numeric* remap fraction (~1/N) on a large deterministic key
sample, which a per-key law cannot express.
"""

import pytest

from repro.errors import ServiceError
from repro.service.hashring import DEFAULT_VNODES, HashRing, ring_position

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.testing import strategies as strat

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis not installed
    HAVE_HYPOTHESIS = False

#: A deterministic key sample large enough that per-shard counts
#: concentrate (the quantitative tests bound remap fractions with it).
KEY_SAMPLE = [f"key-{index}" for index in range(8192)]


class TestRingBasics:
    def test_ring_position_is_deterministic_and_64_bit(self):
        assert ring_position("replica-0") == ring_position("replica-0")
        assert 0 <= ring_position("replica-0") < (1 << 64)
        assert ring_position("replica-0") != ring_position("replica-1")

    def test_membership_bookkeeping(self):
        ring = HashRing(["b", "a"])
        assert ring.nodes == ("a", "b")
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        ring.add("c")
        assert "c" in ring
        ring.remove("a")
        assert ring.nodes == ("b", "c")

    def test_add_rejects_duplicates_and_empty_names(self):
        ring = HashRing(["a"])
        with pytest.raises(ServiceError):
            ring.add("a")
        with pytest.raises(ServiceError):
            ring.add("")

    def test_remove_rejects_unknown_nodes(self):
        with pytest.raises(ServiceError):
            HashRing(["a"]).remove("b")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ServiceError):
            HashRing(vnodes=0)

    def test_empty_ring_has_no_owner(self):
        ring = HashRing()
        with pytest.raises(ServiceError):
            ring.owner("anything")
        assert ring.preference("anything") == ()
        assert ring.shares() == {}

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.owner(key) == "only" for key in KEY_SAMPLE[:64])
        assert ring.shares() == {"only": 1.0}

    def test_lookup_is_a_pure_function_of_membership(self):
        # Two rings built in different insertion orders agree on every
        # key — the property that lets routers coordinate statelessly.
        forward = HashRing(["replica-0", "replica-1", "replica-2"])
        backward = HashRing(["replica-2", "replica-1", "replica-0"])
        for key in KEY_SAMPLE[:256]:
            assert forward.owner(key) == backward.owner(key)
            assert forward.preference(key) == backward.preference(key)

    def test_preference_count_truncates(self):
        ring = HashRing(["a", "b", "c", "d"])
        assert ring.preference("k", count=2) == ring.preference("k")[:2]
        assert len(ring.preference("k", count=99)) == 4


class TestQuantitativeBalance:
    """Numeric bounds on the default-vnodes ring, per the module docs."""

    def test_shares_concentrate_around_the_mean(self):
        for n in (2, 3, 4, 8, 16):
            ring = HashRing([f"replica-{i}" for i in range(n)])
            shares = ring.shares()
            assert abs(sum(shares.values()) - 1.0) < 1e-12
            assert max(shares.values()) <= 2.0 / n
            assert min(shares.values()) >= 1.0 / (8 * n)

    def test_key_sample_distribution_matches_shares(self):
        # Empirical shard sizes on the key sample track the arc shares:
        # no node's observed load exceeds 2x the fair share.
        ring = HashRing([f"replica-{i}" for i in range(4)])
        counts = {node: 0 for node in ring.nodes}
        for key in KEY_SAMPLE:
            counts[ring.owner(key)] += 1
        for node, count in counts.items():
            assert count / len(KEY_SAMPLE) <= 2.0 / len(ring), (
                f"{node} owns {count}/{len(KEY_SAMPLE)} keys"
            )

    def test_join_remaps_about_one_nth_of_keys(self):
        # Adding the 5th node to a 4-node ring remaps ~1/5 of keys — and
        # *only* keys the joiner now owns.
        before = HashRing([f"replica-{i}" for i in range(4)])
        after = HashRing([f"replica-{i}" for i in range(5)])
        moved = 0
        for key in KEY_SAMPLE:
            if after.owner(key) != before.owner(key):
                moved += 1
                assert after.owner(key) == "replica-4"
        fraction = moved / len(KEY_SAMPLE)
        assert 0.5 / 5 <= fraction <= 2.0 / 5, f"join remapped {fraction:.3f}"

    def test_leave_remaps_only_the_victims_keys(self):
        before = HashRing([f"replica-{i}" for i in range(4)])
        after = HashRing([f"replica-{i}" for i in range(4)])
        after.remove("replica-2")
        moved = 0
        for key in KEY_SAMPLE:
            owner = before.owner(key)
            if owner == "replica-2":
                moved += 1
                assert after.owner(key) != "replica-2"
            else:
                assert after.owner(key) == owner
        fraction = moved / len(KEY_SAMPLE)
        assert 0.5 / 4 <= fraction <= 2.0 / 4, f"leave remapped {fraction:.3f}"


@pytest.mark.property
@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestRingInvariants:
    """The named ``ring-*`` substrate invariants over generated fleets."""

    @given(st.data())
    def test_ring_balance(self, data):
        from repro.testing.invariants import check_ring_balance

        nodes = data.draw(strat.ring_node_sets(min_size=1, max_size=16))
        check_ring_balance(nodes)

    @given(st.data())
    @settings(max_examples=25)
    def test_ring_minimal_disruption_join(self, data):
        from repro.testing.invariants import check_ring_minimal_disruption_join

        nodes = data.draw(strat.ring_node_sets(min_size=1, max_size=8))
        new_node = data.draw(
            strat.ring_node_names().filter(lambda name: name not in nodes)
        )
        keys = data.draw(st.lists(strat.ring_keys(), max_size=32))
        check_ring_minimal_disruption_join(nodes, new_node, keys)

    @given(st.data())
    @settings(max_examples=25)
    def test_ring_minimal_disruption_leave(self, data):
        from repro.testing.invariants import check_ring_minimal_disruption_leave

        nodes = data.draw(strat.ring_node_sets(min_size=2, max_size=8))
        victim = data.draw(st.sampled_from(nodes))
        keys = data.draw(st.lists(strat.ring_keys(), max_size=32))
        check_ring_minimal_disruption_leave(nodes, victim, keys)

    @given(st.data())
    def test_ring_preference_distinct(self, data):
        from repro.testing.invariants import check_ring_preference_distinct

        nodes = data.draw(strat.ring_node_sets(min_size=1, max_size=8))
        key = data.draw(strat.ring_keys())
        check_ring_preference_distinct(nodes, key)

    def test_ring_invariants_are_registered(self):
        from repro.testing.invariants import substrate_invariant_names

        registered = set(substrate_invariant_names())
        assert {
            "ring-balance",
            "ring-minimal-disruption-join",
            "ring-minimal-disruption-leave",
            "ring-preference-distinct",
        } <= registered
