"""Fault-injection tests: the runner degrades gracefully under failure.

Faults are declared through the ``SUSTAINABLE_AI_FAULTS`` environment
variable (inherited by pool workers), so these tests exercise the real
production retry/timeout/degradation paths of
:mod:`repro.experiments.runner` — no runner code is stubbed out.
"""

import json

import pytest

import repro.experiments.runner as runner_mod
from repro.errors import InjectedFault
from repro.experiments import golden
from repro.experiments.base import RunRecord
from repro.experiments.registry import run_experiment, stable_seed
from repro.experiments.runner import main
from repro.testing import faults
from repro.testing.faults import Fault, FaultPlan


@pytest.fixture
def small_registry(monkeypatch):
    """Patch the runner down to two fast experiments."""
    monkeypatch.setattr(runner_mod, "experiment_ids", lambda: ("fig7", "fig8"))


class TestFaultPlanParsing:
    def test_full_directive(self):
        plan = FaultPlan.from_spec("timeout:fig7:2.5@0,2")
        assert plan.faults == (
            Fault(mode="timeout", target="fig7", param=2.5, attempts=(0, 2)),
        )

    def test_default_params(self):
        assert FaultPlan.from_spec("timeout:fig7").faults[0].param == 30.0
        assert FaultPlan.from_spec("corrupt-memo:*").faults[0].param == 0.01
        assert FaultPlan.from_spec("raise:fig7").faults[0].param == 0.0

    def test_wildcards(self):
        fault = FaultPlan.from_spec("raise:*@*").faults[0]
        assert fault.matches("anything", 0)
        assert fault.matches("anything", 7)

    def test_attempt_scoping(self):
        fault = FaultPlan.from_spec("crash:fig7@0").faults[0]
        assert fault.matches("fig7", 0)
        assert not fault.matches("fig7", 1)
        assert not fault.matches("fig8", 0)

    def test_multiple_directives(self):
        plan = FaultPlan.from_spec("crash:fig7@0; timeout:fig8:1.0")
        assert len(plan.faults) == 2
        assert plan.first_match("timeout", "fig8", 3).param == 1.0
        assert plan.first_match("timeout", "fig7", 0) is None

    def test_empty_spec_is_falsy(self, monkeypatch):
        assert not FaultPlan.from_spec("")
        monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
        assert not FaultPlan.from_env()

    @pytest.mark.parametrize(
        "spec",
        ["explode:fig7", "raise:", "raise", "timeout:fig7:abc", "raise:fig7@x"],
    )
    def test_malformed_directives_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(spec)


class TestInject:
    def test_noop_without_plan(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
        faults.inject("fig7", 0)  # must not raise

    def test_raise_fires_only_on_matching_attempt(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "raise:fig7@1")
        faults.inject("fig7", 0)
        with pytest.raises(InjectedFault):
            faults.inject("fig7", 1)

    def test_crash_downgrades_in_process(self, monkeypatch):
        # hard_exit=False is the sequential path: the CLI process itself
        # must survive, so the crash becomes a catchable exception.
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "crash:fig7")
        with pytest.raises(InjectedFault):
            faults.inject("fig7", 0, hard_exit=False)


class TestRetryReseeding:
    def test_retry_attempts_reseed_deterministically(self):
        assert stable_seed("fig7", attempt=0) == stable_seed("fig7")
        assert stable_seed("fig7", attempt=1) != stable_seed("fig7", attempt=0)
        assert stable_seed("fig7", attempt=1) == stable_seed("fig7", attempt=1)


class TestRunWithFaults:
    def test_raise_fault_produces_structured_failure(self, capsys, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "raise:fig7")
        assert main(["run", "fig7", "--retries", "0"]) == 1
        out = capsys.readouterr().out
        assert "FAILED (exception after 1 attempt(s))" in out
        assert "injected failure for fig7" in out

    def test_fault_on_other_experiment_does_not_fire(self, capsys, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "raise:fig9")
        assert main(["run", "fig7", "--quiet"]) == 0

    def test_retry_with_reseed_recovers_transient_fault(self, capsys, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "raise:fig7@0")
        assert main(["run", "fig7", "--quiet"]) == 0  # default --retries 1
        assert "total_gain" in capsys.readouterr().out

    def test_worker_crash_degrades_not_aborts(
        self, tmp_path, capsys, monkeypatch, small_registry
    ):
        target = tmp_path / "out.json"
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "crash:fig7")
        code = main(
            ["run", "all", "--jobs", "2", "--retries", "0", "--quiet",
             "--json", str(target)]
        )
        assert code == 1
        payloads = {p["experiment_id"]: p for p in json.loads(target.read_text())}
        assert payloads["fig7"]["status"] == "failed"
        assert payloads["fig7"]["error"]["kind"] == "crash"
        assert payloads["fig7"]["attempts"] == 1
        # The sibling experiment still completed normally.
        assert "headline" in payloads["fig8"]

    def test_worker_crash_recovered_by_retry(
        self, capsys, monkeypatch, small_registry
    ):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "crash:fig7@0")
        assert main(["run", "all", "--jobs", "2", "--quiet"]) == 0

    def test_timeout_fault_produces_timeout_record(
        self, capsys, monkeypatch, small_registry
    ):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "timeout:fig7:20.0")
        code = main(
            ["run", "all", "--jobs", "2", "--retries", "0", "--timeout", "2.0",
             "--quiet"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED (timeout after 1 attempt(s))" in out
        assert "exceeded the per-experiment --timeout" in out

    def test_report_renders_failed_sections(
        self, tmp_path, capsys, monkeypatch, small_registry
    ):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "raise:fig7")
        target = tmp_path / "report.md"
        assert main(["report", str(target), "--jobs", "1", "--retries", "0"]) == 1
        text = target.read_text()
        assert "## fig7 — FAILED" in text
        assert "exception after 1 attempt(s)" in text
        assert "## fig8 —" in text  # the healthy section still renders


class TestVerifyWithFaults:
    def _write_baselines(self, path):
        assert (
            main(
                ["verify", "--update", "--check-invariants", "--quiet",
                 "--jobs", "1", "--baselines", str(path)]
            )
            == 0
        )

    def test_crash_surfaces_as_run_failure_drift(
        self, tmp_path, capsys, monkeypatch, small_registry
    ):
        baselines = tmp_path / "baselines.json"
        self._write_baselines(baselines)
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "crash:fig7")
        code = main(
            ["verify", "--quiet", "--jobs", "2", "--retries", "0",
             "--baselines", str(baselines)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "run-failure" in out
        assert "fig7" in out
        # No stale-baseline noise: the failure replaced it.
        assert "stale-baseline" not in out

    def test_update_refuses_to_snapshot_a_failing_run(
        self, tmp_path, capsys, monkeypatch, small_registry
    ):
        baselines = tmp_path / "baselines.json"
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "raise:fig7")
        code = main(
            ["verify", "--update", "--check-invariants", "--quiet", "--jobs", "1",
             "--retries", "0", "--baselines", str(baselines)]
        )
        assert code == 1
        assert "refusing to update" in capsys.readouterr().err
        assert not baselines.exists()

    def test_corrupt_memo_is_caught_by_golden_compare(self, monkeypatch):
        # Silent numeric corruption of a memoized substrate must surface
        # as metric drift.  The perturbation is non-uniform on purpose:
        # ratio headlines are invariant under uniform intensity scaling
        # (the saving-invariant-under-intensity-scaling law), so a uniform
        # corruption would cancel instead of drifting.
        from repro.core import memo

        monkeypatch.setenv(
            faults.FAULTS_ENV_VAR, "corrupt-memo:synthesize_grid_trace:0.05"
        )
        try:
            assert faults.install_memo_corruption()
            result = run_experiment("ablation-sched")
        finally:
            memo.set_substrate_corruptor(None)
        baselines = golden.load_baselines(golden.DEFAULT_BASELINES_PATH)
        report = golden.compare(
            baselines, {"ablation-sched": result}, strict=False
        )
        assert any(d.kind == "metric-drift" for d in report.drifts)

    def test_no_corruptor_installed_without_directive(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
        assert not faults.install_memo_corruption()


class TestExitCodeContract:
    def test_bad_retries_is_usage_error(self, capsys):
        assert main(["run", "fig7", "--retries", "-1"]) == 2
        assert "--retries" in capsys.readouterr().err

    def test_bad_timeout_is_usage_error(self, capsys):
        assert main(["run", "fig7", "--timeout", "0"]) == 2
        assert "--timeout" in capsys.readouterr().err

    def test_success_failure_usage_triple(self, capsys, monkeypatch):
        assert main(["run", "fig7", "--quiet"]) == 0
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "raise:fig7")
        assert main(["run", "fig7", "--quiet", "--retries", "0"]) == 1
        assert main(["run", "fig99"]) == 2


class TestRunRecord:
    def test_ok_record_payload_is_plain_result_schema(self):
        result = run_experiment("fig7")
        record = RunRecord(
            experiment_id="fig7",
            status="ok",
            attempts=1,
            payload=result.to_payload(),
            rendered=result.render(),
        )
        assert record.ok
        assert record.to_payload() == result.to_payload()  # no envelope
        assert record.result().headline == result.headline

    def test_failed_record_envelope_and_rendering(self):
        record = RunRecord(
            experiment_id="fig7",
            status="failed",
            attempts=2,
            error_kind="crash",
            error_message="worker process died before returning a result",
        )
        assert not record.ok
        payload = record.to_payload()
        assert payload["status"] == "failed"
        assert payload["error"]["kind"] == "crash"
        with pytest.raises(ValueError):
            record.result()
        text = record.describe_failure()
        assert "FAILED (crash after 2 attempt(s))" in text

    def test_merge_failures_replaces_stale_with_run_failure(self):
        report = golden.VerifyReport(
            drifts=(
                golden.Drift("fig7", "stale-baseline", detail="no matching result"),
                golden.Drift("fig8", "metric-drift", "total_gain", 1.0, 2.0, 1.0, 1e-6),
            ),
            n_experiments=1,
            n_metrics=5,
        )
        failed = [
            RunRecord(
                experiment_id="fig7",
                status="failed",
                attempts=2,
                error_kind="timeout",
                error_message="experiment exceeded the per-experiment --timeout",
            )
        ]
        merged = golden.merge_failures(report, failed)
        kinds = {(d.experiment_id, d.kind) for d in merged.drifts}
        assert ("fig7", "run-failure") in kinds
        assert ("fig7", "stale-baseline") not in kinds
        assert ("fig8", "metric-drift") in kinds
        assert "timeout after 2 attempt(s)" in merged.render()
