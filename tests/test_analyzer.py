"""Holistic analyzer tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.carbon.intensity import AccountingMethod
from repro.core.analyzer import FootprintAnalyzer, PhaseWorkload, TaskDescription
from repro.core.footprint import Phase
from repro.errors import UnitError

hours = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def simple_task(train_hours=1000.0, infer_hours=2000.0) -> TaskDescription:
    return TaskDescription(
        name="task",
        workloads=(
            PhaseWorkload(Phase.OFFLINE_TRAINING, train_hours),
            PhaseWorkload(Phase.INFERENCE, infer_hours),
        ),
    )


class TestPhaseWorkload:
    def test_validation(self):
        with pytest.raises(UnitError):
            PhaseWorkload(Phase.DATA, -1.0)
        with pytest.raises(UnitError):
            PhaseWorkload(Phase.DATA, 1.0, utilization=1.5)
        with pytest.raises(UnitError):
            PhaseWorkload(Phase.DATA, 1.0, devices_per_server=0)

    def test_server_hours(self):
        wl = PhaseWorkload(Phase.DATA, 100.0, devices_per_server=4)
        assert wl.server_hours == 25.0


class TestTaskDescription:
    def test_duplicate_phase_rejected(self):
        with pytest.raises(UnitError):
            TaskDescription(
                name="dup",
                workloads=(
                    PhaseWorkload(Phase.DATA, 1.0),
                    PhaseWorkload(Phase.DATA, 2.0),
                ),
            )

    def test_total_device_hours(self):
        assert simple_task(100.0, 200.0).total_device_hours() == 300.0


class TestFootprintAnalyzer:
    def test_operational_positive(self):
        fp = FootprintAnalyzer().analyze(simple_task())
        assert fp.operational.carbon.kg > 0
        assert fp.embodied.amortized.kg > 0

    def test_market_based_is_zero_for_matched_fleet(self):
        analyzer = FootprintAnalyzer().with_accounting(AccountingMethod.MARKET_BASED)
        fp = analyzer.analyze(simple_task())
        assert fp.operational.carbon.kg == 0.0
        assert fp.embodied.amortized.kg > 0  # embodied survives matching

    @given(hours)
    def test_operational_linear_in_hours(self, h):
        analyzer = FootprintAnalyzer()
        base = analyzer.operational_footprint(simple_task(1000.0, 0.0)).carbon.kg
        scaled = analyzer.operational_footprint(simple_task(2 * 1000.0, 0.0)).carbon.kg
        assert math.isclose(scaled, 2 * base, rel_tol=1e-9)

    def test_pue_inflates_energy(self):
        from repro.energy.pue import Datacenter

        lean = FootprintAnalyzer(datacenter=Datacenter(1.0))
        fat = FootprintAnalyzer(datacenter=Datacenter(1.5))
        task = simple_task()
        assert (
            fat.operational_footprint(task).energy.kwh
            > lean.operational_footprint(task).energy.kwh
        )

    def test_higher_utilization_higher_phase_energy(self):
        analyzer = FootprintAnalyzer()
        low = TaskDescription(
            "low", workloads=(PhaseWorkload(Phase.INFERENCE, 1000.0, 0.2),)
        )
        high = TaskDescription(
            "high", workloads=(PhaseWorkload(Phase.INFERENCE, 1000.0, 0.9),)
        )
        assert (
            analyzer.operational_footprint(high).energy.kwh
            > analyzer.operational_footprint(low).energy.kwh
        )

    def test_embodied_scales_with_server_hours(self):
        analyzer = FootprintAnalyzer()
        small = analyzer.embodied_footprint(simple_task(1000.0, 0.0))
        large = analyzer.embodied_footprint(simple_task(4000.0, 0.0))
        assert math.isclose(large.amortized.kg, 4 * small.amortized.kg, rel_tol=1e-9)

    def test_analyze_many(self):
        analyzer = FootprintAnalyzer()
        results = analyzer.analyze_many([simple_task(), simple_task()])
        assert len(results) == 2
        assert results[0].carbon.isclose(results[1].carbon)

    def test_negative_host_overhead_rejected(self):
        with pytest.raises(UnitError):
            FootprintAnalyzer(host_overhead_watts=-1.0)

    def test_with_accounting_preserves_other_settings(self):
        analyzer = FootprintAnalyzer(host_overhead_watts=42.0)
        other = analyzer.with_accounting(AccountingMethod.MARKET_BASED)
        assert other.host_overhead_watts == 42.0
        assert other.accounting is AccountingMethod.MARKET_BASED
