"""Hypothesis property suite pinning the stacked sweep engine.

The tentpole claim is **bit-equality**: the stacked ndarray kernel in
:mod:`repro.core.sweep` must agree with the retained scalar reference
path (``_reference_evaluate_stacked``) under ``==`` on floats — no
tolerance — for every spec the :func:`repro.testing.strategies.sweep_specs`
generator can produce.  The physics invariants (monotonicity in PUE and
grid intensity, ~1/utilization scaling, embodied additivity) ride the
same generator, and sweep headline payloads must satisfy the PR-3
result-invariant registry.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.sweep import (
    SweepSpec,
    _reference_evaluate_stacked,
    evaluate_work_stacked,
    run_sweep,
    sample_points,
)
from repro.experiments.base import ExperimentResult
from repro.testing import strategies as strat
from repro.testing.invariants import (
    check_result,
    check_sweep_embodied_additivity,
    check_sweep_inverse_utilization_scaling,
    check_sweep_matches_scalar_path,
    check_sweep_monotone_in_intensity,
    check_sweep_monotone_in_pue,
    substrate_invariant_names,
)

pytestmark = pytest.mark.property


class TestRegistry:
    def test_sweep_invariants_registered(self):
        names = set(substrate_invariant_names())
        assert {
            "sweep-matches-scalar-path",
            "sweep-monotone-in-pue",
            "sweep-monotone-in-intensity",
            "sweep-inverse-utilization-scaling",
            "sweep-embodied-additivity",
        } <= names


class TestBitEquality:
    @given(strat.sweep_specs())
    def test_stacked_bit_equal_to_scalar_loop(self, spec):
        # The core pin: == on floats, never isclose.
        points = sample_points(spec)
        base = spec.base_scenario()
        fast = evaluate_work_stacked(spec.busy_device_hours, base, points)
        slow = _reference_evaluate_stacked(spec.busy_device_hours, base, points)
        assert np.array_equal(fast.energy_kwh, slow.energy_kwh)
        assert np.array_equal(fast.operational_kg, slow.operational_kg)
        assert np.array_equal(fast.embodied_kg, slow.embodied_kg)
        assert np.array_equal(fast.total_kg, slow.total_kg)
        assert np.array_equal(fast.embodied_share, slow.embodied_share)

    @given(strat.sweep_specs())
    def test_registered_scalar_path_invariant(self, spec):
        check_sweep_matches_scalar_path(spec)

    @given(strat.sweep_specs(max_axes=2))
    def test_chunked_run_bit_equal_to_single_chunk(self, spec):
        chunked = run_sweep(spec, chunk_points=7)
        whole = run_sweep(spec, chunk_points=spec.total_points())
        assert np.array_equal(chunked.results.total_kg, whole.results.total_kg)
        assert np.array_equal(chunked.results.energy_kwh, whole.results.energy_kwh)


class TestPhysics:
    @given(strat.sweep_specs())
    def test_monotone_in_pue(self, spec):
        check_sweep_monotone_in_pue(spec)

    @given(strat.sweep_specs())
    def test_monotone_in_intensity(self, spec):
        check_sweep_monotone_in_intensity(spec)

    @given(strat.sweep_specs())
    def test_inverse_utilization_scaling(self, spec):
        check_sweep_inverse_utilization_scaling(spec)

    @given(strat.sweep_specs())
    def test_embodied_additivity(self, spec):
        check_sweep_embodied_additivity(spec)


class TestResultRegistryCompliance:
    @settings(max_examples=25)
    @given(strat.sweep_specs(max_axes=2))
    def test_sweep_headline_passes_result_invariants(self, spec):
        # A sweep's headline payload, packaged as an experiment result,
        # must clear the PR-3 result-invariant registry (finiteness,
        # non-negative physical metrics, bounded shares, round-trip).
        payload = run_sweep(spec, chunk_points=64).to_payload()
        result = ExperimentResult(
            experiment_id="property-sweep",
            title="Stacked sweep headline",
            headline=dict(payload["headline"]),
        )
        assert check_result(result) == []

    def test_default_spec_headline_shape(self):
        payload = run_sweep(SweepSpec()).to_payload()
        headline = payload["headline"]
        assert headline["total_kg_min"] <= headline["total_kg_mean"] <= headline["total_kg_max"]
        assert 0.0 <= headline["embodied_share_min"] <= headline["embodied_share_max"] <= 1.0
