"""Carbon-aware scheduling, storage, CFE, provisioning tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.carbon.grid import constant_grid_trace, synthesize_grid_trace
from repro.carbon.intensity import CarbonIntensity
from repro.errors import SchedulingError, UnitError
from repro.scheduling.carbon_aware import (
    carbon_saving,
    schedule_carbon_aware,
    schedule_immediate,
)
from repro.scheduling.cfe import (
    annual_matching_score,
    cfe_gap,
    cfe_score,
    solar_procurement,
)
from repro.scheduling.jobs import DeferrableJob, synthesize_jobs
from repro.scheduling.provisioning import best_factor, provisioning_sweep
from repro.scheduling.storage import Battery, run_arbitrage


GRID = synthesize_grid_trace(168, seed=4)
JOBS = synthesize_jobs(30, 168, seed=4)


class TestDeferrableJob:
    def test_slack(self):
        job = DeferrableJob(0, submit_hour=5, duration_hours=10, power_kw=50.0, deadline_hour=40)
        assert job.latest_start == 30
        assert job.slack_hours == 25
        assert job.energy_kwh == 500.0

    def test_impossible_deadline_rejected(self):
        with pytest.raises(UnitError):
            DeferrableJob(0, 5, 10, 50.0, deadline_hour=10)

    def test_synthesize_respects_horizon(self):
        jobs = synthesize_jobs(40, 168, seed=1)
        for job in jobs:
            assert 0 <= job.submit_hour
            assert job.deadline_hour <= 168


class TestCarbonAwareScheduling:
    def test_aware_never_worse_than_immediate(self):
        base = schedule_immediate(JOBS, GRID, 168)
        aware = schedule_carbon_aware(JOBS, GRID, 168)
        assert aware.total_carbon.kg <= base.total_carbon.kg + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 500))
    def test_aware_never_worse_property(self, seed):
        grid = synthesize_grid_trace(168, seed=seed)
        jobs = synthesize_jobs(15, 168, seed=seed)
        base = schedule_immediate(jobs, grid, 168)
        aware = schedule_carbon_aware(jobs, grid, 168)
        assert aware.total_carbon.kg <= base.total_carbon.kg + 1e-9

    def test_deadlines_respected_when_uncapped(self):
        aware = schedule_carbon_aware(JOBS, GRID, 168)
        assert aware.deadline_misses == 0
        for job in JOBS:
            start = aware.start_hours[job.job_id]
            assert job.submit_hour <= start
            assert start + job.duration_hours <= job.deadline_hour

    def test_capacity_respected(self):
        capacity = 500.0
        aware = schedule_carbon_aware(JOBS, GRID, 168, capacity_kw=capacity)
        assert aware.peak_power_kw <= capacity + 1e-6

    def test_flat_grid_gives_zero_saving(self):
        grid = constant_grid_trace(CarbonIntensity(0.4), 168)
        base = schedule_immediate(JOBS, grid, 168)
        aware = schedule_carbon_aware(JOBS, grid, 168)
        assert carbon_saving(base, aware) == pytest.approx(0.0, abs=1e-9)

    def test_oversized_job_rejected(self):
        job = DeferrableJob(0, 0, 4, power_kw=1000.0, deadline_hour=20)
        with pytest.raises(SchedulingError):
            schedule_carbon_aware([job], GRID, 168, capacity_kw=100.0)

    def test_deadline_beyond_horizon_rejected(self):
        job = DeferrableJob(0, 0, 4, power_kw=10.0, deadline_hour=500)
        with pytest.raises(SchedulingError):
            schedule_immediate([job], GRID, 168)

    def test_single_job_picks_greenest_window(self):
        intensity = np.full(48, 1.0)
        intensity[20:24] = 0.01
        from repro.carbon.grid import GridTrace

        grid = GridTrace(
            solar_share=np.zeros(48),
            wind_share=np.zeros(48),
            intensity_kg_per_kwh=intensity,
        )
        job = DeferrableJob(0, 0, 4, power_kw=10.0, deadline_hour=48)
        aware = schedule_carbon_aware([job], grid, 48)
        assert aware.start_hours[0] == 20


class TestBattery:
    def test_arbitrage_saves_on_variable_grid(self):
        load = np.full(168, 500.0)
        out = run_arbitrage(load, GRID, Battery(4000.0, 1000.0))
        assert out.carbon_saving_fraction > 0.0

    def test_no_saving_on_flat_grid(self):
        grid = constant_grid_trace(CarbonIntensity(0.4), 168)
        load = np.full(168, 500.0)
        out = run_arbitrage(load, grid, Battery(4000.0, 1000.0))
        assert out.carbon_saving_fraction <= 0.0 + 1e-9

    def test_soc_within_capacity(self):
        load = np.full(168, 500.0)
        battery = Battery(4000.0, 1000.0)
        out = run_arbitrage(load, GRID, battery)
        assert np.all(out.state_of_charge_kwh <= battery.capacity_kwh + 1e-6)
        assert np.all(out.state_of_charge_kwh >= -1e-9)

    def test_percentile_validation(self):
        load = np.full(24, 1.0)
        with pytest.raises(UnitError):
            run_arbitrage(load, GRID, Battery(10, 10), 60.0, 40.0)

    def test_battery_validation(self):
        with pytest.raises(UnitError):
            Battery(0.0, 1.0)
        with pytest.raises(UnitError):
            Battery(1.0, 1.0, round_trip_efficiency=1.5)


class TestCFE:
    LOAD = np.full(168, 100.0)

    def test_full_annual_matching(self):
        procured = solar_procurement(self.LOAD, GRID, 1.0)
        assert annual_matching_score(self.LOAD, procured) == pytest.approx(1.0)

    def test_cfe_below_annual_for_solar(self):
        procured = solar_procurement(self.LOAD, GRID, 1.0)
        assert cfe_score(self.LOAD, procured) < 1.0
        assert cfe_gap(self.LOAD, procured) > 0.0

    def test_perfectly_matched_supply_scores_one(self):
        assert cfe_score(self.LOAD, self.LOAD.copy()) == pytest.approx(1.0)

    def test_zero_load_scores_one(self):
        zero = np.zeros(24)
        assert cfe_score(zero, zero) == 1.0

    def test_procurement_scales_with_fraction(self):
        half = solar_procurement(self.LOAD, GRID, 0.5)
        full = solar_procurement(self.LOAD, GRID, 1.0)
        assert np.sum(full) == pytest.approx(2 * np.sum(half))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(UnitError):
            cfe_score(np.ones(10), np.ones(11))


class TestProvisioning:
    def test_sweep_monotone_embodied(self):
        points = provisioning_sweep(
            JOBS, GRID, 168, base_capacity_kw=800.0, factors=np.array([1.0, 1.5, 2.0])
        )
        embodied = [p.embodied_extra.kg for p in points]
        assert embodied[0] == 0.0
        assert all(a < b for a, b in zip(embodied, embodied[1:]))

    def test_operational_non_increasing_with_capacity(self):
        points = provisioning_sweep(
            JOBS, GRID, 168, base_capacity_kw=800.0, factors=np.array([1.0, 2.0, 4.0])
        )
        ops = [p.operational.kg for p in points]
        assert all(a >= b - 1e-9 for a, b in zip(ops, ops[1:]))

    def test_best_factor_selects_minimum_net(self):
        points = provisioning_sweep(
            JOBS, GRID, 168, base_capacity_kw=800.0, factors=np.array([1.0, 1.5, 2.0])
        )
        best = best_factor(points)
        assert best.net.kg == min(p.net.kg for p in points)

    def test_factor_below_one_rejected(self):
        with pytest.raises(UnitError):
            provisioning_sweep(
                JOBS, GRID, 168, base_capacity_kw=800.0, factors=np.array([0.5])
            )
