"""Property-style tests for repro.units and repro.core.quantities.

Randomized magnitudes (log-uniform over 24 orders of magnitude, fixed
seed) check the algebraic properties the unit layer promises: conversion
round-trips, commutativity of scaling, and rejection of negative / NaN /
infinite magnitudes.
"""

import random

import pytest

from repro import units
from repro.core.quantities import Carbon, Energy, Power
from repro.errors import UnitError

RNG = random.Random(0xC0FFEE)
MAGNITUDES = [10 ** RNG.uniform(-12.0, 12.0) for _ in range(200)]
REL = 1e-12


class TestUnitRoundTrips:
    @pytest.mark.parametrize("x", MAGNITUDES[:50])
    def test_joules_kwh_round_trip(self, x):
        assert units.kwh_to_joules(units.joules_to_kwh(x)) == pytest.approx(x, rel=REL)
        assert units.joules_to_kwh(units.kwh_to_joules(x)) == pytest.approx(x, rel=REL)

    @pytest.mark.parametrize("x", MAGNITUDES[:50])
    def test_kwh_mwh_round_trip(self, x):
        assert units.mwh_to_kwh(units.kwh_to_mwh(x)) == pytest.approx(x, rel=REL)
        assert units.kwh_to_mwh(units.mwh_to_kwh(x)) == pytest.approx(x, rel=REL)

    @pytest.mark.parametrize("x", MAGNITUDES[:50])
    def test_mass_round_trips(self, x):
        assert units.tonnes_to_kg(units.kg_to_tonnes(x)) == pytest.approx(x, rel=REL)
        assert units.kg_to_tonnes(units.tonnes_to_kg(x)) == pytest.approx(x, rel=REL)
        # g -> kg -> t -> kg -> g chain
        kg = units.grams_to_kg(x)
        t = units.kg_to_tonnes(kg)
        assert units.tonnes_to_kg(t) / units.KG_PER_GRAM == pytest.approx(x, rel=REL)

    @pytest.mark.parametrize("x", MAGNITUDES[:50])
    def test_quantity_view_round_trips(self, x):
        assert Energy.from_joules(x).joules == pytest.approx(x, rel=REL)
        assert Energy.from_mwh(x).mwh == pytest.approx(x, rel=REL)
        assert Energy.from_wh(x).kwh == pytest.approx(x / 1e3, rel=REL)
        assert Power.from_kw(x).kw == pytest.approx(x, rel=REL)
        assert Power.from_mw(x).mw == pytest.approx(x, rel=REL)
        assert Carbon.from_grams(x).grams == pytest.approx(x, rel=REL)
        assert Carbon.from_tonnes(x).tonnes == pytest.approx(x, rel=REL)


class TestScalingAlgebra:
    @pytest.mark.parametrize("cls,attr", [(Energy, "kwh"), (Power, "watts"), (Carbon, "kg")])
    def test_scaling_commutes(self, cls, attr):
        for _ in range(50):
            x = 10 ** RNG.uniform(-6.0, 6.0)
            a = 10 ** RNG.uniform(-3.0, 3.0)
            b = 10 ** RNG.uniform(-3.0, 3.0)
            q = cls(x)
            left = getattr((a * q) * b, attr)
            right = getattr((b * q) * a, attr)
            direct = getattr((a * b) * q, attr)
            assert left == pytest.approx(right, rel=1e-9)
            assert left == pytest.approx(direct, rel=1e-9)

    @pytest.mark.parametrize("cls,attr", [(Energy, "kwh"), (Power, "watts"), (Carbon, "kg")])
    def test_addition_commutes_and_scales(self, cls, attr):
        for _ in range(50):
            x, y = (10 ** RNG.uniform(-6.0, 6.0) for _ in range(2))
            k = 10 ** RNG.uniform(-3.0, 3.0)
            assert getattr(cls(x) + cls(y), attr) == pytest.approx(
                getattr(cls(y) + cls(x), attr), rel=1e-12
            )
            assert getattr(k * (cls(x) + cls(y)), attr) == pytest.approx(
                getattr(k * cls(x) + k * cls(y), attr), rel=1e-9
            )

    def test_power_times_duration_matches_units_helper(self):
        for _ in range(50):
            w = 10 ** RNG.uniform(-3.0, 7.0)
            h = 10 ** RNG.uniform(-3.0, 4.0)
            assert Power(w).over_hours(h).kwh == pytest.approx(
                units.watts_hours_to_kwh(w, h), rel=1e-12
            )
            assert Power(w).over_seconds(h * 3600.0).kwh == pytest.approx(
                Power(w).over_hours(h).kwh, rel=1e-9
            )


class TestRejection:
    @pytest.mark.parametrize("cls", [Energy, Power, Carbon])
    def test_negative_rejected(self, cls):
        for _ in range(25):
            with pytest.raises(UnitError):
                cls(-(10 ** RNG.uniform(-12.0, 12.0)))

    @pytest.mark.parametrize("cls", [Energy, Power, Carbon])
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_rejected(self, cls, bad):
        with pytest.raises(UnitError):
            cls(bad)

    def test_units_helpers_reject_negative(self):
        with pytest.raises(ValueError):
            units.watts_hours_to_kwh(-1.0, 1.0)
        with pytest.raises(ValueError):
            units.watts_hours_to_kwh(1.0, -1.0)
        with pytest.raises(ValueError):
            units.gpu_days(-0.5)

    @pytest.mark.parametrize("cls", [Energy, Power, Carbon])
    def test_subtraction_below_zero_rejected(self, cls):
        for _ in range(25):
            x = 10 ** RNG.uniform(-6.0, 6.0)
            with pytest.raises(UnitError):
                cls(x) - cls(x * (1.0 + 10 ** RNG.uniform(-6.0, 0.0)))

    def test_nan_propagation_blocked_through_scaling(self):
        with pytest.raises(UnitError):
            Energy(1.0) * float("nan")
