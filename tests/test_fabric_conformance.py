"""Router-level conformance: the fabric changes no bytes.

A 3-replica fabric (in-process router in attached mode fronting three
inline services) must be indistinguishable — byte for byte — from one
single-node service and from the direct library path, for the full
45-experiment registry (cold and warm), the footprint/schedule
endpoints, and the sweep submit/poll/result lifecycle.  The module also
pins the fabric-only surfaces: sweep-to-owner pinning, the aggregated
``/metrics`` rollup, and the router's own ``/healthz``.

Everything runs inline (``workers=0``) and requests are driven
sequentially: experiment execution seeds the global RNG, so two
services in one process must never execute concurrently.
"""

from __future__ import annotations

import contextlib
import time

import pytest

from repro.experiments.registry import experiment_ids
from repro.service import parse_query, render_payload
from repro.service.router import RouterConfig, start_router
from tests.serviceutil import ServiceClient, running_service

pytestmark = pytest.mark.slow

FABRIC_REPLICAS = 3


@pytest.fixture(scope="module")
def fabric():
    """(fabric client, single-node client, router handle), torn down last-in."""
    with contextlib.ExitStack() as stack:
        backends = []
        for _ in range(FABRIC_REPLICAS):
            handle, _client = stack.enter_context(
                running_service(workers=0, lru_size=256)
            )
            backends.append(f"http://{handle.service.config.host}:{handle.port}")
        _single_handle, single_client = stack.enter_context(
            running_service(workers=0, lru_size=256)
        )
        config = RouterConfig(port=0, replicas=0, backends=tuple(backends))
        router_handle = start_router(config)
        stack.callback(router_handle.stop)
        fabric_client = ServiceClient(config.host, router_handle.port)
        stack.callback(fabric_client.close)
        yield fabric_client, single_client, router_handle


class TestExperimentConformance:
    @pytest.mark.parametrize("exp_id", experiment_ids())
    def test_fabric_bytes_match_single_node_and_direct(
        self, fabric, all_results, exp_id
    ):
        fabric_client, single_client, _router = fabric
        expected = render_payload(all_results[exp_id].to_payload())
        cold = fabric_client.get(f"/experiments/{exp_id}")
        assert cold.status == 200
        assert cold.body == expected
        warm = fabric_client.get(f"/experiments/{exp_id}")
        assert warm.status == 200
        assert warm.body == expected
        single = single_client.get(f"/experiments/{exp_id}")
        assert single.status == 200
        assert single.body == expected

    def test_listing_matches_registry_through_the_fabric(self, fabric):
        fabric_client, _single, _router = fabric
        reply = fabric_client.get("/experiments")
        assert reply.status == 200
        assert tuple(reply.json()["experiments"]) == experiment_ids()

    def test_load_actually_sharded_across_all_replicas(self, fabric):
        """After the 45-experiment sweep every replica proxied traffic —
        the conformance above went through the ring, not one backend."""
        fabric_client, _single, _router = fabric
        doc = fabric_client.get("/metrics").json()
        replicas = doc["router"]["replicas"]
        assert len(replicas) == FABRIC_REPLICAS
        assert all(replica["proxied"] > 0 for replica in replicas)
        assert all(replica["healthy"] for replica in replicas)


class TestQueryConformance:
    FOOTPRINT = {
        "busy_device_hours": 5000,
        "utilization": 0.6,
        "pue": 1.5,
        "region": "us-average",
    }
    SCHEDULE = {"n_jobs": 25, "seed": 3, "horizon_hours": 96, "grid_seed": 11}

    def test_footprint_get_post_and_single_node_agree(self, fabric):
        fabric_client, single_client, _router = fabric
        expected = render_payload(parse_query("footprint", dict(self.FOOTPRINT)).execute())
        query_string = "&".join(f"{k}={v}" for k, v in self.FOOTPRINT.items())
        via_get = fabric_client.get(f"/footprint?{query_string}")
        via_post = fabric_client.post("/footprint", dict(self.FOOTPRINT))
        assert via_get.status == via_post.status == 200
        assert via_get.body == via_post.body == expected
        assert single_client.get(f"/footprint?{query_string}").body == expected

    def test_schedule_get_post_and_single_node_agree(self, fabric):
        fabric_client, single_client, _router = fabric
        expected = render_payload(parse_query("schedule", dict(self.SCHEDULE)).execute())
        query_string = "&".join(f"{k}={v}" for k, v in self.SCHEDULE.items())
        via_get = fabric_client.get(f"/schedule/carbon-aware?{query_string}")
        via_post = fabric_client.post("/schedule/carbon-aware", dict(self.SCHEDULE))
        assert via_get.status == via_post.status == 200
        assert via_get.body == via_post.body == expected
        assert single_client.get(f"/schedule/carbon-aware?{query_string}").body == expected

    @pytest.mark.parametrize(
        "params",
        [
            {"workload": "llm-training", "model": "llm-7b", "region": "us-average"},
            {"workload": "llm-serving", "peak_qps": 250, "hours": 72},
        ],
        ids=["training", "serving"],
    )
    def test_genai_get_post_and_single_node_agree(self, fabric, params):
        """GenAI ``/footprint`` queries shard on the genai cache key and
        stay byte-identical through the 3-replica fabric."""
        fabric_client, single_client, _router = fabric
        expected = render_payload(parse_query("genai", dict(params)).execute())
        query_string = "&".join(f"{k}={v}" for k, v in params.items())
        via_get = fabric_client.get(f"/footprint?{query_string}")
        via_post = fabric_client.post("/footprint", dict(params))
        assert via_get.status == via_post.status == 200
        assert via_get.body == via_post.body == expected
        assert single_client.get(f"/footprint?{query_string}").body == expected


SWEEP_SPEC = {
    "busy_device_hours": 1000.0,
    "ranges": [{"name": "utilization", "lo": 0.3, "hi": 0.8, "points": 1}],
    "sampling": "sobol",
    "n_points": 64,
    "seed": 7,
}


def _wait_sweep(client, sweep_id, deadline_s=60.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        poll = client.get(f"/sweep/{sweep_id}")
        assert poll.status == 200
        doc = poll.json()
        if doc["status"] != "running":
            return doc
        time.sleep(0.02)
    raise AssertionError("sweep did not finish within the deadline")


class TestSweepConformance:
    def test_sweep_lifecycle_is_pinned_and_byte_identical(self, fabric):
        fabric_client, _single, router_handle = fabric
        submitted = fabric_client.post("/sweep", dict(SWEEP_SPEC))
        assert submitted.status in (200, 202)
        sweep_id = submitted.json()["sweep_id"]
        # Polls for a submitted sweep are pinned to the owning replica.
        assert router_handle.router._sweep_owners.get(sweep_id)
        final = _wait_sweep(fabric_client, sweep_id)
        assert final["status"] == "done"
        result = fabric_client.get(f"/sweep/{sweep_id}/result")
        assert result.status == 200
        expected = render_payload(parse_query("sweep", dict(SWEEP_SPEC)).execute())
        assert result.body == expected

    def test_resubmission_rejoins_the_same_job(self, fabric):
        fabric_client, _single, _router = fabric
        first = fabric_client.post("/sweep", dict(SWEEP_SPEC)).json()["sweep_id"]
        again = fabric_client.post("/sweep", dict(SWEEP_SPEC))
        assert again.status in (200, 202)
        assert again.json()["sweep_id"] == first

    def test_sweep_listing_merges_the_fleet(self, fabric):
        fabric_client, _single, _router = fabric
        listing = fabric_client.get("/sweep")
        assert listing.status == 200
        ids = {job["sweep_id"] for job in listing.json()["sweeps"]}
        first = fabric_client.post("/sweep", dict(SWEEP_SPEC)).json()["sweep_id"]
        assert first in ids or first in {
            job["sweep_id"] for job in fabric_client.get("/sweep").json()["sweeps"]
        }

    def test_unknown_sweep_id_is_404_through_the_fabric(self, fabric):
        fabric_client, _single, _router = fabric
        assert fabric_client.get("/sweep/does-not-exist").status == 404
        assert fabric_client.get("/sweep/does-not-exist/result").status == 404


class TestFabricSurfaces:
    def test_router_healthz_reports_fleet_state(self, fabric):
        fabric_client, _single, _router = fabric
        doc = fabric_client.get("/healthz").json()
        assert doc["status"] == "ok"
        assert doc["role"] == "router"
        assert doc["replicas"] == {"healthy": FABRIC_REPLICAS, "total": FABRIC_REPLICAS}

    def test_aggregated_metrics_roll_up_the_fleet(self, fabric):
        fabric_client, _single, _router = fabric
        doc = fabric_client.get("/metrics").json()
        assert doc["service"]["replicas"] == FABRIC_REPLICAS
        # The fleet saw at least the full experiment sweep (cold + warm).
        assert doc["requests"]["total"] >= 2 * len(experiment_ids())
        assert doc["response_cache"]["hits"] >= len(experiment_ids())
        ring = doc["router"]["ring"]
        assert len(ring["nodes"]) == FABRIC_REPLICAS
        assert sum(ring["shares"].values()) == pytest.approx(1.0)
        assert doc["router"]["failovers"] == 0

    def test_unknown_path_is_a_clean_404(self, fabric):
        fabric_client, _single, _router = fabric
        reply = fabric_client.get("/not-an-endpoint")
        assert reply.status == 404
        assert reply.json()["error"]["kind"] == "not-found"
