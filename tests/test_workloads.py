"""Workload model tests: OSS anchors, FB calibration, growth, traces."""


import numpy as np
import pytest

from repro.core.analyzer import FootprintAnalyzer
from repro.workloads.arxiv import cumulative_by_category, ml_overtakes_at_month
from repro.workloads.facebook import PRODUCTION_PROFILES, production_tasks
from repro.workloads.growthtrends import (
    ACCELERATOR_MEMORY_GROWTH,
    DATA_GROWTH_RM_A,
    GrowthTrend,
    INGESTION_BANDWIDTH_GROWTH,
    MODEL_SIZE_GROWTH,
    scaling_gap,
)
from repro.workloads.oss_models import (
    GPT3,
    MEENA,
    OSS_MODELS,
    SWITCH_TRANSFORMER,
    fb_average_training_target,
    parameters_vs_carbon_correlation,
)
from repro.workloads.traces import (
    diurnal_demand,
    experiment_arrivals,
    inference_request_volume,
)
from repro.lifecycle.jobs import EXPERIMENTATION_JOBS


class TestOSSAnchors:
    def test_switch_transformer_beats_gpt3_despite_more_params(self):
        # The paper's non-correlation example.
        assert SWITCH_TRANSFORMER.parameters_billion > GPT3.parameters_billion
        assert SWITCH_TRANSFORMER.training_carbon.kg < GPT3.training_carbon.kg

    def test_correlation_weak(self):
        assert abs(parameters_vs_carbon_correlation()) < 0.5

    def test_fb_target_is_1_8x_meena(self):
        target = fb_average_training_target()
        assert target.tonnes == pytest.approx(1.8 * MEENA.training_carbon.tonnes)

    def test_fb_target_near_third_of_gpt3(self):
        target = fb_average_training_target()
        assert target.tonnes / GPT3.training_carbon.tonnes == pytest.approx(
            1 / 3, abs=0.05
        )

    def test_all_models_have_positive_footprints(self):
        for model in OSS_MODELS:
            assert model.training_energy.kwh > 0
            assert model.training_carbon.kg > 0


class TestProductionTasks:
    def test_profiles_average_to_one(self):
        weights = [p.training_weight for p in PRODUCTION_PROFILES]
        assert np.mean(weights) == pytest.approx(1.0, abs=1e-9)

    def test_six_tasks(self):
        assert len(production_tasks()) == 6
        assert [t.name for t in production_tasks()][:2] == ["LM", "RM1"]

    def test_calibration_hits_target(self):
        analyzer = FootprintAnalyzer()
        tasks = production_tasks(analyzer)
        training_tonnes = []
        for task in tasks:
            op = analyzer.operational_footprint(task)
            train_share, _ = op.training_inference_split()
            training_tonnes.append(op.carbon.tonnes * train_share)
        avg = float(np.mean(training_tonnes))
        assert avg == pytest.approx(1.8 * MEENA.training_carbon.tonnes, rel=0.01)

    def test_lm_inference_heavy(self):
        analyzer = FootprintAnalyzer()
        lm = production_tasks(analyzer)[0]
        train, infer = analyzer.operational_footprint(lm).training_inference_split()
        assert train == pytest.approx(0.35, abs=0.01)
        assert infer == pytest.approx(0.65, abs=0.01)

    def test_rms_split_evenly(self):
        analyzer = FootprintAnalyzer()
        for task in production_tasks(analyzer)[1:]:
            train, infer = analyzer.operational_footprint(
                task
            ).training_inference_split()
            assert train == pytest.approx(0.5, abs=0.01)

    def test_lm_has_no_online_training(self):
        from repro.core.footprint import Phase

        analyzer = FootprintAnalyzer()
        lm = production_tasks(analyzer)[0]
        op = analyzer.operational_footprint(lm)
        assert op.phase_carbon(Phase.ONLINE_TRAINING).kg == 0.0


class TestGrowthTrends:
    def test_annual_rate_consistency(self):
        trend = GrowthTrend("x", 4.0, 2.0)
        assert trend.annual_rate == pytest.approx(2.0)
        assert trend.value_at(2.0) == pytest.approx(4.0)

    def test_paper_values(self):
        assert DATA_GROWTH_RM_A.factor == 2.4
        assert INGESTION_BANDWIDTH_GROWTH.factor == 3.2
        assert MODEL_SIZE_GROWTH.factor == 20.0

    def test_doubling_time(self):
        trend = GrowthTrend("x", 2.0, 1.0)
        assert trend.doubling_time_years() == pytest.approx(1.0)

    def test_no_growth_never_doubles(self):
        assert GrowthTrend("flat", 1.0, 1.0).doubling_time_years() == float("inf")

    def test_scaling_gap_widens(self):
        gap = scaling_gap(MODEL_SIZE_GROWTH, ACCELERATOR_MEMORY_GROWTH, 2.0)
        assert gap > 5.0  # 20x model vs <2x memory

    def test_series(self):
        t, v = GrowthTrend("x", 4.0, 2.0).series(5)
        assert len(t) == len(v) == 5
        assert v[0] == pytest.approx(1.0)
        assert v[-1] == pytest.approx(4.0)


class TestArxiv:
    def test_ml_overtakes_most_categories(self):
        crossings = ml_overtakes_at_month(144)
        overtaken = sum(1 for c in crossings.values() if c is not None)
        assert overtaken >= 5

    def test_cumulative_is_monotone(self):
        curves = cumulative_by_category(60)
        for series in curves.values():
            assert np.all(np.diff(series) >= 0)

    def test_deterministic(self):
        a = cumulative_by_category(36, seed=5)
        b = cumulative_by_category(36, seed=5)
        np.testing.assert_array_equal(a["machine learning"], b["machine learning"])


class TestTraces:
    def test_diurnal_in_bounds(self):
        demand = diurnal_demand(168)
        assert np.all(demand > 0)
        assert np.all(demand <= 1.0)

    def test_diurnal_has_daily_swing(self):
        demand = diurnal_demand(168, noise=0.0)
        by_hour = demand[:144].reshape(6, 24).mean(axis=0)
        assert by_hour.max() / by_hour.min() > 1.2

    def test_experiment_arrivals_sorted(self):
        stream = experiment_arrivals(EXPERIMENTATION_JOBS, 10.0, 7.0, seed=0)
        assert np.all(np.diff(stream.start_hours) >= 0)
        assert stream.total_gpu_hours > 0

    def test_inference_volume_doubles_in_3yr(self):
        t, volume = inference_request_volume(years=3.0)
        assert volume[-1] / volume[0] == pytest.approx(2.0, rel=0.01)
