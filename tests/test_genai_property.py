"""Hypothesis property suite for the GenAI workload laws.

Maps the five genai substrate invariants from
:mod:`repro.testing.invariants` over the :func:`llm_training_specs` and
:func:`llm_serving_specs` generators — the whole valid knob space, not
just the inventory points the golden experiments pin.  Carries the
``property`` marker like the rest of the Hypothesis tier.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnitError
from repro.testing.invariants import (
    check_genai_checkpoint_overhead,
    check_genai_crossover_metamorphic,
    check_genai_mfu_inverse,
    check_genai_serving_additive,
    check_genai_tokens_monotone,
    substrate_invariant_names,
)
from repro.testing.strategies import llm_serving_specs, llm_training_specs
from repro.workloads.genai import default_genai_context

pytestmark = pytest.mark.property

# Bounded away from 1: at factor = 1 + ulp the scaled energy can round to
# the base value, which would vacuously fail the *strict* monotone check
# while the exact-linearity check still holds.
growth_factors = st.floats(
    min_value=1.01, max_value=50.0, allow_nan=False, allow_infinity=False
)
qps_splits = st.floats(
    min_value=0.1, max_value=0.9, allow_nan=False, allow_infinity=False
)

CONTEXT = default_genai_context()


def test_genai_invariants_are_registered():
    names = substrate_invariant_names()
    for name in (
        "genai-training-energy-monotone-in-tokens",
        "genai-training-energy-inverse-in-mfu",
        "genai-checkpoint-overhead-vanishes",
        "genai-serving-energy-additive-in-qps",
        "genai-crossover-metamorphic",
    ):
        assert name in names


@given(spec=llm_training_specs(), factor=growth_factors)
def test_training_energy_monotone_in_tokens(spec, factor):
    check_genai_tokens_monotone(spec, factor)


@given(spec=llm_training_specs(), factor=growth_factors)
def test_training_energy_inverse_in_mfu(spec, factor):
    check_genai_mfu_inverse(spec, factor)


@given(spec=llm_training_specs())
def test_checkpoint_overhead_nonnegative_and_vanishing(spec):
    check_genai_checkpoint_overhead(spec)


@settings(max_examples=40)
@given(spec=llm_serving_specs(), split=qps_splits)
def test_serving_energy_additive_in_qps(spec, split):
    check_genai_serving_additive(spec, split)


@settings(max_examples=25)
@given(
    training=llm_training_specs(),
    serving=llm_serving_specs(),
    factor=st.floats(min_value=1.1, max_value=16.0, allow_nan=False, allow_infinity=False),
)
def test_crossover_metamorphic_in_qps(training, serving, factor):
    check_genai_crossover_metamorphic(training, serving, CONTEXT, factor)


@given(spec=llm_training_specs())
def test_generated_training_specs_are_self_consistent(spec):
    """Generator output satisfies the spec's own validation and algebra."""
    assert spec.accelerator_hours >= spec.base_accelerator_hours
    assert spec.overhead_multiplier >= 1.0
    assert spec.it_energy.joules > 0.0


@settings(max_examples=40)
@given(spec=llm_serving_specs())
def test_generated_serving_specs_are_self_consistent(spec):
    assert 1 <= spec.effective_batch <= spec.batch_size
    assert 0.0 < spec.joules_per_token
    assert spec.accelerators_at_peak >= 1
    assert len(spec.it_series().values) == spec.hours


@given(
    n_tokens=st.floats(max_value=0.0, allow_nan=False),
    spec=llm_training_specs(),
)
def test_nonpositive_token_budgets_are_rejected(n_tokens, spec):
    from dataclasses import replace

    with pytest.raises(UnitError, match="n_tokens"):
        replace(spec, n_tokens=n_tokens)
