"""The claim ledger: content addressing, the store, diffs, and traces.

Covers the provenance-carrying bundle model end to end — stable bundle
ids, the append-only store (runs, epochs, corruption tolerance), the
claim-by-claim diff that now backs ``sustainable-ai verify``, and the
``merge_failures`` edge cases routed through the ledger-diff path.
"""

import pytest

from repro.core import ledger
from repro.core.canonical import canonical_bytes
from repro.core.ledger import (
    DEFAULT_REL_TOL,
    GOLDEN_EPOCH,
    Bundle,
    Claim,
    Ledger,
    LedgerError,
    SubstrateRef,
    bundle_from_payload,
    bundles_from_baselines,
    default_provenance,
    diff_bundles,
    fold_failures,
    run_id_for,
    units_for_metric,
)
from repro.experiments import golden
from repro.experiments.base import RunRecord


def make_bundle(
    experiment_id="fig-x",
    metrics=(("total_kg", 10.0),),
    status="ok",
    recorded_at=None,
    error=None,
    payload=None,
    shape=None,
    tolerance=DEFAULT_REL_TOL,
):
    claims = tuple(
        Claim(metric, value, units_for_metric(metric), tolerance)
        for metric, value in metrics
    )
    config = {} if shape is None else {"shape": shape}
    return Bundle(
        experiment_id=experiment_id,
        title=f"bundle {experiment_id}",
        status=status,
        claims=claims,
        provenance=default_provenance(config=config, recorded_at=recorded_at),
        payload=payload,
        error=error,
    )


class TestUnits:
    @pytest.mark.parametrize(
        "metric, unit",
        [
            ("total_kg", "kgCO2e"),
            ("facility_energy_kwh", "kWh"),
            ("intensity_kg_per_kwh", "kgCO2e/kWh"),
            ("embodied_tco2e", "tCO2e"),
            ("busy_device_hours", "h"),
            ("lifetime_years", "yr"),
            ("clean_region_energy_share", "ratio"),
            ("idle_fraction", "ratio"),
            ("best_region_saving_pct", "%"),
            ("total_gain", ""),
            ("deadline_misses", ""),
        ],
    )
    def test_suffix_convention(self, metric, unit):
        assert units_for_metric(metric) == unit


class TestContentAddressing:
    def test_bundle_id_ignores_the_timestamp(self):
        # Two identical results recorded at different times must share
        # one bundle — the ledger's dedup hinges on it.
        a = make_bundle(recorded_at=1000.0)
        b = make_bundle(recorded_at=2000.0)
        assert a.bundle_id == b.bundle_id

    def test_bundle_id_tracks_the_claims(self):
        assert (
            make_bundle(metrics=(("total_kg", 10.0),)).bundle_id
            != make_bundle(metrics=(("total_kg", 10.5),)).bundle_id
        )

    def test_bundle_id_tracks_the_config(self):
        assert (
            make_bundle(shape={"headers": ["a"], "n_rows": 3}).bundle_id
            != make_bundle(shape={"headers": ["b"], "n_rows": 3}).bundle_id
        )

    def test_payload_roundtrip_preserves_the_id(self):
        bundle = make_bundle(
            payload={"experiment_id": "fig-x", "headline": {"total_kg": 10.0}},
            recorded_at=123.0,
        )
        again = Bundle.from_payload(bundle.to_payload())
        assert again.bundle_id == bundle.bundle_id
        assert again.provenance.recorded_at == 123.0

    def test_schema_mismatch_is_rejected(self):
        payload = make_bundle().to_payload()
        payload["schema"] = 99
        with pytest.raises(LedgerError, match="schema"):
            Bundle.from_payload(payload)

    def test_reconstruct_replays_canonical_bytes(self):
        payload = {"experiment_id": "fig-x", "headline": {"total_kg": 10.0}}
        bundle = make_bundle(payload=payload)
        assert bundle.reconstruct() == canonical_bytes(payload)

    def test_reconstruct_requires_a_payload(self):
        with pytest.raises(LedgerError, match="no payload"):
            make_bundle(payload=None).reconstruct()


class TestBundleFromPayload:
    def test_runner_envelope(self):
        payload = {
            "experiment_id": "fig7",
            "title": "Figure 7",
            "headline": {"total_gain": 2.5, "total_kg": 1.0},
            "tolerances": {"total_kg": 1e-3},
            "headers": ["phase", "kg"],
            "rows": [[1, 2], [3, 4]],
        }
        bundle = bundle_from_payload(payload, substrates=[("gen", "abc")])
        assert bundle.experiment_id == "fig7"
        assert bundle.headline() == {"total_gain": 2.5, "total_kg": 1.0}
        assert bundle.claim("total_kg").tolerance == 1e-3
        assert bundle.claim("total_gain").tolerance == DEFAULT_REL_TOL
        assert bundle.shape() == {"headers": ["phase", "kg"], "n_rows": 2}
        assert bundle.provenance.substrates == (SubstrateRef("gen", "abc"),)

    def test_service_query_payload(self):
        payload = {"query": {"busy_device_hours": 10.0}, "headline": {"total_kg": 3.0}}
        bundle = bundle_from_payload(payload, kind="footprint")
        assert bundle.experiment_id.startswith("footprint:")
        assert bundle.claim("total_kg").units == "kgCO2e"

    def test_sweep_document(self):
        payload = {"spec": {"axes": []}, "headline": {"min_total_kg": 1.0}}
        bundle = bundle_from_payload(payload)
        assert bundle.experiment_id.startswith("sweep:")

    def test_headline_free_payloads_record_nothing(self):
        assert bundle_from_payload({"error": {"kind": "bad-request"}}) is None
        assert bundle_from_payload({"query": {}, "headline": {}}) is None


class TestDiffBundles:
    def test_identical_sets_are_clean(self):
        base = {"fig-x": make_bundle()}
        report = diff_bundles(base, {"fig-x": make_bundle()})
        assert report.ok
        assert report.n_experiments == 1
        assert report.n_metrics == 1
        assert "OK — no drift beyond tolerance" in report.render()

    def test_drift_beyond_tolerance_is_flagged(self):
        base = {"fig-x": make_bundle(metrics=(("total_kg", 10.0),))}
        cur = {"fig-x": make_bundle(metrics=(("total_kg", 10.1),))}
        report = diff_bundles(base, cur)
        (drift,) = report.drifts
        assert drift.kind == "metric-drift"
        assert drift.expected == 10.0 and drift.actual == 10.1
        assert drift.rel_error == pytest.approx(0.01)
        assert "DRIFT — 1 violation(s)" in report.render()

    def test_informational_claims_never_fail(self):
        base = {"fig-x": make_bundle(metrics=(("total_kg", 10.0),), tolerance=None)}
        cur = {"fig-x": make_bundle(metrics=(("total_kg", 99.0),), tolerance=None)}
        assert diff_bundles(base, cur).ok

    def test_metric_set_changes(self):
        base = {"fig-x": make_bundle(metrics=(("a_kg", 1.0), ("b_kg", 2.0)))}
        cur = {"fig-x": make_bundle(metrics=(("b_kg", 2.0), ("c_kg", 3.0)))}
        kinds = {(d.kind, d.metric) for d in diff_bundles(base, cur).drifts}
        assert kinds == {("missing-metric", "a_kg"), ("new-metric", "c_kg")}

    def test_shape_changes(self):
        base = {"fig-x": make_bundle(shape={"headers": ["a"], "n_rows": 3})}
        cur = {"fig-x": make_bundle(shape={"headers": ["a"], "n_rows": 4})}
        (drift,) = diff_bundles(base, cur).drifts
        assert drift.kind == "shape"
        assert "3 -> 4" in drift.detail

    def test_strictness_controls_stale_baselines(self):
        base = {"fig-x": make_bundle(), "fig-y": make_bundle("fig-y")}
        cur = {"fig-x": make_bundle()}
        strict = diff_bundles(base, cur, strict=True)
        assert [(d.experiment_id, d.kind) for d in strict.drifts] == [
            ("fig-y", "stale-baseline")
        ]
        assert diff_bundles(base, cur, strict=False).ok

    def test_unknown_experiment_needs_an_update(self):
        report = diff_bundles({}, {"fig-new": make_bundle("fig-new")})
        (drift,) = report.drifts
        assert drift.kind == "missing-baseline"
        assert "--update" in drift.detail


class TestFoldFailures:
    """`golden.merge_failures` edge cases through the ledger-diff path."""

    def _failed_record(self, experiment_id, kind="crash", attempts=2):
        return RunRecord(
            experiment_id=experiment_id,
            status="failed",
            attempts=attempts,
            error_kind=kind,
            error_message=f"{experiment_id} died",
        )

    def test_all_failed_run(self):
        # Every experiment crashed: the diff sees an empty current set
        # (all baselines stale) and the fold must convert every stale
        # entry into an honest run-failure — no stale noise, no claims.
        base = {"fig-x": make_bundle(), "fig-y": make_bundle("fig-y")}
        failed = [
            golden.bundle_from_record(self._failed_record(eid)) for eid in base
        ]
        report = fold_failures(diff_bundles(base, {}), failed)
        assert {(d.experiment_id, d.kind) for d in report.drifts} == {
            ("fig-x", "run-failure"),
            ("fig-y", "run-failure"),
        }
        assert report.n_experiments == 0 and report.n_metrics == 0
        assert "crash after 2 attempt(s)" in report.render()

    def test_failure_replaces_previously_passing_metric(self):
        # fig-x passed in the baseline epoch but failed this run: its
        # stale-baseline entry is replaced, while the sibling's clean
        # claims keep counting toward the metric total.
        base = {"fig-x": make_bundle(), "fig-y": make_bundle("fig-y")}
        cur = {"fig-y": make_bundle("fig-y")}
        failed = [golden.bundle_from_record(self._failed_record("fig-x", "timeout"))]
        report = fold_failures(diff_bundles(base, cur), failed)
        kinds = {(d.experiment_id, d.kind) for d in report.drifts}
        assert kinds == {("fig-x", "run-failure")}
        assert report.n_metrics == 1
        assert "timeout after 2 attempt(s)" in report.render()

    def test_failed_bundles_carry_no_claims(self):
        bundle = golden.bundle_from_record(self._failed_record("fig-x"))
        assert bundle.status == "failed"
        assert bundle.claims == ()
        assert bundle.error["kind"] == "crash"

    def test_merge_failures_shim_routes_through_the_ledger(self):
        # The legacy API and the ledger primitives must agree exactly.
        base = {"fig-x": make_bundle()}
        report = diff_bundles(base, {})
        failed = [self._failed_record("fig-x")]
        via_shim = golden.merge_failures(report, failed)
        via_ledger = fold_failures(
            report, [golden.bundle_from_record(r) for r in failed]
        )
        assert via_shim == via_ledger


class TestGoldenImport:
    def test_baselines_import_pins_every_claim(self):
        doc = golden.load_baselines(golden.DEFAULT_BASELINES_PATH)
        bundles = bundles_from_baselines(doc)
        assert len(bundles) == 49
        assert sum(len(b.claims) for b in bundles.values()) == 164
        sample = bundles["fig7"]
        assert sample.provenance.source == "golden-import"
        assert sample.payload is None
        assert sample.shape() is not None

    def test_import_diffs_clean_against_itself(self):
        doc = golden.load_baselines(golden.DEFAULT_BASELINES_PATH)
        report = diff_bundles(bundles_from_baselines(doc), bundles_from_baselines(doc))
        assert report.ok
        assert report.n_metrics == 164


class TestLedgerStore:
    def test_roundtrip_through_disk(self, tmp_path):
        led = Ledger.open(tmp_path)
        run_id = led.record_run(
            [make_bundle(), make_bundle("fig-y")], run_id="r1", recorded_at=5.0
        )
        led.pin_epoch("base", run_id="r1")
        again = Ledger.open(tmp_path)
        assert set(again.refs()) == {"base", "r1"}
        assert again.resolve("r1")["fig-x"].bundle_id == make_bundle().bundle_id
        assert again.runs[run_id].recorded_at == 5.0
        assert again.corrupt_lines == 0

    def test_recording_is_idempotent(self, tmp_path):
        led = Ledger.open(tmp_path)
        led.record_run([make_bundle()], run_id="r1")
        led.record_run([make_bundle()], run_id="r1")
        again = Ledger.open(tmp_path)
        assert len(again.bundles) == 1
        assert list(again.runs) == ["r1"]

    def test_update_run_appends_deltas(self, tmp_path):
        led = Ledger.open(tmp_path)
        led.update_run("service", make_bundle())
        led.update_run("service", make_bundle("fig-y"))
        again = Ledger.open(tmp_path)
        assert set(again.resolve("service")) == {"fig-x", "fig-y"}

    def test_corrupt_lines_are_counted_not_fatal(self, tmp_path):
        led = Ledger.open(tmp_path)
        led.record_run([make_bundle()], run_id="r1")
        with open(tmp_path / "bundles.jsonl", "a") as handle:
            handle.write('{"torn":\n')
        again = Ledger.open(tmp_path)
        assert again.corrupt_lines == 1
        assert again.resolve("r1")["fig-x"].headline() == {"total_kg": 10.0}

    def test_run_id_prefix_resolution(self):
        led = Ledger.in_memory()
        rid = led.record_run([make_bundle()])
        assert rid == run_id_for([make_bundle().bundle_id])
        assert led.resolve(rid[:6]) == led.resolve(rid)
        with pytest.raises(LedgerError, match="unknown ledger ref"):
            led.resolve("xyz")  # too short for prefix matching

    def test_pin_epoch_needs_exactly_one_source(self):
        led = Ledger.in_memory()
        with pytest.raises(LedgerError, match="exactly one"):
            led.pin_epoch("e")
        with pytest.raises(LedgerError, match="unknown run"):
            led.pin_epoch("e", run_id="nope")

    def test_latest_bundle_prefers_recent_runs(self):
        led = Ledger.in_memory()
        led.pin_epoch(GOLDEN_EPOCH, {"fig-x": make_bundle(metrics=(("total_kg", 1.0),))})
        led.record_run([make_bundle(metrics=(("total_kg", 2.0),))], run_id="r1")
        ref, bundle = led.latest_bundle("fig-x")
        assert ref == "r1" and bundle.claim("total_kg").value == 2.0
        ref, bundle = led.latest_bundle("fig-x", GOLDEN_EPOCH)
        assert ref == GOLDEN_EPOCH and bundle.claim("total_kg").value == 1.0

    def test_trace_names_the_substrate_digests(self):
        led = Ledger.in_memory()
        bundle = Bundle(
            experiment_id="fig-x",
            title="t",
            status="ok",
            claims=(Claim("total_kg", 1.0, "kgCO2e"),),
            provenance=default_provenance(
                substrates=[("synthesize_grid_trace", "a" * 64), ("gen", None)],
                invariant_status="ok",
            ),
        )
        led.record_run([bundle], run_id="r1")
        doc = led.trace("fig-x", "total_kg")
        assert doc["ref"] == "r1"
        assert doc["units"] == "kgCO2e"
        assert doc["provenance"]["invariant_status"] == "ok"
        assert doc["provenance"]["substrates"][0] == {
            "substrate": "synthesize_grid_trace",
            "digest": "a" * 64,
        }

    def test_trace_errors_are_actionable(self):
        led = Ledger.in_memory()
        led.record_run([make_bundle()], run_id="r1")
        with pytest.raises(LedgerError, match="no recorded bundle"):
            led.trace("fig-missing", "total_kg")
        with pytest.raises(LedgerError, match="claims: total_kg"):
            led.trace("fig-x", "nope")

    def test_diff_payload_document(self):
        led = Ledger.in_memory()
        led.pin_epoch("base", {"fig-x": make_bundle()})
        led.record_run([make_bundle(metrics=(("total_kg", 20.0),))], run_id="r1")
        doc = led.diff_payload("base", "r1")
        assert doc["a"] == "base" and doc["b"] == "r1"
        assert doc["ok"] is False
        assert doc["drifts"][0]["kind"] == "metric-drift"
        assert set(doc["code_versions"]) == {"a", "b"}

    def test_stats_summary(self, tmp_path):
        led = Ledger.open(tmp_path)
        led.record_run([make_bundle()], run_id="r1")
        stats = led.stats()
        assert stats["bundles"] == 1
        assert stats["runs"] == ["r1"]
        assert stats["directory"] == str(tmp_path)
        assert Ledger.in_memory().stats()["directory"] is None


class TestLedgerDirResolution:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV_VAR, "/env/path")
        assert ledger.resolve_ledger_dir("/flag/path").name == "path"
        assert str(ledger.resolve_ledger_dir("/flag/path")) == "/flag/path"

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV_VAR, "/env/path")
        assert str(ledger.resolve_ledger_dir(None)) == "/env/path"
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV_VAR, "  ")
        assert ledger.resolve_ledger_dir(None) is None
        monkeypatch.delenv(ledger.LEDGER_DIR_ENV_VAR)
        assert ledger.resolve_ledger_dir(None) is None
