"""Disk tier of the substrate cache: round-trips, corruption, addressing.

The acceptance property that matters most here: a value served from a
warm disk cache is *identical* (bit-for-bit, still frozen) to the value a
cold build produces, and any damaged entry — truncated, bit-flipped,
emptied — reads as a miss and triggers a rebuild, never an error or a
wrong value.
"""

import numpy as np
import pytest

from repro.core import diskcache, memo
from repro.core.diskcache import (
    CACHE_DIR_ENV_VAR,
    UncacheableArgument,
    canonical_token,
    clear_disk,
    disk_stats,
    entry_path,
    load,
    resolve_cache_dir,
    store,
)
from repro.core.memo import memoized_substrate


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    """Point the disk tier at a fresh directory for one test."""
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
    return tmp_path


def _fresh_substrate():
    """A new memoized function with its own counters (avoids cross-test state)."""
    calls = []

    @memoized_substrate
    def build(n: int, seed: int = 0):
        calls.append((n, seed))
        rng = np.random.default_rng(seed)
        return rng.normal(0.0, 1.0, n)

    return build, calls


class TestResolution:
    def test_unset_env_disables_the_tier(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        assert resolve_cache_dir() is None

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "OFF", "Disabled"])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, value)
        assert resolve_cache_dir() is None

    def test_env_directory_wins(self, cache_env):
        assert resolve_cache_dir() == cache_env


class TestCanonicalToken:
    def test_scalars_and_containers_are_stable(self):
        token = canonical_token((1, 2.5, "x", None, True, (3, 4)))
        assert token == canonical_token((1, 2.5, "x", None, True, (3, 4)))
        assert token != canonical_token((1, 2.5, "x", None, True, (3, 5)))

    def test_arrays_tokenized_by_content(self):
        a = np.arange(6, dtype=float)
        assert canonical_token(a) == canonical_token(a.copy())
        assert canonical_token(a) != canonical_token(a.reshape(2, 3))
        assert canonical_token(a) != canonical_token(a.astype(np.float32))

    def test_int_and_float_do_not_collide(self):
        assert canonical_token(1) != canonical_token(1.0)

    def test_frozen_dataclass_tokens(self):
        from repro.edge.logs import FL1, FL2

        assert canonical_token(FL1) == canonical_token(FL1)
        assert canonical_token(FL1) != canonical_token(FL2)

    def test_unsupported_types_raise(self):
        with pytest.raises(UncacheableArgument):
            canonical_token(object())

    def test_entry_path_sanitizes_qualname(self, tmp_path):
        path = entry_path(tmp_path, "Some<Class>.build", canonical_token((1,)))
        assert tmp_path in path.parents
        assert "<" not in path.parent.name


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        path = tmp_path / "entry.pkl"
        value = {"a": np.arange(4.0), "b": 3}
        assert store(path, value)
        hit, loaded = load(path)
        assert hit
        assert np.array_equal(loaded["a"], value["a"])
        assert loaded["b"] == 3

    def test_missing_file_is_a_miss(self, tmp_path):
        hit, value = load(tmp_path / "absent.pkl")
        assert not hit and value is None

    def test_warm_build_identical_to_cold_and_frozen(self, cache_env):
        build, calls = _fresh_substrate()
        cold = build(512, seed=9)
        assert len(calls) == 1
        assert build.cache_info().disk_misses == 1
        # New process simulated by clearing the in-process tier (which,
        # like lru_cache, also resets the counters).
        build.cache_clear()
        warm = build(512, seed=9)
        assert len(calls) == 1  # served from disk, not rebuilt
        assert warm is not cold
        assert np.array_equal(warm, cold)
        assert warm.dtype == cold.dtype and warm.shape == cold.shape
        assert not warm.flags.writeable  # frozen after disk load too
        info = build.cache_info()
        assert info.disk_hits == 1 and info.disk_misses == 0

    def test_distinct_args_get_distinct_entries(self, cache_env):
        build, calls = _fresh_substrate()
        build(16, seed=1)
        build(16, seed=2)
        build(17, seed=1)
        assert len(calls) == 3
        stats = disk_stats(cache_env)
        assert sum(row["entries"] for row in stats.values()) == 3


class TestCorruptionFallback:
    @pytest.mark.parametrize(
        "damage",
        [
            lambda raw: raw[: len(raw) // 2],  # truncated
            lambda raw: b"",  # emptied
            lambda raw: raw[:12] + bytes([raw[12] ^ 0xFF]) + raw[13:],  # bit flip
            lambda raw: b"not a cache entry at all",
        ],
    )
    def test_damaged_entry_rebuilds(self, cache_env, damage):
        build, calls = _fresh_substrate()
        cold = build(256, seed=4)
        entries = list(cache_env.rglob("*.pkl"))
        assert len(entries) == 1
        raw = entries[0].read_bytes()
        entries[0].write_bytes(damage(raw))

        build.cache_clear()
        rebuilt = build(256, seed=4)
        assert len(calls) == 2  # damage detected -> rebuilt
        assert np.array_equal(rebuilt, cold)
        info = build.cache_info()
        assert info.disk_errors == 1
        # The rewritten entry is healthy again.
        build.cache_clear()
        build(256, seed=4)
        assert len(calls) == 2
        assert build.cache_info().disk_hits == 1

    def test_unreadable_directory_never_raises(self, monkeypatch, tmp_path):
        target = tmp_path / "file-not-dir"
        target.write_text("occupied")
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(target / "sub"))
        build, calls = _fresh_substrate()
        value = build(32, seed=0)  # store fails silently; build still served
        assert len(calls) == 1
        assert len(value) == 32


class TestMaintenance:
    def test_disk_stats_and_clear(self, cache_env):
        build, _ = _fresh_substrate()
        build(64, seed=0)
        build(64, seed=1)
        stats = disk_stats(cache_env)
        assert sum(row["entries"] for row in stats.values()) == 2
        assert all(row["bytes"] > 0 for row in stats.values())
        assert clear_disk(cache_env) == 2
        assert disk_stats(cache_env) == {}
        assert clear_disk(cache_env) == 0  # idempotent on empty/missing

    def test_salt_separates_library_versions(self, cache_env, monkeypatch):
        build, calls = _fresh_substrate()
        build(8, seed=0)
        monkeypatch.setattr(diskcache, "cache_salt", lambda: "other-version")
        build.cache_clear()
        build(8, seed=0)
        assert len(calls) == 2  # different salt -> different address

    def test_memory_tier_still_counts_misses_with_disk_on(self, cache_env):
        build, _ = _fresh_substrate()
        build(8, seed=0)
        build(8, seed=0)
        info = build.cache_info()
        assert info.misses == 1 and info.hits == 1


class TestWorkerStatsTransport:
    def test_delta_and_merge_roundtrip(self, cache_env):
        build, _ = _fresh_substrate()
        before = memo.stats_snapshot()
        build(24, seed=0)
        build(24, seed=0)
        delta = memo.stats_delta(before, memo.stats_snapshot())
        name = build.__wrapped__.__qualname__
        assert delta[name]["misses"] == 1
        assert delta[name]["hits"] == 1
        assert delta[name]["disk_misses"] == 1
        merged: dict[str, dict[str, int]] = {}
        memo.merge_stats(merged, delta)
        memo.merge_stats(merged, delta)
        assert merged[name]["misses"] == 2
        totals = memo.totals(merged)
        assert totals["hits"] == 2
