"""Hypothesis property suite for the streaming incremental accounting.

The streamed O(Δ) fold must converge **bit-equal** (``==`` on floats,
never a tolerance) to a full batch replay of the same tick log, for
every feed the generator can produce — in-order, heavily late/out of
order, revision-storm, and stall-then-catch-up feeds alike.  The named
registry invariants (``stream-matches-batch-replay``,
``stream-revision-rollback-exact``) carry the laws; this suite maps them
over :func:`repro.testing.strategies.tick_streams` and adds the
payload-level and feed-structure properties that live outside the
registry.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.carbon.stream import (
    Tick,
    load_profile,
    simulate_tick_trace,
    stream_delta_payload,
    stream_state_at,
    truth_trace,
)
from repro.core.incremental import IncrementalAccounting, reference_replay
from repro.testing import strategies as strat
from repro.testing.invariants import (
    check_stream_matches_batch_replay,
    check_stream_revision_rollback,
    substrate_invariant_names,
)

pytestmark = pytest.mark.property

cut_fractions = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


class TestRegistry:
    def test_stream_invariants_registered(self):
        names = substrate_invariant_names()
        assert "stream-matches-batch-replay" in names
        assert "stream-revision-rollback-exact" in names


class TestStreamedEqualsBatch:
    @given(strat.stream_specs(), cut_fractions)
    def test_stream_matches_batch_replay(self, spec, cut):
        check_stream_matches_batch_replay(spec, cut)

    @given(strat.stream_specs())
    def test_stream_revision_rollback_exact(self, spec):
        check_stream_revision_rollback(spec)

    @settings(max_examples=20)
    @given(strat.tick_streams(min_hours=48, max_hours=72))
    def test_every_prefix_is_bit_equal(self, stream):
        # The strong form: not just one checkpoint — *every* tick prefix
        # of a (short) feed agrees with replay exactly.
        spec, ticks = stream
        load = load_profile(spec)
        acc = IncrementalAccounting(
            load, pue=spec.pue, window_hours=spec.window_hours
        )
        log = []
        for tick in ticks:
            acc.fold(tick.hour, tick.intensity_kg_per_kwh)
            log.append((tick.hour, tick.intensity_kg_per_kwh))
            assert acc.snapshot() == reference_replay(
                load, log, pue=spec.pue, window_hours=spec.window_hours
            )

    @given(strat.tick_streams(), cut_fractions)
    def test_stream_state_at_equals_manual_fold(self, stream, cut):
        spec, ticks = stream
        upto = int(round(cut * len(ticks)))
        state = stream_state_at(spec, upto, ticks=ticks)
        manual = IncrementalAccounting(
            load_profile(spec), pue=spec.pue, window_hours=spec.window_hours
        )
        manual.fold_many(
            (t.hour, t.intensity_kg_per_kwh) for t in ticks[:upto]
        )
        assert state.snapshot() == manual.snapshot()


class TestDeltaPayloads:
    @given(strat.tick_streams(), cut_fractions)
    def test_live_state_payload_equals_replay_payload(self, stream, cut):
        # The service's frontier path passes its live state in; the
        # lagging-cursor path replays.  Both must render identical
        # payloads, or /stream responses would depend on cursor timing.
        spec, ticks = stream
        to_seq = int(round(cut * len(ticks)))
        live = stream_delta_payload(
            spec, 0, to_seq, ticks=ticks, state=stream_state_at(spec, to_seq, ticks=ticks)
        )
        replay = stream_delta_payload(spec, 0, to_seq, ticks=ticks)
        assert live == replay

    @given(strat.tick_streams(), st.data())
    def test_deltas_compose(self, stream, data):
        # Polling in two hops [0, mid) + [mid, end) must deliver exactly
        # the ticks of one hop [0, end), with identical end accounting.
        spec, ticks = stream
        end = data.draw(st.integers(0, len(ticks)))
        mid = data.draw(st.integers(0, end))
        first = stream_delta_payload(spec, 0, mid, ticks=ticks)
        second = stream_delta_payload(spec, mid, end, ticks=ticks)
        whole = stream_delta_payload(spec, 0, end, ticks=ticks)
        assert first["ticks"] + second["ticks"] == whole["ticks"]
        assert second["accounting"] == whole["accounting"]
        assert second["advice"] == whole["advice"]


class TestFeedStructure:
    @given(strat.tick_streams())
    def test_feed_is_deterministic_and_ordered(self, stream):
        spec, ticks = stream
        again = simulate_tick_trace(spec)
        assert ticks == again
        assert [t.seq for t in ticks] == list(range(len(ticks)))
        emit_slots = [t.emit_slot for t in ticks]
        assert emit_slots == sorted(emit_slots)

    @given(strat.tick_streams())
    def test_every_hour_observed_and_converges_to_truth(self, stream):
        # Every hour eventually gets an exact-truth tick (revisions carry
        # the correction), so the fully-folded stream equals the truth
        # trace priced directly.
        spec, ticks = stream
        acc = IncrementalAccounting(
            load_profile(spec), pue=spec.pue, window_hours=spec.window_hours
        )
        acc.fold_many((t.hour, t.intensity_kg_per_kwh) for t in ticks)
        assert acc.hours_observed == spec.hours
        assert acc.contiguous_hours == spec.hours
        truth = truth_trace(spec)
        final = np.array([acc.intensity_at(h) for h in range(spec.hours)])
        assert np.array_equal(
            final, np.asarray(truth.intensity_kg_per_kwh, dtype=float)
        )

    @given(strat.tick_streams())
    def test_ticks_are_well_formed(self, stream):
        spec, ticks = stream
        for tick in ticks:
            assert isinstance(tick, Tick)
            assert 0 <= tick.hour < spec.hours
            assert tick.emit_slot >= tick.hour  # causality: no early data
            assert tick.kind in ("observe", "revise")
            assert tick.intensity_kg_per_kwh >= 0.0
