"""Carbon forecasting and uncertainty-analysis tests."""

import numpy as np
import pytest

from repro.carbon.forecast import (
    diurnal_forecast,
    forecast_mape,
    forecast_quality_sweep,
    noisy_oracle,
    persistence_forecast,
    schedule_with_forecast,
)
from repro.carbon.grid import constant_grid_trace, synthesize_grid_trace
from repro.carbon.intensity import CarbonIntensity
from repro.core.uncertainty import (
    DEFAULT_PRIORS,
    ParameterPrior,
    monte_carlo_footprint,
    tornado_sensitivity,
)
from repro.errors import UnitError
from repro.scheduling.jobs import synthesize_jobs


TRUTH = synthesize_grid_trace(168, seed=11)
JOBS = synthesize_jobs(20, 168, seed=11)


class TestForecasters:
    def test_oracle_noise_zero_is_truth(self):
        forecast = noisy_oracle(TRUTH, 168, 0.0)
        np.testing.assert_allclose(forecast, TRUTH.intensity_kg_per_kwh)
        assert forecast_mape(forecast, TRUTH) == 0.0

    def test_mape_grows_with_noise(self):
        low = forecast_mape(noisy_oracle(TRUTH, 168, 0.1, seed=1), TRUTH)
        high = forecast_mape(noisy_oracle(TRUTH, 168, 0.5, seed=1), TRUTH)
        assert high > low

    def test_persistence_repeats_last_day(self):
        forecast = persistence_forecast(TRUTH, 48)
        np.testing.assert_allclose(forecast[:24], TRUTH.intensity_kg_per_kwh[-24:])
        np.testing.assert_allclose(forecast[24:], forecast[:24])

    def test_diurnal_captures_solar_cycle(self):
        forecast = diurnal_forecast(TRUTH, 24)
        # Noon should be forecast cleaner than midnight on a solar grid.
        assert forecast[12] < forecast[0]

    def test_forecasts_beat_nothing(self):
        # Both simple forecasters do far better than a 100%-noise oracle.
        wild = forecast_mape(noisy_oracle(TRUTH, 168, 1.0, seed=2), TRUTH)
        assert forecast_mape(persistence_forecast(TRUTH, 168), TRUTH) < wild
        assert forecast_mape(diurnal_forecast(TRUTH, 168), TRUTH) < wild

    def test_validation(self):
        with pytest.raises(UnitError):
            persistence_forecast(TRUTH, 0)
        short = constant_grid_trace(CarbonIntensity(0.4), 10)
        with pytest.raises(UnitError):
            persistence_forecast(short, 24)


class TestForecastScheduling:
    def test_oracle_forecast_matches_direct_scheduling(self):
        from repro.scheduling.carbon_aware import schedule_carbon_aware

        forecast = noisy_oracle(TRUTH, 168, 0.0)
        _, realized = schedule_with_forecast(JOBS, TRUTH, forecast, 168)
        direct = schedule_carbon_aware(JOBS, TRUTH, 168)
        assert realized.kg == pytest.approx(direct.total_carbon.kg, rel=1e-9)

    def test_noisier_forecasts_never_beat_oracle(self):
        rows = forecast_quality_sweep(JOBS, TRUTH, 168, noise_levels=(0.0, 0.5))
        assert rows[1]["realized_saving"] <= rows[0]["realized_saving"] + 1e-9

    def test_sweep_rows_shape(self):
        rows = forecast_quality_sweep(JOBS, TRUTH, 168, noise_levels=(0.0, 0.2))
        assert len(rows) == 2
        assert set(rows[0]) == {"noise", "mape", "realized_saving"}

    def test_short_forecast_rejected(self):
        with pytest.raises(UnitError):
            schedule_with_forecast(JOBS, TRUTH, np.ones(10), 168)

    @pytest.mark.parametrize(
        ("horizon_hours", "ok"),
        [
            (24, True),
            (167, True),
            (168, True),  # exactly the trace length: the last lawful horizon
            (169, False),  # one past the trace: undefined emissions
            (240, False),
            (10_000, False),
        ],
    )
    def test_horizon_beyond_truth_rejected_at_library_layer(
        self, horizon_hours, ok
    ):
        # The service layer always rejected horizon > grid trace with a
        # structured error; the library must enforce the same boundary
        # rather than silently truncating the schedule window.
        jobs = synthesize_jobs(5, 24, seed=3)
        forecast = noisy_oracle(TRUTH, 168, 0.0)
        if ok:
            schedule_with_forecast(jobs, TRUTH, forecast, horizon_hours)
        else:
            with pytest.raises(UnitError, match="horizon_hours"):
                schedule_with_forecast(jobs, TRUTH, forecast, horizon_hours)


class TestUncertainty:
    def test_distribution_brackets_mean(self):
        mc = monte_carlo_footprint(50_000, n_samples=5000)
        assert mc.p05_kg < mc.mean_kg < mc.p95_kg
        assert mc.relative_spread > 0.3  # the appendix's 'easily perturbed'

    def test_zero_work_zero_footprint(self):
        mc = monte_carlo_footprint(0.0, n_samples=100)
        assert mc.mean_kg == 0.0

    def test_deterministic_per_seed(self):
        a = monte_carlo_footprint(1000.0, n_samples=500, seed=3)
        b = monte_carlo_footprint(1000.0, n_samples=500, seed=3)
        assert a.mean_kg == b.mean_kg

    def test_tornado_sorted_by_swing(self):
        bars = tornado_sensitivity(50_000)
        swings = [b.swing_kg for b in bars]
        assert swings == sorted(swings, reverse=True)

    def test_intensity_dominates_default_priors(self):
        bars = tornado_sensitivity(50_000)
        assert bars[0].parameter == "intensity_kg_per_kwh"

    def test_fixed_parameter_excluded_from_tornado(self):
        bars = tornado_sensitivity(50_000)
        assert all(b.parameter != "devices_per_server" for b in bars)

    def test_missing_prior_rejected(self):
        partial = {"pue": ParameterPrior(1.0, 1.1, 1.2)}
        with pytest.raises(UnitError):
            monte_carlo_footprint(1000.0, priors=partial)

    def test_prior_validation(self):
        with pytest.raises(UnitError):
            ParameterPrior(2.0, 1.0, 3.0)

    def test_default_priors_cover_paper_ranges(self):
        assert DEFAULT_PRIORS["utilization"].low == 0.30
        assert DEFAULT_PRIORS["utilization"].high == 0.60
        assert DEFAULT_PRIORS["lifetime_years"].low == 3.0
        assert DEFAULT_PRIORS["lifetime_years"].high == 5.0
