"""The canonical-JSON helpers and the code-version fingerprint.

Every serialization that must be byte-stable (golden baselines, ledger
bundles, service responses, ``run --json``) flows through
:mod:`repro.core.canonical`; these tests pin the exact byte contract and
grep-enforce that the raw ``sort_keys=`` idiom stays confined there —
mirroring the kWh x intensity confinement test in test_hourly_series.py.
"""

import hashlib
import json
import re
import sys
from pathlib import Path

from repro.core import diskcache
from repro.core.canonical import (
    canonical_bytes,
    canonical_dumps,
    compact_dumps,
    content_hash,
)
from repro.version import CodeVersion, code_version


class TestCanonicalDumps:
    def test_matches_the_historical_formula(self):
        payload = {"b": 2, "a": [1, {"z": None, "y": 0.5}], "title": "x"}
        assert canonical_dumps(payload) == json.dumps(payload, indent=2, sort_keys=True)

    def test_bytes_append_exactly_one_newline(self):
        payload = {"k": 1}
        text = canonical_bytes(payload).decode("utf-8")
        assert text == canonical_dumps(payload) + "\n"
        assert not text.endswith("\n\n")

    def test_compact_form_has_no_whitespace(self):
        payload = {"b": [1, 2], "a": {"c": 3}}
        compact = compact_dumps(payload)
        assert " " not in compact
        assert compact == json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def test_key_order_never_changes_the_bytes(self):
        a = {"x": 1, "y": {"p": 2, "q": 3}}
        b = {"y": {"q": 3, "p": 2}, "x": 1}
        assert canonical_dumps(a) == canonical_dumps(b)
        assert compact_dumps(a) == compact_dumps(b)

    def test_content_hash_is_sha256_of_the_compact_form(self):
        payload = {"metric": "total_kg", "value": 1.25}
        expected = hashlib.sha256(compact_dumps(payload).encode("utf-8")).hexdigest()
        assert content_hash(payload) == expected

    def test_content_hash_is_order_invariant(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})
        assert content_hash({"a": 1}) != content_hash({"a": 2})


SORT_KEYS_PATTERN = re.compile(r"\bsort_keys\s*=")


def test_sort_keys_lives_only_in_canonical():
    """No module outside repro/core/canonical.py calls json.dumps(sort_keys=).

    Byte-stable serialization must flow through the canonical helpers so
    a formatting knob (separators, indent) can never silently fork the
    golden-baseline / ledger / service byte contract.
    """
    src = Path(__file__).resolve().parents[1] / "src" / "repro"
    canonical = src / "core" / "canonical.py"
    offenders = []
    for path in sorted(src.rglob("*.py")):
        if path == canonical:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if SORT_KEYS_PATTERN.search(line):
                offenders.append(f"{path.relative_to(src)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "raw sort_keys= serialization outside repro/core/canonical.py "
        "(use canonical_dumps/compact_dumps/canonical_bytes):\n" + "\n".join(offenders)
    )


class TestCodeVersion:
    def test_salt_matches_the_disk_cache_salt(self):
        # The ledger stamps bundles with repro.version; the disk cache
        # keys entries with the same fingerprint.  If these ever diverge,
        # substrate digests in old bundles stop matching cache files.
        assert code_version().salt() == diskcache.cache_salt()

    def test_salt_format_is_the_historical_cache_salt(self):
        version = CodeVersion(repro="1.2.3", numpy="9.9.9", python="3.99")
        assert version.salt() == "np9.9.9|repro1.2.3|py3.99"

    def test_captures_the_running_interpreter(self):
        version = code_version()
        major, minor = sys.version_info[:2]
        assert version.python == f"{major}.{minor}"
        import numpy

        assert version.numpy == numpy.__version__

    def test_payload_is_json_ready(self):
        payload = code_version().to_payload()
        assert set(payload) == {"repro", "numpy", "python"}
        assert all(isinstance(v, str) for v in payload.values())
        json.dumps(payload)  # must serialize as-is
