"""Ingestion-pipeline simulator and BOM calculator tests."""

import pytest

from repro.carbon.components import (
    AI_TRAINING_BOM,
    CPU_COMPUTE_BOM,
    STORAGE_BOM,
    ServerBOM,
    design_comparison,
    memory_technology_comparison,
)
from repro.errors import SimulationError, UnitError
from repro.lifecycle.ingestion_sim import (
    IngestionPipelineSpec,
    derive_disaggregation_gain,
    simulate_pipeline,
    workers_to_saturate,
)


class TestIngestionSim:
    SPEC = IngestionPipelineSpec()

    def test_throughput_monotone_in_workers(self):
        results = [simulate_pipeline(self.SPEC, n) for n in (2, 5, 9, 16)]
        throughputs = [r.throughput_batches_per_s for r in results]
        assert all(a <= b + 1e-6 for a, b in zip(throughputs, throughputs[1:]))

    def test_throughput_capped_by_trainer(self):
        result = simulate_pipeline(self.SPEC, 32)
        assert result.throughput_batches_per_s <= self.SPEC.trainer_consume_rate + 1e-9

    def test_starved_trainer_stalls(self):
        result = simulate_pipeline(self.SPEC, 2)
        assert result.trainer_stall_fraction > 0.5

    def test_saturated_trainer_barely_stalls(self):
        n = workers_to_saturate(self.SPEC)
        result = simulate_pipeline(self.SPEC, n)
        assert result.trainer_utilization >= 0.99

    def test_derived_gain_near_paper(self):
        derived = derive_disaggregation_gain()
        assert derived.throughput_gain == pytest.approx(0.56, abs=0.10)

    def test_storage_bound_pipeline(self):
        spec = IngestionPipelineSpec(storage_read_rate=50.0)
        result = simulate_pipeline(spec, 64)
        # Storage at 50 batch/s caps throughput regardless of workers.
        assert result.throughput_batches_per_s < 60.0

    def test_unsaturatable_pipeline_raises(self):
        spec = IngestionPipelineSpec(storage_read_rate=50.0)
        with pytest.raises(SimulationError):
            workers_to_saturate(spec)

    def test_no_jitter_is_deterministic(self):
        a = simulate_pipeline(self.SPEC, 9, jitter=0.0)
        b = simulate_pipeline(self.SPEC, 9, jitter=0.0)
        assert a.throughput_batches_per_s == b.throughput_batches_per_s

    def test_validation(self):
        with pytest.raises(UnitError):
            simulate_pipeline(self.SPEC, 0)
        with pytest.raises(UnitError):
            IngestionPipelineSpec(trainer_consume_rate=0.0)


class TestServerBOM:
    def test_totals_positive_and_ordered(self):
        cpu = CPU_COMPUTE_BOM.total().kg
        ai = AI_TRAINING_BOM.total().kg
        assert 0 < cpu < ai

    def test_lines_sum_to_total(self):
        for bom in (CPU_COMPUTE_BOM, AI_TRAINING_BOM, STORAGE_BOM):
            lines_sum = sum(line.carbon.kg for line in bom.lines())
            assert lines_sum == pytest.approx(bom.total().kg)

    def test_ai_server_dominated_by_hbm(self):
        assert AI_TRAINING_BOM.dominant_component() == "HBM"

    def test_storage_dominated_by_drives(self):
        assert STORAGE_BOM.dominant_component() == "HDD"

    def test_zero_quantities_omitted(self):
        bom = ServerBOM("min", logic_die_cm2=1.0, dram_gb=0.0, nand_gb=0.0)
        names = [line.component for line in bom.lines()]
        assert "DRAM" not in names
        assert "chassis/PCB/PSU" in names

    def test_memory_orders_of_magnitude(self):
        memory = memory_technology_comparison(512.0)
        assert memory["hbm_over_nand"] > 10.0  # "orders-of-magnitude"
        assert memory["hbm_kg"] > memory["dram_kg"] > memory["nand_kg"]

    def test_design_comparison(self):
        result = design_comparison(CPU_COMPUTE_BOM, AI_TRAINING_BOM)
        assert result["ratio"] > 3.0

    def test_validation(self):
        with pytest.raises(UnitError):
            ServerBOM("bad", logic_die_cm2=-1.0)
        with pytest.raises(UnitError):
            memory_technology_comparison(0.0)
