"""Grid trace synthesis tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.carbon.grid import (
    GridMixParams,
    GridTrace,
    constant_grid_trace,
    synthesize_grid_trace,
)
from repro.carbon.intensity import CarbonIntensity
from repro.errors import UnitError


class TestSynthesis:
    def test_deterministic_for_seed(self):
        a = synthesize_grid_trace(168, seed=7)
        b = synthesize_grid_trace(168, seed=7)
        np.testing.assert_array_equal(a.intensity_kg_per_kwh, b.intensity_kg_per_kwh)

    def test_different_seeds_differ(self):
        a = synthesize_grid_trace(168, seed=1)
        b = synthesize_grid_trace(168, seed=2)
        assert not np.array_equal(a.intensity_kg_per_kwh, b.intensity_kg_per_kwh)

    def test_solar_zero_at_night(self):
        trace = synthesize_grid_trace(48, seed=0)
        night_hours = [h for h in range(48) if h % 24 in (0, 1, 2, 3, 22, 23)]
        assert np.allclose(trace.solar_share[night_hours], 0.0)

    def test_solar_positive_at_noon(self):
        trace = synthesize_grid_trace(48, seed=0)
        noon_hours = [h for h in range(48) if h % 24 == 12]
        assert np.all(trace.solar_share[noon_hours] > 0.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=24, max_value=24 * 14), st.integers(0, 100))
    def test_intensity_bounded_by_sources(self, hours, seed):
        params = GridMixParams()
        trace = synthesize_grid_trace(hours, params, seed)
        assert np.all(
            trace.intensity_kg_per_kwh
            <= params.dispatchable_intensity.kg_per_kwh + 1e-12
        )
        assert np.all(trace.intensity_kg_per_kwh >= 0.0)

    def test_shares_never_exceed_one(self):
        trace = synthesize_grid_trace(500, seed=3)
        assert np.all(trace.renewable_share <= 1.0)
        assert np.all(trace.renewable_share >= 0.0)

    def test_rejects_zero_hours(self):
        with pytest.raises(UnitError):
            synthesize_grid_trace(0)

    def test_params_validation(self):
        with pytest.raises(UnitError):
            GridMixParams(solar_capacity_fraction=0.7, wind_capacity_fraction=0.5)
        with pytest.raises(UnitError):
            GridMixParams(cloudiness=1.5)


class TestGridTrace:
    def test_constant_trace(self):
        trace = constant_grid_trace(CarbonIntensity(0.3), 24)
        assert len(trace) == 24
        assert np.allclose(trace.intensity_kg_per_kwh, 0.3)

    def test_intensity_at_wraps(self):
        trace = constant_grid_trace(CarbonIntensity(0.3), 24)
        assert trace.intensity_at(25).kg_per_kwh == 0.3

    def test_emissions_for_profile(self):
        trace = constant_grid_trace(CarbonIntensity(0.5), 24)
        kwh = np.full(24, 2.0)
        assert trace.emissions_for_profile(kwh).kg == pytest.approx(24.0)

    def test_emissions_profile_tiles_past_trace(self):
        trace = constant_grid_trace(CarbonIntensity(0.5), 24)
        kwh = np.full(48, 1.0)
        assert trace.emissions_for_profile(kwh).kg == pytest.approx(24.0)

    def test_emissions_rejects_negative_profile(self):
        trace = constant_grid_trace(CarbonIntensity(0.5), 24)
        with pytest.raises(UnitError):
            trace.emissions_for_profile(np.array([-1.0]))

    def test_greenest_window_finds_cleanest(self):
        intensity = np.full(48, 1.0)
        intensity[10:14] = 0.1
        trace = GridTrace(
            solar_share=np.zeros(48),
            wind_share=np.zeros(48),
            intensity_kg_per_kwh=intensity,
        )
        assert trace.greenest_window(4) == 10

    def test_greenest_window_wraps(self):
        intensity = np.full(24, 1.0)
        intensity[22:] = 0.0
        intensity[:2] = 0.0
        trace = GridTrace(
            solar_share=np.zeros(24),
            wind_share=np.zeros(24),
            intensity_kg_per_kwh=intensity,
        )
        assert trace.greenest_window(4) == 22

    def test_greenest_window_validates_size(self):
        trace = constant_grid_trace(CarbonIntensity(0.3), 24)
        with pytest.raises(UnitError):
            trace.greenest_window(0)
        with pytest.raises(UnitError):
            trace.greenest_window(25)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(UnitError):
            GridTrace(
                solar_share=np.zeros(3),
                wind_share=np.zeros(4),
                intensity_kg_per_kwh=np.zeros(3),
            )

    def test_average_intensity(self):
        trace = constant_grid_trace(CarbonIntensity(0.42), 24)
        assert trace.average_intensity().kg_per_kwh == pytest.approx(0.42)
