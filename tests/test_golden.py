"""Golden-baseline subsystem tests: snapshot, compare, drift detection.

The integration test diffs the checked-in ``golden/baselines.json``
against a real full run (shared session fixture), which is what
``sustainable-ai verify`` does in CI.
"""

import json

import pytest

from repro.experiments import golden
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import DEFAULT_REL_TOL, get_spec


def _result(headline, experiment_id="fig7", rows=((1, 2),), tolerances=None):
    return ExperimentResult(
        experiment_id=experiment_id,
        title="t",
        headline=headline,
        headers=("a", "b"),
        rows=rows,
        tolerances=tolerances or {},
    )


class TestSnapshot:
    def test_snapshot_shape(self):
        snap = golden.snapshot(_result({"x": 1.0, "a": 2.0}))
        assert list(snap["headline"]) == ["a", "x"]  # sorted for stable diffs
        assert snap["tolerances"] == {"a": DEFAULT_REL_TOL, "x": DEFAULT_REL_TOL}
        assert snap["headers"] == ["a", "b"]
        assert snap["n_rows"] == 1

    def test_result_tolerances_flow_into_snapshot(self):
        snap = golden.snapshot(_result({"x": 1.0}, tolerances={"x": None}))
        assert snap["tolerances"] == {"x": None}

    def test_spec_tolerance_overrides_default(self):
        spec = get_spec("fig7")
        assert spec.tolerance_for("anything") == DEFAULT_REL_TOL
        result = _result({"x": 1.0}, tolerances={"x": 0.5})
        assert spec.tolerance_for("x", result) == 0.5


class TestCompare:
    def _baselines(self, result):
        return golden.build_baselines({result.experiment_id: result})

    def test_identical_run_is_ok(self):
        result = _result({"x": 1.0})
        report = golden.compare(self._baselines(result), {"fig7": result})
        assert report.ok
        assert report.n_experiments == 1
        assert report.n_metrics == 1
        assert "OK" in report.render()

    def test_metric_drift_detected(self):
        base = self._baselines(_result({"x": 1.0}))
        report = golden.compare(base, {"fig7": _result({"x": 1.0001})})
        assert not report.ok
        (drift,) = report.drifts
        assert drift.kind == "metric-drift"
        assert drift.metric == "x"
        assert drift.rel_error == pytest.approx(1e-4)
        assert "DRIFT" in report.render()

    def test_within_tolerance_passes(self):
        base = self._baselines(_result({"x": 1.0}, tolerances={"x": 0.01}))
        report = golden.compare(base, {"fig7": _result({"x": 1.0001})})
        assert report.ok

    def test_informational_metric_never_fails(self):
        base = self._baselines(_result({"x": 1.0}, tolerances={"x": None}))
        report = golden.compare(base, {"fig7": _result({"x": 99.0})})
        assert report.ok

    def test_zero_expected_uses_absolute_error(self):
        base = self._baselines(_result({"x": 0.0}, tolerances={"x": 0.5}))
        assert golden.compare(base, {"fig7": _result({"x": 0.4})}).ok
        assert not golden.compare(base, {"fig7": _result({"x": 0.6})}).ok

    def test_missing_and_new_metrics_flagged(self):
        base = self._baselines(_result({"x": 1.0, "y": 2.0}))
        report = golden.compare(base, {"fig7": _result({"x": 1.0, "z": 3.0})})
        kinds = sorted(d.kind for d in report.drifts)
        assert kinds == ["missing-metric", "new-metric"]

    def test_shape_changes_flagged(self):
        base = self._baselines(_result({"x": 1.0}, rows=((1, 2), (3, 4))))
        report = golden.compare(base, {"fig7": _result({"x": 1.0}, rows=((1, 2),))})
        assert [d.kind for d in report.drifts] == ["shape"]

    def test_missing_and_stale_baselines(self):
        base = self._baselines(_result({"x": 1.0}))
        other = _result({"x": 1.0}, experiment_id="fig8")
        report = golden.compare(base, {"fig8": other})
        kinds = sorted(d.kind for d in report.drifts)
        assert kinds == ["missing-baseline", "stale-baseline"]
        lenient = golden.compare(base, {"fig8": other}, strict=False)
        assert [d.kind for d in lenient.drifts] == ["missing-baseline"]


class TestBaselineIO:
    def test_roundtrip(self, tmp_path):
        doc = golden.build_baselines({"fig7": _result({"x": 1.0})})
        path = tmp_path / "b.json"
        golden.write_baselines(path, doc)
        assert golden.load_baselines(path) == json.loads(json.dumps(doc))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(golden.BaselineError, match="not found"):
            golden.load_baselines(tmp_path / "nope.json")

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(golden.BaselineError, match="not valid JSON"):
            golden.load_baselines(path)
        path.write_text(json.dumps({"schema": 99, "experiments": {}}))
        with pytest.raises(golden.BaselineError, match="schema"):
            golden.load_baselines(path)


class TestCheckedInBaselines:
    """The repository's own golden file pins the full suite."""

    def test_full_suite_matches_checked_in_baselines(self, all_results):
        doc = golden.load_baselines(golden.DEFAULT_BASELINES_PATH)
        report = golden.compare(doc, all_results)
        assert report.ok, "\n" + report.render()
        assert report.n_experiments == len(all_results)
        assert report.n_metrics > 100

    def test_injected_perturbation_is_caught(self, all_results):
        doc = golden.load_baselines(golden.DEFAULT_BASELINES_PATH)
        doc["experiments"]["fig7"]["headline"]["total_gain"] *= 1.02
        report = golden.compare(doc, all_results)
        assert not report.ok
        assert any(
            d.experiment_id == "fig7" and d.metric == "total_gain"
            for d in report.drifts
        )
