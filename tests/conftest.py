"""Shared fixtures and test-session configuration.

Loads the deterministic Hypothesis profile (``repro-deterministic``,
derandomized with a bounded example budget) so the property suite is
reproducible in CI; select another profile with
``HYPOTHESIS_PROFILE=repro-thorough``.  Hypothesis is a dev-only
dependency — when it is absent the property tests themselves are
skipped by their own import, so profile loading degrades silently.
"""

import os

import pytest

from repro.experiments.registry import experiment_ids, run_experiment

# The disk tier of the substrate cache is opt-in: tests run against the
# in-process tier only unless the environment explicitly points the tier
# at a directory (the CI disk-tier job sets SUSTAINABLE_AI_CACHE_DIR to a
# temp dir to exercise exactly the same suite through both tiers).
os.environ.setdefault("SUSTAINABLE_AI_CACHE_DIR", "off")

try:
    from repro.testing.profiles import load_default_profile
except ImportError:  # pragma: no cover - hypothesis not installed
    pass
else:
    load_default_profile()


@pytest.fixture(scope="session")
def all_results():
    """Every registered experiment, run once and shared by all test files."""
    return {exp_id: run_experiment(exp_id) for exp_id in experiment_ids()}
