"""Shared fixtures: the full experiment suite runs once per session."""

import pytest

from repro.experiments.registry import experiment_ids, run_experiment


@pytest.fixture(scope="session")
def all_results():
    """Every registered experiment, run once and shared by all test files."""
    return {exp_id: run_experiment(exp_id) for exp_id in experiment_ids()}
