"""Accelerator multi-tenancy tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnitError
from repro.fleet.multitenancy import (
    best_tenancy,
    pack_first_fit_decreasing,
    tenancy_study,
)


class TestPacking:
    def test_dedicated_baseline_one_per_device(self):
        demands = np.array([0.3, 0.4, 0.5])
        result = pack_first_fit_decreasing(demands, max_tenants=1)
        assert result.n_devices == 3
        assert result.mean_tenancy == 1.0

    def test_sharing_reduces_devices(self):
        demands = np.full(10, 0.3)
        dedicated = pack_first_fit_decreasing(demands, max_tenants=1)
        shared = pack_first_fit_decreasing(demands, max_tenants=3)
        assert shared.n_devices < dedicated.n_devices

    def test_capacity_never_exceeded(self):
        rng = np.random.default_rng(0)
        demands = rng.uniform(0.1, 0.9, 200)
        result = pack_first_fit_decreasing(demands, max_tenants=8, capacity=0.95)
        assert np.all(result.device_loads <= 0.95 + 1e-9)

    @settings(max_examples=20)
    @given(st.integers(1, 500))
    def test_all_work_placed(self, seed):
        rng = np.random.default_rng(seed)
        demands = rng.uniform(0.05, 0.9, 50)
        result = pack_first_fit_decreasing(demands, max_tenants=4)
        assert np.sum(result.device_loads) == pytest.approx(np.sum(demands))
        assert np.sum(result.tenants_per_device) == 50

    def test_tenant_limit_respected(self):
        demands = np.full(20, 0.05)
        result = pack_first_fit_decreasing(demands, max_tenants=3)
        assert np.all(result.tenants_per_device <= 3)

    def test_validation(self):
        with pytest.raises(UnitError):
            pack_first_fit_decreasing(np.array([1.5]))
        with pytest.raises(UnitError):
            pack_first_fit_decreasing(np.array([0.5]), max_tenants=0)


class TestTenancyStudy:
    ROWS = tenancy_study(n_workloads=400, seed=1)

    def test_devices_monotone_nonincreasing(self):
        devices = [r.n_devices for r in self.ROWS]
        assert all(a >= b for a, b in zip(devices, devices[1:]))

    def test_utilization_improves_with_sharing(self):
        assert self.ROWS[-1].mean_utilization > self.ROWS[0].mean_utilization

    def test_embodied_falls_with_sharing(self):
        assert self.ROWS[-1].embodied.kg < self.ROWS[0].embodied.kg

    def test_best_tenancy_minimizes_total(self):
        best = best_tenancy(self.ROWS)
        assert best.total.kg == min(r.total.kg for r in self.ROWS)
        assert best.max_tenants > 1  # sharing wins at realistic interference

    def test_heavy_interference_penalizes_operational(self):
        light = tenancy_study(n_workloads=200, interference=0.0, seed=2)
        heavy = tenancy_study(n_workloads=200, interference=0.4, seed=2)
        # At the highest tenancy, heavy interference costs more energy.
        assert heavy[-1].operational.kg > light[-1].operational.kg

    def test_validation(self):
        with pytest.raises(UnitError):
            tenancy_study(interference=1.0)
