"""End-to-end conformance: service responses are byte-identical to the library.

The contract of :mod:`repro.service` is that putting HTTP, batching,
caching, and worker pools in front of the accounting engine changes *no
bytes*: ``GET /experiments/{id}`` returns exactly
``render_payload(run_experiment(id).to_payload())``, cold and warm, at
any client concurrency.  These tests pin that contract over the full
45-experiment registry (riding the session-scoped ``all_results``
fixture so the direct side runs once) and over the footprint/schedule
endpoints against direct ``Query.execute()`` calls.
"""

from __future__ import annotations

import concurrent.futures

import pytest

from repro.experiments.registry import experiment_ids
from repro.service import parse_query, render_payload
from tests.serviceutil import ServiceClient, running_service

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def service():
    """One shared inline-mode service for the whole conformance module."""
    with running_service(workers=0, lru_size=256) as (handle, client):
        yield handle, client


class TestExperimentConformance:
    @pytest.mark.parametrize("exp_id", experiment_ids())
    def test_cold_and_warm_bytes_match_direct(self, service, all_results, exp_id):
        _handle, client = service
        expected = render_payload(all_results[exp_id].to_payload())
        cold = client.get(f"/experiments/{exp_id}")
        assert cold.status == 200
        assert cold.body == expected
        warm = client.get(f"/experiments/{exp_id}")
        assert warm.status == 200
        assert warm.body == expected

    def test_warm_responses_were_cache_hits(self, service, all_results):
        """After the parametrized sweep the LRU served every second read."""
        handle, client = service
        metrics = client.get("/metrics").json()
        states = metrics["requests"]["cache_states"]
        assert states.get("hit", 0) >= len(experiment_ids())
        assert metrics["response_cache"]["hits"] >= len(experiment_ids())

    def test_experiment_listing_matches_registry(self, service):
        _handle, client = service
        reply = client.get("/experiments")
        assert reply.status == 200
        assert tuple(reply.json()["experiments"]) == experiment_ids()


class TestQueryEndpointConformance:
    FOOTPRINT_PARAMS = {
        "busy_device_hours": 5000,
        "utilization": 0.6,
        "pue": 1.5,
        "region": "us-average",
    }
    SCHEDULE_PARAMS = {"n_jobs": 25, "seed": 3, "horizon_hours": 96, "grid_seed": 11}

    def test_footprint_matches_direct_execute(self, service):
        _handle, client = service
        expected = render_payload(
            parse_query("footprint", dict(self.FOOTPRINT_PARAMS)).execute()
        )
        query_string = "&".join(f"{k}={v}" for k, v in self.FOOTPRINT_PARAMS.items())
        reply = client.get(f"/footprint?{query_string}")
        assert reply.status == 200
        assert reply.body == expected

    def test_footprint_get_and_post_normalize_identically(self, service):
        """String (GET) and number (POST) parameter forms share one key."""
        _handle, client = service
        query_string = "&".join(f"{k}={v}" for k, v in self.FOOTPRINT_PARAMS.items())
        via_get = client.get(f"/footprint?{query_string}")
        via_post = client.post("/footprint", dict(self.FOOTPRINT_PARAMS))
        assert via_get.status == via_post.status == 200
        assert via_get.body == via_post.body

    def test_schedule_matches_direct_execute(self, service):
        _handle, client = service
        expected = render_payload(
            parse_query("schedule", dict(self.SCHEDULE_PARAMS)).execute()
        )
        query_string = "&".join(f"{k}={v}" for k, v in self.SCHEDULE_PARAMS.items())
        reply = client.get(f"/schedule/carbon-aware?{query_string}")
        assert reply.status == 200
        assert reply.body == expected
        assert client.post("/schedule/carbon-aware", dict(self.SCHEDULE_PARAMS)).body == expected


class TestGenAIQueryConformance:
    """``/footprint?workload=...`` rides the same cache/batcher paths."""

    TRAINING_PARAMS = {
        "workload": "llm-training",
        "model": "llm-7b",
        "region": "us-average",
    }
    SERVING_PARAMS = {
        "workload": "llm-serving",
        "peak_qps": 250,
        "hours": 72,
        "intensity_kg_per_kwh": 0.25,
    }

    @staticmethod
    def _query_string(params):
        return "&".join(f"{k}={v}" for k, v in params.items())

    @pytest.mark.parametrize("params", [TRAINING_PARAMS, SERVING_PARAMS])
    def test_cold_and_warm_bytes_match_direct(self, service, params):
        _handle, client = service
        expected = render_payload(parse_query("genai", dict(params)).execute())
        cold = client.get(f"/footprint?{self._query_string(params)}")
        assert cold.status == 200
        assert cold.body == expected
        warm = client.get(f"/footprint?{self._query_string(params)}")
        assert warm.status == 200
        assert warm.body == expected

    @pytest.mark.parametrize("params", [TRAINING_PARAMS, SERVING_PARAMS])
    def test_get_and_post_normalize_identically(self, service, params):
        _handle, client = service
        via_get = client.get(f"/footprint?{self._query_string(params)}")
        via_post = client.post("/footprint", dict(params))
        assert via_get.status == via_post.status == 200
        assert via_get.body == via_post.body

    def test_model_name_and_expansion_share_one_cache_entry(self, service):
        """``model=llm-7b`` normalizes to its explicit-knob expansion."""
        from repro.workloads.genai import inventory_spec

        _handle, client = service
        spec = inventory_spec("llm-7b")
        explicit = {
            "workload": "llm-training",
            "n_params": spec.n_params,
            "n_tokens": spec.n_tokens,
            "mfu": spec.mfu,
            "n_accelerators": spec.n_accelerators,
            "region": "us-average",
        }
        by_model = client.get(f"/footprint?{self._query_string(self.TRAINING_PARAMS)}")
        by_knobs = client.post("/footprint", explicit)
        assert by_model.status == by_knobs.status == 200
        assert by_model.body == by_knobs.body

    def test_bad_genai_query_is_structured_400(self, service):
        _handle, client = service
        reply = client.get("/footprint?workload=llm-cooking")
        assert reply.status == 400
        assert reply.json()["error"]["kind"] == "bad-request"
        assert "workload" in reply.json()["error"]["message"]


class TestConcurrentConformance:
    def test_16_clients_get_identical_bytes(self, all_results):
        """16-way client concurrency over a worker pool changes no bytes.

        Every client hammers a rotating window of experiments plus the
        query endpoints; every response must equal the direct call.
        """
        targets = experiment_ids()[:8]
        with running_service(workers=2, batch_window_s=0.002, lru_size=64) as (
            _handle,
            client0,
        ):
            expected = {
                exp_id: render_payload(all_results[exp_id].to_payload())
                for exp_id in targets
            }
            footprint_expected = render_payload(
                parse_query("footprint", {"busy_device_hours": 777}).execute()
            )
            host, port = client0.host, client0.port

            def one_client(worker_index: int) -> None:
                client = ServiceClient(host, port)
                try:
                    for step in range(6):
                        exp_id = targets[(worker_index + step) % len(targets)]
                        reply = client.get(f"/experiments/{exp_id}")
                        assert reply.status == 200, reply.body
                        assert reply.body == expected[exp_id]
                    reply = client.get("/footprint?busy_device_hours=777")
                    assert reply.status == 200
                    assert reply.body == footprint_expected
                finally:
                    client.close()

            with concurrent.futures.ThreadPoolExecutor(max_workers=16) as pool:
                for future in [pool.submit(one_client, i) for i in range(16)]:
                    future.result(timeout=600)


class TestSweepConformance:
    SWEEP_PARAMS = {
        "busy_device_hours": 1000.0,
        "ranges": [
            {"name": "utilization", "lo": 0.3, "hi": 0.8, "points": 6},
            {"name": "pue", "lo": 1.05, "hi": 1.6, "points": 4},
            {"name": "intensity_scale", "lo": 0.25, "hi": 1.5, "points": 4},
        ],
        "sampling": "grid",
    }

    @staticmethod
    def _finish(client, sweep_id, deadline_s=30.0):
        import time

        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            poll = client.get(f"/sweep/{sweep_id}")
            assert poll.status == 200
            if poll.json()["status"] != "running":
                return poll.json()
            time.sleep(0.02)
        raise AssertionError("sweep did not finish within the deadline")

    def test_sweep_result_bytes_match_direct_execute(self, service):
        """Submit -> poll -> result equals the one-shot library payload."""
        _handle, client = service
        expected = render_payload(parse_query("sweep", dict(self.SWEEP_PARAMS)).execute())
        submitted = client.post("/sweep", dict(self.SWEEP_PARAMS))
        assert submitted.status in (200, 202)
        sweep_id = submitted.json()["sweep_id"]
        final = self._finish(client, sweep_id)
        assert final["status"] == "done"
        assert final["completed_points"] == final["total_points"] == 96
        result = client.get(f"/sweep/{sweep_id}/result")
        assert result.status == 200
        assert result.body == expected

    def test_resubmission_is_idempotent_and_warm(self, service):
        """Re-POSTing a finished spec rejoins the job: 200, same bytes."""
        _handle, client = service
        first = client.post("/sweep", dict(self.SWEEP_PARAMS))
        sweep_id = first.json()["sweep_id"]
        self._finish(client, sweep_id)
        again = client.post("/sweep", dict(self.SWEEP_PARAMS))
        assert again.status == 200
        assert again.json()["status"] == "done"
        assert again.json()["sweep_id"] == sweep_id
        assert (
            client.get(f"/sweep/{sweep_id}/result").body
            == client.get(f"/sweep/{sweep_id}/result").body
        )

    def test_sweep_listing_includes_job(self, service):
        _handle, client = service
        listing = client.get("/sweep")
        assert listing.status == 200
        assert any(
            job["status"] in ("running", "done")
            for job in listing.json()["sweeps"]
        )

    def test_bad_spec_is_structured_400(self, service):
        _handle, client = service
        bad = dict(self.SWEEP_PARAMS, ranges=[{"name": "tdp", "lo": 1, "hi": 2, "points": 2}])
        reply = client.post("/sweep", bad)
        assert reply.status == 400
        assert reply.json()["error"]["kind"] == "bad-request"

    def test_oversized_sweep_is_rejected(self, service):
        _handle, client = service
        huge = dict(self.SWEEP_PARAMS, sampling="sobol", n_points=50_000)
        reply = client.post("/sweep", huge)
        assert reply.status == 400
        assert "cap" in reply.json()["error"]["message"]
