"""The service's live ``/stream`` surface and the periodic ledger GC.

The conformance core: every ``/stream`` response body must be
byte-identical to :func:`repro.carbon.stream.stream_delta_payload`
rendered through the canonical serializer — for the frontier cursor
(served from the live O(Δ) state), for lagging cursors (served by
bounded replay), and for the empty tail delta.  Around that sit the
long-poll/cursor semantics (200/400/409/429), the ``streams`` metrics
block, and the ``--ledger-gc-interval`` loop whose compacted journal
must replay byte-identical ledger state.
"""

import time

import pytest

from repro.carbon.stream import StreamSpec, simulate_tick_trace, stream_delta_payload
from repro.core.canonical import canonical_bytes
from repro.core.ledger import GOLDEN_EPOCH, Ledger
from repro.service import ServiceConfig
from repro.service.queries import render_payload

from tests.serviceutil import running_service

#: Fast feed clock: every tick of a short stream is released within
#: milliseconds, so conformance tests never sit in a long poll.
FAST = {"stream_tick_hz": 10_000.0}

SPEC = StreamSpec(hours=48, grid_seed=1, feed_seed=1)
SPEC_PATH = "/stream?hours=48&grid_seed=1&feed_seed=1"


@pytest.fixture(scope="module")
def service():
    with running_service(**FAST) as (handle, client):
        yield handle, client


def _library_bytes(from_seq: int, to_seq: int) -> bytes:
    ticks = simulate_tick_trace(SPEC)
    return render_payload(stream_delta_payload(SPEC, from_seq, to_seq, ticks=ticks))


class TestByteIdentity:
    def test_frontier_poll_is_byte_identical_to_the_library(self, service):
        _handle, client = service
        reply = client.get(f"{SPEC_PATH}&cursor=0&wait_s=5")
        assert reply.status == 200
        doc = reply.json()
        assert doc["done"] is True
        total = doc["total_ticks"]
        assert reply.body == _library_bytes(0, total)

    def test_lagging_cursor_replay_is_byte_identical(self, service):
        _handle, client = service
        client.get(f"{SPEC_PATH}&cursor=0&wait_s=5")  # drive the frontier to done
        reply = client.get(f"{SPEC_PATH}&cursor=3&wait_s=0&max_ticks=5")
        assert reply.status == 200
        assert reply.body == _library_bytes(3, 8)

    def test_tail_poll_is_an_empty_done_delta(self, service):
        _handle, client = service
        total = client.get(f"{SPEC_PATH}&cursor=0&wait_s=5").json()["total_ticks"]
        reply = client.get(f"{SPEC_PATH}&cursor={total}&wait_s=0")
        assert reply.status == 200
        doc = reply.json()
        assert doc["ticks"] == [] and doc["done"] is True
        assert reply.body == _library_bytes(total, total)

    def test_deltas_compose_across_polls(self, service):
        _handle, client = service
        total = client.get(f"{SPEC_PATH}&cursor=0&wait_s=5").json()["total_ticks"]
        collected = []
        cursor = 0
        while cursor < total:
            doc = client.get(
                f"{SPEC_PATH}&cursor={cursor}&wait_s=5&max_ticks=7"
            ).json()
            collected.extend(doc["ticks"])
            cursor = doc["to_seq"]
        whole = client.get(f"{SPEC_PATH}&cursor=0&wait_s=5").json()
        assert collected == whole["ticks"]


class TestCursorSemantics:
    def test_cursor_past_the_end_is_bad_request(self, service):
        _handle, client = service
        reply = client.get(f"{SPEC_PATH}&cursor=100000&wait_s=0")
        assert reply.status == 400
        assert reply.json()["error"]["kind"] == "bad-request"

    def test_negative_cursor_is_bad_request(self, service):
        _handle, client = service
        assert client.get(f"{SPEC_PATH}&cursor=-1").status == 400

    def test_unknown_spec_param_is_bad_request(self, service):
        _handle, client = service
        reply = client.get("/stream?hours=48&bogus=1")
        assert reply.status == 400
        assert "bogus" in reply.json()["error"]["message"]

    def test_invalid_spec_value_is_bad_request(self, service):
        _handle, client = service
        assert client.get("/stream?hours=12").status == 400
        assert client.get("/stream?hours=48&pue=0.5").status == 400

    def test_post_is_method_not_allowed(self, service):
        _handle, client = service
        assert client.post("/stream", {}).status == 405

    def test_cursor_ahead_of_the_feed_clock_is_409(self):
        # A slow feed clock: a cursor deep into the stream is valid data
        # but not yet released here (the fabric-failover case).
        with running_service(stream_tick_hz=1.0) as (_handle, client):
            reply = client.get(f"{SPEC_PATH}&cursor=40&wait_s=0")
            assert reply.status == 409
            assert reply.json()["error"]["kind"] == "cursor-ahead"

    def test_long_poll_parks_until_ticks_release(self):
        with running_service(stream_tick_hz=8.0) as (handle, client):
            client.get(f"{SPEC_PATH}&cursor=0&wait_s=0")  # create the job
            started = time.monotonic()
            reply = client.get(f"{SPEC_PATH}&cursor=4&wait_s=10")
            elapsed = time.monotonic() - started
            assert reply.status == 200
            assert reply.json()["to_seq"] > 4
            assert elapsed < 10.0
            assert handle.service.streams.long_poll_waits >= 1


class TestAdmission:
    def test_stream_cap_rejects_new_streams_with_429(self):
        with running_service(max_streams=1, **FAST) as (_handle, client):
            assert client.get(f"{SPEC_PATH}&cursor=0&wait_s=0").status == 200
            reply = client.get("/stream?hours=48&grid_seed=2&cursor=0&wait_s=0")
            assert reply.status == 429
            assert reply.json()["error"]["kind"] == "overloaded"
            # The existing stream still answers.
            assert client.get(f"{SPEC_PATH}&cursor=0&wait_s=0").status == 200


class TestMetrics:
    def test_streams_block_reports_the_live_counters(self, service):
        _handle, client = service
        client.get(f"{SPEC_PATH}&cursor=0&wait_s=5")
        doc = client.get("/metrics").json()
        block = doc["streams"]
        assert block["active"] >= 1
        assert block["created"] >= 1
        assert block["deltas"] >= 1
        assert block["ticks_delivered"] >= 1
        assert block["tick_hz"] == FAST["stream_tick_hz"]

    def test_config_validation(self):
        with pytest.raises(Exception):
            ServiceConfig(max_streams=0)
        with pytest.raises(Exception):
            ServiceConfig(stream_tick_hz=0.0)
        with pytest.raises(Exception):
            ServiceConfig(ledger_gc_interval_s=-1.0)


class TestLedgerGcLoop:
    def test_compacted_journal_replays_byte_identical_state(self, tmp_path):
        ledger_dir = tmp_path / "led"
        with running_service(
            ledger_dir=str(ledger_dir), ledger_gc_interval_s=0.05
        ) as (handle, client):
            assert client.get("/experiments/fig7").status == 200
            assert client.get("/footprint?busy_device_hours=1000").status == 200
            before = canonical_bytes(
                {
                    claim: bundle.to_payload()
                    for claim, bundle in handle.service.ledger.resolve(
                        "service"
                    ).items()
                }
            )
            deadline = time.monotonic() + 10.0
            while handle.service.ledger_gc_runs < 1:
                assert time.monotonic() < deadline, "gc loop never ran"
                time.sleep(0.02)
            assert handle.service.ledger_errors == 0
            doc = client.get("/metrics").json()
            assert doc["ledger"]["gc_runs"] >= 1
            assert doc["ledger"]["gc_interval_s"] == 0.05
        # The service is gone; the compacted journal on disk must replay
        # to exactly the state the live service held — byte for byte.
        led = Ledger.open(ledger_dir)
        assert GOLDEN_EPOCH in led.epochs
        after = canonical_bytes(
            {
                claim: bundle.to_payload()
                for claim, bundle in led.resolve("service").items()
            }
        )
        assert after == before

    def test_gc_disabled_by_default(self):
        with running_service() as (handle, client):
            assert client.get("/experiments/fig7").status == 200
            assert handle.service.ledger_gc_runs == 0
            assert client.get("/metrics").json()["ledger"]["gc_interval_s"] is None
