"""Telemetry tests: counters (incl. wraparound), tracker, reports, cards."""

import json

import pytest

from repro.carbon.intensity import CARBON_FREE
from repro.errors import TelemetryError, UnitError
from repro.telemetry.counters import (
    NvmlPowerSensor,
    RaplCounter,
    SimulatedHost,
    rapl_delta_uj,
)
from repro.telemetry.model_card import (
    HardwareDisclosure,
    ModelCard,
    carbon_impact_statement,
)
from repro.telemetry.reports import aggregate, read_json, write_csv, write_json
from repro.telemetry.tracker import EmissionsTracker, track_constant_workload


class TestRaplCounter:
    def test_accumulates_microjoules(self):
        counter = RaplCounter()
        counter.advance(watts=100.0, seconds=10.0)
        assert counter.read_uj() == pytest.approx(1e9, rel=1e-9)

    def test_wraps_at_max(self):
        counter = RaplCounter(max_energy_uj=1000)
        counter.advance(watts=1.0, seconds=0.0015)  # 1500 uJ
        assert counter.read_uj() == 500

    def test_delta_handles_wraparound(self):
        assert rapl_delta_uj(900, 100, max_energy_uj=1000) == 200

    def test_delta_normal_case(self):
        assert rapl_delta_uj(100, 900, max_energy_uj=1000) == 800

    def test_delta_rejects_negative(self):
        with pytest.raises(TelemetryError):
            rapl_delta_uj(-1, 5)

    def test_advance_validation(self):
        with pytest.raises(UnitError):
            RaplCounter().advance(-1.0, 1.0)


class TestNvmlSensor:
    def test_quantized_reading(self):
        sensor = NvmlPowerSensor(noise_fraction=0.0)
        sensor.set_power(123.456)
        assert sensor.read_mw() % sensor.quantization_mw == 0

    def test_zero_power(self):
        sensor = NvmlPowerSensor(noise_fraction=0.0)
        sensor.set_power(0.0)
        assert sensor.read_mw() == 0


class TestEmissionsTracker:
    def test_constant_workload_energy(self):
        host = SimulatedHost(cpu_utilization=0.3, gpu_utilization=0.6)
        report = track_constant_workload(host, duration_s=3600.0, poll_interval_s=10.0)
        # CPU: 400 W * (0.35 + 0.65*0.3) = 218 W for 1 hour.
        assert report.cpu_energy.kwh == pytest.approx(0.218, rel=0.01)
        # GPU: 300 W * (0.15 + 0.85*0.6) = 198 W, modulo sensor noise.
        assert report.gpu_energy.kwh == pytest.approx(0.198, rel=0.05)
        assert report.facility_energy.kwh == pytest.approx(
            report.it_energy.kwh * 1.1
        )

    def test_tracker_survives_rapl_wraparound(self):
        host = SimulatedHost()
        host.rapl.max_energy_uj = 200_000_000  # wraps every ~0.9 s at 218 W
        report = track_constant_workload(host, duration_s=10.0, poll_interval_s=0.5)
        assert report.cpu_energy.joules == pytest.approx(218.0 * 10.0, rel=0.02)

    def test_double_start_rejected(self):
        tracker = EmissionsTracker(SimulatedHost())
        tracker.start()
        with pytest.raises(TelemetryError):
            tracker.start()

    def test_report_requires_stop(self):
        tracker = EmissionsTracker(SimulatedHost())
        tracker.start()
        with pytest.raises(TelemetryError):
            tracker.report()

    def test_poll_requires_running(self):
        tracker = EmissionsTracker(SimulatedHost())
        with pytest.raises(TelemetryError):
            tracker.poll()

    def test_carbon_free_intensity_zeroes_carbon(self):
        host = SimulatedHost()
        report = track_constant_workload(host, 100.0, 10.0, intensity=CARBON_FREE)
        assert report.carbon.kg == 0.0

    def test_utilization_change_mid_run(self):
        host = SimulatedHost(gpu_utilization=0.0)
        tracker = EmissionsTracker(host)
        with tracker:
            host.advance(100.0)
            tracker.poll()
            host.set_utilization(gpu=1.0)
            host.advance(100.0)
            tracker.poll()
        low = SimulatedHost(gpu_utilization=0.0)
        low_report = track_constant_workload(low, 200.0, 100.0)
        assert tracker.gpu_energy().kwh > low_report.gpu_energy.kwh


class TestReports:
    def _reports(self):
        host = SimulatedHost()
        return [track_constant_workload(host, 60.0, 10.0)]

    def test_json_roundtrip(self, tmp_path):
        reports = self._reports()
        path = write_json(reports, tmp_path / "runs.json")
        loaded = read_json(path)
        assert loaded[0]["label"] == "constant-workload"
        assert loaded[0]["carbon_kg"] == pytest.approx(reports[0].carbon.kg)

    def test_csv_has_header_and_row(self, tmp_path):
        path = write_csv(self._reports(), tmp_path / "runs.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("label,")
        assert len(lines) == 2

    def test_read_json_validates_shape(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(TelemetryError):
            read_json(bad)

    def test_aggregate(self):
        reports = self._reports() * 3
        agg = aggregate(reports)
        assert agg["n_runs"] == 3
        assert agg["total_carbon_kg"] == pytest.approx(3 * reports[0].carbon.kg)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(TelemetryError):
            aggregate([])


class TestModelCard:
    def _report(self):
        return track_constant_workload(SimulatedHost(), 3600.0, 60.0)

    def test_impact_statement_mentions_hardware_and_carbon(self):
        disclosure = HardwareDisclosure("NVIDIA V100", 8, 100.0, "us-average")
        text = carbon_impact_statement(disclosure, self._report())
        assert "8 x NVIDIA V100" in text
        assert "PUE" in text
        assert "gCO2e/kWh" in text

    def test_model_card_renders_environment_section(self):
        from repro.core.analyzer import FootprintAnalyzer, PhaseWorkload, TaskDescription
        from repro.core.footprint import Phase

        task = TaskDescription(
            "m", workloads=(PhaseWorkload(Phase.OFFLINE_TRAINING, 100.0),)
        )
        fp = FootprintAnalyzer().analyze(task)
        card = ModelCard(
            model_name="my-model",
            intended_use="ranking",
            training_data="synthetic",
            metrics={"ndcg": 0.42},
            footprint=fp,
            disclosure=HardwareDisclosure("V100", 8, 12.5),
        )
        text = card.render()
        assert "# Model Card: my-model" in text
        assert "## Environmental Impact" in text
        assert "Operational" in text
        assert "## Hardware Disclosure" in text

    def test_card_without_footprint_prompts_disclosure(self):
        card = ModelCard("m", "use", "data")
        assert "No footprint recorded" in card.render()

    def test_disclosure_validation(self):
        with pytest.raises(TelemetryError):
            HardwareDisclosure("V100", 0, 1.0)
