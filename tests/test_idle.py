"""Idle-state management tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnitError
from repro.fleet.idle import (
    CState,
    DEFAULT_MENU,
    IdleGovernor,
    idle_saving_sweep,
    simulate_idle_management,
)


class TestCState:
    def test_menu_ordered_deeper_is_cheaper_but_slower(self):
        powers = [s.power_fraction for s in DEFAULT_MENU]
        latencies = [s.wake_latency_ms for s in DEFAULT_MENU]
        assert powers == sorted(powers, reverse=True)
        assert latencies == sorted(latencies)

    def test_validation(self):
        with pytest.raises(UnitError):
            CState("bad", power_fraction=1.5, wake_latency_ms=1.0)
        with pytest.raises(UnitError):
            CState("bad", power_fraction=0.5, wake_latency_ms=-1.0)


class TestGovernor:
    def test_short_idle_stays_shallow(self):
        governor = IdleGovernor()
        assert governor.choose(0.0).name == "C1"

    def test_long_idle_goes_deep(self):
        governor = IdleGovernor()
        assert governor.choose(1000.0).name == "C6"

    def test_slo_excludes_slow_states(self):
        governor = IdleGovernor(latency_slo_ms=0.05)
        chosen = governor.choose(1000.0)
        assert chosen.wake_latency_ms <= 0.05

    def test_break_even_positive_for_deep_states(self):
        governor = IdleGovernor()
        assert governor.break_even_ms(DEFAULT_MENU[-1]) > 0.0

    @settings(max_examples=30)
    @given(st.floats(min_value=0, max_value=1e4, allow_nan=False))
    def test_choice_always_valid(self, predicted):
        state = IdleGovernor().choose(predicted)
        assert state in DEFAULT_MENU

    def test_validation(self):
        with pytest.raises(UnitError):
            IdleGovernor(menu=())
        with pytest.raises(UnitError):
            IdleGovernor().choose(-1.0)


class TestSimulation:
    def test_saves_energy_on_long_idles(self):
        result = simulate_idle_management(IdleGovernor(), mean_idle_ms=200.0, seed=0)
        assert result.energy_saving_fraction > 0.5
        assert result.governed_energy.kwh < result.baseline_energy.kwh

    def test_savings_grow_with_idle_length(self):
        sweep = idle_saving_sweep(np.array([2.0, 50.0, 1000.0]), seed=0)
        savings = [s for _, s in sweep]
        assert savings[0] < savings[-1]

    def test_tight_slo_limits_savings(self):
        loose = simulate_idle_management(
            IdleGovernor(latency_slo_ms=1.0), mean_idle_ms=100.0, seed=1
        )
        tight = simulate_idle_management(
            IdleGovernor(latency_slo_ms=0.05), mean_idle_ms=100.0, seed=1
        )
        assert tight.energy_saving_fraction < loose.energy_saving_fraction

    def test_slo_violations_counted(self):
        # A governor whose SLO admits C6 (0.6 ms) but we measure against a
        # stricter effective SLO by constructing a custom governor whose
        # menu violates its own SLO: ensure counting path works.
        governor = IdleGovernor(latency_slo_ms=0.5)
        result = simulate_idle_management(governor, mean_idle_ms=200.0, seed=2)
        # All chosen states respect the SLO, so violations are zero.
        assert result.slo_violations == 0

    def test_state_counts_cover_all_intervals(self):
        result = simulate_idle_management(IdleGovernor(), n_intervals=500, seed=3)
        assert sum(result.state_counts.values()) == 500

    def test_validation(self):
        with pytest.raises(UnitError):
            simulate_idle_management(IdleGovernor(), mean_idle_ms=0.0)
