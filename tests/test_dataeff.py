"""Data-efficiency tests: synthetic world, recommenders, sampling, decay."""

import numpy as np
import pytest

from repro.dataeff.perishability import HalfLifeModel, fit_half_life
from repro.dataeff.ranking import kendall_tau, run_panel
from repro.dataeff.recommenders import (
    BiasMF,
    ItemKNN,
    ItemPop,
    evaluate,
)
from repro.dataeff.sampling import (
    head_users,
    random_interactions,
    recent_interactions,
    svp_users,
)
from repro.dataeff.synthetic import LatentFactorWorld
from repro.errors import CalibrationError, UnitError


WORLD = LatentFactorWorld(n_users=400, n_items=200, seed=7)
DATA = WORLD.sample(12_000, seed_offset=0)


class TestSyntheticWorld:
    def test_deterministic(self):
        a = WORLD.sample(1000, seed_offset=3)
        b = WORLD.sample(1000, seed_offset=3)
        np.testing.assert_array_equal(a.items, b.items)

    def test_ids_in_range(self):
        assert DATA.users.max() < WORLD.n_users
        assert DATA.items.max() < WORLD.n_items

    def test_popularity_skew(self):
        counts = np.bincount(DATA.items, minlength=WORLD.n_items)
        top_decile = np.sort(counts)[-WORLD.n_items // 10 :].sum()
        assert top_decile / counts.sum() > 0.3  # head items dominate

    def test_leave_last_out_removes_one_per_user(self):
        train, test = DATA.leave_last_out()
        assert len(train) + len(test) == len(DATA)
        for user, item in list(test.items())[:50]:
            user_rows = train.items[train.users == user]
            # The held-out event is the user's most recent one.
            held_time = DATA.timestamps[
                (DATA.users == user) & (DATA.items == item)
            ].max()
            if len(user_rows):
                last_train_time = train.timestamps[train.users == user].max()
                assert held_time >= last_train_time

    def test_subset_validation(self):
        with pytest.raises(UnitError):
            DATA.subset(np.zeros(len(DATA), dtype=bool))
        with pytest.raises(UnitError):
            DATA.subset(np.ones(3, dtype=bool))

    def test_time_offset_shifts_timestamps(self):
        shifted = WORLD.sample(100, time_offset_years=2.0, seed_offset=1)
        assert shifted.timestamps.min() >= 2.0

    def test_item_factors_rotate_with_drift(self):
        world = LatentFactorWorld(n_users=50, n_items=30, drift_per_year=1.0, seed=1)
        v0 = world.item_factors_at(0.0)
        v1 = world.item_factors_at(1.5)
        cos = np.sum(v0 * v1) / (np.linalg.norm(v0) * np.linalg.norm(v1))
        assert cos < 0.5  # substantially rotated


class TestRecommenders:
    def test_itempop_scores_by_count(self):
        model = ItemPop().fit(DATA)
        counts = np.bincount(DATA.items, minlength=DATA.n_items)
        popular = int(np.argmax(counts))
        rare = int(np.argmin(counts))
        scores = model.score(0, np.array([popular, rare]))
        assert scores[0] > scores[1]

    def test_unfit_model_rejects_scoring(self):
        with pytest.raises(UnitError):
            ItemPop().score(0, np.array([1]))
        with pytest.raises(UnitError):
            ItemKNN().score(0, np.array([1]))
        with pytest.raises(UnitError):
            BiasMF().score(0, np.array([1]))

    def test_all_beat_random_baseline(self):
        train, test = DATA.leave_last_out()
        for model in (ItemPop(), ItemKNN(), BiasMF(n_epochs=5, seed=0)):
            model.fit(train)
            result = evaluate(model, train, test, k=10)
            # Random ranking of 100 candidates puts the positive in the
            # top-10 with probability 0.1.
            assert result.hr_at_k > 0.15

    def test_personalized_beats_popularity(self):
        world = LatentFactorWorld(n_users=600, n_items=300, seed=3)
        data = world.sample(30_000, seed_offset=0)
        panel = run_panel(data, seed=0)
        scores = panel.scores()
        assert scores["BiasMF"] > scores["ItemPop"]
        assert scores["ItemKNN"] > scores["ItemPop"]

    def test_evaluate_empty_test_rejected(self):
        with pytest.raises(UnitError):
            evaluate(ItemPop().fit(DATA), DATA, {})


class TestSampling:
    def test_rates_respected(self):
        for sampler in (random_interactions, svp_users):
            sample = sampler(DATA, 0.2, seed=0)
            assert 0.05 * len(DATA) < len(sample) < 0.4 * len(DATA)

    def test_head_users_keeps_whole_histories(self):
        sample = head_users(DATA, 0.2)
        counts_full = np.bincount(DATA.users, minlength=DATA.n_users)
        counts_sample = np.bincount(sample.users, minlength=DATA.n_users)
        kept = np.unique(sample.users)
        np.testing.assert_array_equal(counts_sample[kept], counts_full[kept])

    def test_recent_keeps_latest(self):
        sample = recent_interactions(DATA, 0.1)
        cutoff = np.quantile(DATA.timestamps, 0.9)
        assert sample.timestamps.min() >= cutoff - 1e-9

    def test_rate_validation(self):
        with pytest.raises(UnitError):
            random_interactions(DATA, 0.0)
        with pytest.raises(UnitError):
            svp_users(DATA, 1.5)

    def test_svp_band_validation(self):
        with pytest.raises(UnitError):
            svp_users(DATA, 0.1, difficulty_band=(0.9, 0.1))


class TestRankingStudy:
    def test_kendall_tau_identity(self):
        panel = run_panel(DATA, seed=0)
        assert kendall_tau(panel, panel) == pytest.approx(1.0)

    def test_panel_times_positive(self):
        panel = run_panel(DATA, seed=0)
        assert panel.wall_time_s > 0
        assert len(panel.results) == 3


class TestHalfLife:
    def test_decay_at_half_life(self):
        model = HalfLifeModel(half_life_years=7.0)
        assert model.value_at_age(7.0) == pytest.approx(0.5)
        assert model.value_at_age(0.0) == pytest.approx(1.0)

    def test_floor_limits_decay(self):
        model = HalfLifeModel(2.0, floor=0.3)
        assert model.value_at_age(1000.0) == pytest.approx(0.3, abs=1e-6)

    def test_fit_recovers_known_half_life(self):
        truth = HalfLifeModel(3.5, floor=0.1)
        ages = np.linspace(0, 10, 12)
        values = np.array([truth.value_at_age(a) for a in ages])
        fitted = fit_half_life(ages, values)
        assert fitted.half_life_years == pytest.approx(3.5, rel=0.05)
        assert fitted.floor == pytest.approx(0.1, abs=0.02)

    def test_fit_needs_points(self):
        with pytest.raises(CalibrationError):
            fit_half_life(np.array([0.0, 1.0]), np.array([1.0, 0.9]))

    def test_retention_schedule_respects_budget(self):
        model = HalfLifeModel(2.0)
        ages = np.array([0.0, 1.0, 2.0, 4.0, 8.0])
        rates = model.retention_schedule(ages, 0.5)
        assert np.all((rates >= 0) & (rates <= 1))
        assert np.mean(rates) == pytest.approx(0.5, abs=0.02)

    def test_retention_favors_fresh_data(self):
        model = HalfLifeModel(2.0)
        rates = model.retention_schedule(np.array([0.0, 4.0]), 0.5)
        assert rates[0] > rates[1]

    def test_storage_saving(self):
        model = HalfLifeModel(2.0)
        saving = model.storage_saving(np.array([0.0, 2.0, 4.0]), 0.5)
        assert saving == pytest.approx(0.5, abs=0.02)

    def test_validation(self):
        with pytest.raises(UnitError):
            HalfLifeModel(0.0)
        with pytest.raises(UnitError):
            HalfLifeModel(1.0, floor=1.0)
        with pytest.raises(UnitError):
            HalfLifeModel(1.0).value_at_age(-1.0)
