"""Cadence, data pipeline, and end-to-end pipeline tests."""

import math

import pytest

from repro.core.footprint import Phase
from repro.core.quantities import Carbon, Energy, Power
from repro.errors import UnitError
from repro.lifecycle.cadence import (
    Cadence,
    RECOMMENDATION_CADENCE,
    RetrainingPolicy,
    SEARCH_CADENCE,
    TRANSLATION_CADENCE,
)
from repro.lifecycle.datapipeline import DataPipelineSpec
from repro.lifecycle.pipeline import FleetCapacitySplit, PipelineSpec


class TestCadence:
    def test_paper_cadences(self):
        assert SEARCH_CADENCE.cadence is Cadence.HOURLY
        assert TRANSLATION_CADENCE.cadence is Cadence.WEEKLY

    def test_hourly_runs_per_year(self):
        assert Cadence.HOURLY.runs_per_year == pytest.approx(8766.0)

    def test_weekly_runs_per_year(self):
        assert Cadence.WEEKLY.runs_per_year == pytest.approx(52.18, rel=1e-3)

    def test_annual_carbon_scales_with_cadence(self):
        per_run = Carbon(10.0)
        hourly = RetrainingPolicy(Cadence.HOURLY).annual_carbon(per_run)
        weekly = RetrainingPolicy(Cadence.WEEKLY).annual_carbon(per_run)
        assert hourly.kg / weekly.kg == pytest.approx(7 * 24, rel=1e-3)

    def test_online_training_adds_cost(self):
        per_run = Carbon(10.0)
        offline_only = RetrainingPolicy(Cadence.MONTHLY).annual_carbon(per_run)
        with_online = RECOMMENDATION_CADENCE.annual_carbon(per_run)
        assert with_online.kg == pytest.approx(2 * offline_only.kg)

    def test_once_cadence(self):
        once = RetrainingPolicy(Cadence.ONCE)
        assert once.annual_carbon(Carbon(10.0)).kg == 0.0

    def test_annual_energy(self):
        policy = RetrainingPolicy(Cadence.YEARLY)
        assert policy.annual_energy(Energy(5.0)).kwh == pytest.approx(5.0)

    def test_negative_online_fraction_rejected(self):
        with pytest.raises(UnitError):
            RetrainingPolicy(Cadence.MONTHLY, online_fraction_of_offline=-0.1)


class TestDataPipeline:
    def test_power_composition(self):
        spec = DataPipelineSpec(stored_petabytes=10.0, ingestion_gb_per_s=5.0)
        expected = 10.0 * 450.0 + 5.0 * 220.0
        assert spec.total_power.watts == pytest.approx(expected)

    def test_energy_over_hours(self):
        spec = DataPipelineSpec(1.0, 0.0)
        assert spec.energy_over_hours(10.0).kwh == pytest.approx(4.5)

    def test_scaled_bandwidth_superlinear(self):
        # Paper: 2.4x data -> 3.2x bandwidth.
        spec = DataPipelineSpec(10.0, 10.0)
        scaled = spec.scaled(2.4)
        bw_factor = scaled.ingestion_gb_per_s / spec.ingestion_gb_per_s
        assert bw_factor == pytest.approx(3.2, rel=0.02)
        assert scaled.stored_petabytes == pytest.approx(24.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(UnitError):
            DataPipelineSpec(1.0, 1.0).scaled(0.0)

    def test_validation(self):
        with pytest.raises(UnitError):
            DataPipelineSpec(-1.0, 0.0)


class TestFleetCapacitySplit:
    def test_paper_split_default(self):
        split = FleetCapacitySplit()
        assert (split.experimentation, split.training, split.inference) == (
            0.10,
            0.20,
            0.70,
        )

    def test_must_sum_to_one(self):
        with pytest.raises(UnitError):
            FleetCapacitySplit(0.5, 0.5, 0.5)

    def test_allocation(self):
        alloc = FleetCapacitySplit().allocate(Power.from_mw(10.0))
        assert alloc["inference"].mw == pytest.approx(7.0)
        total = sum(p.watts for p in alloc.values())
        assert total == pytest.approx(10e6)


class TestPipelineSpec:
    def test_rm1_split_matches_paper(self):
        from repro.experiments.fig03 import rm1_pipeline

        split = rm1_pipeline().energy_split()
        assert split["data"] == pytest.approx(0.31, abs=0.02)
        assert split["experimentation/training"] == pytest.approx(0.29, abs=0.02)
        assert split["inference"] == pytest.approx(0.40, abs=0.02)

    def test_split_sums_to_one(self):
        from repro.experiments.fig03 import rm1_pipeline

        assert sum(rm1_pipeline().energy_split().values()) == pytest.approx(1.0)

    def test_phase_energy_keys(self):
        from repro.experiments.fig03 import rm1_pipeline

        per_phase = rm1_pipeline().phase_energy_over_year()
        assert set(per_phase) == {
            Phase.DATA,
            Phase.EXPERIMENTATION,
            Phase.OFFLINE_TRAINING,
            Phase.ONLINE_TRAINING,
            Phase.INFERENCE,
        }

    def test_online_training_mirrors_offline_for_rms(self):
        from repro.experiments.fig03 import rm1_pipeline

        per_phase = rm1_pipeline().phase_energy_over_year()
        assert math.isclose(
            per_phase[Phase.ONLINE_TRAINING].kwh,
            per_phase[Phase.OFFLINE_TRAINING].kwh,
            rel_tol=1e-9,
        )

    def test_validation(self):
        from repro.lifecycle.cadence import RetrainingPolicy

        with pytest.raises(UnitError):
            PipelineSpec(
                name="bad",
                data=DataPipelineSpec(1.0, 1.0),
                experimentation_gpu_hours_per_year=-1.0,
                training_gpu_hours_per_run=1.0,
                retraining=RetrainingPolicy(Cadence.MONTHLY),
                inference_devices=1.0,
            )
