"""Integration tests: every registered experiment runs and reproduces the
paper's quantitative claims within its stated band.

These are the repository's acceptance tests — EXPERIMENTS.md mirrors the
bands asserted here.
"""

import pytest

from repro.errors import RegistryError
from repro.experiments.registry import (
    CATEGORY_ORDER,
    EXPERIMENTS,
    SPECS,
    experiment_ids,
    experiment_specs,
    get_spec,
    run_experiment,
)


@pytest.fixture(scope="module")
def results(all_results):
    return all_results


class TestRegistry:
    def test_all_ids_unique_and_present(self):
        assert len(experiment_ids()) == len(set(experiment_ids()))
        assert len(experiment_ids()) >= 22

    def test_unknown_id_rejected(self):
        with pytest.raises(RegistryError):
            run_experiment("fig99")

    def test_unknown_id_message_suggests_close_match(self):
        with pytest.raises(RegistryError, match="did you mean"):
            get_spec("fig99")

    def test_deterministic_category_ordering(self):
        # Figures first, then in-text metrics, appendix, ablations,
        # extensions — guaranteed explicitly, not by dict insertion order.
        categories = [SPECS[eid].category for eid in experiment_ids()]
        ranks = [CATEGORY_ORDER.index(c) for c in categories]
        assert ranks == sorted(ranks)
        assert categories[0] == "figure"
        assert experiment_ids()[0] == "fig1"
        assert set(categories) == set(CATEGORY_ORDER)

    def test_specs_align_with_ids(self):
        assert tuple(s.experiment_id for s in experiment_specs()) == experiment_ids()
        assert set(EXPERIMENTS) == set(experiment_ids())
        for spec in experiment_specs():
            assert EXPERIMENTS[spec.experiment_id] is spec.runner

    def test_rerun_is_bit_reproducible(self):
        first = run_experiment("fig1")
        second = run_experiment("fig1")
        assert first.to_payload() == second.to_payload()

    def test_every_experiment_renders(self, results):
        for exp_id, result in results.items():
            text = result.render()
            assert exp_id in text
            assert len(text) > 50


class TestFigureHeadlines:
    def test_fig1_ml_outgrows_others(self, results):
        h = results["fig1"].headline
        assert h["categories_overtaken_by_ml"] >= 5
        assert h["ml_2yr_cumulative_growth"] > h["other_disciplines_mean_2yr_growth"]

    def test_fig2_growth_anchors(self, results):
        h = results["fig2"].headline
        assert h["bleu_at_1000x_model_size"] == pytest.approx(40.0)
        assert h["baidu_auc_gain_at_1000x"] == pytest.approx(0.030)
        assert h["model_vs_memory_scaling_gap_2yr"] > 5.0

    def test_fig3_splits(self, results):
        h = results["fig3"].headline
        assert h["rm1_data_share"] == pytest.approx(0.31, abs=0.02)
        assert h["rm1_training_share"] == pytest.approx(0.29, abs=0.02)
        assert h["rm1_inference_share"] == pytest.approx(0.40, abs=0.02)
        assert h["electricity_2020_million_mwh"] == pytest.approx(7.17, rel=0.01)
        assert h["inference_capacity_share"] == pytest.approx(0.70)

    def test_fig4_relative_anchors(self, results):
        h = results["fig4"].headline
        assert h["fb_avg_vs_meena"] == pytest.approx(1.8, rel=0.01)
        assert h["fb_avg_vs_gpt3"] == pytest.approx(1 / 3, abs=0.05)
        assert abs(h["params_vs_carbon_correlation"]) < 0.5

    def test_fig5_embodied_shares(self, results):
        h = results["fig5"].headline
        assert h["embodied_over_operational"] == pytest.approx(0.5, abs=0.1)
        assert h["embodied_share_location_based"] == pytest.approx(0.30, abs=0.07)
        assert h["embodied_share_with_cfe"] == pytest.approx(1.0)

    def test_fig6_average_gain(self, results):
        h = results["fig6"].headline
        assert h["average_half_gain"] == pytest.approx(0.20, abs=0.01)

    def test_fig7_exceeds_800x(self, results):
        h = results["fig7"].headline
        assert h["total_gain"] > 800.0
        assert h["total_gain"] == pytest.approx(812.0, rel=0.01)

    def test_fig8_jevons(self, results):
        h = results["fig8"].headline
        assert h["net_two_year_reduction"] == pytest.approx(0.285, abs=1e-6)
        assert h["avoided_vs_counterfactual"] == pytest.approx(1 - 0.8**4, rel=1e-6)

    def test_fig9_factors(self, results):
        h = results["fig9"].headline
        assert 2.3 < h["reduction_30_to_80_util"] < 3.2  # "~3x"
        assert 1.5 < h["renewable_gain_at_80_util"] < 3.0  # "factor of 2"
        assert h["embodied_share_green_80"] > 0.5  # embodied dominates

    def test_fig10_band(self, results):
        h = results["fig10"].headline
        assert h["fraction_in_30_50_band"] > 0.5
        assert 0.3 <= h["mode_utilization"] <= 0.5

    def test_fig11_fl_comparable(self, results):
        h = results["fig11"].headline
        assert 0.3 < h["fl_vs_p100_ratio"] < 3.0
        assert h["fl1_communication_share"] > 0.1
        assert h["green_bars_near_zero"] == 1.0

    def test_fig12_stars_and_exponent(self, results):
        h = results["fig12"].headline
        assert h["star_energy_ratio"] == pytest.approx(4.0, rel=0.01)
        assert h["star_ne_degradation"] == pytest.approx(0.004, abs=0.001)
        assert 0.002 <= h["power_law_exponent"] <= 0.006


class TestTextHeadlines:
    def test_gpudays(self, results):
        h = results["text-gpudays"].headline
        assert h["experimentation_p50"] == pytest.approx(1.5)
        assert h["experimentation_p99"] == pytest.approx(24.0)
        assert h["production_p50"] == pytest.approx(2.96)
        assert h["production_p99"] == pytest.approx(125.0)

    def test_quantization(self, results):
        h = results["text-quant"].headline
        assert h["rm2_size_reduction"] == pytest.approx(0.15, abs=0.01)
        assert h["rm2_bandwidth_reduction"] == pytest.approx(0.207, abs=0.01)
        assert h["rm1_latency_gain"] == pytest.approx(2.5, rel=0.1)
        assert h["embedding_share"] > 0.95

    def test_sampling(self, results):
        h = results["text-sampling"].headline
        assert h["svp_tau_at_10pct"] == pytest.approx(1.0)
        assert h["svp_speedup"] > 3.0  # paper: 5.8x average
        assert h["svp_ranking_preserved"] == 1.0

    def test_halflife(self, results):
        h = results["text-halflife"].headline
        # The synthetic world's drift sets the absolute number; it must be
        # finite, positive, and under the paper's 7-year NL anchor.
        assert 0.1 < h["fitted_half_life_years"] < 7.0
        assert 0.0 < h["storage_saving_at_half_budget"] < 1.0


class TestAppendixAndAblations:
    def test_ssl(self, results):
        h = results["appendix-ssl"].headline
        assert 9.0 < h["ssl_vs_supervised_effort"] < 13.0
        assert h["ssl_amortized_over_20_tasks"] < h["ssl_single_task_epochs"]

    def test_disaggregation(self, results):
        h = results["appendix-disagg"].headline
        assert h["throughput_gain"] == pytest.approx(0.56, abs=0.01)
        assert h["net_embodied_saving_kg"] > 0
        assert h["recovery_overhead_reduction"] > 0

    def test_scheduling_ablation(self, results):
        h = results["ablation-sched"].headline
        assert h["shifting_saving"] > 0.02
        assert h["battery_saving"] > 0.0
        assert h["annual_matching_score"] == pytest.approx(1.0)
        assert h["cfe_247_score"] < 0.8  # the 24/7 gap is real

    def test_earlystop_ablation(self, results):
        h = results["ablation-earlystop"].headline
        assert h["saving_at_tolerance_0.1"] > 0.2
        assert h["regret_at_tolerance_0.1"] < 0.1

    def test_nas_ablation(self, results):
        h = results["ablation-nas"].headline
        assert h["grid_trials"] > 1000
        assert h["bayes_vs_random_gain"] > 1.5

    def test_compression_ablation(self, results):
        h = results["ablation-compression"].headline
        assert h["tt_rec_memory_reduction"] > 100.0
        assert h["tt_rec_training_overhead"] < 0.2
        assert h["dhe_memory_reduction"] > 50.0


class TestExtensionHeadlines:
    def test_moe(self, results):
        h = results["ext-moe"].headline
        assert h["sparsity_gain"] > 100.0
        assert h["operational_saving_capacity_matched"] > 0.9
        assert h["embodied_ratio_quality_matched"] > 3.0

    def test_scopes(self, results):
        h = results["ext-scopes"].headline
        assert h["scope3_share_market_based"] > 0.5  # "more than 50%"
        assert h["capital_goods_growth_factor"] > 1.5

    def test_geo(self, results):
        h = results["ext-geo"].headline
        assert h["geo_vs_single_region_saving"] > 0.1
        assert h["clean_region_energy_share"] > 0.5
        assert h["deadline_misses"] == 0.0

    def test_fl_selection(self, results):
        h = results["ext-flselect"].headline
        assert h["energy_saving_vs_random"] > 0.3
        assert h["round_time_vs_random"] < 1.0
        assert h["fairness_cost_gini"] > 0.0  # the trade-off is visible

    def test_idle(self, results):
        h = results["ext-idle"].headline
        assert h["saving_at_50ms_idle"] > 0.3
        assert h["slo_violation_rate"] == 0.0

    def test_carbon_nas(self, results):
        h = results["ext-carbonnas"].headline
        assert h["energy_saving_factor"] > 1.5

    def test_leaderboard(self, results):
        h = results["ext-leaderboard"].headline
        assert h["reranked_entries_per_kg"] > 0
        assert h["budget_winner_quality_gap"] < 0.05

    def test_predictive_tracking(self, results):
        h = results["ext-predict"].headline
        assert h["predicted_kwh"] > 0
        assert 0.0 <= h["reschedule_saving"] < 1.0

    def test_capacity(self, results):
        h = results["ext-capacity"].headline
        assert h["total_buildout_embodied_tonnes"] > 0
        assert h["consolidation_server_reduction"] > 0.9
        assert h["consolidation_embodied_saving"] > 0.5

    def test_serving_mechanics(self, results):
        h = results["ext-serving"].headline
        assert h["derived_caching_gain"] == pytest.approx(6.7, rel=0.02)
        assert h["derived_gpu_gain"] == pytest.approx(10.1, rel=0.05)
        assert 700 < h["derived_total"] < 900  # the paper's >800x, derived
        assert 0 < h["cache_fraction_needed"] < 0.5

    def test_sdc(self, results):
        h = results["ext-sdc"].headline
        assert h["clean_ndcg"] > 0.3
        assert h["accuracy_lost_to_sdc"] > 0.3
        assert h["accuracy_recovered_by_guard"] > 0.5

    def test_tenancy(self, results):
        h = results["ext-tenancy"].headline
        assert h["best_tenancy"] > 1
        assert h["device_reduction"] > 0.3
        assert h["utilization_shared"] > h["utilization_dedicated"]

    def test_forecast(self, results):
        h = results["ext-forecast"].headline
        assert h["oracle_saving"] > 0.02
        assert 0.5 < h["saving_retained_at_worst"] <= 1.0

    def test_uncertainty(self, results):
        h = results["ext-uncertainty"].headline
        assert h["p05_tonnes"] < h["mean_tonnes"] < h["p95_tonnes"]
        assert h["relative_spread"] > 0.3
        assert h["dominant_is_intensity"] == 1.0

    def test_hardware_choice(self, results):
        h = results["ext-hwchoice"].headline
        assert h["best_at_4yr_is_asic"] == 1.0
        assert 5.0 < h["asic_gpu_crossover_years"] < 12.0
        assert h["slow_churn_crossover_years"] == -1.0  # no crossover
        assert h["gpu_vs_cpu_gain_at_4yr"] > 5.0

    def test_async_fl(self, results):
        h = results["ext-asyncfl"].headline
        assert h["wall_clock_speedup"] > 2.0
        assert 0.7 < h["energy_ratio_async_vs_sync"] < 1.3
        assert h["async_mean_staleness"] > 0.0

    def test_sharding(self, results):
        h = results["ext-sharding"].headline
        assert h["device_reduction"] > 0.8
        assert h["comm_eliminated_gb_per_step"] > 0.0

    def test_time_varying(self, results):
        h = results["ext-tvtracking"].headline
        assert abs(h["attribution_error"]) > 0.01
        assert h["worst_over_best_start"] > 1.2

    def test_autoscale(self, results):
        h = results["ext-autoscale"].headline
        assert 0.15 < h["peak_freed_fraction"] < 0.40  # paper: up to 25%
        assert h["tier_energy_saving"] > 0.0
        assert h["embodied_avoided_tonnes_per_year"] > 0.0

    def test_ingestion(self, results):
        h = results["ext-ingestion"].headline
        assert h["derived_throughput_gain"] == pytest.approx(0.56, abs=0.10)
        assert h["colocated_utilization"] < 0.8
        assert h["workers_to_saturate"] > 5

    def test_bom(self, results):
        h = results["ext-bom"].headline
        assert h["ai_vs_cpu_ratio"] > 3.0
        assert h["hbm_over_nand_per_gb"] > 10.0
        assert 500 < h["ai_server_total_kg"] < 4000  # Mac-Pro-anchor order

    def test_memory_pooling(self, results):
        h = results["ext-mempool"].headline
        assert h["dram_saving_fraction"] > 0.3
        assert h["stranded_fraction_dedicated"] > 0.3
        assert h["embodied_avoided_kg_per_rack"] > 0
