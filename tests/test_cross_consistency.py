"""Cross-module consistency: independent code paths must agree.

These tests pin the library's internal coherence: the closed-form
uncertainty sampler against the analyzer, ladders against their step
products, grid pricing linearity, retention budgets, and quantization
bounds — the invariants a downstream user implicitly relies on when
mixing subsystems.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.carbon.embodied import AmortizationPolicy
from repro.carbon.grid import constant_grid_trace, synthesize_grid_trace
from repro.carbon.intensity import AccountingMethod, CarbonIntensity
from repro.core.analyzer import FootprintAnalyzer, PhaseWorkload, TaskDescription
from repro.core.footprint import Phase
from repro.core.quantities import Carbon
from repro.core.uncertainty import _footprint_kg
from repro.dataeff.perishability import HalfLifeModel
from repro.energy.pue import Datacenter
from repro.fleet.growth import JevonsModel
from repro.models.quantization import QuantizationScheme, apply_quantization
from repro.models.dlrm import make_dlrm
from repro.optimization.ladder import OptimizationLadder, OptimizationStep
from repro.workloads.facebook import production_tasks


class TestAnalyzerVsClosedForm:
    def test_uncertainty_formula_matches_analyzer(self):
        """The Monte-Carlo kernel and the analyzer agree at mode params.

        The closed form uses board watts directly; configure the analyzer
        to match (no host overhead, full utilization so the power model
        sits at TDP).
        """
        device_hours = 10_000.0
        from repro.energy.devices import DeviceSpec, DeviceClass

        device = DeviceSpec("probe", DeviceClass.GPU, 330.0, 0.0, 16.0, 10.0, 2020)
        analyzer = FootprintAnalyzer(
            datacenter=Datacenter(1.10),
            amortization=AmortizationPolicy(4.0, 0.45),
            host_overhead_watts=0.0,
        )
        task = TaskDescription(
            "probe-task",
            device=device,
            workloads=(
                PhaseWorkload(
                    Phase.OFFLINE_TRAINING,
                    device_hours,
                    utilization=1.0,
                    devices_per_server=2,
                ),
            ),
        )
        fp = analyzer.analyze(task)
        closed = _footprint_kg(
            device_hours,
            intensity_kg_per_kwh=0.429,
            pue=1.10,
            device_watts=330.0,
            utilization=0.45,
            lifetime_years=4.0,
            server_embodied_kg=2000.0,
            devices_per_server=2.0,
        )
        assert fp.carbon.kg == pytest.approx(closed, rel=1e-6)


class TestProductionTaskInvariants:
    def test_market_based_zeroes_operational_for_all_tasks(self):
        analyzer = FootprintAnalyzer().with_accounting(AccountingMethod.MARKET_BASED)
        for task in production_tasks():
            fp = analyzer.analyze(task)
            assert fp.operational.carbon.kg == 0.0
            assert fp.embodied.amortized.kg > 0.0

    def test_embodied_independent_of_accounting_method(self):
        location = FootprintAnalyzer()
        market = location.with_accounting(AccountingMethod.MARKET_BASED)
        for task in production_tasks(location):
            a = location.embodied_footprint(task).amortized.kg
            b = market.embodied_footprint(task).amortized.kg
            assert a == pytest.approx(b)


class TestLadderAlgebra:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.floats(min_value=1.01, max_value=20.0, allow_nan=False),
            min_size=1,
            max_size=6,
        )
    )
    def test_total_is_product_of_steps(self, gains):
        ladder = OptimizationLadder(
            tuple(OptimizationStep(f"s{i}", g) for i, g in enumerate(gains))
        )
        assert ladder.total_gain == pytest.approx(math.prod(gains), rel=1e-9)

    @settings(max_examples=30)
    @given(
        st.lists(
            st.floats(min_value=1.01, max_value=20.0, allow_nan=False),
            min_size=1,
            max_size=6,
        )
    )
    def test_order_does_not_change_total(self, gains):
        forward = OptimizationLadder(
            tuple(OptimizationStep(f"s{i}", g) for i, g in enumerate(gains))
        )
        backward = OptimizationLadder(
            tuple(
                OptimizationStep(f"s{i}", g)
                for i, g in enumerate(reversed(gains))
            )
        )
        assert forward.total_gain == pytest.approx(backward.total_gain, rel=1e-9)


class TestJevonsIdentity:
    @settings(max_examples=30)
    @given(
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        st.floats(min_value=0.8, max_value=1.5, allow_nan=False),
        st.integers(min_value=1, max_value=8),
    )
    def test_trajectory_is_product_of_rates(self, gain, growth, halves):
        model = JevonsModel(gain, growth)
        traj = model.power_trajectory(halves)
        expected = ((1 - gain) * growth) ** halves
        assert traj[-1] == pytest.approx(expected, rel=1e-9)


class TestGridPricingLinearity:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 200), st.floats(min_value=0.0, max_value=100.0))
    def test_emissions_linear_in_load(self, seed, scale):
        grid = synthesize_grid_trace(72, seed=seed)
        profile = np.linspace(1.0, 5.0, 72)
        one = grid.emissions_for_profile(profile).kg
        scaled = grid.emissions_for_profile(profile * scale).kg
        assert scaled == pytest.approx(scale * one, rel=1e-9, abs=1e-9)

    def test_constant_grid_equals_intensity_times_energy(self):
        grid = constant_grid_trace(CarbonIntensity(0.37), 24)
        profile = np.full(24, 3.0)
        assert grid.emissions_for_profile(profile).kg == pytest.approx(
            0.37 * 72.0
        )


class TestRetentionBudget:
    @settings(max_examples=30)
    @given(
        st.floats(min_value=0.2, max_value=20.0, allow_nan=False),
        st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        st.integers(min_value=2, max_value=12),
    )
    def test_schedule_hits_budget_when_feasible(self, half_life, budget, n_buckets):
        model = HalfLifeModel(half_life)
        ages = np.linspace(0, 10, n_buckets)
        rates = model.retention_schedule(ages, budget)
        assert np.all((rates >= -1e-12) & (rates <= 1.0 + 1e-12))
        # Mean retention equals the budget whenever no bucket saturates,
        # and never exceeds it materially otherwise.
        assert np.mean(rates) <= budget + 0.05
        if np.all(rates < 1.0 - 1e-9):
            assert np.mean(rates) == pytest.approx(budget, abs=0.02)


class TestQuantizationBounds:
    @settings(max_examples=25)
    @given(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_reductions_bounded_by_byte_ratio(self, emb_frac, mlp_frac):
        model = make_dlrm("q", n_tables=4, rows_per_table=10_000)
        scheme = QuantizationScheme(
            embedding_fraction=emb_frac, mlp_fraction=mlp_frac, hotness_skew=1.0
        )
        impact = apply_quantization(model, scheme)
        ceiling = 1.0 - scheme.byte_ratio
        assert -1e-9 <= impact.size_reduction <= ceiling + 1e-9
        assert -1e-9 <= impact.bandwidth_reduction <= ceiling + 1e-9


class TestAmortizationCap:
    @settings(max_examples=25)
    @given(
        st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
    )
    def test_never_exceeds_manufacturing(self, lifetime, utilization, hours):
        policy = AmortizationPolicy(lifetime, utilization)
        charged = policy.amortize(Carbon(2000.0), hours)
        assert charged.kg <= 2000.0 + 1e-9
