"""Renewable procurement / offsets tests."""

import pytest

from repro.carbon.offsets import NET_ZERO_PROGRAM, NO_PROGRAM, RenewableProcurement
from repro.core.quantities import Carbon, Energy
from repro.errors import UnitError


class TestRenewableProcurement:
    def test_full_matching_zeroes_market_emissions(self):
        assert NET_ZERO_PROGRAM.market_based_emissions(Carbon(1000.0)).kg == 0.0

    def test_no_program_passes_through(self):
        assert NO_PROGRAM.market_based_emissions(Carbon(1000.0)).kg == 1000.0

    def test_partial_matching(self):
        program = RenewableProcurement(match_fraction=0.6)
        assert program.market_based_emissions(Carbon(100.0)).kg == pytest.approx(40.0)

    def test_offsets_apply_to_residual(self):
        program = RenewableProcurement(match_fraction=0.5, offset_fraction=0.5)
        assert program.market_based_emissions(Carbon(100.0)).kg == pytest.approx(25.0)

    def test_matched_energy(self):
        program = RenewableProcurement(match_fraction=0.8)
        assert program.matched_energy(Energy(100.0)).kwh == pytest.approx(80.0)

    def test_validation(self):
        with pytest.raises(UnitError):
            RenewableProcurement(match_fraction=1.5)
        with pytest.raises(UnitError):
            RenewableProcurement(offset_fraction=-0.1)
