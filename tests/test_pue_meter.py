"""PUE and energy metering tests."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.quantities import Energy, Power
from repro.energy.meter import (
    EnergyMeter,
    integrate_power_hours,
    integrate_power_timestamps,
)
from repro.energy.pue import (
    Datacenter,
    HYPERSCALE_PUE,
    TYPICAL_PUE,
    efficiency_vs,
    overhead_reduction,
)
from repro.errors import UnitError


class TestDatacenter:
    def test_facility_energy(self):
        dc = Datacenter(pue=1.5)
        assert dc.facility_energy(Energy(10.0)).kwh == pytest.approx(15.0)

    def test_overhead_energy(self):
        dc = Datacenter(pue=1.1)
        assert dc.overhead_energy(Energy(10.0)).kwh == pytest.approx(1.0)

    def test_facility_power(self):
        dc = Datacenter(pue=1.2)
        assert dc.facility_power(Power(100.0)).watts == pytest.approx(120.0)

    def test_pue_below_one_rejected(self):
        with pytest.raises(UnitError):
            Datacenter(pue=0.9)

    def test_hyperscale_vs_typical(self):
        # "about 40% more efficient" counts overhead energy.
        assert overhead_reduction(HYPERSCALE_PUE, TYPICAL_PUE) > 0.4
        assert 0.25 < efficiency_vs(HYPERSCALE_PUE, TYPICAL_PUE) < 0.35


class TestIntegration:
    def test_hourly_sum(self):
        energy = integrate_power_hours(np.array([1000.0, 2000.0, 3000.0]))
        assert energy.kwh == pytest.approx(6.0)

    def test_sub_hourly_samples(self):
        energy = integrate_power_hours(np.full(4, 1000.0), hours_per_sample=0.25)
        assert energy.kwh == pytest.approx(1.0)

    def test_rejects_negative_power(self):
        with pytest.raises(UnitError):
            integrate_power_hours(np.array([-1.0]))

    def test_trapezoid_constant_power(self):
        t = np.array([0.0, 1800.0, 3600.0])
        w = np.array([1000.0, 1000.0, 1000.0])
        assert integrate_power_timestamps(w, t).kwh == pytest.approx(1.0)

    def test_trapezoid_ramp(self):
        t = np.array([0.0, 3600.0])
        w = np.array([0.0, 2000.0])
        assert integrate_power_timestamps(w, t).kwh == pytest.approx(1.0)

    def test_trapezoid_needs_sorted_times(self):
        with pytest.raises(UnitError):
            integrate_power_timestamps(np.array([1.0, 1.0]), np.array([1.0, 0.0]))

    def test_single_sample_is_zero(self):
        assert integrate_power_timestamps(np.array([5.0]), np.array([0.0])).kwh == 0.0

    @given(
        st.floats(min_value=0, max_value=1e5, allow_nan=False),
        st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
    )
    def test_trapezoid_matches_constant_formula(self, watts, seconds):
        t = np.array([0.0, seconds])
        w = np.array([watts, watts])
        expected = watts * seconds / 3.6e6
        assert math.isclose(
            integrate_power_timestamps(w, t).kwh, expected, rel_tol=1e-9, abs_tol=1e-12
        )


class TestEnergyMeter:
    def test_accumulates(self):
        meter = EnergyMeter()
        meter.record(0.0, Power(1000.0))
        meter.record(3600.0, Power(1000.0))
        assert meter.total_energy().kwh == pytest.approx(1.0)
        assert meter.average_power().watts == pytest.approx(1000.0)

    def test_out_of_order_rejected(self):
        meter = EnergyMeter()
        meter.record(10.0, Power(1.0))
        with pytest.raises(UnitError):
            meter.record(5.0, Power(1.0))

    def test_empty_meter(self):
        meter = EnergyMeter()
        assert meter.total_energy().kwh == 0.0
        assert meter.average_power().watts == 0.0
        assert meter.duration_s == 0.0

    def test_sample_count(self):
        meter = EnergyMeter()
        meter.record(0.0, Power(1.0))
        meter.record(1.0, Power(1.0))
        assert meter.sample_count == 2
