"""Carbon intensity and accounting-method tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.carbon.intensity import (
    AccountingMethod,
    CARBON_FREE,
    CarbonIntensity,
    DualIntensity,
    RENEWABLE_MATCHED_FLEET,
    US_AVERAGE,
    intensity_for_region,
    regions,
)
from repro.core.quantities import Energy
from repro.errors import UnitError


class TestCarbonIntensity:
    def test_emissions(self):
        ci = CarbonIntensity(0.5)
        assert ci.emissions(Energy(10.0)).kg == 5.0

    def test_rejects_negative(self):
        with pytest.raises(UnitError):
            CarbonIntensity(-0.1)

    def test_g_per_kwh_view(self):
        assert CarbonIntensity(0.429).g_per_kwh == 429.0

    @given(
        st.floats(min_value=0, max_value=2, allow_nan=False),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
    )
    def test_emissions_linear_in_energy(self, intensity, kwh):
        ci = CarbonIntensity(intensity)
        assert math.isclose(
            ci.emissions(Energy(kwh)).kg, intensity * kwh, rel_tol=1e-9, abs_tol=1e-9
        )

    def test_scaled(self):
        assert US_AVERAGE.scaled(0.5).kg_per_kwh == pytest.approx(0.2145)

    def test_scaled_rejects_negative(self):
        with pytest.raises(UnitError):
            US_AVERAGE.scaled(-1.0)


class TestRegionTable:
    def test_all_regions_resolvable(self):
        for name in regions():
            assert intensity_for_region(name).label == name

    def test_unknown_region_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="us-average"):
            intensity_for_region("atlantis")

    def test_carbon_free_is_zero(self):
        assert CARBON_FREE.kg_per_kwh == 0.0

    def test_coal_dirtier_than_nuclear(self):
        assert (
            intensity_for_region("coal").kg_per_kwh
            > intensity_for_region("nuclear").kg_per_kwh
        )


class TestDualIntensity:
    def test_method_selection(self):
        dual = DualIntensity(location=US_AVERAGE, market=CARBON_FREE)
        assert dual.for_method(AccountingMethod.LOCATION_BASED) is US_AVERAGE
        assert dual.for_method(AccountingMethod.MARKET_BASED) is CARBON_FREE

    def test_renewable_matched_fleet(self):
        assert RENEWABLE_MATCHED_FLEET.market.kg_per_kwh == 0.0
        assert RENEWABLE_MATCHED_FLEET.location.kg_per_kwh > 0.0
