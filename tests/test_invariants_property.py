"""Hypothesis property suite: the named physical invariants on generated substrates.

Each test maps one named invariant from
:mod:`repro.testing.invariants` over the substrate generators in
:mod:`repro.testing.strategies`; the deterministic Hypothesis profile
(registered via ``tests/conftest.py``) keeps the example stream
reproducible in CI.  The suite carries the ``property`` marker so the CI
fast job can exclude it and the property job can run it alone.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.series import CHECK_ENV_VAR, HourlySeries
from repro.errors import InvariantViolation
from repro.experiments.base import ExperimentResult
from repro.testing import strategies as strat
from repro.testing.invariants import (
    RESULT_INVARIANTS,
    SUBSTRATE_INVARIANTS,
    check_amortization_linearity,
    check_carbon_aware_never_worse,
    check_emissions_additivity,
    check_emissions_bounds,
    check_emissions_linear_in_intensity,
    check_emissions_linear_in_load,
    check_emissions_monotone_in_intensity,
    check_emissions_monotone_in_load,
    check_energy_additivity,
    check_fifo_busy_conservation,
    check_integration_exactness,
    check_pue_amplification,
    check_result,
    check_results,
    check_saving_scale_invariance,
    check_static_grid_equivalence,
    check_total_footprint_additivity,
    check_trace_doubling,
    result_invariant_names,
    substrate_invariant_names,
)

pytestmark = pytest.mark.property

scale_factors = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


class TestRegistry:
    def test_at_least_ten_named_substrate_invariants(self):
        # The acceptance bar: >= 10 named physical laws run as properties.
        assert len(substrate_invariant_names()) >= 10
        assert set(substrate_invariant_names()) == set(SUBSTRATE_INVARIANTS)

    def test_result_invariants_registered(self):
        assert len(result_invariant_names()) >= 4
        assert set(result_invariant_names()) == set(RESULT_INVARIANTS)

    def test_invariant_functions_carry_their_names(self):
        for name, func in SUBSTRATE_INVARIANTS.items():
            assert func.invariant_name == name
        for name, func in RESULT_INVARIANTS.items():
            assert func.invariant_name == name


class TestConservation:
    @given(strat.aligned_series(count=2))
    def test_energy_conservation_additivity(self, pair):
        check_energy_additivity(*pair)

    @given(st.data())
    def test_emissions_additivity(self, data):
        a, b = data.draw(strat.aligned_series(count=2))
        grid = data.draw(strat.grid_traces())
        check_emissions_additivity(a, b, grid)

    @given(strat.hourly_series())
    def test_integration_exactness(self, series):
        check_integration_exactness(series)

    @given(
        strat.accounting_contexts(),
        strat.hourly_series(max_hours=96),
        st.floats(min_value=1.0, max_value=5000.0),
        st.floats(min_value=0.0, max_value=1e6),
    )
    def test_operational_embodied_additivity(
        self, context, series, manufacturing_kg, server_hours
    ):
        check_total_footprint_additivity(
            context, series, manufacturing_kg, server_hours
        )

    @given(
        strat.amortization_policies(),
        st.floats(min_value=1.0, max_value=5000.0),
        st.floats(min_value=0.0, max_value=1e5),
        st.floats(min_value=0.0, max_value=1e5),
    )
    def test_embodied_amortization_linearity(self, policy, kg, h1, h2):
        check_amortization_linearity(policy, kg, h1, h2)

    @given(st.data())
    def test_fifo_busy_gpu_conservation(self, data):
        stream = data.draw(strat.experiment_streams(max_jobs_per_day=25, max_days=3))
        total_gpus = data.draw(st.integers(min_value=32, max_value=256))
        horizon = data.draw(st.integers(min_value=24, max_value=96))
        check_fifo_busy_conservation(stream, total_gpus, horizon)


class TestLinearityAndMonotonicity:
    @given(st.data())
    def test_emissions_linear_in_load(self, data):
        series = data.draw(strat.hourly_series())
        grid = data.draw(strat.grid_traces())
        factor = data.draw(scale_factors)
        check_emissions_linear_in_load(series, grid, factor)

    @given(st.data())
    def test_emissions_linear_in_intensity(self, data):
        series = data.draw(strat.hourly_series())
        grid = data.draw(strat.grid_traces())
        factor = data.draw(scale_factors)
        check_emissions_linear_in_intensity(series, grid, factor)

    @given(st.data())
    def test_emissions_monotone_in_intensity(self, data):
        series = data.draw(strat.hourly_series())
        grid = data.draw(strat.grid_traces())
        bump = data.draw(strat.hourly_arrays(1, len(grid), 0.0, 1.0))
        check_emissions_monotone_in_intensity(series, grid, bump)

    @given(st.data())
    def test_emissions_monotone_in_load(self, data):
        series, extra = data.draw(strat.aligned_series(count=2))
        grid = data.draw(strat.grid_traces())
        check_emissions_monotone_in_load(series, extra, grid)

    @given(st.data())
    def test_pue_amplification(self, data):
        context = data.draw(strat.accounting_contexts())
        horizon = len(context.grid) if context.grid is not None else 48
        series = data.draw(strat.hourly_series(max_hours=min(horizon, 96)))
        check_pue_amplification(context, series)

    @given(st.data())
    def test_emissions_bounded_by_intensity_extremes(self, data):
        series = data.draw(strat.hourly_series())
        grid = data.draw(strat.grid_traces())
        check_emissions_bounds(series, grid)


class TestUnitConsistencyAndMetamorphic:
    @given(st.data())
    def test_static_grid_equivalence(self, data):
        series = data.draw(strat.hourly_series(max_hours=96))
        intensity = data.draw(strat.carbon_intensities())
        check_static_grid_equivalence(series, intensity)

    @given(st.data())
    def test_trace_doubling_doubles_energy(self, data):
        series = data.draw(strat.hourly_series(max_hours=96))
        # Horizon-aligned grid exercises the emissions-doubling branch.
        grid = data.draw(strat.grid_traces(len(series), len(series)))
        check_trace_doubling(series, grid)

    @given(st.data())
    def test_carbon_aware_never_worse_than_fifo(self, data):
        horizon = data.draw(st.integers(min_value=24, max_value=168))
        jobs = data.draw(strat.deferrable_jobs(horizon_hours=horizon, max_jobs=8))
        grid = data.draw(strat.grid_traces(1, horizon))
        check_carbon_aware_never_worse(jobs, grid, horizon)

    @given(st.data())
    def test_saving_invariant_under_intensity_scaling(self, data):
        horizon = data.draw(st.integers(min_value=24, max_value=120))
        jobs = data.draw(strat.deferrable_jobs(horizon_hours=horizon, max_jobs=6))
        grid = data.draw(strat.grid_traces(1, horizon))
        factor = data.draw(st.floats(min_value=0.1, max_value=10.0))
        check_saving_scale_invariance(jobs, grid, horizon, factor)


class TestInvariantsCanActuallyFail:
    """The harness is falsifiable: broken laws raise, bad results report."""

    def test_broken_reduction_is_caught(self, monkeypatch):
        series = HourlySeries(np.array([1.0, 2.0, 3.0]))
        monkeypatch.setattr(HourlySeries, "total", lambda self: 42.0)
        with pytest.raises(InvariantViolation):
            check_integration_exactness(series)

    def test_result_invariants_flag_bad_metrics(self):
        bad = ExperimentResult(
            experiment_id="synthetic",
            title="synthetic bad result",
            headline={
                "broken_kg": -1.0,
                "broken_fraction": 1.5,
                "broken_metric": float("nan"),
            },
        )
        violations = check_result(bad)
        flagged = {v.invariant for v in violations}
        assert "nonnegative-physical-metrics" in flagged
        assert "shares-bounded-by-one" in flagged
        assert "finite-headline-metrics" in flagged

    def test_empty_headline_is_flagged(self):
        bare = ExperimentResult(experiment_id="x", title="t", headline={})
        assert any(
            v.invariant == "nonempty-identity" for v in check_result(bare)
        )

    def test_report_renders_and_counts(self):
        good = ExperimentResult("a", "ok", {"clean_kg": 1.0})
        bad = ExperimentResult("b", "bad", {"dirty_kg": -2.0})
        report = check_results({"a": good, "b": bad})
        assert not report.ok
        assert report.n_experiments == 2
        assert "VIOLATED" in report.render()
        ok_report = check_results([good])
        assert ok_report.ok
        assert "OK" in ok_report.render()


class TestRuntimeHooks:
    """The --check-invariants runtime self-checks in repro.core."""

    def test_emissions_self_check_passes_on_valid_grid(self, monkeypatch):
        monkeypatch.setenv(CHECK_ENV_VAR, "1")
        from repro.carbon.grid import synthesize_grid_trace

        series = HourlySeries(np.linspace(0.0, 5.0, 48))
        grid = synthesize_grid_trace(48, seed=11)
        assert series.emissions(grid).kg >= 0.0

    def test_emissions_self_check_catches_unphysical_intensity(self, monkeypatch):
        # GridTrace does not itself forbid negative intensities; the
        # runtime invariant check is what catches the unphysical mass.
        monkeypatch.setenv(CHECK_ENV_VAR, "1")
        from repro.carbon.grid import GridTrace

        bad_grid = GridTrace(
            solar_share=np.zeros(4),
            wind_share=np.zeros(4),
            intensity_kg_per_kwh=np.array([-0.5, -0.5, -0.5, -0.5]),
        )
        series = HourlySeries(np.ones(4))
        with pytest.raises(InvariantViolation):
            series.emissions(bad_grid)

    def test_operational_self_check_passes(self, monkeypatch):
        monkeypatch.setenv(CHECK_ENV_VAR, "1")
        from repro.carbon.intensity import US_AVERAGE
        from repro.core.context import AccountingContext

        context = AccountingContext(intensity=US_AVERAGE, pue=1.3)
        assert context.operational(HourlySeries.constant(2.0, 24)).kg > 0.0

    def test_checks_off_by_default(self, monkeypatch):
        monkeypatch.delenv(CHECK_ENV_VAR, raising=False)
        from repro.core.series import runtime_checks_enabled

        assert not runtime_checks_enabled()
        monkeypatch.setenv(CHECK_ENV_VAR, "1")
        assert runtime_checks_enabled()


class TestStrategiesProduceValidSubstrates:
    """The strategy library only generates constructor-valid objects."""

    @given(strat.hourly_series())
    def test_series_valid(self, series):
        assert len(series) >= 1
        assert np.all(series.values >= 0.0)

    @given(strat.grid_traces())
    def test_grids_valid(self, grid):
        assert len(grid) >= 1
        assert np.all(np.isfinite(grid.intensity_kg_per_kwh))

    @given(strat.accounting_contexts())
    def test_contexts_valid(self, context):
        assert (context.grid is None) != (context.intensity is None)
        assert context.pue >= 1.0

    @given(strat.deferrable_jobs(horizon_hours=100))
    def test_jobs_fit_horizon(self, jobs):
        for job in jobs:
            assert job.submit_hour + job.duration_hours <= job.deadline_hour <= 100

    @given(strat.fleet_configs())
    def test_fleet_configs_instantiate(self, config):
        from repro.fleet.simulator import FleetSimulator

        sim = FleetSimulator(**config)
        assert sim.training_gpus == config["training_gpus"]
