"""FL vs centralized training comparison (Figure 11).

Bars of Figure 11: FL-1, FL-2 (edge emissions), P100-Base, TPU-Base
(Transformer_Big trained centrally on the named hardware at location-based
intensity), and P100-Green / TPU-Green (the same training on carbon-free
datacenter supply).  The paper's point: two small production FL apps emit
carbon *comparable to* training an orders-of-magnitude larger Transformer
centrally — and the green option available to datacenters does not exist
at the edge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.intensity import CARBON_FREE, CarbonIntensity, US_AVERAGE
from repro.core.quantities import Carbon
from repro.edge.fl import analyze_app
from repro.edge.logs import FL1, FL2
from repro.workloads.oss_models import (
    TRANSFORMER_BIG_P100,
    TRANSFORMER_BIG_TPU,
    ReferenceFootprint,
)


@dataclass(frozen=True, slots=True)
class ComparisonBar:
    """One Figure-11 bar."""

    label: str
    carbon: Carbon
    setting: str  # "edge" | "datacenter" | "datacenter-green"


def centralized_bar(
    reference: ReferenceFootprint,
    label: str,
    intensity: CarbonIntensity = US_AVERAGE,
) -> ComparisonBar:
    """A centralized-training bar at the given supply intensity."""
    carbon = intensity.emissions(reference.training_energy)
    setting = "datacenter-green" if intensity.kg_per_kwh == 0 else "datacenter"
    return ComparisonBar(label=label, carbon=carbon, setting=setting)


def figure11_bars(days: int = 90, seed: int = 0) -> list[ComparisonBar]:
    """All six bars of Figure 11."""
    fl1 = analyze_app(FL1, days=days, seed=seed)
    fl2 = analyze_app(FL2, days=days, seed=seed + 1)
    return [
        ComparisonBar("FL-1", fl1.carbon, "edge"),
        ComparisonBar("FL-2", fl2.carbon, "edge"),
        centralized_bar(TRANSFORMER_BIG_P100, "P100-Base"),
        centralized_bar(TRANSFORMER_BIG_TPU, "TPU-Base"),
        centralized_bar(TRANSFORMER_BIG_P100, "P100-Green", CARBON_FREE),
        centralized_bar(TRANSFORMER_BIG_TPU, "TPU-Green", CARBON_FREE),
    ]


def fl_vs_centralized_ratio(days: int = 90, seed: int = 0) -> float:
    """Mean FL footprint over the P100 centralized baseline.

    "Comparable" in the paper means same order of magnitude; the test
    suite asserts this ratio stays within [0.3, 3].
    """
    bars = {b.label: b.carbon.kg for b in figure11_bars(days, seed)}
    fl_mean = (bars["FL-1"] + bars["FL-2"]) / 2.0
    return fl_mean / bars["P100-Base"]
