"""Heterogeneity-aware FL client selection (AutoFL direction, Section IV-C).

"Optimizing the overall energy efficiency of FL and on-device AI is an
important first step" — Kim & Wu's AutoFL selects participants aware of
device heterogeneity to cut energy per round.

The simulation: a heterogeneous client population (compute speed and
link speed vary per device); each round selects a cohort.  Strategies:

* ``random``   — uniform selection (the FedAvg default);
* ``fastest``  — pick the fastest devices (round time optimal, but burns
  the same radios every round and skews data exposure);
* ``energy-aware`` — greedy minimum predicted per-client energy subject
  to the round deadline being met by the whole cohort.

Reported per strategy: total energy, mean round time, and a
participation-skew metric (how unevenly clients are used, a fairness /
data-coverage proxy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantities import Energy
from repro.edge.energy_model import DEVICE_POWER_W, ROUTER_POWER_W
from repro.errors import UnitError


@dataclass(frozen=True)
class ClientPopulation:
    """Per-device compute and link characteristics."""

    compute_s: np.ndarray  # per-round local training time
    comm_s: np.ndarray  # per-round up+down transfer time

    def __post_init__(self) -> None:
        if self.compute_s.shape != self.comm_s.shape:
            raise UnitError("population arrays must align")
        if len(self.compute_s) == 0:
            raise UnitError("population must be non-empty")
        if np.any(self.compute_s <= 0) or np.any(self.comm_s <= 0):
            raise UnitError("durations must be positive")

    def __len__(self) -> int:
        return len(self.compute_s)

    def round_energy_j(self) -> np.ndarray:
        """Per-client energy of one participation (paper methodology)."""
        return self.compute_s * DEVICE_POWER_W + self.comm_s * ROUTER_POWER_W

    def round_time_s(self) -> np.ndarray:
        return self.compute_s + self.comm_s


def synthesize_population(
    n_clients: int = 5000,
    median_compute_s: float = 120.0,
    compute_sigma: float = 0.7,
    median_comm_s: float = 40.0,
    comm_sigma: float = 0.8,
    seed: int = 0,
) -> ClientPopulation:
    """Lognormal heterogeneity in both compute and connectivity."""
    if n_clients <= 0:
        raise UnitError("population must be positive")
    rng = np.random.default_rng(seed)
    compute = rng.lognormal(np.log(median_compute_s), compute_sigma, n_clients)
    comm = rng.lognormal(np.log(median_comm_s), comm_sigma, n_clients)
    return ClientPopulation(compute, comm)


@dataclass(frozen=True)
class SelectionOutcome:
    """Aggregate result of running one strategy for many rounds."""

    strategy: str
    total_energy: Energy
    mean_round_time_s: float
    participation_gini: float
    rounds: int
    cohort_size: int


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of participation counts (0 = perfectly even)."""
    sorted_counts = np.sort(counts.astype(float))
    n = len(sorted_counts)
    total = sorted_counts.sum()
    if total == 0:
        return 0.0
    cum = np.cumsum(sorted_counts)
    return float((n + 1 - 2 * np.sum(cum) / total) / n)


def run_selection(
    population: ClientPopulation,
    strategy: str = "random",
    rounds: int = 200,
    cohort_size: int = 64,
    deadline_s: float | None = None,
    availability: float = 0.25,
    seed: int = 0,
) -> SelectionOutcome:
    """Simulate ``rounds`` FL rounds under one selection strategy.

    Each round, an ``availability`` fraction of clients is online; the
    strategy picks ``cohort_size`` of them.  Round time is the slowest
    selected client (synchronous FedAvg); energy sums the cohort.
    """
    if strategy not in ("random", "fastest", "energy-aware"):
        raise UnitError(f"unknown strategy {strategy!r}")
    if rounds <= 0 or cohort_size <= 0:
        raise UnitError("rounds and cohort size must be positive")
    if not (0 < availability <= 1):
        raise UnitError("availability must be in (0, 1]")

    rng = np.random.default_rng(seed)
    energy_j = population.round_energy_j()
    times = population.round_time_s()
    deadline = deadline_s if deadline_s is not None else float(np.quantile(times, 0.8))
    n = len(population)

    if strategy == "random":
        # Without-replacement cohort draws interleave with the per-round
        # availability masks on one RNG stream, so the draws stay in a
        # loop; only the cohort indices are collected here — the energy
        # and round-time gathers below are vectorized across rounds.
        cohorts = np.empty((rounds, cohort_size), dtype=np.intp)
        for r in range(rounds):
            online = rng.random(n) < availability
            candidates = np.nonzero(online)[0]
            if len(candidates) < cohort_size:
                candidates = np.arange(n)
            cohorts[r] = rng.choice(candidates, cohort_size, replace=False)
    else:
        # Deterministic strategies consume RNG only for the availability
        # masks, which batch into one (rounds, n) draw — row r of the
        # matrix is the exact stream the former per-round rng.random(n)
        # produced.  The selection key (round time or energy) is static
        # across rounds, so one global stable argsort replaces the
        # per-round compressed argsorts: each round's cohort is the first
        # ``cohort_size`` eligible clients in global key order, recovered
        # with boolean gathers.  Stable (key, client-index) order matches
        # the per-round compressed argsort exactly, ties included.
        online = rng.random((rounds, n)) < availability
        short = np.sum(online, axis=1) < cohort_size
        online[short] = True  # per-round fallback to the full population
        if strategy == "fastest":
            key, mask = times, online
        else:  # energy-aware: cheapest clients that still meet the deadline
            eligible = online & (times <= deadline)
            lacking = np.sum(eligible, axis=1) < cohort_size
            eligible[lacking] = online[lacking]
            key, mask = energy_j, eligible
        order = np.argsort(key, kind="stable")
        mask_sorted = mask[:, order]
        ranks = np.cumsum(mask_sorted, axis=1, dtype=np.int32)
        take = mask_sorted & (ranks <= cohort_size)
        cohorts = order[np.nonzero(take)[1].reshape(rounds, -1)]

    round_joules = np.sum(energy_j[cohorts], axis=1)
    round_times = np.max(times[cohorts], axis=1)
    total_j = 0.0
    for j in round_joules.tolist():
        total_j += j
    participation = np.zeros(n, dtype=int)
    np.add.at(participation, cohorts, 1)

    return SelectionOutcome(
        strategy=strategy,
        total_energy=Energy.from_joules(total_j),
        mean_round_time_s=float(np.mean(round_times)),
        participation_gini=_gini(participation),
        rounds=rounds,
        cohort_size=cohort_size,
    )


def _reference_run_selection(
    population: ClientPopulation,
    strategy: str = "random",
    rounds: int = 200,
    cohort_size: int = 64,
    deadline_s: float | None = None,
    availability: float = 0.25,
    seed: int = 0,
) -> SelectionOutcome:
    """Pre-vectorization per-round loop (bit-exactness tests only)."""
    if strategy not in ("random", "fastest", "energy-aware"):
        raise UnitError(f"unknown strategy {strategy!r}")
    if rounds <= 0 or cohort_size <= 0:
        raise UnitError("rounds and cohort size must be positive")
    if not (0 < availability <= 1):
        raise UnitError("availability must be in (0, 1]")

    rng = np.random.default_rng(seed)
    energy_j = population.round_energy_j()
    times = population.round_time_s()
    deadline = deadline_s if deadline_s is not None else float(np.quantile(times, 0.8))

    total_j = 0.0
    round_times = np.empty(rounds)
    participation = np.zeros(len(population), dtype=int)

    for r in range(rounds):
        online = rng.random(len(population)) < availability
        candidates = np.nonzero(online)[0]
        if len(candidates) < cohort_size:
            candidates = np.arange(len(population))
        if strategy == "random":
            cohort = rng.choice(candidates, cohort_size, replace=False)
        elif strategy == "fastest":
            cohort = candidates[np.argsort(times[candidates], kind="stable")[:cohort_size]]
        else:  # energy-aware: cheapest clients that still meet the deadline
            meets = candidates[times[candidates] <= deadline]
            pool = meets if len(meets) >= cohort_size else candidates
            cohort = pool[np.argsort(energy_j[pool], kind="stable")[:cohort_size]]
        total_j += float(np.sum(energy_j[cohort]))
        round_times[r] = float(np.max(times[cohort]))
        participation[cohort] += 1

    return SelectionOutcome(
        strategy=strategy,
        total_energy=Energy.from_joules(total_j),
        mean_round_time_s=float(np.mean(round_times)),
        participation_gini=_gini(participation),
        rounds=rounds,
        cohort_size=cohort_size,
    )


def compare_strategies(
    population: ClientPopulation | None = None,
    rounds: int = 200,
    cohort_size: int = 64,
    seed: int = 0,
) -> dict[str, SelectionOutcome]:
    """All three strategies on the same population and randomness."""
    population = population or synthesize_population(seed=seed)
    return {
        name: run_selection(
            population, name, rounds=rounds, cohort_size=cohort_size, seed=seed
        )
        for name in ("random", "fastest", "energy-aware")
    }
