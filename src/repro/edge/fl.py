"""Federated learning footprint analysis (Figure 11).

Applies the Appendix-B energy methodology to the (synthetic) 90-day logs
and converts to carbon at the *edge* intensity — client devices draw from
ordinary residential grids, where "renewable energy is far more limited
... compared to datacenters", so the world-average intensity is the
default and there is no green variant for FL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.intensity import CarbonIntensity, WORLD_AVERAGE
from repro.core.quantities import Carbon, Energy
from repro.edge.energy_model import batch_energy_kwh
from repro.edge.logs import FLAppConfig, FLLogs, generate_logs
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class FLFootprint:
    """Carbon footprint of one FL application over its log window."""

    app_name: str
    days: int
    compute_energy: Energy
    communication_energy: Energy
    carbon: Carbon
    n_participations: int

    @property
    def total_energy(self) -> Energy:
        return self.compute_energy + self.communication_energy

    @property
    def communication_share(self) -> float:
        """Fraction of energy spent on wireless communication.

        The paper: "the wireless communication energy cost takes up a
        significant portion of the overall energy footprint of federated
        learning".
        """
        total = self.total_energy.kwh
        return self.communication_energy.kwh / total if total else 0.0

    @property
    def energy_per_participation(self) -> Energy:
        if self.n_participations == 0:
            return Energy.zero()
        return Energy(self.total_energy.kwh / self.n_participations)


def analyze_logs(
    logs: FLLogs, intensity: CarbonIntensity = WORLD_AVERAGE
) -> FLFootprint:
    """Footprint of a log set under the paper's energy methodology."""
    compute_kwh, comm_kwh = batch_energy_kwh(
        logs.compute_s, logs.download_s, logs.upload_s
    )
    total = Energy(compute_kwh + comm_kwh)
    return FLFootprint(
        app_name=logs.app.name,
        days=logs.days,
        compute_energy=Energy(compute_kwh),
        communication_energy=Energy(comm_kwh),
        carbon=intensity.emissions(total),
        n_participations=logs.n_participations,
    )


def analyze_app(
    app: FLAppConfig,
    days: int = 90,
    intensity: CarbonIntensity = WORLD_AVERAGE,
    seed: int = 0,
) -> FLFootprint:
    """Generate logs for ``app`` and analyze them."""
    return analyze_logs(generate_logs(app, days, seed), intensity)


def communication_optimization_gain(
    footprint: FLFootprint, compression_ratio: float
) -> Energy:
    """Energy saved by compressing FL model updates by ``ratio``.

    The paper flags "energy footprint optimization on communication" as
    important; gradient/update compression divides communication time.
    """
    if compression_ratio < 1:
        raise UnitError("compression ratio must be >= 1")
    saved_kwh = footprint.communication_energy.kwh * (1.0 - 1.0 / compression_ratio)
    return Energy(saved_kwh)
