"""Edge / federated learning: energy methodology, logs, analysis."""

from repro.edge.async_fl import (
    FLRunOutcome,
    run_async,
    run_sync,
    sync_vs_async,
)
from repro.edge.comparison import (
    ComparisonBar,
    centralized_bar,
    figure11_bars,
    fl_vs_centralized_ratio,
)
from repro.edge.devices import (
    DevicePopulation,
    SMARTPHONE_EMBODIED,
    SMARTPHONE_LIFECYCLE,
)
from repro.edge.energy_model import (
    DEVICE_POWER_W,
    ParticipationRecord,
    ROUTER_POWER_W,
    batch_energy_kwh,
    participation_energy,
)
from repro.edge.fl import (
    FLFootprint,
    analyze_app,
    analyze_logs,
    communication_optimization_gain,
)
from repro.edge.logs import FL1, FL2, FLAppConfig, FLLogs, generate_logs
from repro.edge.selection import (
    ClientPopulation,
    SelectionOutcome,
    compare_strategies,
    run_selection,
    synthesize_population,
)

__all__ = [
    "ClientPopulation",
    "ComparisonBar",
    "DEVICE_POWER_W",
    "SelectionOutcome",
    "compare_strategies",
    "run_selection",
    "synthesize_population",
    "DevicePopulation",
    "FL1",
    "FL2",
    "FLAppConfig",
    "FLFootprint",
    "FLLogs",
    "FLRunOutcome",
    "run_async",
    "run_sync",
    "sync_vs_async",
    "ParticipationRecord",
    "ROUTER_POWER_W",
    "SMARTPHONE_EMBODIED",
    "SMARTPHONE_LIFECYCLE",
    "analyze_app",
    "analyze_logs",
    "batch_energy_kwh",
    "centralized_bar",
    "communication_optimization_gain",
    "figure11_bars",
    "fl_vs_centralized_ratio",
    "generate_logs",
    "participation_energy",
]
