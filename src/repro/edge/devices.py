"""Client-device population model: heterogeneity and embodied carbon.

Section IV-C: edge manufacturing carbon is ~74% of a client device's
life-cycle footprint (Gupta et al. 2021), and devices are "often
under-utilized", making the embodied cost per useful FL hour high.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.carbon.embodied import CLIENT_DEVICE_MANUFACTURING_SHARE
from repro.core.quantities import Carbon
from repro.errors import UnitError

#: Typical smartphone life-cycle footprint (public LCA reports, ~70 kgCO2e).
SMARTPHONE_LIFECYCLE = Carbon(70.0)
#: Manufacturing share thereof.
SMARTPHONE_EMBODIED = Carbon(
    SMARTPHONE_LIFECYCLE.kg * CLIENT_DEVICE_MANUFACTURING_SHARE
)


@dataclass(frozen=True, slots=True)
class DevicePopulation:
    """A heterogeneous fleet of client devices.

    ``speed_sigma`` controls the lognormal spread of relative compute
    speed — the "large degree of system heterogeneity among client edge
    devices" the paper highlights (stragglers dominate round time).
    """

    n_devices: int
    speed_sigma: float = 0.5
    lifetime_years: float = 3.0
    daily_active_hours: float = 4.0

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise UnitError("population must be positive")
        if self.speed_sigma < 0:
            raise UnitError("speed sigma must be non-negative")
        if self.lifetime_years <= 0 or self.daily_active_hours <= 0:
            raise UnitError("lifetime and active hours must be positive")

    def relative_speeds(self, seed: int = 0) -> np.ndarray:
        """Per-device relative compute speed (median 1.0)."""
        rng = np.random.default_rng(seed)
        return rng.lognormal(0.0, self.speed_sigma, self.n_devices)

    def straggler_slowdown(self, cohort_size: int, seed: int = 0) -> float:
        """Expected round-time inflation from waiting on the slowest client.

        Round time is set by the slowest of ``cohort_size`` sampled
        devices; returns mean(max cohort time) / median time.
        """
        if cohort_size <= 0:
            raise UnitError("cohort size must be positive")
        speeds = self.relative_speeds(seed)
        rng = np.random.default_rng(seed + 1)
        n_trials = 200
        k = min(cohort_size, self.n_devices)
        # Without-replacement sampling is stateful, so the draws stay in a
        # loop; the per-trial straggler maxima collapse to one 2-D kernel
        # (bit-exact with _reference_straggler_slowdown's per-trial max).
        cohorts = np.stack([rng.choice(speeds, size=k, replace=False) for _ in range(n_trials)])
        maxima = np.max(1.0 / cohorts, axis=1)
        return float(np.mean(maxima))

    def _reference_straggler_slowdown(self, cohort_size: int, seed: int = 0) -> float:
        """Pre-vectorization trial loop (bit-exactness tests only)."""
        if cohort_size <= 0:
            raise UnitError("cohort size must be positive")
        speeds = self.relative_speeds(seed)
        rng = np.random.default_rng(seed + 1)
        n_trials = 200
        maxima = np.empty(n_trials)
        for t in range(n_trials):
            cohort = rng.choice(speeds, size=min(cohort_size, self.n_devices), replace=False)
            maxima[t] = np.max(1.0 / cohort)
        return float(np.mean(maxima))

    def embodied_rate_per_active_hour(
        self, device_embodied: Carbon = SMARTPHONE_EMBODIED
    ) -> float:
        """kgCO2e of manufacturing carbon per device active-hour."""
        active_hours = self.lifetime_years * units.DAYS_PER_YEAR * self.daily_active_hours
        return device_embodied.kg / active_hours

    def fl_embodied_carbon(
        self,
        total_compute_s: float,
        device_embodied: Carbon = SMARTPHONE_EMBODIED,
    ) -> Carbon:
        """Embodied carbon attributable to FL compute time on this fleet."""
        if total_compute_s < 0:
            raise UnitError("compute time must be non-negative")
        hours = total_compute_s / units.SECONDS_PER_HOUR
        return Carbon(self.embodied_rate_per_active_hour(device_embodied) * hours)
