"""Edge energy methodology from the paper's Appendix B.

"We multiplied the computation time with the estimated device power and
upload/download time with the estimated router power, and omitted other
energy.  We assumed a device power of 3 W and a router power of 7.5 W."

The same estimator is applied per client participation record, so the
simulation and the real 90-day-log methodology share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantities import Energy
from repro.energy.devices import CLIENT_DEVICE, WIRELESS_ROUTER
from repro.errors import UnitError

#: The paper's estimates.
DEVICE_POWER_W = CLIENT_DEVICE.tdp_watts  # 3 W
ROUTER_POWER_W = WIRELESS_ROUTER.tdp_watts  # 7.5 W


@dataclass(frozen=True, slots=True)
class ParticipationRecord:
    """One client's contribution to one FL round (durations in seconds)."""

    compute_s: float
    download_s: float
    upload_s: float

    def __post_init__(self) -> None:
        if min(self.compute_s, self.download_s, self.upload_s) < 0:
            raise UnitError("durations must be non-negative")

    @property
    def communication_s(self) -> float:
        return self.download_s + self.upload_s


def participation_energy(record: ParticipationRecord) -> Energy:
    """Energy of one participation under the paper's methodology."""
    joules = (
        record.compute_s * DEVICE_POWER_W
        + record.communication_s * ROUTER_POWER_W
    )
    return Energy.from_joules(joules)


def batch_energy_kwh(
    compute_s: np.ndarray, download_s: np.ndarray, upload_s: np.ndarray
) -> tuple[float, float]:
    """(compute kWh, communication kWh) for arrays of participation logs."""
    c = np.asarray(compute_s, dtype=float)
    d = np.asarray(download_s, dtype=float)
    u = np.asarray(upload_s, dtype=float)
    if c.shape != d.shape or c.shape != u.shape:
        raise UnitError("log arrays must align")
    if np.any(c < 0) or np.any(d < 0) or np.any(u < 0):
        raise UnitError("durations must be non-negative")
    compute_kwh = float(np.sum(c)) * DEVICE_POWER_W / 3.6e6
    comm_kwh = float(np.sum(d + u)) * ROUTER_POWER_W / 3.6e6
    return compute_kwh, comm_kwh
