"""Synthetic 90-day federated-learning production logs.

Substitute for the private logs behind Figure 11: "We collected the
90-day log data for federated learning production use cases at Facebook,
which recorded the time spent on computation, data downloading, and data
uploading per client device."

The generator produces per-participation durations with realistic
heterogeneity: lognormal compute times (slow-device tail), and
communication times driven by model size over a lognormal link-speed
population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.memo import memoized_substrate
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class FLAppConfig:
    """Sizing of one production FL application."""

    name: str
    clients_per_round: int
    rounds_per_day: float
    model_mb: float
    median_compute_s: float
    compute_sigma: float = 0.6
    median_link_mbps: float = 20.0
    link_sigma: float = 0.8
    upload_downlink_ratio: float = 0.5  # uplink speed relative to downlink

    def __post_init__(self) -> None:
        if self.clients_per_round <= 0 or self.rounds_per_day <= 0:
            raise UnitError("participation rates must be positive")
        if self.model_mb <= 0 or self.median_compute_s <= 0:
            raise UnitError("model size and compute time must be positive")
        if not (0 < self.upload_downlink_ratio <= 1):
            raise UnitError("uplink ratio must be in (0, 1]")


@dataclass(frozen=True)
class FLLogs:
    """Per-participation duration logs over the collection window."""

    app: FLAppConfig
    days: int
    compute_s: np.ndarray
    download_s: np.ndarray
    upload_s: np.ndarray

    @property
    def n_participations(self) -> int:
        return len(self.compute_s)

    @property
    def total_compute_s(self) -> float:
        return float(np.sum(self.compute_s))

    @property
    def total_communication_s(self) -> float:
        return float(np.sum(self.download_s + self.upload_s))


@memoized_substrate
def generate_logs(app: FLAppConfig, days: int = 90, seed: int = 0) -> FLLogs:
    """Synthesize the 90-day participation logs for one FL app.

    Memoized (both tiers): identical ``(app, days, seed)`` calls share one
    frozen :class:`FLLogs`; Figure 11 and the FL comparisons re-request
    the same 90-day logs repeatedly.
    """
    if days <= 0:
        raise UnitError("collection window must be positive")
    rng = np.random.default_rng(seed)
    n = int(round(app.clients_per_round * app.rounds_per_day * days))
    if n <= 0:
        raise UnitError("configuration yields no participations")

    compute = rng.lognormal(np.log(app.median_compute_s), app.compute_sigma, n)
    link_mbps = rng.lognormal(np.log(app.median_link_mbps), app.link_sigma, n)
    model_mbits = app.model_mb * 8.0
    download = model_mbits / link_mbps
    upload = model_mbits / (link_mbps * app.upload_downlink_ratio)
    return FLLogs(
        app=app,
        days=days,
        compute_s=compute,
        download_s=download,
        upload_s=upload,
    )


#: Two production-shaped FL applications (Figure 11's FL-1, FL-2),
#: calibrated so each 90-day footprint lands near Transformer_Big's
#: training footprint, as the figure shows.
FL1 = FLAppConfig(
    name="FL-1",
    clients_per_round=2_200,
    rounds_per_day=12.0,
    model_mb=12.0,
    median_compute_s=160.0,
)
FL2 = FLAppConfig(
    name="FL-2",
    clients_per_round=900,
    rounds_per_day=32.0,
    model_mb=25.0,
    median_compute_s=110.0,
)
