"""Synchronous vs asynchronous federated learning (Papaya direction).

The paper cites Papaya [90] — "Practical, private, and scalable federated
learning" — whose core systems idea is *asynchronous* aggregation: the
server folds in client updates as they arrive (with a staleness bound)
instead of waiting for the whole cohort, so stragglers no longer gate
round time.

The simulation compares, for the same heterogeneous client population
and the same number of aggregated updates:

* **sync (FedAvg)** — each round waits for the slowest of K clients;
* **async (FedBuff-style)** — the server applies updates in completion
  order, buffering ``buffer_size`` before each model version bump;
  staleness (versions elapsed since the contributing client started) is
  tracked because it degrades update usefulness.

Reported: wall-clock to reach the target update count, total device
energy, and the staleness distribution — the throughput-vs-freshness
trade Papaya navigates.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.quantities import Energy
from repro.edge.selection import ClientPopulation
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class FLRunOutcome:
    """Aggregate result of one (sync or async) FL execution."""

    mode: str
    wall_clock_s: float
    total_energy: Energy
    updates_applied: int
    mean_staleness: float
    p95_staleness: float


def run_sync(
    population: ClientPopulation,
    target_updates: int = 6400,
    cohort_size: int = 64,
    seed: int = 0,
) -> FLRunOutcome:
    """Synchronous FedAvg: rounds gated by the slowest cohort member.

    The per-round ``rng.choice`` calls stay in a loop (without-replacement
    sampling is stateful, so its draw order cannot be batched), but the
    per-round straggler maxima and cohort energy sums are computed in one
    2-D gather.  Per-round values are then accumulated sequentially so the
    float totals match :func:`_reference_run_sync` bit-for-bit.
    """
    if target_updates <= 0 or cohort_size <= 0:
        raise UnitError("updates and cohort must be positive")
    rng = np.random.default_rng(seed)
    times = population.round_time_s()
    energy_j = population.round_energy_j()

    rounds = int(np.ceil(target_updates / cohort_size))
    cohorts = np.stack(
        [rng.choice(len(population), cohort_size, replace=False) for _ in range(rounds)]
    )
    round_walls = np.max(times[cohorts], axis=1)
    round_joules = np.sum(energy_j[cohorts], axis=1)
    wall = 0.0
    total_j = 0.0
    for w, j in zip(round_walls.tolist(), round_joules.tolist()):
        wall += w
        total_j += j
    return FLRunOutcome(
        mode="sync",
        wall_clock_s=wall,
        total_energy=Energy.from_joules(total_j),
        updates_applied=rounds * cohort_size,
        mean_staleness=0.0,
        p95_staleness=0.0,
    )


def _reference_run_sync(
    population: ClientPopulation,
    target_updates: int = 6400,
    cohort_size: int = 64,
    seed: int = 0,
) -> FLRunOutcome:
    """Pre-vectorization sync loop (bit-exactness tests only)."""
    if target_updates <= 0 or cohort_size <= 0:
        raise UnitError("updates and cohort must be positive")
    rng = np.random.default_rng(seed)
    times = population.round_time_s()
    energy_j = population.round_energy_j()

    rounds = int(np.ceil(target_updates / cohort_size))
    wall = 0.0
    total_j = 0.0
    for _ in range(rounds):
        cohort = rng.choice(len(population), cohort_size, replace=False)
        wall += float(np.max(times[cohort]))
        total_j += float(np.sum(energy_j[cohort]))
    return FLRunOutcome(
        mode="sync",
        wall_clock_s=wall,
        total_energy=Energy.from_joules(total_j),
        updates_applied=rounds * cohort_size,
        mean_staleness=0.0,
        p95_staleness=0.0,
    )


def run_async(
    population: ClientPopulation,
    target_updates: int = 6400,
    concurrency: int = 128,
    buffer_size: int = 10,
    seed: int = 0,
) -> FLRunOutcome:
    """Asynchronous FedBuff-style execution.

    ``concurrency`` clients train at any moment; as each finishes, its
    update (stamped with the model version it started from) joins the
    buffer, a replacement client starts, and every ``buffer_size``
    arrivals the model version advances.  Staleness = versions elapsed
    between an update's start and its application.
    """
    if target_updates <= 0 or concurrency <= 0 or buffer_size <= 0:
        raise UnitError("updates, concurrency and buffer must be positive")
    rng = np.random.default_rng(seed)
    times = population.round_time_s()
    energy_j = population.round_energy_j()

    # Exactly concurrency + target_updates clients launch over the run
    # (the initial wave plus one replacement per applied update); a batched
    # integers() draw produces the same stream as the former per-launch
    # scalar draws, and the per-client time/energy gathers vectorize.
    n_launches = concurrency + target_updates
    client_ids = rng.integers(0, len(population), n_launches)
    launch_times = times[client_ids].astype(float).tolist()
    launch_joules = energy_j[client_ids].astype(float).tolist()
    client_list = client_ids.tolist()

    version = 0
    buffered = 0
    total_j = 0.0
    staleness: list[int] = []
    # (finish time, start version, client id) min-heap of in-flight work.
    inflight: list[tuple[float, int, int]] = []
    next_launch = 0

    def launch(now: float) -> None:
        nonlocal next_launch
        i = next_launch
        next_launch = i + 1
        heapq.heappush(inflight, (now + launch_times[i], version, client_list[i]))

    for _ in range(concurrency):
        launch(0.0)

    applied = 0
    clock = 0.0
    heappop = heapq.heappop
    joules_by_client = energy_j.astype(float).tolist()
    while applied < target_updates:
        finish, start_version, client = heappop(inflight)
        clock = finish
        total_j += joules_by_client[client]
        staleness.append(version - start_version)
        buffered += 1
        applied += 1
        if buffered >= buffer_size:
            version += 1
            buffered = 0
        launch(clock)

    stale = np.array(staleness)
    return FLRunOutcome(
        mode="async",
        wall_clock_s=clock,
        total_energy=Energy.from_joules(total_j),
        updates_applied=applied,
        mean_staleness=float(np.mean(stale)),
        p95_staleness=float(np.percentile(stale, 95)),
    )


def _reference_run_async(
    population: ClientPopulation,
    target_updates: int = 6400,
    concurrency: int = 128,
    buffer_size: int = 10,
    seed: int = 0,
) -> FLRunOutcome:
    """Pre-vectorization async event loop (bit-exactness tests only)."""
    if target_updates <= 0 or concurrency <= 0 or buffer_size <= 0:
        raise UnitError("updates, concurrency and buffer must be positive")
    rng = np.random.default_rng(seed)
    times = population.round_time_s()
    energy_j = population.round_energy_j()

    version = 0
    buffered = 0
    total_j = 0.0
    staleness: list[int] = []
    inflight: list[tuple[float, int, int]] = []
    clock = 0.0

    def launch(now: float) -> None:
        client = int(rng.integers(0, len(population)))
        heapq.heappush(inflight, (now + float(times[client]), version, client))

    for _ in range(concurrency):
        launch(0.0)

    applied = 0
    while applied < target_updates:
        finish, start_version, client = heapq.heappop(inflight)
        clock = finish
        total_j += float(energy_j[client])
        staleness.append(version - start_version)
        buffered += 1
        applied += 1
        if buffered >= buffer_size:
            version += 1
            buffered = 0
        launch(clock)

    stale = np.array(staleness)
    return FLRunOutcome(
        mode="async",
        wall_clock_s=clock,
        total_energy=Energy.from_joules(total_j),
        updates_applied=applied,
        mean_staleness=float(np.mean(stale)),
        p95_staleness=float(np.percentile(stale, 95)),
    )


def sync_vs_async(
    population: ClientPopulation,
    target_updates: int = 6400,
    cohort_size: int = 64,
    seed: int = 0,
) -> dict[str, FLRunOutcome]:
    """Both modes at matched update counts and matched concurrency."""
    return {
        "sync": run_sync(population, target_updates, cohort_size, seed),
        "async": run_async(
            population, target_updates, concurrency=cohort_size * 2, seed=seed
        ),
    }
