"""Unit conversion constants and helpers.

Internally the library standardizes on:

* energy  -> kilowatt-hours (kWh)
* power   -> watts (W)
* carbon  -> kilograms of CO2-equivalent (kgCO2e)
* time    -> hours (h) for fleet-scale modeling, seconds for telemetry

Everything else (joules, MWh, metric tonnes, GPU-days, ...) is converted at
the boundary through the constants and helpers below.  Keeping a single
canonical unit per dimension removes an entire class of silent
order-of-magnitude errors that plague carbon accounting.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Time
# --------------------------------------------------------------------------
SECONDS_PER_HOUR = 3600.0
HOURS_PER_DAY = 24.0
HOURS_PER_YEAR = 24.0 * 365.25
DAYS_PER_YEAR = 365.25
MONTHS_PER_YEAR = 12.0

# --------------------------------------------------------------------------
# Energy
# --------------------------------------------------------------------------
JOULES_PER_KWH = 3.6e6
WH_PER_KWH = 1e3
KWH_PER_MWH = 1e3
KWH_PER_GWH = 1e6

# --------------------------------------------------------------------------
# Mass (carbon)
# --------------------------------------------------------------------------
KG_PER_TONNE = 1e3
KG_PER_GRAM = 1e-3
KG_PER_POUND = 0.45359237

# --------------------------------------------------------------------------
# EPA greenhouse-gas equivalencies (2021 calculator values)
# --------------------------------------------------------------------------
#: kgCO2e emitted per mile driven by an average passenger vehicle.
KG_CO2E_PER_PASSENGER_VEHICLE_MILE = 0.398
#: kgCO2e per average passenger vehicle per year.
KG_CO2E_PER_PASSENGER_VEHICLE_YEAR = 4600.0
#: kgCO2e per US home's electricity use per year.
KG_CO2E_PER_HOME_ELECTRICITY_YEAR = 5505.0
#: kgCO2e per gallon of gasoline consumed.
KG_CO2E_PER_GALLON_GASOLINE = 8.887
#: kgCO2e sequestered per urban tree seedling grown for 10 years.
KG_CO2E_PER_TREE_SEEDLING_10YR = 60.0
#: kgCO2e per smartphone charged.
KG_CO2E_PER_SMARTPHONE_CHARGE = 0.00822


def joules_to_kwh(joules: float) -> float:
    """Convert energy in joules to kilowatt-hours."""
    return joules / JOULES_PER_KWH


def kwh_to_joules(kwh: float) -> float:
    """Convert energy in kilowatt-hours to joules."""
    return kwh * JOULES_PER_KWH


def wh_to_kwh(wh: float) -> float:
    """Convert watt-hours to kilowatt-hours."""
    return wh / WH_PER_KWH


def mwh_to_kwh(mwh: float) -> float:
    """Convert megawatt-hours to kilowatt-hours."""
    return mwh * KWH_PER_MWH


def kwh_to_mwh(kwh: float) -> float:
    """Convert kilowatt-hours to megawatt-hours."""
    return kwh / KWH_PER_MWH


def kg_to_tonnes(kg: float) -> float:
    """Convert kilograms to metric tonnes."""
    return kg / KG_PER_TONNE


def tonnes_to_kg(tonnes: float) -> float:
    """Convert metric tonnes to kilograms."""
    return tonnes * KG_PER_TONNE


def grams_to_kg(grams: float) -> float:
    """Convert grams to kilograms."""
    return grams * KG_PER_GRAM


def pounds_to_kg(pounds: float) -> float:
    """Convert pounds to kilograms."""
    return pounds * KG_PER_POUND


def watts_hours_to_kwh(watts: float, hours: float) -> float:
    """Energy (kWh) from constant power draw over a duration.

    Parameters
    ----------
    watts:
        Average power draw in watts.  Must be non-negative.
    hours:
        Duration in hours.  Must be non-negative.
    """
    if watts < 0:
        raise ValueError(f"power must be non-negative, got {watts} W")
    if hours < 0:
        raise ValueError(f"duration must be non-negative, got {hours} h")
    return watts * hours / WH_PER_KWH


def gpu_days(count: float) -> float:
    """Convert GPU-days into GPU-hours (the unit job models consume)."""
    if count < 0:
        raise ValueError(f"GPU-days must be non-negative, got {count}")
    return count * HOURS_PER_DAY


def per_year_to_per_hour(rate_per_year: float) -> float:
    """Convert an annual rate to an hourly rate."""
    return rate_per_year / HOURS_PER_YEAR
