"""Figure 6: ~20% operational power reduction every 6 months, by area."""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.fleet.growth import FIG6_AREAS, average_half_gain, composed_half_gains


def run() -> ExperimentResult:
    """The Figure-6 per-half optimization stack (~20% per 6 months)."""
    halves = ("H2'19", "H1'20", "H2'20", "H1'21")
    totals = composed_half_gains()

    headers = ["period"] + [a.name for a in FIG6_AREAS] + ["composed total"]
    rows = []
    for i, half in enumerate(halves):
        rows.append(
            [half]
            + [f"{a.gains_per_half[i]:.1%}" for a in FIG6_AREAS]
            + [f"{totals[i]:.1%}"]
        )

    cumulative = float(np.prod(1.0 - totals))
    return ExperimentResult(
        experiment_id="fig6",
        title="Cross-stack optimization: per-half power reductions",
        headline={
            "average_half_gain": average_half_gain(),
            "cumulative_power_factor_4_halves": cumulative,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: optimizations across model, platform, infrastructure "
            "and hardware compose to ~20% operational power reduction per "
            "6-month period."
        ),
    )
