"""Ablation experiments for the design directions Section IV charts out:
carbon-aware scheduling, early stopping, NAS search strategy, and
memory-compression architectures."""

from __future__ import annotations

import numpy as np

from repro.carbon.grid import GridMixParams, synthesize_grid_trace
from repro.experiments.base import ExperimentResult
from repro.models.compression import (
    dhe,
    embodied_operational_tradeoff,
    tt_rec,
    uncompressed,
)
from repro.models.dlrm import EmbeddingTableSpec
from repro.optimization.earlystop import LearningCurveModel, sweep_tolerance
from repro.optimization.nas import (
    GRID_SEARCH_OVERHEAD,
    grid_search_cost,
    sample_efficiency_gain,
)
from repro.scheduling.carbon_aware import (
    carbon_saving,
    schedule_carbon_aware,
    schedule_immediate,
)
from repro.scheduling.cfe import annual_matching_score, cfe_score, solar_procurement
from repro.scheduling.jobs import synthesize_jobs
from repro.scheduling.storage import Battery, run_arbitrage


def run_scheduling(seed: int = 0) -> ExperimentResult:
    """Carbon-aware shifting + storage on a renewable-heavy grid."""
    params = GridMixParams(solar_capacity_fraction=0.45, wind_capacity_fraction=0.25)
    grid = synthesize_grid_trace(168, params, seed=seed)
    jobs = synthesize_jobs(50, 168, slack_factor=4.0, seed=seed)
    capacity = 2500.0

    baseline = schedule_immediate(jobs, grid, 168, capacity)
    aware = schedule_carbon_aware(jobs, grid, 168, capacity)
    shifting_saving = carbon_saving(baseline, aware)

    load = baseline.power_profile_kw
    battery = Battery(capacity_kwh=4000.0, max_power_kw=1000.0)
    storage = run_arbitrage(load, grid, battery)

    procured = solar_procurement(load, grid, match_fraction=1.0)
    headers = ["strategy", "carbon (t)", "saving vs immediate"]
    rows = [
        ["immediate", baseline.total_carbon.tonnes, "-"],
        ["carbon-aware shifting", aware.total_carbon.tonnes, f"{shifting_saving:.1%}"],
        [
            "immediate + battery",
            storage.carbon_with.tonnes,
            f"{storage.carbon_saving_fraction:.1%}",
        ],
    ]
    return ExperimentResult(
        experiment_id="ablation-sched",
        title="Carbon-aware scheduling, storage, and 24/7 CFE",
        headline={
            "shifting_saving": shifting_saving,
            "battery_saving": storage.carbon_saving_fraction,
            "annual_matching_score": annual_matching_score(load, procured),
            "cfe_247_score": cfe_score(load, procured),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (Section IV-C): shifting deferrable training toward "
            "clean hours and storing renewable energy both cut emissions; "
            "100% annual matching still leaves a large 24/7 CFE gap."
        ),
    )


def run_earlystop(seed: int = 0) -> ExperimentResult:
    """Early stopping of under-performing workflows: savings vs regret."""
    model = LearningCurveModel(n_workflows=64, total_steps=1000, seed=seed)
    sweep = sweep_tolerance(np.array([0.02, 0.05, 0.10, 0.20, 0.40]), model)
    headers = ["tolerance", "compute saving", "regret (final loss gap)"]
    rows = [[t, s, r] for t, s, r in sweep]
    default = next(row for row in sweep if abs(row[0] - 0.10) < 1e-9)
    return ExperimentResult(
        experiment_id="ablation-earlystop",
        title="Early stopping of under-performing training workflows",
        headline={
            "saving_at_tolerance_0.1": default[1],
            "regret_at_tolerance_0.1": default[2],
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: 'by detecting and stopping under-performing training "
            "workflows early, unnecessary training cycles can be "
            "eliminated' — the sweep shows the savings/regret trade-off."
        ),
    )


def run_nas() -> ExperimentResult:
    """Search-strategy cost: grid blow-up vs Bayesian sample efficiency."""
    grid_cost = grid_search_cost(points_per_dim=7, n_dims=4)
    gains = sample_efficiency_gain()
    headers = ["strategy", "trials to target", "overhead vs 1 run"]
    rows = [
        ["grid (7 points x 4 dims)", grid_cost.trials, f"{grid_cost.overhead_vs():,.0f}x"],
        ["random", gains["random_trials"], f"{gains['random_trials']:,.0f}x"],
        ["bayesian", gains["bayesian_trials"], f"{gains['bayesian_trials']:,.0f}x"],
    ]
    return ExperimentResult(
        experiment_id="ablation-nas",
        title="NAS/HPO search cost: grid vs random vs Bayesian",
        headline={
            "grid_trials": float(grid_cost.trials),
            "published_grid_overhead": GRID_SEARCH_OVERHEAD,
            "bayes_vs_random_gain": gains["efficiency_gain"],
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: grid-search NAS can incur >3000x footprint overhead "
            "(Strubell et al.); sample-efficient methods translate "
            "directly into carbon savings — here the Bayesian optimizer "
            "reaches the target in a fraction of random search's trials."
        ),
    )


def run_compression() -> ExperimentResult:
    """TT-Rec / DHE: memory capacity vs compute trade-off."""
    table = EmbeddingTableSpec(rows=10_000_000, dim=64, lookups_per_sample=2)
    results = [uncompressed(table), tt_rec(table), dhe(table)]
    headers = [
        "technique",
        "params",
        "memory reduction",
        "lookup FLOPs",
        "training time factor",
        "extra kWh/run",
    ]
    rows = []
    for res in results:
        tradeoff = embodied_operational_tradeoff(res)
        rows.append(
            [
                res.technique,
                res.params,
                f"{res.memory_reduction:,.0f}x",
                res.lookup_flops,
                res.training_time_factor,
                tradeoff["extra_compute_kwh_per_run"],
            ]
        )
    tt = tt_rec(table)
    return ExperimentResult(
        experiment_id="ablation-compression",
        title="Memory-efficient embeddings: TT-Rec and DHE",
        headline={
            "tt_rec_memory_reduction": tt.memory_reduction,
            "tt_rec_training_overhead": tt.training_time_factor - 1.0,
            "dhe_memory_reduction": dhe(table).memory_reduction,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: TT-Rec achieves >100x memory capacity reduction with "
            "negligible training-time cost; DHE removes tables entirely at "
            "higher compute — lower embodied carbon traded against "
            "operational carbon."
        ),
    )
