"""Figure 7: the >800x LM serving-efficiency ladder."""

from __future__ import annotations

from repro.core.quantities import Power
from repro.experiments.base import ExperimentResult
from repro.optimization.ladder import LM_LADDER, LM_LADDER_MINIMUM_GAIN


def run(baseline_mw: float = 10.0) -> ExperimentResult:
    """The Figure-7 LM ladder rendered from a CPU-serving baseline."""
    baseline = Power.from_mw(baseline_mw)
    series = LM_LADDER.footprint_series(baseline)

    headers = ["after step", "power footprint", "cumulative gain"]
    rows: list[list[object]] = [["baseline (CPU serving)", str(baseline), "1.0x"]]
    for (name, power), (_, gain) in zip(series[1:], LM_LADDER.cumulative_gains()):
        rows.append([name, str(power), f"{gain:,.1f}x"])

    return ExperimentResult(
        experiment_id="fig7",
        title="LM optimization ladder: caching, GPU, fp16, fused kernels",
        headline={
            "total_gain": LM_LADDER.total_gain,
            "exceeds_800x": float(LM_LADDER.total_gain > LM_LADDER_MINIMUM_GAIN),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: 6.7x caching x 10.1x GPU x 2.4x fp16 x 5x fused "
            "kernels > 800x total (takeaways round to 810x)."
        ),
    )
