"""Figure 12: data/model scaling vs energy — the Pareto frontier."""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.models.scaling_laws import RecommendationScalingLaw, pareto_front


def run() -> ExperimentResult:
    """The Figure-12 scaling curves, star comparison, and Pareto check."""
    law = RecommendationScalingLaw()
    stars = law.star_comparison()

    # A grid of (data, model) points; tandem scaling should trace the
    # Pareto frontier of (energy/step, NE).
    scales = np.geomspace(1.0, 16.0, 9)
    grid_points = []
    labels = []
    for d in scales:
        for m in scales:
            grid_points.append(
                [law.energy_per_step_kwh(m), law.normalized_entropy(d, m)]
            )
            labels.append((float(d), float(m)))
    grid = np.array(grid_points)
    mask = pareto_front(grid)

    # How many of the frontier points scale data and model together
    # (within a factor-of-2 band around the tandem exponent)?
    tandem_like = 0
    for (d, m), keep in zip(labels, mask):
        if keep and d > 1 and m > 1:
            exponent = np.log(m) / np.log(d)
            if 0.6 <= exponent <= 2.4:
                tandem_like += 1
    frontier_size = int(np.sum(mask))

    energy_t, ne_t = law.tandem_curve(np.geomspace(1.0, 16.0, 7))
    headers = ["tandem scale s", "energy/step (kWh)", "normalized entropy"]
    rows = [
        [f"{s:.2f}", float(e), float(n)]
        for s, e, n in zip(np.geomspace(1.0, 16.0, 7), energy_t, ne_t)
    ]

    return ExperimentResult(
        experiment_id="fig12",
        title="Data/model scaling vs energy per training step",
        headline={
            "star_energy_ratio": stars["energy_ratio"],
            "star_ne_degradation": stars["ne_degradation"],
            "power_law_exponent": law.fitted_energy_exponent(),
            "tandem_fraction_of_frontier": tandem_like / max(frontier_size, 1),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: the yellow star (2x data, 2x model) uses ~4x less "
            "energy per step than the green star (8x, 16x) at only 0.004 "
            "NE cost; quality vs energy follows a power law with a tiny "
            "exponent (0.002-0.004); tandem scaling is energy-optimal."
        ),
    )
