"""Figure 5: overall (operational + embodied) footprint of ML tasks."""

from __future__ import annotations

import numpy as np

from repro.carbon.intensity import AccountingMethod
from repro.core.analyzer import FootprintAnalyzer
from repro.experiments.base import ExperimentResult
from repro.workloads.facebook import production_tasks


def run() -> ExperimentResult:
    """The Figure-5 overall footprints: operational + embodied shares."""
    location = FootprintAnalyzer()  # location-based accounting
    market = location.with_accounting(AccountingMethod.MARKET_BASED)
    tasks = production_tasks(location)

    headers = [
        "task",
        "operational (t)",
        "embodied (t)",
        "embodied share",
        "total w/ CFE (t)",
        "embodied share w/ CFE",
    ]
    rows: list[list[object]] = []
    embodied_over_operational = []
    embodied_shares = []
    green_embodied_shares = []
    for task in tasks:
        grey = location.analyze(task)
        green = market.analyze(task)
        embodied_over_operational.append(
            grey.embodied.amortized.kg / grey.operational.carbon.kg
        )
        embodied_shares.append(grey.embodied_share)
        green_embodied_shares.append(green.embodied_share)
        rows.append(
            [
                task.name,
                grey.operational.carbon.tonnes,
                grey.embodied.amortized.tonnes,
                f"{grey.embodied_share:.0%}",
                green.carbon.tonnes,
                f"{green.embodied_share:.0%}",
            ]
        )

    return ExperimentResult(
        experiment_id="fig5",
        title="Overall life-cycle footprint: operational + embodied",
        headline={
            "embodied_over_operational": float(np.mean(embodied_over_operational)),
            "embodied_share_location_based": float(np.mean(embodied_shares)),
            "embodied_share_with_cfe": float(np.mean(green_embodied_shares)),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: manufacturing carbon is roughly 50% of the "
            "location-based operational footprint (a ~30/70 embodied/"
            "operational split); with carbon-free energy the operational "
            "part collapses and embodied carbon dominates."
        ),
    )
