"""Figure 2: growth of AI data, models, and infrastructure capacity."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.models.scaling_laws import BAIDU_AUC_LAW, GPT3_BLEU_LAW
from repro.workloads.growthtrends import (
    ACCELERATOR_MEMORY_GROWTH,
    ALL_TRENDS,
    MODEL_SIZE_GROWTH,
    scaling_gap,
)


def run() -> ExperimentResult:
    """All four panels of Figure 2 as trend rows + quality-law anchors."""
    headers = ["trend", "growth factor", "span (yr)", "annual rate", "doubling (yr)"]
    rows = []
    for trend in ALL_TRENDS:
        rows.append(
            [
                trend.name,
                trend.factor,
                trend.span_years,
                trend.annual_rate,
                trend.doubling_time_years(),
            ]
        )

    bleu_at_1000x = GPT3_BLEU_LAW.quality_at(1000.0)
    auc_gain_1000x = BAIDU_AUC_LAW.quality_at(1000.0) - BAIDU_AUC_LAW.quality_at(1.0)
    return ExperimentResult(
        experiment_id="fig2",
        title="Exponential growth in AI data, models, infrastructure",
        headline={
            "bleu_at_1000x_model_size": bleu_at_1000x,
            "baidu_auc_gain_at_1000x": auc_gain_1000x,
            "model_vs_memory_scaling_gap_2yr": scaling_gap(
                MODEL_SIZE_GROWTH, ACCELERATOR_MEMORY_GROWTH, 2.0
            ),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper anchors: data 2.4x/1.9x, ingestion bandwidth 3.2x, model "
            "size 20x (2 years); training capacity 2.9x, inference capacity "
            "2.5x (1.5 years); BLEU 5->40 across 1000x model size; "
            "accelerator memory <2x per 2 years."
        ),
    )
