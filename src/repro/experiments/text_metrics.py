"""In-text quantitative claims: GPU-day percentiles, quantization,
data sampling, and data half-life."""

from __future__ import annotations

import numpy as np

from repro.dataeff.perishability import fit_half_life, measure_value_decay
from repro.dataeff.ranking import sampling_study
from repro.dataeff.synthetic import LatentFactorWorld
from repro.experiments.base import ExperimentResult
from repro.lifecycle.jobs import (
    EXPERIMENTATION_JOBS,
    PRODUCTION_TRAINING_JOBS,
    TRILLION_PARAM_THRESHOLD_GPU_DAYS,
)
from repro.models.dlrm import make_dlrm
from repro.models.quantization import (
    QuantizationScheme,
    RM2_SCHEME,
    apply_quantization,
    latency_gain_on_small_memory_device,
)


def run_gpudays(n_samples: int = 100_000, seed: int = 0) -> ExperimentResult:
    """Section II-A job-duration percentiles from the fitted models."""
    rows = []
    headers = ["population", "p50 (GPU-days)", "p99 (GPU-days)", ">500 GPU-days"]
    for model in (EXPERIMENTATION_JOBS, PRODUCTION_TRAINING_JOBS):
        samples = model.sample_gpu_days(n_samples, seed)
        rows.append(
            [
                model.name,
                float(np.percentile(samples, 50)),
                float(np.percentile(samples, 99)),
                f"{float(np.mean(samples > TRILLION_PARAM_THRESHOLD_GPU_DAYS)):.2%}",
            ]
        )
    return ExperimentResult(
        experiment_id="text-gpudays",
        title="Training workflow durations (GPU-days)",
        headline={
            "experimentation_p50": EXPERIMENTATION_JOBS.quantile(0.5),
            "experimentation_p99": EXPERIMENTATION_JOBS.quantile(0.99),
            "production_p50": PRODUCTION_TRAINING_JOBS.quantile(0.5),
            "production_p99": PRODUCTION_TRAINING_JOBS.quantile(0.99),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: experimentation p50 1.5 / p99 24 GPU-days; production "
            "training p50 2.96 / p99 125 GPU-days; a tail of "
            "trillion-parameter runs exceeds 500 GPU-days."
        ),
    )


def run_quantization() -> ExperimentResult:
    """Section III-B quantization numbers: RM2 size/bandwidth, RM1 latency."""
    rm2 = make_dlrm("RM2")
    impact = apply_quantization(rm2, RM2_SCHEME)

    rm1 = make_dlrm("RM1", n_tables=30, rows_per_table=2_000_000)
    latency_gain = latency_gain_on_small_memory_device(
        rm1, QuantizationScheme(embedding_fraction=1.0, mlp_fraction=1.0)
    )

    headers = ["metric", "value"]
    rows = [
        ["RM2 embedding share of bytes", f"{rm2.embedding_size_share:.2%}"],
        ["RM2 size reduction (partial fp16)", f"{impact.size_reduction:.1%}"],
        ["RM2 bandwidth reduction", f"{impact.bandwidth_reduction:.1%}"],
        ["RM1 latency gain on small-memory HW", f"{latency_gain:.2f}x"],
    ]
    return ExperimentResult(
        experiment_id="text-quant",
        title="Quantization: size, bandwidth, latency",
        headline={
            "rm2_size_reduction": impact.size_reduction,
            "rm2_bandwidth_reduction": impact.bandwidth_reduction,
            "rm1_latency_gain": latency_gain,
            "embedding_share": rm2.embedding_size_share,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: fp32->fp16 cut RM2 size by 15% and memory bandwidth by "
            "20.7%; quantization unblocked RM1 on power-efficient "
            "small-memory hardware with a 2.5x latency improvement; "
            "embeddings are >95% of RM bytes."
        ),
    )


def run_sampling(seed: int = 0) -> ExperimentResult:
    """SVP-CF-style study: 10% sub-sampling preserves algorithm ranking."""
    world = LatentFactorWorld(n_users=1500, n_items=500, seed=seed + 1)
    data = world.sample(100_000, seed_offset=0)
    study = sampling_study(
        data, rates=(0.1,), sampler_names=("random", "svp", "head-users"), seed=seed
    )
    headers = ["sampler", "rate", "kendall tau", "speedup", "ranking preserved"]
    rows = [
        [row.sampler, row.rate, row.tau, row.speedup, row.ranking_preserved]
        for row in study
    ]
    svp = next(r for r in study if r.sampler == "svp")
    return ExperimentResult(
        experiment_id="text-sampling",
        title="Selection-via-proxy data sampling (SVP-CF)",
        headline={
            "svp_tau_at_10pct": svp.tau,
            "svp_speedup": svp.speedup,
            "svp_ranking_preserved": float(svp.ranking_preserved),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (citing Sachdeva et al.): 10% sub-samples preserve the "
            "relative ranking of recommendation algorithms with ~5.8x "
            "average speedup; naive random sampling does not."
        ),
    )


def run_halflife(seed: int = 0) -> ExperimentResult:
    """Data perishability: fit the half-life of predictive value."""
    ages, values = measure_value_decay(seed=seed)
    model = fit_half_life(ages, values)
    headers = ["data age (yr)", "relative predictive value", "model fit"]
    rows = [
        [float(a), float(v), model.value_at_age(float(a))]
        for a, v in zip(ages, values)
    ]
    bucket_ages = np.array([0.0, 1.0, 2.0, 4.0])
    schedule = model.retention_schedule(bucket_ages, 0.5)
    return ExperimentResult(
        experiment_id="text-halflife",
        title="Data perishability: the half-life of predictive value",
        headline={
            "fitted_half_life_years": model.half_life_years,
            "storage_saving_at_half_budget": model.storage_saving(bucket_ages, 0.5),
            "oldest_bucket_retention": float(schedule[-1]),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: data loses predictive value over time (NL data "
            "half-life < 7 years); knowing the half-life enables "
            "age-dependent retention that cuts storage and ingestion "
            "carbon.  The synthetic world's drift rate sets the measured "
            "half-life; the pipeline (train on aged data, fit decay, "
            "derive a retention schedule) is the reproduction target."
        ),
    )
