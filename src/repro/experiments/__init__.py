"""Experiment modules: one per paper figure / in-text claim / ablation."""

from repro.experiments.base import ExperimentResult

__all__ = ["ExperimentResult"]
