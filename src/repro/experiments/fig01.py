"""Figure 1: ML publication growth outpaces other scientific disciplines."""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.workloads.arxiv import (
    DEFAULT_CATEGORIES,
    cumulative_by_category,
    ml_overtakes_at_month,
)


def run(months: int = 144, seed: int = 0) -> ExperimentResult:
    """Cumulative article counts per category, plus ML's crossing months."""
    curves = cumulative_by_category(months, seed=seed)
    crossings = ml_overtakes_at_month(months, seed=seed)

    sample_months = [0, months // 4, months // 2, 3 * months // 4, months - 1]
    headers = ["category"] + [f"m{m}" for m in sample_months] + ["ml overtakes at"]
    rows = []
    for cat in DEFAULT_CATEGORIES:
        series = curves[cat.name]
        crossing = crossings.get(cat.name)
        rows.append(
            [cat.name]
            + [float(series[m]) for m in sample_months]
            + ["-" if cat.name == "machine learning" else (crossing if crossing is not None else "never")]
        )

    ml = curves["machine learning"]
    others = [curves[c.name] for c in DEFAULT_CATEGORIES if c.name != "machine learning"]
    overtaken = sum(
        1 for name, cross in crossings.items() if cross is not None
    )
    # Growth-rate comparison over the final 2 years of the window.
    ml_growth = ml[-1] / ml[months - 24]
    mean_other_growth = float(
        np.mean([o[-1] / o[months - 24] for o in others])
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="Cumulative arXiv articles: ML vs other disciplines",
        headline={
            "categories_overtaken_by_ml": float(overtaken),
            "ml_2yr_cumulative_growth": ml_growth,
            "other_disciplines_mean_2yr_growth": mean_other_growth,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: 'The growth of ML is exceeding that of many other "
            "scientific disciplines.'  Reproduced shape: the ML cumulative "
            "curve overtakes most established categories within the window "
            "and grows fastest over the final two years."
        ),
    )
