"""Figure 8: Jevons' paradox — 28.5% net reduction despite growth."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.fleet.growth import JevonsModel, implied_demand_growth


def run(halves: int = 4) -> ExperimentResult:
    """The Figure-8 Jevons trajectory over `halves` half-year steps."""
    model = JevonsModel()
    actual = model.power_trajectory(halves)
    counterfactual = model.counterfactual_trajectory(halves)

    headers = ["half-year", "actual power (rel.)", "no-optimization power (rel.)"]
    rows = [
        [f"t={i}", float(actual[i]), float(counterfactual[i])]
        for i in range(halves + 1)
    ]
    return ExperimentResult(
        experiment_id="fig8",
        title="Jevons' paradox: efficiency vs demand growth over 2 years",
        headline={
            "net_two_year_reduction": model.net_reduction(halves),
            "avoided_vs_counterfactual": model.avoided_power_fraction(halves),
            "implied_demand_growth_per_half": implied_demand_growth(),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: 20% efficiency gains per half compound against demand "
            "growth to a net 28.5% operational power reduction over two "
            "years; without the optimizations the fleet would draw ~2.4x "
            "more."
        ),
    )
