"""Figure 9: utilization and renewables vs total carbon; embodied dominates."""

from __future__ import annotations

import numpy as np

from repro.core.scenario import Scenario, evaluate_work, renewable_variant

from repro.experiments.base import ExperimentResult


def run(busy_device_hours: float = 100_000.0) -> ExperimentResult:
    """The Figure-9 utilization x renewables sweep of a fixed work quantum."""
    utilizations = np.arange(0.2, 0.85, 0.1)
    base = Scenario()

    headers = [
        "utilization",
        "grid total (t)",
        "grid embodied share",
        "green total (t)",
        "green embodied share",
    ]
    rows = []
    grid_totals = {}
    green_totals = {}
    for u in utilizations:
        grey = evaluate_work(
            busy_device_hours, base.but(utilization=float(u), name=f"u={u:.0%}")
        )
        green = evaluate_work(
            busy_device_hours, renewable_variant(base.but(utilization=float(u)))
        )
        grid_totals[round(float(u), 2)] = grey.total.tonnes
        green_totals[round(float(u), 2)] = green.total.tonnes
        rows.append(
            [
                f"{u:.0%}",
                grey.total.tonnes,
                f"{grey.embodied_share:.0%}",
                green.total.tonnes,
                f"{green.embodied_share:.0%}",
            ]
        )

    reduction_30_to_80 = grid_totals[0.3] / grid_totals[0.8]
    renewable_gain_at_80 = grid_totals[0.8] / green_totals[0.8]
    green_at_80 = evaluate_work(
        busy_device_hours, renewable_variant(base.but(utilization=0.8))
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Utilization and carbon-free energy vs total footprint",
        headline={
            "reduction_30_to_80_util": reduction_30_to_80,
            "renewable_gain_at_80_util": renewable_gain_at_80,
            "embodied_share_green_80": green_at_80.embodied_share,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: raising GPU utilization to 80% cuts the overall "
            "footprint ~3x; renewable supply another ~2x; embodied carbon "
            "then dominates."
        ),
    )
