"""Figure 3: phase capacity splits and datacenter electricity growth.

(a) fleet AI power capacity 10:20:70 over Experimentation/Training/
Inference; (b) RM1 end-to-end energy 31:29:40 over Data/Exp+Training/
Inference; (c) fleet electricity reaching 7.17M MWh in 2020.
"""

from __future__ import annotations

from repro.core.quantities import Power
from repro.experiments.base import ExperimentResult
from repro.fleet.simulator import datacenter_electricity_series
from repro.lifecycle.cadence import Cadence, RetrainingPolicy
from repro.lifecycle.datapipeline import DataPipelineSpec
from repro.lifecycle.pipeline import FleetCapacitySplit, PipelineSpec


def rm1_pipeline() -> PipelineSpec:
    """An RM1-shaped pipeline calibrated to the paper's 31:29:40 split.

    The sizing is solved against the library's own power model: a
    500-device serving tier, monthly retraining with an equal online
    stream, a research sweep at lower utilization, and an
    exabyte-fraction feature store with its ingestion tier.
    """
    return PipelineSpec(
        name="RM1",
        data=DataPipelineSpec(stored_petabytes=120.0, ingestion_gb_per_s=213.0),
        experimentation_gpu_hours_per_year=558_800.0,
        training_gpu_hours_per_run=107_300.0,
        retraining=RetrainingPolicy(Cadence.MONTHLY, online_fraction_of_offline=1.0),
        inference_devices=500.0,
    )


def run() -> ExperimentResult:
    """The Figure-3 splits: capacity 10:20:70, RM1 31:29:40, 7.17M MWh."""
    # (a) capacity split
    split = FleetCapacitySplit()
    allocation = split.allocate(Power.from_mw(100.0))

    # (b) RM1 energy split
    pipeline = rm1_pipeline()
    energy_split = pipeline.energy_split()

    # (c) electricity growth
    series = datacenter_electricity_series()

    headers = ["quantity", "value"]
    rows: list[list[object]] = [
        ["capacity: experimentation", f"{split.experimentation:.0%}"],
        ["capacity: training", f"{split.training:.0%}"],
        ["capacity: inference", f"{split.inference:.0%}"],
    ]
    rows += [
        [f"RM1 energy: {phase}", f"{share:.1%}"]
        for phase, share in energy_split.items()
    ]
    rows += [
        [f"fleet electricity {year}", f"{energy.mwh / 1e6:.2f}M MWh"]
        for year, energy in series.items()
    ]

    return ExperimentResult(
        experiment_id="fig3",
        title="Phase splits and datacenter electricity growth",
        headline={
            "rm1_data_share": energy_split["data"],
            "rm1_training_share": energy_split["experimentation/training"],
            "rm1_inference_share": energy_split["inference"],
            "electricity_2020_million_mwh": series[2020].mwh / 1e6,
            "inference_capacity_share": split.inference,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: capacity 10:20:70 (Exp:Train:Inf); RM1 energy 31:29:40 "
            "(Data:Exp/Train:Inf); 7.17M MWh fleet electricity in 2020."
        ),
    )
