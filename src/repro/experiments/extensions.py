"""Extension experiments: the paper's forward-looking directions built out.

Each of these operationalizes a claim the paper states qualitatively
(Sections I, II-B, III-C, IV-B/C and the appendix) with a quantitative
ablation: MoE trade-offs, GHG scopes, geo scheduling, FL client
selection, idle-state management, carbon-aware NAS, green leaderboards,
predictive tracking, and capacity planning.
"""

from __future__ import annotations

import numpy as np

from repro.carbon.grid import synthesize_grid_trace
from repro.carbon.scopes import ai_embodied_growth, hyperscaler_inventory
from repro.core.metrics import Leaderboard, RankingPolicy, Submission
from repro.core.quantities import Carbon, Energy
from repro.edge.selection import compare_strategies
from repro.experiments.base import ExperimentResult
from repro.fleet.capacity_planning import consolidation_study, plan_capacity
from repro.fleet.idle import IdleGovernor, idle_saving_sweep, simulate_idle_management
from repro.models.moe import (
    SWITCH_LIKE,
    compare_sparse_vs_dense,
    compare_vs_quality_matched_dense,
)
from repro.optimization.monas import carbon_aware_gain
from repro.scheduling.carbon_aware import schedule_carbon_aware
from repro.scheduling.geo import default_regions, schedule_geo
from repro.scheduling.jobs import synthesize_jobs
from repro.telemetry.predict import (
    EpochMeasurement,
    abort_recommendation,
    predict_training_cost,
    recommend_start_hour,
)


def run_moe() -> ExperimentResult:
    """Sparsely-activated models: operational win vs embodied cost."""
    capacity_matched = compare_sparse_vs_dense(SWITCH_LIKE)
    quality_matched = compare_vs_quality_matched_dense(SWITCH_LIKE)

    headers = ["comparison", "op. saving", "embodied ratio (sparse/dense)"]
    rows = [
        [
            "vs dense of equal total capacity",
            f"{capacity_matched.operational_saving:.1%}",
            f"{capacity_matched.embodied_ratio:.1f}x",
        ],
        [
            "vs smaller dense of equal quality",
            f"{quality_matched.operational_saving:.1%}",
            f"{quality_matched.embodied_ratio:.1f}x",
        ],
    ]
    return ExperimentResult(
        experiment_id="ext-moe",
        title="Sparsely-activated models: the two-sided carbon trade",
        headline={
            "sparsity_gain": SWITCH_LIKE.sparsity_gain,
            "operational_saving_capacity_matched": capacity_matched.operational_saving,
            "embodied_ratio_quality_matched": quality_matched.embodied_ratio,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: sparse activation achieves 'higher accuracy at lower "
            "operational energy footprint' (Switch Transformer vs GPT-3 in "
            "Fig 4) but 'can incur higher embodied carbon footprint from "
            "the increase in the system resource requirement'."
        ),
    )


def run_scopes() -> ExperimentResult:
    """GHG scope inventory: Scope 3 dominance and AI's growth pressure."""
    inventory = hyperscaler_inventory()
    grown = ai_embodied_growth(inventory, ai_capital_share=0.5, capacity_growth_factor=2.9)

    headers = ["quantity", "tCO2e"]
    rows = [
        ["scope 1", inventory.scope1.tonnes],
        ["scope 2 (location-based)", inventory.scope2_location.tonnes],
        ["scope 2 (market-based)", inventory.scope2_market.tonnes],
        ["scope 3 total", inventory.scope3_total.tonnes],
        ["  of which capital goods", inventory.capital_goods().tonnes],
        ["capital goods after 2.9x AI growth", grown.tonnes],
    ]
    return ExperimentResult(
        experiment_id="ext-scopes",
        title="GHG scopes: value-chain (embodied) carbon dominates",
        headline={
            "scope3_share_market_based": inventory.scope3_share(market_based=True),
            "scope3_share_location_based": inventory.scope3_share(market_based=False),
            "capital_goods_growth_factor": grown.kg / inventory.capital_goods().kg,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (Section II-B): 'more than 50% of Facebook's emissions "
            "owe to its value chain — Scope 3'; renewable matching zeroes "
            "market-based Scope 2, making capital goods (where AI servers "
            "live) the dominant and fastest-growing slice."
        ),
    )


def run_geo() -> ExperimentResult:
    """Cross-datacenter carbon-aware placement vs single-region shifting."""
    horizon = 168
    regions = default_regions(horizon, seed=0)
    jobs = synthesize_jobs(40, horizon, seed=0)
    home = regions[0]

    single = schedule_carbon_aware(jobs, home.grid, horizon, home.capacity_kw)
    geo = schedule_geo(jobs, regions, horizon)

    headers = ["strategy", "carbon (t)"]
    rows = [
        ["single-region time shifting", single.total_carbon.tonnes],
        ["geo + time shifting", geo.total_carbon.tonnes],
    ]
    for region in regions:
        rows.append(
            [f"  energy share: {region.name}", geo.region_share(region.name)]
        )
    saving = 1.0 - geo.total_carbon.kg / single.total_carbon.kg
    return ExperimentResult(
        experiment_id="ext-geo",
        title="Carbon-aware scheduling across datacenters",
        headline={
            "geo_vs_single_region_saving": saving,
            "clean_region_energy_share": geo.region_share("wind-north")
            + geo.region_share("solar-west"),
            "deadline_misses": float(geo.deadline_misses),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (IV-C): scheduling 'in and across datacenters' exploits "
            "complementary renewable patterns; work migrates to the wind- "
            "and solar-heavy regions."
        ),
    )


def run_fl_selection() -> ExperimentResult:
    """Heterogeneity-aware FL client selection (AutoFL direction)."""
    outcomes = compare_strategies(rounds=200, cohort_size=64, seed=0)
    headers = ["strategy", "energy (kWh)", "mean round (s)", "participation gini"]
    rows = [
        [o.strategy, o.total_energy.kwh, o.mean_round_time_s, o.participation_gini]
        for o in outcomes.values()
    ]
    random_e = outcomes["random"].total_energy.kwh
    aware_e = outcomes["energy-aware"].total_energy.kwh
    return ExperimentResult(
        experiment_id="ext-flselect",
        title="Energy-aware FL client selection",
        headline={
            "energy_saving_vs_random": 1.0 - aware_e / random_e,
            "round_time_vs_random": outcomes["energy-aware"].mean_round_time_s
            / outcomes["random"].mean_round_time_s,
            "fairness_cost_gini": outcomes["energy-aware"].participation_gini
            - outcomes["random"].participation_gini,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (IV-C): 'optimizing the overall energy efficiency of FL "
            "... is an important first step' — heterogeneity-aware "
            "selection cuts round energy several-fold vs random selection, "
            "at a participation-fairness cost the gini column makes "
            "visible."
        ),
    )


def run_idle() -> ExperimentResult:
    """Processor idle-state management savings."""
    result = simulate_idle_management(IdleGovernor(), mean_idle_ms=50.0)
    sweep = idle_saving_sweep(np.array([2.0, 10.0, 50.0, 200.0, 1000.0]))
    headers = ["mean idle (ms)", "energy saving"]
    rows = [[m, s] for m, s in sweep]
    return ExperimentResult(
        experiment_id="ext-idle",
        title="Idle-state management of static power",
        headline={
            "saving_at_50ms_idle": result.energy_saving_fraction,
            "slo_violation_rate": result.violation_rate,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (III-C): 'static power consumption plays a non-trivial "
            "role ... motivates more effective processor idle state "
            "management' — a menu governor recovers most of the deep-sleep "
            "saving once idle intervals exceed the break-even residency."
        ),
    )


def run_carbon_nas() -> ExperimentResult:
    """Carbon-aware multi-objective search vs accuracy-only search."""
    gains = carbon_aware_gain(seed=0)
    headers = ["workflow", "deployed error", "energy/inference (J)"]
    rows = [
        ["accuracy-only", gains["accuracy_only_error"], gains["accuracy_only_energy"]],
        [
            f"carbon-aware (within {gains['error_slack']:.3f} error)",
            gains["accuracy_only_error"] + gains["error_slack"],
            gains["carbon_aware_energy"],
        ],
    ]
    return ExperimentResult(
        experiment_id="ext-carbonnas",
        title="Energy as a search objective (multi-objective NAS)",
        headline={
            "energy_saving_factor": gains["energy_saving_factor"],
            "error_slack": gains["error_slack"],
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (IV-B): incorporating energy 'directly into the cost "
            "function' surfaces designs with most of the accuracy at a "
            "fraction of the energy — savings the accuracy-only workflow "
            "never sees."
        ),
    )


def run_leaderboard() -> ExperimentResult:
    """Green leaderboards: efficiency as an evaluation criterion."""
    board = Leaderboard(
        (
            Submission("mega-dense", 0.920, Energy.from_mwh(1200.0), Carbon.from_tonnes(515.0)),
            Submission("sparse-moe", 0.918, Energy.from_mwh(180.0), Carbon.from_tonnes(77.0)),
            Submission("distilled", 0.905, Energy.from_mwh(25.0), Carbon.from_tonnes(10.7)),
            Submission("efficient-base", 0.893, Energy.from_mwh(6.0), Carbon.from_tonnes(2.6)),
        )
    )
    budget = Carbon.from_tonnes(100.0)
    headers = ["policy", "winner", "winner quality"]
    rows = []
    for policy, kwargs in (
        (RankingPolicy.QUALITY_ONLY, {}),
        (RankingPolicy.QUALITY_PER_KG, {}),
        (RankingPolicy.QUALITY_AT_BUDGET, {"carbon_budget": budget}),
    ):
        winner = board.winner(policy, **kwargs)
        rows.append([policy.value, winner.name, winner.quality])
    return ExperimentResult(
        experiment_id="ext-leaderboard",
        title="Carbon-normalized leaderboards",
        headline={
            "reranked_entries_per_kg": float(
                board.ranking_change(RankingPolicy.QUALITY_PER_KG)
            ),
            "budget_winner_quality_gap": board.winner().quality
            - board.winner(RankingPolicy.QUALITY_AT_BUDGET, budget).quality,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (V-A, Appendix): leaderboards lack 'normalization "
            "factors'; once quality-per-kg or a carbon budget ranks the "
            "board, the winner changes while giving up little quality."
        ),
    )


def run_predictive_tracking() -> ExperimentResult:
    """Carbontracker-style early prediction + green rescheduling."""
    rng = np.random.default_rng(0)
    measurements = [
        EpochMeasurement(i, Energy(2.0 + 0.04 * i + rng.normal(0, 0.03)), 1800.0)
        for i in range(5)
    ]
    prediction = predict_training_cost(measurements, planned_epochs=60)
    grid = synthesize_grid_trace(168, seed=2)
    start, now_carbon, best_carbon = recommend_start_hour(prediction, grid)
    abort = abort_recommendation(prediction, Carbon(50.0))

    headers = ["quantity", "value"]
    rows = [
        ["measured epochs", prediction.measured_epochs],
        ["predicted energy (kWh)", prediction.predicted_energy.kwh],
        ["prediction band (kWh)", f"{prediction.predicted_energy_low.kwh:.1f}"
         f" .. {prediction.predicted_energy_high.kwh:.1f}"],
        ["predicted carbon (kg)", prediction.predicted_carbon.kg],
        ["carbon if started now (kg)", now_carbon.kg],
        ["carbon at recommended hour (kg)", best_carbon.kg],
        ["recommended start hour", start],
        ["over 50 kg budget?", abort["over_budget"]],
    ]
    return ExperimentResult(
        experiment_id="ext-predict",
        title="Predictive emission tracking and green rescheduling",
        headline={
            "predicted_kwh": prediction.predicted_energy.kwh,
            "reschedule_saving": 1.0 - best_carbon.kg / now_carbon.kg,
            "over_budget": float(abort["over_budget"]),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (V-A): easy-to-adopt telemetry should act *before* the "
            "cost is sunk — five measured epochs predict the full run and "
            "pick a cleaner start window."
        ),
    )


def run_multitenancy() -> ExperimentResult:
    """Accelerator multi-tenancy: utilization vs interference trade."""
    from repro.fleet.multitenancy import best_tenancy, tenancy_study

    rows_data = tenancy_study(n_workloads=800)
    headers = ["max tenants", "devices", "mean util", "op (t)", "embodied (t)", "total (t)"]
    rows = [
        [
            r.max_tenants,
            r.n_devices,
            r.mean_utilization,
            r.operational.tonnes,
            r.embodied.tonnes,
            r.total.tonnes,
        ]
        for r in rows_data
    ]
    dedicated = rows_data[0]
    best = best_tenancy(rows_data)
    return ExperimentResult(
        experiment_id="ext-tenancy",
        title="Accelerator virtualization and multi-tenancy",
        headline={
            "best_tenancy": float(best.max_tenants),
            "device_reduction": 1.0 - best.n_devices / dedicated.n_devices,
            "total_carbon_saving": 1.0 - best.total.kg / dedicated.total.kg,
            "utilization_dedicated": dedicated.mean_utilization,
            "utilization_shared": best.mean_utilization,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (IV-C): consolidation 'amortiz[es] the upfront embodied "
            "carbon footprint ... at the expense of potential operational "
            "carbon footprint increase' — packing Figure-10-shaped "
            "workloads lifts utilization from ~40% toward ~100% and cuts "
            "devices >50%, with interference bounding how far to share."
        ),
    )


def run_forecast() -> ExperimentResult:
    """Forecast-driven carbon-aware scheduling: error vs realized saving."""
    from repro.carbon.forecast import (
        diurnal_forecast,
        forecast_mape,
        forecast_quality_sweep,
        persistence_forecast,
    )

    truth = synthesize_grid_trace(168, seed=9)
    jobs = synthesize_jobs(25, 168, seed=9)
    sweep = forecast_quality_sweep(jobs, truth, 168)

    headers = ["forecast", "MAPE", "realized saving"]
    rows = [
        [f"oracle + {row['noise']:.0%} noise", row["mape"], row["realized_saving"]]
        for row in sweep
    ]
    rows.append(
        [
            "persistence (last day)",
            forecast_mape(persistence_forecast(truth, 168), truth),
            "-",
        ]
    )
    rows.append(
        [
            "diurnal climatology",
            forecast_mape(diurnal_forecast(truth, 168), truth),
            "-",
        ]
    )
    oracle = sweep[0]["realized_saving"]
    worst = sweep[-1]["realized_saving"]
    return ExperimentResult(
        experiment_id="ext-forecast",
        title="Carbon-intensity forecasting for scheduling",
        headline={
            "oracle_saving": oracle,
            "saving_at_worst_forecast": worst,
            "saving_retained_at_worst": worst / oracle if oracle else 0.0,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (IV-C): schedulers must 'predict and exploit' "
            "intermittent generation.  The diurnal solar signal is strong "
            "enough that even heavily-degraded forecasts retain most of "
            "the oracle's saving — carbon-aware shifting is "
            "forecast-robust."
        ),
    )


def run_uncertainty() -> ExperimentResult:
    """Monte-Carlo uncertainty and tornado sensitivity of a footprint."""
    from repro.core.uncertainty import monte_carlo_footprint, tornado_sensitivity

    device_hours = 100_000.0
    mc = monte_carlo_footprint(device_hours)
    bars = tornado_sensitivity(device_hours)

    headers = ["parameter", "low (t)", "high (t)", "swing (t)"]
    rows = [
        [b.parameter, b.low_kg / 1e3, b.high_kg / 1e3, b.swing_kg / 1e3]
        for b in bars
    ]
    return ExperimentResult(
        experiment_id="ext-uncertainty",
        title="Uncertainty and sensitivity of footprint estimates",
        headline={
            "mean_tonnes": mc.mean_kg / 1e3,
            "p05_tonnes": mc.p05_kg / 1e3,
            "p95_tonnes": mc.p95_kg / 1e3,
            "relative_spread": mc.relative_spread,
            "dominant_is_intensity": float(
                bars[0].parameter == "intensity_kg_per_kwh"
            ),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (Appendix): 'datacenter infrastructures, hardware "
            "architectures, energy sources can perturb the final measure "
            "easily' — under the paper's own assumption ranges the 90% "
            "interval spans ~70% of the mean, and the grid's carbon "
            "intensity dominates the tornado."
        ),
    )


def run_serving_mechanics() -> ExperimentResult:
    """Figure 7's first rungs derived from cache and device models."""
    from repro.workloads.serving import ServingWorkload, derived_ladder_gains

    gains = derived_ladder_gains()
    workload = ServingWorkload()
    sweep_rows = []
    for fraction in (0.005, 0.02, 0.05, 0.15, 0.40):
        sweep_rows.append(
            [f"{fraction:.1%} of catalog cached", workload.caching_gain(fraction)]
        )

    headers = ["configuration", "power gain"]
    rows = sweep_rows + [
        ["derived caching rung (sized to 6.7x)", gains["caching"]],
        ["derived GPU rung", gains["gpu"]],
        ["precision (anchored)", gains["precision"]],
        ["fused kernels (anchored)", gains["fused_kernels"]],
        ["derived ladder total", gains["total"]],
    ]
    return ExperimentResult(
        experiment_id="ext-serving",
        title="Serving mechanics: deriving the caching and GPU rungs",
        headline={
            "derived_caching_gain": gains["caching"],
            "cache_fraction_needed": gains["cache_fraction"],
            "derived_gpu_gain": gains["gpu"],
            "derived_total": gains["total"],
        },
        headers=headers,
        rows=rows,
        notes=(
            "Che's-approximation LRU hit ratios over Zipf traffic turn "
            "Figure 7's 'platform-level caching' into a sizing question "
            "(how much of the embedding catalog must live in DRAM/Flash "
            "for 6.7x), and tokens-per-joule device ratios yield the "
            "~10x GPU rung; the derived ladder lands near the paper's "
            ">800x."
        ),
    )


def run_sdc() -> ExperimentResult:
    """Silent-data-corruption injection into real recommender training."""
    from repro.dataeff.synthetic import LatentFactorWorld
    from repro.reliability.sdc_injection import sdc_study

    world = LatentFactorWorld(n_users=500, n_items=300, seed=2)
    data = world.sample(20_000, seed_offset=0)
    results = sdc_study(data, fault_rates=(0.0, 2.0), seed=0)
    by_label = {r.label: r for r in results}

    headers = ["run", "NDCG@10", "cells corrupted", "rows repaired"]
    rows = [
        [r.label, r.ndcg, r.cells_corrupted, r.rows_repaired] for r in results
    ]
    clean = by_label["fault-free"].ndcg
    faulty = by_label["unprotected"].ndcg
    guarded = by_label["guarded"].ndcg
    return ExperimentResult(
        experiment_id="ext-sdc",
        title="SDC fault injection and algorithmic fault tolerance",
        headline={
            "clean_ndcg": clean,
            "accuracy_lost_to_sdc": (clean - faulty) / clean,
            "accuracy_recovered_by_guard": (guarded - faulty) / max(clean - faulty, 1e-9),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (Appendix B): aging hardware causes silent data "
            "corruption and 'model accuracy degradation'; a norm-guard "
            "(algorithmic fault tolerance) detects implausible parameter "
            "rows and recovers most of the lost accuracy — extending "
            "hardware life without decommissioning."
        ),
    )


def run_ingestion() -> ExperimentResult:
    """The disaggregation gain derived from pipeline queue mechanics."""
    from repro.lifecycle.ingestion_sim import (
        IngestionPipelineSpec,
        derive_disaggregation_gain,
        simulate_pipeline,
    )

    spec = IngestionPipelineSpec()
    derived = derive_disaggregation_gain(spec)

    headers = ["workers", "throughput (batch/s)", "trainer utilization"]
    rows = []
    for n in (2, spec.colocated_worker_limit, 7, derived.disaggregated.n_workers, 16):
        result = simulate_pipeline(spec, n)
        rows.append([n, result.throughput_batches_per_s, result.trainer_utilization])

    return ExperimentResult(
        experiment_id="ext-ingestion",
        title="Data-ingestion pipeline: deriving the disaggregation gain",
        headline={
            "derived_throughput_gain": derived.throughput_gain,
            "colocated_utilization": derived.colocated.trainer_utilization,
            "workers_to_saturate": float(derived.disaggregated.n_workers),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper/[44]: co-located ingestion starves accelerators (spare "
            "host cores cap transform workers); scaling a disaggregated "
            "transform tier until the trainer saturates derives a gain of "
            "the same magnitude as the published +56%."
        ),
    )


def run_memory_pooling() -> ExperimentResult:
    """Rack-level memory disaggregation: stranded DRAM reclaimed."""
    from repro.fleet.memory_pooling import pooling_scaling_curve, pooling_study

    result = pooling_study()
    curve = pooling_scaling_curve()

    headers = ["rack size (servers)", "DRAM saving from pooling"]
    rows: list[list[object]] = [[n, saving] for n, saving in curve]
    rows.append(["stranded fraction (dedicated, 32)", result.stranded_fraction_dedicated])
    rows.append(["embodied avoided per rack (kg)", result.embodied_avoided.kg])

    return ExperimentResult(
        experiment_id="ext-mempool",
        title="Memory disaggregation: pooling stranded DRAM",
        headline={
            "dram_saving_fraction": result.dram_saving_fraction,
            "stranded_fraction_dedicated": result.stranded_fraction_dedicated,
            "embodied_avoided_kg_per_rack": result.embodied_avoided.kg,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (Appendix B): 'datacenter infrastructure "
            "disaggregation' — per-server peak provisioning strands ~2/3 "
            "of DRAM; pooling at rack scale follows the summed peak "
            "instead, cutting provisioned DRAM >50% and avoiding its "
            "manufacturing carbon (DRAM is among the dirtiest kg/GB "
            "components)."
        ),
    )


def run_bom() -> ExperimentResult:
    """Design-time embodied carbon: server bills of materials."""
    from repro.carbon.components import (
        AI_TRAINING_BOM,
        CPU_COMPUTE_BOM,
        STORAGE_BOM,
        memory_technology_comparison,
    )

    headers = ["design", "total embodied (kg)", "dominant component"]
    rows = [
        [bom.name, bom.total().kg, bom.dominant_component()]
        for bom in (CPU_COMPUTE_BOM, AI_TRAINING_BOM, STORAGE_BOM)
    ]
    memory = memory_technology_comparison(512.0)
    rows.append(["512 GB as DRAM", memory["dram_kg"], "-"])
    rows.append(["512 GB as HBM", memory["hbm_kg"], "-"])
    rows.append(["512 GB as NAND", memory["nand_kg"], "-"])

    return ExperimentResult(
        experiment_id="ext-bom",
        title="Component-level embodied carbon (design-time calculator)",
        headline={
            "ai_server_total_kg": AI_TRAINING_BOM.total().kg,
            "ai_vs_cpu_ratio": AI_TRAINING_BOM.total().kg
            / CPU_COMPUTE_BOM.total().kg,
            "hbm_over_nand_per_gb": memory["hbm_over_nand"],
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (IV-C): memory/storage technologies differ by orders of "
            "magnitude in embodied carbon per GB (here HBM ~26x NAND); an "
            "HBM-heavy AI training server embodies ~6x a CPU server, and "
            "its dominant BOM line is the memory, not the logic."
        ),
    )


def run_autoscale() -> ExperimentResult:
    """Auto-scaling + opportunistic training: capacity without new servers."""
    from repro.carbon.embodied import AmortizationPolicy, GPU_SERVER_EMBODIED
    from repro.fleet.autoscale import autoscale_tier, opportunistic_training_hours
    from repro.workloads.traces import diurnal_demand

    tier_size = 10_000
    result = autoscale_tier(diurnal_demand(168, seed=0), tier_size)
    freed_server_hours_per_week = opportunistic_training_hours(result)
    freed_per_year = freed_server_hours_per_week * 52.18

    # Embodied carbon avoided: that training capacity would otherwise be
    # bought as dedicated servers (amortized at the fleet policy).
    policy = AmortizationPolicy()
    avoided = Carbon(
        policy.rate_per_utilized_hour(GPU_SERVER_EMBODIED) * freed_per_year
    )

    headers = ["quantity", "value"]
    rows = [
        ["web tier size", tier_size],
        ["peak freed fraction", f"{result.peak_freed_fraction:.1%}"],
        ["mean freed fraction", f"{result.mean_freed_fraction:.1%}"],
        ["tier energy saving", f"{result.energy_saving_fraction:.1%}"],
        ["freed server-hours / week", freed_server_hours_per_week],
        ["embodied avoided / year (t)", avoided.tonnes],
    ]
    return ExperimentResult(
        experiment_id="ext-autoscale",
        title="Auto-scaling freeing capacity for opportunistic training",
        headline={
            "peak_freed_fraction": result.peak_freed_fraction,
            "tier_energy_saving": result.energy_saving_fraction,
            "embodied_avoided_tonnes_per_year": avoided.tonnes,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (III-C): Auto-Scaling frees 'up to 25% of the web "
            "tier's machines' off-peak, providing 'opportunistic server "
            "capacity ... including offline ML training' — training cycles "
            "served on freed capacity avoid buying (and manufacturing) "
            "dedicated servers."
        ),
    )


def run_sharding() -> ExperimentResult:
    """Embedding sharding: compression cuts devices and communication."""
    from repro.models.dlrm import DLRMSpec, EmbeddingTableSpec, make_dlrm
    from repro.models.sharding import sharding_study

    model = make_dlrm("RM", n_tables=40, rows_per_table=20_000_000, dim=96)
    compressed_tables = tuple(
        EmbeddingTableSpec(
            max(1, t.rows // 100), t.dim, t.lookups_per_sample, t.bytes_per_element
        )
        for t in model.tables
    )
    compressed = DLRMSpec(
        "RM-ttrec", compressed_tables, model.bottom_mlp, model.top_mlp
    )
    rows_data = sharding_study(model, compressed)

    headers = ["variant", "devices", "imbalance", "all-to-all GB/step", "comm s/step"]
    rows = [
        [r.variant, r.n_devices, r.imbalance, r.alltoall_gb_per_step, r.step_comm_time_s]
        for r in rows_data
    ]
    base, comp = rows_data
    return ExperimentResult(
        experiment_id="ext-sharding",
        title="Embedding-table sharding and the compression dividend",
        headline={
            "uncompressed_devices": float(base.n_devices),
            "compressed_devices": float(comp.n_devices),
            "device_reduction": 1.0 - comp.n_devices / base.n_devices,
            "comm_eliminated_gb_per_step": base.alltoall_gb_per_step
            - comp.alltoall_gb_per_step,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (IV-B): scaling relies on 'sharding' and memory-"
            "efficient architectures.  A 100x-compressed (TT-Rec-class) "
            "model fits where the raw model needed a 14-device group, "
            "eliminating the per-step embedding all-to-all — fewer devices "
            "(embodied) and shorter steps (operational)."
        ),
    )


def run_time_varying() -> ExperimentResult:
    """Hour-resolved vs static-intensity accounting of one run."""
    from repro.telemetry.time_varying import account_constant_run, best_and_worst_start

    grid = synthesize_grid_trace(168, seed=7)
    accountant = account_constant_run(grid, power_kw=100.0, duration_hours=10.0, start_hour=30)
    spread = best_and_worst_start(grid, 100.0, 10.0)

    headers = ["quantity", "value"]
    rows = [
        ["time-resolved carbon (kg)", accountant.carbon().kg],
        ["static-average carbon (kg)", accountant.static_carbon().kg],
        ["attribution error", f"{accountant.attribution_error():.1%}"],
        ["best start hour", spread["best_start_hour"]],
        ["best start (kg)", spread["best_kg"]],
        ["worst start (kg)", spread["worst_kg"]],
    ]
    return ExperimentResult(
        experiment_id="ext-tvtracking",
        title="Time-varying-intensity emission accounting",
        headline={
            "attribution_error": accountant.attribution_error(),
            "worst_over_best_start": spread["worst_over_best"],
        },
        headers=headers,
        rows=rows,
        notes=(
            "Static regional-average intensity misattributes a run's "
            "carbon on a renewable-heavy grid; hour-resolved accounting "
            "also shows the same run emits ~1.8x more started at the "
            "worst hour than the best — the single-run face of "
            "carbon-aware scheduling (Section IV-C)."
        ),
    )


def run_hardware_choice() -> ExperimentResult:
    """CPU/GPU/FPGA/ASIC: efficiency vs flexibility vs embodied carbon."""
    from repro.fleet.hardware_choice import (
        ASIC_PLATFORM,
        GPU_PLATFORM,
        break_even_lifetime,
        platform_ranking,
    )

    headers = ["deployment lifetime", "best", "2nd", "kg/work (best)", "kg/work (CPU)"]
    rows = []
    for years in (1.0, 4.0, 8.0, 12.0):
        ranking = platform_ranking(years)
        by_name = dict(ranking)
        rows.append(
            [
                f"{years:g} yr",
                ranking[0][0],
                ranking[1][0],
                ranking[0][1],
                by_name["CPU"],
            ]
        )
    crossover = break_even_lifetime(ASIC_PLATFORM, GPU_PLATFORM)
    slow_churn = break_even_lifetime(
        ASIC_PLATFORM, GPU_PLATFORM, algorithm_cadence_years=4.0
    )
    short_ranking = platform_ranking(4.0)
    return ExperimentResult(
        experiment_id="ext-hwchoice",
        title="General-purpose vs specialized hardware for AI",
        headline={
            "best_at_4yr_is_asic": float(short_ranking[0][0] == "ASIC"),
            "asic_gpu_crossover_years": crossover if crossover is not None else -1.0,
            "slow_churn_crossover_years": slow_churn if slow_churn is not None else -1.0,
            "gpu_vs_cpu_gain_at_4yr": dict(short_ranking)["CPU"]
            / dict(short_ranking)["GPU"],
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (IV-C): 'the optimal point depends on the compounding "
            "factor of operational efficiency improvement over generations "
            "of ML algorithms/models, deployment lifetime and embodied "
            "carbon footprint' — the ASIC wins short deployments, loses to "
            "the flexible GPU past the crossover lifetime under fast "
            "algorithm churn, and never loses under slow churn."
        ),
    )


def run_async_fl() -> ExperimentResult:
    """Sync vs async federated learning (the Papaya systems idea)."""
    from repro.edge.async_fl import sync_vs_async
    from repro.edge.selection import synthesize_population

    population = synthesize_population(seed=0)
    outcomes = sync_vs_async(population, target_updates=6400, seed=0)
    sync = outcomes["sync"]
    asyn = outcomes["async"]

    headers = ["mode", "wall-clock (h)", "energy (kWh)", "mean staleness", "p95 staleness"]
    rows = [
        [o.mode, o.wall_clock_s / 3600.0, o.total_energy.kwh, o.mean_staleness, o.p95_staleness]
        for o in (sync, asyn)
    ]
    return ExperimentResult(
        experiment_id="ext-asyncfl",
        title="Synchronous vs asynchronous federated learning",
        headline={
            "wall_clock_speedup": sync.wall_clock_s / asyn.wall_clock_s,
            "energy_ratio_async_vs_sync": asyn.total_energy.kwh
            / sync.total_energy.kwh,
            "async_mean_staleness": asyn.mean_staleness,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper cites Papaya [90]: asynchronous aggregation removes the "
            "straggler gate — several-fold wall-clock speedup at matched "
            "update counts and near-identical device energy, paid for in "
            "update staleness."
        ),
    )


def run_capacity() -> ExperimentResult:
    """Capacity growth -> embodied carbon, and the efficiency of scale."""
    plan = plan_capacity(initial_servers=10_000, horizon_years=3)
    consolidation = consolidation_study()

    headers = ["year", "servers", "IT power (MW)", "embodied added (t)"]
    rows = [
        [
            int(y),
            int(s),
            float(p),
            plan.embodied_in_year(i).tonnes,
        ]
        for i, (y, s, p) in enumerate(
            zip(plan.years, plan.servers_total, plan.it_power_mw)
        )
    ]
    return ExperimentResult(
        experiment_id="ext-capacity",
        title="Capacity planning and the efficiency of scale",
        headline={
            "total_buildout_embodied_tonnes": plan.total_embodied().tonnes,
            "consolidation_server_reduction": consolidation.server_reduction,
            "consolidation_embodied_saving": consolidation.embodied_saving,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (Fig 2d, III-C): 2.9x training-capacity growth buys "
            "servers and buildings whose manufacturing carbon lands in "
            "Scope 3; accelerator consolidation delivers the same "
            "throughput with ~40x fewer servers — the 'efficiency of "
            "scale'."
        ),
    )


def run_sweep_levers() -> ExperimentResult:
    """The stacked scenario sweep over the paper's four operational levers.

    Runs the default :class:`~repro.core.sweep.SweepSpec` grid (the
    utilization / PUE / lifetime / grid-cleanliness box of Figures 5 and
    9) through the stacked kernel and reports the footprint envelope plus
    the tornado ranking of the levers.
    """
    from repro.core.sweep import SweepSpec, run_sweep

    outcome = run_sweep(SweepSpec())
    payload = outcome.to_payload()
    headline = dict(payload["headline"])

    headers = ["lever", "low total (kg)", "high total (kg)", "swing (kg)"]
    rows = [
        [
            bar["parameter"],
            float(bar["low_total_kg"]),
            float(bar["high_total_kg"]),
            float(bar["swing_kg"]),
        ]
        for bar in payload["sensitivity"]
    ]
    return ExperimentResult(
        experiment_id="ext-sweep",
        title="Stacked what-if sweep: the operational levers, ranked",
        headline={
            "n_points": headline["n_points"],
            "total_kg_min": headline["total_kg_min"],
            "total_kg_max": headline["total_kg_max"],
            "total_kg_mean": headline["total_kg_mean"],
            "embodied_share_max": headline["embodied_share_max"],
            "top_lever_swing_kg": headline["top_lever_swing_kg"],
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper (Figs 5, 9): utilization, PUE, hardware lifetime and "
            "grid cleanliness are the operational levers; sweeping their "
            "stated ranges as one ndarray program shows utilization "
            "dominating (~3x from 30% to 80%), with results pinned "
            "bit-equal to the scalar Scenario path."
        ),
    )
