"""Command-line experiment runner.

Usage::

    sustainable-ai list
    sustainable-ai run fig7
    sustainable-ai run all --jobs 4 --json results.json
    sustainable-ai report results.md
    sustainable-ai verify              # diff against golden/baselines.json
    sustainable-ai verify --update     # re-snapshot the baselines

``run all``, ``report``, and ``verify`` fan experiments out across a
process pool (``--jobs``, default ``os.cpu_count()``).  Each experiment is
deterministically seeded from its id, and results are collected in
registry order, so parallel runs produce payloads byte-identical to
sequential ones.

Exit codes: 0 success, 1 baseline drift, 2 usage error (unknown
experiment id, bad flag, missing baselines file).
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import RegistryError
from repro.experiments import golden
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import experiment_ids, run_experiment


def _result_payload(result: ExperimentResult) -> dict[str, object]:
    """Stable JSON schema of one result (delegates to the result itself)."""
    return result.to_payload()


def _execute(exp_id: str) -> dict[str, object]:
    """Worker body: run one experiment, return its payload + rendering."""
    result = run_experiment(exp_id)
    return {"payload": _result_payload(result), "rendered": result.render()}


def _run_many(
    exp_ids: Sequence[str],
    jobs: int,
    echo: Callable[[str], None] | None = None,
) -> list[dict[str, object]]:
    """Run experiments, fanning out across processes when ``jobs > 1``.

    Results always come back in ``exp_ids`` order regardless of ``jobs``,
    so parallel output is byte-identical to a sequential run.
    """
    exp_ids = list(exp_ids)
    outputs: list[dict[str, object]] = []
    if jobs <= 1 or len(exp_ids) <= 1:
        for exp_id in exp_ids:
            outputs.append(_execute(exp_id))
            if echo is not None:
                echo(exp_id)
        return outputs
    with ProcessPoolExecutor(max_workers=min(jobs, len(exp_ids))) as pool:
        for exp_id, output in zip(exp_ids, pool.map(_execute, exp_ids)):
            outputs.append(output)
            if echo is not None:
                echo(exp_id)
    return outputs


def _usage_error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _resolve_targets(experiment: str) -> tuple[str, ...] | None:
    """Expand an ``experiment`` argument to ids, or None if unknown."""
    ids = experiment_ids()
    if experiment == "all":
        return ids
    if experiment in ids:
        return (experiment,)
    return None


def _unknown_experiment(experiment: str) -> int:
    matches = difflib.get_close_matches(experiment, experiment_ids(), n=3, cutoff=0.4)
    hint = f"; did you mean: {', '.join(matches)}?" if matches else ""
    return _usage_error(
        f"unknown experiment {experiment!r}{hint} "
        "(run `sustainable-ai list` for all ids)"
    )


def _add_jobs_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for fan-out (default: os.cpu_count())",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream consumer closed the pipe early (`... run all | head`).
        # Point stdout at /dev/null so interpreter shutdown doesn't raise
        # again while flushing, and exit quietly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None) -> int:
    parser = argparse.ArgumentParser(
        prog="sustainable-ai",
        description=(
            "Reproduce the figures and in-text experiments of 'Sustainable "
            "AI: Environmental Implications, Challenges and Opportunities' "
            "(MLSys 2022)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list all experiment ids")

    report_parser = sub.add_parser(
        "report", help="run everything and write a markdown summary"
    )
    report_parser.add_argument(
        "output", nargs="?", default="results.md", help="markdown file to write"
    )
    _add_jobs_flag(report_parser)

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id or 'all'")
    run_parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write structured results as a JSON file",
    )
    run_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the rendered tables (headlines only)",
    )
    _add_jobs_flag(run_parser)

    verify_parser = sub.add_parser(
        "verify", help="re-run all experiments and diff against golden baselines"
    )
    verify_parser.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baselines with this run instead of diffing",
    )
    verify_parser.add_argument(
        "--baselines",
        metavar="PATH",
        default=None,
        help=f"baselines file (default: {golden.DEFAULT_BASELINES_PATH})",
    )
    verify_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-experiment progress lines",
    )
    _add_jobs_flag(verify_parser)

    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse reports usage errors via exit(2)
        return int(exc.code or 0)

    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        return _usage_error(f"--jobs must be >= 1, got {jobs}")
    if jobs is None:
        jobs = os.cpu_count() or 1

    if args.command == "list":
        for exp_id in experiment_ids():
            print(exp_id)
        return 0

    if args.command == "report":
        path = Path(args.output)
        lines = [
            "# Live reproduction report",
            "",
            "Generated by `sustainable-ai report`.  One section per",
            "experiment: headline metrics, then the figure's rows.",
            "",
        ]
        outputs = _run_many(
            experiment_ids(), jobs, echo=lambda exp_id: print(f"ran {exp_id}")
        )
        for output in outputs:
            payload = output["payload"]
            lines.append(f"## {payload['experiment_id']} — {payload['title']}")
            lines.append("")
            for key, value in payload["headline"].items():
                lines.append(f"- **{key}**: {value:,.4g}")
            if payload["notes"]:
                lines.append("")
                lines.append(f"> {payload['notes']}")
            lines.append("")
        path.write_text("\n".join(lines))
        print(f"wrote {path}")
        return 0

    if args.command == "run":
        targets = _resolve_targets(args.experiment)
        if targets is None:
            return _unknown_experiment(args.experiment)
        try:
            outputs = _run_many(targets, jobs)
        except RegistryError as exc:
            return _usage_error(str(exc.args[0] if exc.args else exc))
        for output in outputs:
            payload = output["payload"]
            if args.quiet:
                print(f"=== {payload['experiment_id']}: {payload['title']} ===")
                for key, value in payload["headline"].items():
                    print(f"  {key}: {value:,.4g}")
            else:
                print(output["rendered"])
            print()
        if args.json:
            path = Path(args.json)
            payloads = [output["payload"] for output in outputs]
            path.write_text(json.dumps(payloads, indent=2, sort_keys=True))
            print(f"wrote {len(payloads)} result(s) to {path}")
        return 0

    # -- verify ------------------------------------------------------------
    baselines_path = (
        Path(args.baselines) if args.baselines else golden.DEFAULT_BASELINES_PATH
    )
    echo = None if args.quiet else (lambda exp_id: print(f"ran {exp_id}"))
    outputs = _run_many(experiment_ids(), jobs, echo=echo)
    results = {
        output["payload"]["experiment_id"]: ExperimentResult.from_payload(
            output["payload"]
        )
        for output in outputs
    }
    if args.update:
        golden.write_baselines(baselines_path, golden.build_baselines(results))
        print(f"wrote {len(results)} baseline(s) to {baselines_path}")
        return 0
    try:
        baselines = golden.load_baselines(baselines_path)
    except golden.BaselineError as exc:
        return _usage_error(str(exc.args[0] if exc.args else exc))
    report = golden.compare(baselines, results)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
