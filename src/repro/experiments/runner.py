"""Command-line experiment runner.

Usage::

    sustainable-ai list
    sustainable-ai run fig7
    sustainable-ai run all --jobs 4 --json results.json
    sustainable-ai run all --profile --cache-dir ~/.cache/sustainable-ai
    sustainable-ai report results.md
    sustainable-ai verify              # diff against golden/baselines.json
    sustainable-ai verify --update     # re-snapshot the baselines
    sustainable-ai verify --check-invariants --jobs 4
    sustainable-ai cache stats         # both substrate-cache tiers
    sustainable-ai cache clear
    sustainable-ai serve --port 8151 --workers 2   # carbon-query service
    sustainable-ai sweep --param utilization=0.3:0.9:16 --json sweep.json
    sustainable-ai sweep --sampling sobol --points 4096 --scalar-check 32

``run all``, ``report``, and ``verify`` fan experiments out across a
process pool (``--jobs``, default ``os.cpu_count()``).  Each experiment is
deterministically seeded from its id, and results are collected in
registry order, so parallel runs produce payloads byte-identical to
sequential ones.

The fan-out degrades gracefully: a worker that raises, hard-crashes
(breaking the process pool), or exceeds ``--timeout`` never aborts the
whole run.  Failed experiments are retried up to ``--retries`` times with
a reseeded RNG stream, and an experiment that exhausts its budget resolves
to a structured error record (see
:class:`~repro.experiments.base.RunRecord`) while the rest of the suite
completes.  ``--check-invariants`` additionally sweeps the result-invariant
registry (:mod:`repro.testing.invariants`) over every completed result and
enables the runtime accounting self-checks inside the workers.

``sweep`` evaluates a what-if parameter sweep through the stacked kernel
(:mod:`repro.core.sweep`) and prints the tornado-sensitivity and
Pareto-frontier reports; ``--json`` writes the canonical payload with
bytes identical to the ``/sweep`` service endpoint, and ``--scalar-check
N`` spot-checks N points bit-for-bit against the retained scalar path.
Sweep chunks flow through the substrate cache, so an interrupted sweep
re-run with the same ``--cache-dir`` resumes from the completed chunks.

``--cache-dir PATH`` enables the content-addressed disk tier of the
substrate cache (:mod:`repro.core.diskcache`) for the run and exports it
to pool workers; ``--no-disk-cache`` forces it off.  ``run --profile``
times every experiment (wall/CPU/peak-RSS plus substrate-cache traffic),
prints a slowest-experiments report, and embeds the measurements in the
``--json`` envelope — without the flag the JSON output is byte-identical
to previous releases.

Exit codes: 0 success, 1 baseline drift / experiment failure / invariant
violation, 2 usage error (unknown experiment id, bad flag, missing
baselines file).
"""

from __future__ import annotations

import argparse
import difflib
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, Sequence

from repro.core import diskcache, ledger, memo
from repro.core.canonical import canonical_dumps
from repro.experiments import golden, profiling
from repro.experiments.base import ExperimentResult, RunRecord
from repro.experiments.registry import experiment_ids, run_experiment

#: Default retry budget: one reseeded retry per failed experiment.
DEFAULT_RETRIES = 1

Echo = Callable[[str], None]


def _result_payload(result: ExperimentResult) -> dict[str, object]:
    """Stable JSON schema of one result (delegates to the result itself)."""
    return result.to_payload()


def _execute(
    exp_id: str,
    attempt: int = 0,
    in_worker: bool = True,
    profile: bool = False,
) -> dict[str, object]:
    """Worker body: run one experiment, return its payload + rendering.

    Fault-injection hooks (:mod:`repro.testing.faults`) fire here, before
    dispatch, so the production retry/degradation path is what gets
    exercised; with no faults declared in the environment both calls are
    no-ops.  With ``profile`` set, the execution is timed inside this
    process (the worker, for pooled runs) and the measurements ride back
    to the parent in the output dict.
    """
    from repro.testing import faults

    faults.install_memo_corruption()
    faults.inject(exp_id, attempt, hard_exit=in_worker)
    if not profile:
        with memo.collect_substrates() as collector:
            result = run_experiment(exp_id, attempt=attempt)
        return {
            "payload": _result_payload(result),
            "rendered": result.render(),
            "substrates": collector.pairs,
        }
    with profiling.ProfileTimer() as timer:
        with memo.collect_substrates() as collector:
            result = run_experiment(exp_id, attempt=attempt)
    assert timer.profile is not None
    return {
        "payload": _result_payload(result),
        "rendered": result.render(),
        "substrates": collector.pairs,
        "profile": timer.profile.to_payload(),
    }


def _failure(exc: BaseException) -> tuple[str, str]:
    """(error_kind, message) classification of a worker failure."""
    if isinstance(exc, FutureTimeoutError):
        return "timeout", "experiment exceeded the per-experiment --timeout"
    if isinstance(exc, BrokenProcessPool):
        return "crash", "worker process died before returning a result"
    return "exception", f"{type(exc).__name__}: {exc}"


def _run_round_sequential(
    pending: Sequence[str],
    attempts: dict[str, int],
    outputs: dict[str, dict[str, object]],
    failures: dict[str, tuple[str, str]],
    profile: bool = False,
) -> list[str]:
    """One in-process attempt per pending experiment; returns retry list."""
    needs_retry = []
    for exp_id in pending:
        try:
            outputs[exp_id] = _execute(
                exp_id, attempts[exp_id], in_worker=False, profile=profile
            )
            failures.pop(exp_id, None)
        except Exception as exc:
            failures[exp_id] = _failure(exc)
            needs_retry.append(exp_id)
        attempts[exp_id] += 1
    return needs_retry


def _run_round_pool(
    pending: Sequence[str],
    jobs: int,
    attempts: dict[str, int],
    outputs: dict[str, dict[str, object]],
    failures: dict[str, tuple[str, str]],
    timeout: float | None,
    profile: bool = False,
) -> list[str]:
    """One pooled attempt per pending experiment; returns retry list.

    ``timeout`` bounds how long we wait on each experiment's future once
    it is this experiment's turn to be collected.  A broken pool charges
    the attempt to the experiment being awaited when the break surfaced
    (the most likely culprit); collateral unresolved experiments are
    resubmitted without consuming their retry budget.
    """
    needs_retry: list[str] = []
    timed_out = False
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
    try:
        futures = {
            exp_id: pool.submit(_execute, exp_id, attempts[exp_id], True, profile)
            for exp_id in pending
        }
        broken = False
        for exp_id in pending:
            future = futures[exp_id]
            if broken:
                # The pool died while an earlier future was being awaited.
                # Salvage anything that finished; everything else retries
                # in a fresh pool without spending an attempt.
                if future.done() and future.exception() is None:
                    outputs[exp_id] = future.result()
                    failures.pop(exp_id, None)
                    attempts[exp_id] += 1
                else:
                    needs_retry.append(exp_id)
                continue
            try:
                outputs[exp_id] = future.result(timeout=timeout)
                failures.pop(exp_id, None)
            except FutureTimeoutError as exc:
                future.cancel()
                timed_out = True
                failures[exp_id] = _failure(exc)
                needs_retry.append(exp_id)
            except BrokenProcessPool as exc:
                broken = True
                failures[exp_id] = _failure(exc)
                needs_retry.append(exp_id)
            except Exception as exc:
                failures[exp_id] = _failure(exc)
                needs_retry.append(exp_id)
            attempts[exp_id] += 1
    finally:
        # A timed-out worker may still be running its (unkillable via the
        # executor API) task; don't block the collected results on it.
        pool.shutdown(wait=not timed_out, cancel_futures=True)
    return needs_retry


def _run_many(
    exp_ids: Sequence[str],
    jobs: int,
    echo: Echo | None = None,
    retries: int = DEFAULT_RETRIES,
    timeout: float | None = None,
    profile: bool = False,
) -> list[RunRecord]:
    """Run experiments, fanning out across processes when ``jobs > 1``.

    Records always come back in ``exp_ids`` order regardless of ``jobs``,
    so parallel output is byte-identical to a sequential run.  Every
    experiment resolves to a :class:`RunRecord`; failures are retried with
    a reseeded RNG stream up to ``retries`` times before a structured
    error record is emitted in place of the result.
    """
    exp_ids = list(exp_ids)
    attempts = {exp_id: 0 for exp_id in exp_ids}
    outputs: dict[str, dict[str, object]] = {}
    failures: dict[str, tuple[str, str]] = {}

    pending = list(exp_ids)
    while pending:
        if jobs <= 1 or len(pending) <= 1:
            needs_retry = _run_round_sequential(
                pending, attempts, outputs, failures, profile
            )
        else:
            needs_retry = _run_round_pool(
                pending, jobs, attempts, outputs, failures, timeout, profile
            )
        pending = [
            exp_id for exp_id in needs_retry if attempts[exp_id] <= retries
        ]

    records = []
    for exp_id in exp_ids:
        if exp_id in outputs:
            output = outputs[exp_id]
            measured = output.get("profile")
            record = RunRecord(
                experiment_id=exp_id,
                status="ok",
                attempts=max(1, attempts[exp_id]),
                payload=output["payload"],  # type: ignore[arg-type]
                rendered=output["rendered"],  # type: ignore[arg-type]
                profile=(
                    profiling.ExperimentProfile.from_payload(measured)  # type: ignore[arg-type]
                    if measured is not None
                    else None
                ),
                substrates=tuple(
                    (str(q), d) for q, d in output.get("substrates", ())  # type: ignore[union-attr]
                ),
            )
        else:
            kind, message = failures[exp_id]
            record = RunRecord(
                experiment_id=exp_id,
                status="failed",
                attempts=max(1, attempts[exp_id]),
                error_kind=kind,
                error_message=message,
            )
        if echo is not None:
            echo(
                f"ran {exp_id}"
                if record.ok
                else f"FAILED {exp_id} ({record.error_kind})"
            )
        records.append(record)
    return records


def _usage_error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _resolve_targets(experiment: str) -> tuple[str, ...] | None:
    """Expand an ``experiment`` argument to ids, or None if unknown."""
    ids = experiment_ids()
    if experiment == "all":
        return ids
    if experiment in ids:
        return (experiment,)
    return None


def _unknown_experiment(experiment: str) -> int:
    matches = difflib.get_close_matches(experiment, experiment_ids(), n=3, cutoff=0.4)
    hint = f"; did you mean: {', '.join(matches)}?" if matches else ""
    return _usage_error(
        f"unknown experiment {experiment!r}{hint} "
        "(run `sustainable-ai list` for all ids)"
    )


def _add_fanout_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for fan-out (default: os.cpu_count())",
    )
    subparser.add_argument(
        "--retries",
        type=int,
        metavar="N",
        default=DEFAULT_RETRIES,
        help="reseeded retries per failed experiment (default: %(default)s)",
    )
    subparser.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="per-experiment wait bound in parallel runs (default: none)",
    )
    subparser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help=(
            "enable the disk substrate cache at PATH (exported as "
            f"{diskcache.CACHE_DIR_ENV_VAR} so pool workers warm-start)"
        ),
    )
    subparser.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="disable the disk substrate cache even if the env var is set",
    )


def _successful_results(records: Sequence[RunRecord]) -> dict[str, ExperimentResult]:
    return {r.experiment_id: r.result() for r in records if r.ok}


def _check_invariants(records: Sequence[RunRecord]) -> int:
    """Sweep result invariants over completed results; 0 if all hold."""
    from repro.testing.invariants import check_results

    report = check_results(_successful_results(records))
    print(report.render())
    return 0 if report.ok else 1


def _ensure_golden_epoch(
    led: ledger.Ledger, baselines_path: Path, force: bool = False
) -> bool:
    """Import the checked-in baselines as epoch ``"0"`` if not yet pinned.

    Returns True when an import happened.  A missing baselines file is
    not an error here — a fresh ledger simply starts without the golden
    epoch (``ledger diff``/``trace`` report unknown refs normally).
    """
    if not force and ledger.GOLDEN_EPOCH in led.epochs:
        return False
    if not Path(baselines_path).exists():
        return False
    doc = golden.load_baselines(baselines_path)
    led.pin_epoch(
        ledger.GOLDEN_EPOCH,
        golden.bundles_from_baselines(doc),
        meta={"source": "golden-import", "path": str(baselines_path)},
    )
    return True


def _bundles_from_records(
    records: Sequence[RunRecord],
    *,
    invariant_status: str,
    recorded_at: float,
    source: str = "runner",
) -> list:
    """One claim bundle per record — successes and structured failures."""
    return [
        golden.bundle_from_record(
            record,
            invariant_status=invariant_status,
            recorded_at=recorded_at,
            source=source,
        )
        for record in records
    ]


def _ledger_command(
    args: argparse.Namespace, jobs: int, retries: int, timeout: float | None
) -> int:
    """``sustainable-ai ledger record|show|diff|trace``."""
    from repro.core.report import format_table

    directory = ledger.resolve_ledger_dir(getattr(args, "ledger_dir", None))
    if directory is None:
        return _usage_error(
            "no ledger directory: pass --ledger-dir PATH or set "
            f"{ledger.LEDGER_DIR_ENV_VAR}"
        )
    led = ledger.Ledger.open(directory)

    if args.action == "record":
        targets = _resolve_targets(args.experiment)
        if targets is None:
            return _unknown_experiment(args.experiment)
        echo = None if args.quiet else print
        records = _run_many(targets, jobs, echo=echo, retries=retries, timeout=timeout)
        failed = [r for r in records if not r.ok]
        invariant_status = "not-checked"
        invariant_exit = 0
        if args.check_invariants:
            invariant_exit = _check_invariants(records)
            invariant_status = "ok" if invariant_exit == 0 else "violated"
        recorded_at = args.recorded_at if args.recorded_at is not None else time.time()
        bundles = _bundles_from_records(
            records, invariant_status=invariant_status, recorded_at=recorded_at
        )
        if _ensure_golden_epoch(led, golden.DEFAULT_BASELINES_PATH):
            print(f"imported golden baselines as epoch {ledger.GOLDEN_EPOCH!r}")
        run_id = led.record_run(
            bundles,
            run_id=args.run_id,
            recorded_at=recorded_at,
            meta={"command": "ledger record", "targets": args.experiment},
        )
        print(
            f"recorded {len(bundles)} bundle(s) "
            f"({len(failed)} failed) as run {run_id!r} in {directory}"
        )
        return 1 if (failed or invariant_exit) else 0

    if args.action == "show":
        if args.payload and not args.experiment:
            return _usage_error("ledger show --payload requires --experiment")
        if args.ref is None:
            print(f"ledger at {directory}: {len(led.bundles)} bundle(s)")
            print(f"epochs ({len(led.epochs)}):")
            for name, entry in led.epochs.items():
                mapping = entry.get("experiments", {})
                print(f"  {name}: {len(mapping)} experiment(s)")  # type: ignore[arg-type]
            print(f"runs ({len(led.runs)}):")
            for run_id, run in led.runs.items():
                print(f"  {run_id}: {len(run.experiments)} experiment(s)")
            return 0
        try:
            bundles = led.resolve(args.ref)
        except ledger.LedgerError as exc:
            return _usage_error(str(exc))
        if args.experiment:
            bundle = bundles.get(args.experiment)
            if bundle is None:
                return _usage_error(
                    f"ref {args.ref!r} records no bundle for {args.experiment!r}"
                )
            if args.payload:
                try:
                    sys.stdout.write(bundle.reconstruct().decode("utf-8"))
                except ledger.LedgerError as exc:
                    return _usage_error(str(exc))
                return 0
            print(canonical_dumps({"bundle_id": bundle.bundle_id, **bundle.to_payload()}))
            return 0
        rows = [
            [eid, bundle.status, len(bundle.claims), bundle.bundle_id[:12]]
            for eid, bundle in bundles.items()
        ]
        print(f"ref {args.ref!r}: {len(bundles)} bundle(s)")
        print(format_table(("experiment", "status", "claims", "bundle"), rows))
        return 0

    if args.action == "diff":
        try:
            report = led.diff(args.a, args.b, strict=not args.partial)
        except ledger.LedgerError as exc:
            return _usage_error(str(exc))
        print(report.render())
        return 0 if report.ok else 1

    if args.action == "gc":
        older_than = args.cutoff
        if older_than is None and args.older_than_days is not None:
            if args.older_than_days < 0:
                return _usage_error(
                    f"--older-than-days must be >= 0, got {args.older_than_days}"
                )
            older_than = time.time() - args.older_than_days * 86_400.0
        gc_report = led.gc(older_than=older_than, dry_run=args.dry_run)
        print(f"ledger at {directory}:")
        print(gc_report.render())
        return 0

    # -- trace --------------------------------------------------------------
    try:
        doc = led.trace(args.experiment, args.metric, ref=args.ref)
    except ledger.LedgerError as exc:
        return _usage_error(str(exc))
    print(canonical_dumps(doc))
    return 0


def _cache_command(args: argparse.Namespace) -> int:
    """``sustainable-ai cache stats|clear`` over both cache tiers."""
    if args.cache_dir is not None:
        directory = Path(args.cache_dir)
    else:
        directory = diskcache.resolve_cache_dir() or diskcache.default_cache_dir()

    if args.action == "stats":
        print(f"disk cache directory: {directory}")
        stats = diskcache.disk_stats(directory)
        if not stats:
            print("  (no entries)")
        else:
            total_entries = 0
            total_bytes = 0
            for name in sorted(stats):
                row = stats[name]
                total_entries += row["entries"]
                total_bytes += row["bytes"]
                print(
                    f"  {name}: {row['entries']} entr"
                    f"{'y' if row['entries'] == 1 else 'ies'}, "
                    f"{row['bytes'] / 1024:.1f} KiB"
                )
            print(f"  total: {total_entries} entries, {total_bytes / 1024:.1f} KiB")
        names = sorted(memo.substrate_cache_info())
        print(f"registered substrates ({len(names)}):")
        for name in names:
            print(f"  {name}")
        return 0

    removed = diskcache.clear_disk(directory)
    memo.clear_substrate_caches()
    print(
        f"removed {removed} disk entr{'y' if removed == 1 else 'ies'} "
        f"from {directory} (and emptied the in-process caches)"
    )
    return 0


def _parse_sweep_ranges(entries: Sequence[str]) -> tuple:
    """``--param NAME=LO:HI[:POINTS]`` flags as ``ParameterRange`` objects."""
    from repro.core.sweep import ParameterRange
    from repro.errors import UnitError

    ranges = []
    for entry in entries:
        name, sep, rest = entry.partition("=")
        parts = rest.split(":")
        if not sep or not name or len(parts) not in (2, 3):
            raise UnitError(
                "--param must look like NAME=LO:HI or NAME=LO:HI:POINTS, "
                f"got {entry!r}"
            )
        try:
            lo, hi = float(parts[0]), float(parts[1])
            points = int(parts[2]) if len(parts) == 3 else 5
        except ValueError:
            raise UnitError(f"non-numeric --param value in {entry!r}") from None
        ranges.append(ParameterRange(name, lo, hi, points))
    return tuple(ranges)


def _sweep_command(args: argparse.Namespace) -> int:
    """``sustainable-ai sweep``: stacked what-if sweep plus its reports."""
    import time

    import numpy as np

    from repro.core.report import format_table
    from repro.core.scenario import evaluate_work
    from repro.core.sweep import DEFAULT_RANGES, SweepSpec, run_sweep, scenario_at
    from repro.errors import UnitError

    try:
        ranges = _parse_sweep_ranges(args.param or [])
        spec = SweepSpec(
            busy_device_hours=args.busy_hours,
            ranges=ranges or DEFAULT_RANGES,
            sampling=args.sampling,
            n_points=args.points,
            seed=args.seed,
            devices_per_server=args.devices_per_server,
        )
    except UnitError as exc:
        return _usage_error(str(exc))
    if args.chunk_points < 1:
        return _usage_error(f"--chunk-points must be >= 1, got {args.chunk_points}")
    if args.scalar_check < 0:
        return _usage_error(f"--scalar-check must be >= 0, got {args.scalar_check}")

    echo: Echo = (lambda _line: None) if args.quiet else print
    progress = None
    if not args.quiet:
        progress = lambda done, total: print(f"  evaluated {done}/{total} points")
    started = time.perf_counter()
    outcome = run_sweep(spec, chunk_points=args.chunk_points, progress=progress)
    elapsed = time.perf_counter() - started
    payload = outcome.to_payload(include_points=args.include_points)

    if args.scalar_check:
        n = len(outcome.results)
        picks = np.unique(np.linspace(0, n - 1, min(args.scalar_check, n)).astype(int))
        base = spec.base_scenario()
        diverged = []
        for i in picks:
            point = {name: float(axis[i]) for name, axis in outcome.params.items()}
            ref = evaluate_work(spec.busy_device_hours, scenario_at(base, point))
            stacked = (
                outcome.results.energy_kwh[i],
                outcome.results.operational_kg[i],
                outcome.results.embodied_kg[i],
            )
            if (ref.energy.kwh, ref.operational.kg, ref.embodied.kg) != stacked:
                diverged.append(int(i))
        if diverged:
            print(
                "error: stacked kernel diverged from the scalar path at "
                f"point(s) {diverged[:5]}",
                file=sys.stderr,
            )
            return 1
        echo(f"scalar spot-check: {len(picks)} point(s) bit-equal to the scalar path")

    headline = payload["headline"]
    rate = len(outcome.results) / elapsed if elapsed > 0 else float("inf")
    echo("")
    echo(
        f"=== stacked sweep: {len(outcome.results):,} scenario(s) "
        f"in {elapsed:.3f}s ({rate:,.0f}/s) ==="
    )
    for key, value in headline.items():  # type: ignore[union-attr]
        echo(f"  {key}: {value:,.4g}")
    echo("")
    echo("sensitivity (one-at-a-time swing, descending):")
    echo(
        format_table(
            ("parameter", "low_kg", "high_kg", "swing_kg"),
            [
                (b["parameter"], b["low_total_kg"], b["high_total_kg"], b["swing_kg"])
                for b in payload["sensitivity"]  # type: ignore[union-attr]
            ],
        )
    )
    echo("")
    pareto = payload["pareto"]  # type: ignore[assignment]
    echo(
        f"pareto frontier (top {min(len(pareto), 10)} "  # type: ignore[arg-type]
        f"of {headline['pareto_points']:.0f}):"  # type: ignore[index]
    )
    echo(
        format_table(
            ("index", "throughput", "total_kg"),
            [
                (row["index"], row["throughput"], row["total_kg"])
                for row in pareto[:10]  # type: ignore[index]
            ],
        )
    )

    if args.json:
        # The canonical serializer — the same bytes the /sweep service
        # endpoint and a direct library call produce for this spec.
        from repro.service.queries import render_payload

        path = Path(args.json)
        path.write_bytes(render_payload(payload))
        print(f"wrote sweep payload to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream consumer closed the pipe early (`... run all | head`).
        # Point stdout at /dev/null so interpreter shutdown doesn't raise
        # again while flushing, and exit quietly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None) -> int:
    parser = argparse.ArgumentParser(
        prog="sustainable-ai",
        description=(
            "Reproduce the figures and in-text experiments of 'Sustainable "
            "AI: Environmental Implications, Challenges and Opportunities' "
            "(MLSys 2022)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list all experiment ids")

    report_parser = sub.add_parser(
        "report", help="run everything and write a markdown summary"
    )
    report_parser.add_argument(
        "output", nargs="?", default="results.md", help="markdown file to write"
    )
    _add_fanout_flags(report_parser)

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id or 'all'")
    run_parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write structured results as a JSON file",
    )
    run_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the rendered tables (headlines only)",
    )
    run_parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="sweep the physical-invariant registry over the results",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "record per-experiment wall/CPU time, peak RSS and substrate "
            "cache traffic; prints a slowest-experiments report and adds a "
            "'profile' key to each --json record"
        ),
    )
    _add_fanout_flags(run_parser)

    verify_parser = sub.add_parser(
        "verify", help="re-run all experiments and diff against golden baselines"
    )
    verify_parser.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baselines with this run instead of diffing",
    )
    verify_parser.add_argument(
        "--baselines",
        metavar="PATH",
        default=None,
        help=f"baselines file (default: {golden.DEFAULT_BASELINES_PATH})",
    )
    verify_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-experiment progress lines",
    )
    verify_parser.add_argument(
        "--check-invariants",
        action="store_true",
        help=(
            "also sweep the physical-invariant registry over the results "
            "(required with --update so epoch pins record a checked status)"
        ),
    )
    verify_parser.add_argument(
        "--ledger-dir",
        metavar="PATH",
        default=None,
        help=(
            "record this verify run's claim bundles in the ledger at PATH "
            f"(default: the {ledger.LEDGER_DIR_ENV_VAR} env var, if set)"
        ),
    )
    _add_fanout_flags(verify_parser)

    ledger_parser = sub.add_parser(
        "ledger",
        help="record, inspect, diff, and trace claim bundles (see docs/LEDGER.md)",
    )
    ledger_sub = ledger_parser.add_subparsers(dest="action", required=True)

    def _add_ledger_dir(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--ledger-dir",
            metavar="PATH",
            default=None,
            help=f"ledger directory (default: the {ledger.LEDGER_DIR_ENV_VAR} env var)",
        )

    ledger_record = ledger_sub.add_parser(
        "record", help="run experiments and record their claim bundles as a run"
    )
    ledger_record.add_argument(
        "experiment", nargs="?", default="all", help="experiment id or 'all'"
    )
    _add_ledger_dir(ledger_record)
    ledger_record.add_argument(
        "--run-id",
        metavar="ID",
        default=None,
        help="name the recorded run (default: a content hash of its bundles)",
    )
    ledger_record.add_argument(
        "--recorded-at",
        type=float,
        metavar="POSIX",
        default=None,
        help="timestamp stored in bundle provenance (default: now)",
    )
    ledger_record.add_argument(
        "--check-invariants",
        action="store_true",
        help="sweep the invariant registry; records ok/violated in provenance",
    )
    ledger_record.add_argument(
        "--quiet", action="store_true", help="suppress per-experiment progress lines"
    )
    _add_fanout_flags(ledger_record)

    ledger_show = ledger_sub.add_parser(
        "show", help="list refs, or the bundles/payload of one ref"
    )
    ledger_show.add_argument(
        "ref", nargs="?", default=None, help="epoch name or run id (omit to list all)"
    )
    ledger_show.add_argument(
        "--experiment",
        metavar="ID",
        default=None,
        help="show one experiment's full bundle instead of the ref table",
    )
    ledger_show.add_argument(
        "--payload",
        action="store_true",
        help=(
            "write the recorded result payload bytes (byte-identical to the "
            "original run --json record; requires --experiment)"
        ),
    )
    _add_ledger_dir(ledger_show)

    ledger_diff = ledger_sub.add_parser(
        "diff", help="claim-by-claim diff of two refs (baseline = first)"
    )
    ledger_diff.add_argument("a", help="baseline ref (epoch name or run id)")
    ledger_diff.add_argument("b", help="current ref (epoch name or run id)")
    ledger_diff.add_argument(
        "--partial",
        action="store_true",
        help="don't flag baseline experiments missing from the current ref",
    )
    _add_ledger_dir(ledger_diff)

    ledger_trace = ledger_sub.add_parser(
        "trace", help="resolve a headline metric to its substrate content hashes"
    )
    ledger_trace.add_argument("experiment", help="experiment id")
    ledger_trace.add_argument("metric", help="headline metric name")
    ledger_trace.add_argument(
        "--ref",
        metavar="REF",
        default=None,
        help="epoch/run to trace in (default: the latest run recording it)",
    )
    _add_ledger_dir(ledger_trace)

    ledger_gc = ledger_sub.add_parser(
        "gc",
        help="compact the journals and prune unpinned runs older than a cutoff",
    )
    ledger_gc.add_argument(
        "--older-than-days",
        type=float,
        metavar="DAYS",
        default=None,
        help="prune runs recorded more than DAYS days ago "
        "(default: prune nothing, only compact)",
    )
    ledger_gc.add_argument(
        "--cutoff",
        type=float,
        metavar="POSIX",
        default=None,
        help="explicit retention cutoff timestamp (overrides --older-than-days)",
    )
    ledger_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be pruned without touching the journals",
    )
    _add_ledger_dir(ledger_gc)

    serve_parser = sub.add_parser(
        "serve",
        help="serve carbon-footprint queries over JSON/HTTP (see docs/SERVICE.md)",
    )
    # Lazy import: the service layer (asyncio, HTTP) stays out of every
    # other subcommand's import path.
    from repro.service.app import add_serve_flags

    add_serve_flags(serve_parser)
    serve_parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help=(
            "enable the disk substrate cache at PATH (exported as "
            f"{diskcache.CACHE_DIR_ENV_VAR} so service workers warm-start)"
        ),
    )
    serve_parser.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="disable the disk substrate cache even if the env var is set",
    )

    fabric_parser = sub.add_parser(
        "fabric",
        help="route a multi-replica carbon-query fabric (see docs/SERVICE.md)",
    )
    from repro.service.router import add_fabric_flags

    add_fabric_flags(fabric_parser)

    from repro.core.sweep import DEFAULT_CHUNK_POINTS

    sweep_parser = sub.add_parser(
        "sweep",
        help="run a stacked what-if scenario sweep (see docs/SWEEPS.md)",
    )
    sweep_parser.add_argument(
        "--param",
        action="append",
        metavar="NAME=LO:HI[:POINTS]",
        default=None,
        help=(
            "swept knob as NAME=LO:HI[:POINTS]; repeatable "
            "(default: the built-in 288-point grid over utilization, PUE, "
            "lifetime, and intensity scale)"
        ),
    )
    sweep_parser.add_argument(
        "--sampling",
        choices=("grid", "sobol"),
        default="grid",
        help="point layout: full grid or scrambled Sobol (default: %(default)s)",
    )
    sweep_parser.add_argument(
        "--points",
        type=int,
        metavar="N",
        default=1024,
        help="sample count for --sampling sobol (default: %(default)s)",
    )
    sweep_parser.add_argument(
        "--seed",
        type=int,
        metavar="N",
        default=0,
        help="Sobol scramble seed (default: %(default)s)",
    )
    sweep_parser.add_argument(
        "--busy-hours",
        type=float,
        metavar="H",
        default=1000.0,
        help="busy device-hours of work per scenario (default: %(default)s)",
    )
    sweep_parser.add_argument(
        "--devices-per-server",
        type=int,
        metavar="N",
        default=2,
        help="accelerators per amortized server (default: %(default)s)",
    )
    sweep_parser.add_argument(
        "--chunk-points",
        type=int,
        metavar="N",
        default=DEFAULT_CHUNK_POINTS,
        help="points per substrate-cache chunk (default: %(default)s)",
    )
    sweep_parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the canonical sweep payload (service-identical bytes)",
    )
    sweep_parser.add_argument(
        "--include-points",
        action="store_true",
        help="embed the per-point arrays in the --json payload",
    )
    sweep_parser.add_argument(
        "--scalar-check",
        type=int,
        metavar="N",
        default=0,
        help=(
            "spot-check N points bit-for-bit against the retained scalar "
            "path; exit 1 on any divergence"
        ),
    )
    sweep_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress lines and the printed reports",
    )
    sweep_parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help=(
            "enable the disk substrate cache at PATH so interrupted sweeps "
            f"resume from completed chunks (exported as "
            f"{diskcache.CACHE_DIR_ENV_VAR})"
        ),
    )
    sweep_parser.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="disable the disk substrate cache even if the env var is set",
    )

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the substrate caches"
    )
    cache_parser.add_argument(
        "action", choices=("stats", "clear"), help="what to do with the caches"
    )
    cache_parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help=(
            "disk cache directory (default: the "
            f"{diskcache.CACHE_DIR_ENV_VAR} env var if it names a "
            "directory, else the per-user default)"
        ),
    )

    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse reports usage errors via exit(2)
        return int(exc.code or 0)

    if args.command == "cache":
        return _cache_command(args)

    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None and getattr(args, "no_disk_cache", False):
        return _usage_error("--cache-dir and --no-disk-cache are mutually exclusive")
    if getattr(args, "no_disk_cache", False):
        # Exported (not just read) so pool workers see the same decision.
        os.environ[diskcache.CACHE_DIR_ENV_VAR] = "off"
    elif cache_dir is not None:
        os.environ[diskcache.CACHE_DIR_ENV_VAR] = str(Path(cache_dir))

    if args.command == "serve":
        from repro.errors import ServiceError
        from repro.service.app import config_from_args, serve

        try:
            config = config_from_args(args)
        except ServiceError as exc:
            return _usage_error(str(exc))
        return serve(config)

    if args.command == "fabric":
        from repro.errors import ServiceError
        from repro.service.router import router_config_from_args, run_router

        try:
            config = router_config_from_args(args)
        except ServiceError as exc:
            return _usage_error(str(exc))
        return run_router(config)

    if args.command == "sweep":
        return _sweep_command(args)

    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        return _usage_error(f"--jobs must be >= 1, got {jobs}")
    if jobs is None:
        jobs = os.cpu_count() or 1
    retries = getattr(args, "retries", DEFAULT_RETRIES)
    if retries < 0:
        return _usage_error(f"--retries must be >= 0, got {retries}")
    timeout = getattr(args, "timeout", None)
    if timeout is not None and timeout <= 0:
        return _usage_error(f"--timeout must be positive, got {timeout}")
    if getattr(args, "check_invariants", False):
        # Workers inherit the environment, so the runtime self-checks in
        # repro.core fire inside every experiment as well.
        from repro.core.series import CHECK_ENV_VAR

        os.environ[CHECK_ENV_VAR] = "1"

    if args.command == "list":
        for exp_id in experiment_ids():
            print(exp_id)
        return 0

    if args.command == "ledger":
        return _ledger_command(args, jobs, retries, timeout)

    if args.command == "report":
        path = Path(args.output)
        lines = [
            "# Live reproduction report",
            "",
            "Generated by `sustainable-ai report`.  One section per",
            "experiment: headline metrics, then the figure's rows.",
            "",
        ]
        records = _run_many(
            experiment_ids(), jobs, echo=print, retries=retries, timeout=timeout
        )
        for record in records:
            if not record.ok:
                lines.append(f"## {record.experiment_id} — FAILED")
                lines.append("")
                lines.append(
                    f"> {record.error_kind} after {record.attempts} attempt(s): "
                    f"{record.error_message}"
                )
                lines.append("")
                continue
            payload = record.payload or {}
            lines.append(f"## {payload['experiment_id']} — {payload['title']}")
            lines.append("")
            for key, value in payload["headline"].items():  # type: ignore[union-attr]
                lines.append(f"- **{key}**: {value:,.4g}")
            if payload["notes"]:
                lines.append("")
                lines.append(f"> {payload['notes']}")
            lines.append("")
        path.write_text("\n".join(lines))
        print(f"wrote {path}")
        return 0 if all(r.ok for r in records) else 1

    if args.command == "run":
        targets = _resolve_targets(args.experiment)
        if targets is None:
            return _unknown_experiment(args.experiment)
        records = _run_many(
            targets, jobs, retries=retries, timeout=timeout, profile=args.profile
        )
        for record in records:
            if not record.ok:
                print(record.describe_failure())
            elif args.quiet:
                payload = record.payload or {}
                print(f"=== {payload['experiment_id']}: {payload['title']} ===")
                for key, value in payload["headline"].items():  # type: ignore[union-attr]
                    print(f"  {key}: {value:,.4g}")
            else:
                print(record.rendered)
            print()
        if args.profile:
            profiles = profiling.profiles_from_records(records)
            if profiles:
                print(profiling.render_profile_report(profiles))
                print()
        if args.json:
            path = Path(args.json)
            payloads = [record.to_payload() for record in records]
            path.write_text(canonical_dumps(payloads))
            print(f"wrote {len(payloads)} result(s) to {path}")
        status = 0 if all(r.ok for r in records) else 1
        if args.check_invariants:
            status = max(status, _check_invariants(records))
        return status

    # -- verify ------------------------------------------------------------
    # Drift detection is a ledger diff: the checked-in baselines import as
    # epoch "0", this run's records become claim bundles, and the report
    # is the claim-by-claim diff (byte-identical to the legacy compare).
    baselines_path = (
        Path(args.baselines) if args.baselines else golden.DEFAULT_BASELINES_PATH
    )
    if args.update and not args.check_invariants:
        return _usage_error(
            "verify --update requires --check-invariants: refreshed baselines "
            "(and their epoch pin) must record a checked invariant status"
        )
    echo = None if args.quiet else print
    records = _run_many(
        experiment_ids(), jobs, echo=echo, retries=retries, timeout=timeout
    )
    failed = [r for r in records if not r.ok]
    results = _successful_results(records)
    ledger_dir = ledger.resolve_ledger_dir(getattr(args, "ledger_dir", None))
    recorded_at = time.time()
    if args.update:
        if failed:
            for record in failed:
                print(record.describe_failure(), file=sys.stderr)
            print(
                f"error: refusing to update baselines: {len(failed)} "
                "experiment(s) failed",
                file=sys.stderr,
            )
            return 1
        if _check_invariants(records) != 0:
            print(
                "error: refusing to update baselines: invariant violation(s)",
                file=sys.stderr,
            )
            return 1
        golden.write_baselines(baselines_path, golden.build_baselines(results))
        print(f"wrote {len(results)} baseline(s) to {baselines_path}")
        if ledger_dir is not None:
            led = ledger.Ledger.open(ledger_dir)
            bundles = _bundles_from_records(
                records, invariant_status="ok", recorded_at=recorded_at
            )
            run_id = led.record_run(
                bundles,
                recorded_at=recorded_at,
                meta={"command": "verify --update"},
            )
            led.pin_epoch(
                ledger.GOLDEN_EPOCH,
                run_id=run_id,
                meta={"source": "verify --update", "path": str(baselines_path)},
            )
            print(
                f"pinned epoch {ledger.GOLDEN_EPOCH!r} "
                f"({len(bundles)} bundle(s)) in {ledger_dir}"
            )
        return 0

    invariant_report = None
    invariant_status = "not-checked"
    if args.check_invariants:
        from repro.testing.invariants import check_results

        invariant_report = check_results(results)
        invariant_status = "ok" if invariant_report.ok else "violated"

    led = ledger.Ledger.open(ledger_dir) if ledger_dir else ledger.Ledger.in_memory()
    try:
        if args.baselines or ledger.GOLDEN_EPOCH not in led.epochs:
            doc = golden.load_baselines(baselines_path)
            led.pin_epoch(
                ledger.GOLDEN_EPOCH,
                golden.bundles_from_baselines(doc),
                meta={"source": "golden-import", "path": str(baselines_path)},
            )
    except golden.BaselineError as exc:
        return _usage_error(str(exc.args[0] if exc.args else exc))
    bundles = _bundles_from_records(
        records, invariant_status=invariant_status, recorded_at=recorded_at
    )
    if ledger_dir is not None:
        led.record_run(bundles, recorded_at=recorded_at, meta={"command": "verify"})
    baseline_bundles = led.resolve(ledger.GOLDEN_EPOCH)
    current_ok = {b.experiment_id: b for b in bundles if b.ok}
    failed_bundles = [b for b in bundles if not b.ok]
    report = golden.fold_failures(
        golden.diff_bundles(baseline_bundles, current_ok), failed_bundles
    )
    print(report.render())
    status = 0 if report.ok else 1
    if invariant_report is not None:
        print(invariant_report.render())
        status = max(status, 0 if invariant_report.ok else 1)
    return status


if __name__ == "__main__":
    sys.exit(main())
