"""Figure 4: operational carbon footprint of production vs OSS ML tasks."""

from __future__ import annotations

import numpy as np

from repro.core.analyzer import FootprintAnalyzer
from repro.core.footprint import Phase
from repro.experiments.base import ExperimentResult
from repro.workloads.facebook import production_tasks
from repro.workloads.oss_models import (
    MEENA,
    GPT3,
    OSS_MODELS,
    parameters_vs_carbon_correlation,
)


def run() -> ExperimentResult:
    """The Figure-4 operational footprints: FB models vs OSS anchors."""
    analyzer = FootprintAnalyzer()
    tasks = production_tasks(analyzer)

    headers = [
        "task",
        "offline train (t)",
        "online train (t)",
        "inference (t)",
        "total (t)",
        "train share",
    ]
    rows: list[list[object]] = []
    training_side_tonnes = []
    for task in tasks:
        op = analyzer.operational_footprint(task)
        offline = (
            op.phase_carbon(Phase.EXPERIMENTATION)
            + op.phase_carbon(Phase.OFFLINE_TRAINING)
        )
        online = op.phase_carbon(Phase.ONLINE_TRAINING)
        inference = op.phase_carbon(Phase.INFERENCE)
        train_share, _ = op.training_inference_split()
        training_side_tonnes.append(offline.tonnes + online.tonnes)
        rows.append(
            [
                task.name,
                offline.tonnes,
                online.tonnes,
                inference.tonnes,
                op.carbon.tonnes,
                f"{train_share:.0%}",
            ]
        )
    for ref in OSS_MODELS:
        rows.append(
            [ref.name, ref.training_carbon.tonnes, 0.0, "-", ref.training_carbon.tonnes, "100%"]
        )

    avg_training = float(np.mean(training_side_tonnes))
    return ExperimentResult(
        experiment_id="fig4",
        title="Operational carbon: LM, RM1-RM5 vs open-source models",
        headline={
            "fb_avg_training_tonnes": avg_training,
            "fb_avg_vs_meena": avg_training / MEENA.training_carbon.tonnes,
            "fb_avg_vs_gpt3": avg_training / GPT3.training_carbon.tonnes,
            "params_vs_carbon_correlation": parameters_vs_carbon_correlation(),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: FB average training footprint is 1.8x Meena and ~1/3 of "
            "GPT-3; RMs split ~50/50 training/inference, LM 35/65; carbon "
            "does not correlate with parameter count (Switch Transformer's "
            "1.5T params emit far less than GPT-3's 175B)."
        ),
    )
