"""Registry of experiments: metadata-carrying specs with deterministic order.

Each experiment is registered as an :class:`ExperimentSpec` rather than a
bare callable.  The spec carries the category that fixes the listing order
(figures, in-text metrics, appendix, ablations, extensions), the runner,
and the per-metric relative tolerances the golden-baseline verifier
(:mod:`repro.experiments.golden`) applies to its headline numbers.

:func:`run_experiment` also seeds the *global* RNGs (``random`` and the
legacy numpy generator) from a stable hash of the experiment id before
dispatching, so results are independent of execution order — a parallel
``sustainable-ai run all --jobs N`` produces payloads byte-identical to a
sequential run.
"""

from __future__ import annotations

import difflib
import hashlib
import random
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Mapping

import numpy as np

from repro.core.ledger import DEFAULT_REL_TOL
from repro.errors import RegistryError
from repro.experiments import (
    ablations,
    appendix,
    extensions,
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    genai,
    text_metrics,
)
from repro.experiments.base import ExperimentResult

#: Listing order of experiment categories (satisfies the "figures first"
#: contract explicitly instead of relying on dict insertion order).
CATEGORY_ORDER: tuple[str, ...] = (
    "figure",
    "text",
    "appendix",
    "ablation",
    "extension",
)

# DEFAULT_REL_TOL (the default per-metric relative tolerance for golden
# verification) is shared with ledger claims — imported from
# repro.core.ledger so the registry and the ledger can never disagree
# about what "default tolerance" means.  Re-exported here for the
# experiment-facing import path.


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: id, category, runner, tolerance metadata."""

    experiment_id: str
    category: str
    runner: Callable[[], ExperimentResult]
    tolerances: Mapping[str, float | None] = field(default_factory=dict)
    rel_tol: float = DEFAULT_REL_TOL

    def __post_init__(self) -> None:
        if self.category not in CATEGORY_ORDER:
            raise RegistryError(
                f"unknown category {self.category!r} for "
                f"{self.experiment_id!r}; known: {', '.join(CATEGORY_ORDER)}"
            )
        object.__setattr__(self, "tolerances", MappingProxyType(dict(self.tolerances)))

    def tolerance_for(
        self, metric: str, result: ExperimentResult | None = None
    ) -> float | None:
        """Relative tolerance for one headline metric.

        Resolution order: spec override, then the tolerance the result
        itself declared, then the spec-wide default.  ``None`` marks the
        metric informational (never failed on).
        """
        if metric in self.tolerances:
            return self.tolerances[metric]
        if result is not None and metric in result.tolerances:
            return result.tolerances[metric]
        return self.rel_tol


_SPECS: tuple[ExperimentSpec, ...] = (
    ExperimentSpec("fig1", "figure", fig01.run),
    ExperimentSpec("fig2", "figure", fig02.run),
    ExperimentSpec("fig3", "figure", fig03.run),
    ExperimentSpec("fig4", "figure", fig04.run),
    ExperimentSpec("fig5", "figure", fig05.run),
    ExperimentSpec("fig6", "figure", fig06.run),
    ExperimentSpec("fig7", "figure", fig07.run),
    ExperimentSpec("fig8", "figure", fig08.run),
    ExperimentSpec("fig9", "figure", fig09.run),
    ExperimentSpec("fig10", "figure", fig10.run),
    ExperimentSpec("fig11", "figure", fig11.run),
    ExperimentSpec("fig12", "figure", fig12.run),
    ExperimentSpec("text-gpudays", "text", text_metrics.run_gpudays),
    ExperimentSpec("text-quant", "text", text_metrics.run_quantization),
    ExperimentSpec("text-sampling", "text", text_metrics.run_sampling),
    ExperimentSpec("text-halflife", "text", text_metrics.run_halflife),
    ExperimentSpec("appendix-ssl", "appendix", appendix.run_ssl),
    ExperimentSpec("appendix-disagg", "appendix", appendix.run_disaggregation),
    ExperimentSpec("ablation-sched", "ablation", ablations.run_scheduling),
    ExperimentSpec("ablation-earlystop", "ablation", ablations.run_earlystop),
    ExperimentSpec("ablation-nas", "ablation", ablations.run_nas),
    ExperimentSpec("ablation-compression", "ablation", ablations.run_compression),
    ExperimentSpec("ext-moe", "extension", extensions.run_moe),
    ExperimentSpec("ext-scopes", "extension", extensions.run_scopes),
    ExperimentSpec("ext-geo", "extension", extensions.run_geo),
    ExperimentSpec("ext-flselect", "extension", extensions.run_fl_selection),
    ExperimentSpec("ext-idle", "extension", extensions.run_idle),
    ExperimentSpec("ext-carbonnas", "extension", extensions.run_carbon_nas),
    ExperimentSpec("ext-leaderboard", "extension", extensions.run_leaderboard),
    ExperimentSpec("ext-predict", "extension", extensions.run_predictive_tracking),
    ExperimentSpec("ext-capacity", "extension", extensions.run_capacity),
    ExperimentSpec("ext-serving", "extension", extensions.run_serving_mechanics),
    ExperimentSpec("ext-sdc", "extension", extensions.run_sdc),
    ExperimentSpec("ext-tenancy", "extension", extensions.run_multitenancy),
    ExperimentSpec("ext-hwchoice", "extension", extensions.run_hardware_choice),
    ExperimentSpec("ext-asyncfl", "extension", extensions.run_async_fl),
    ExperimentSpec("ext-sharding", "extension", extensions.run_sharding),
    ExperimentSpec("ext-tvtracking", "extension", extensions.run_time_varying),
    ExperimentSpec("ext-autoscale", "extension", extensions.run_autoscale),
    ExperimentSpec("ext-forecast", "extension", extensions.run_forecast),
    ExperimentSpec("ext-uncertainty", "extension", extensions.run_uncertainty),
    ExperimentSpec("ext-ingestion", "extension", extensions.run_ingestion),
    ExperimentSpec("ext-bom", "extension", extensions.run_bom),
    ExperimentSpec("ext-mempool", "extension", extensions.run_memory_pooling),
    ExperimentSpec("ext-sweep", "extension", extensions.run_sweep_levers),
    ExperimentSpec("ext-genai-inventory", "extension", genai.run_inventory),
    ExperimentSpec("ext-genai-crossover", "extension", genai.run_crossover),
    ExperimentSpec("ext-genai-fleet", "extension", genai.run_fleet),
    ExperimentSpec("ext-genai-checkpoint", "extension", genai.run_checkpoint),
)

SPECS: dict[str, ExperimentSpec] = {s.experiment_id: s for s in _SPECS}
if len(SPECS) != len(_SPECS):
    raise RegistryError("duplicate experiment ids in the registry")

_CATEGORY_RANK = {category: rank for rank, category in enumerate(CATEGORY_ORDER)}
_REGISTRATION_INDEX = {s.experiment_id: i for i, s in enumerate(_SPECS)}
_ORDERED_IDS: tuple[str, ...] = tuple(
    sorted(
        SPECS,
        key=lambda eid: (_CATEGORY_RANK[SPECS[eid].category], _REGISTRATION_INDEX[eid]),
    )
)

#: Backwards-compatible id -> callable view of the registry.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    eid: SPECS[eid].runner for eid in _ORDERED_IDS
}


def experiment_ids() -> tuple[str, ...]:
    """All registered experiment ids in deterministic order.

    The order is explicit, not an accident of dict insertion: categories
    follow :data:`CATEGORY_ORDER` (figures, in-text metrics, appendix,
    ablations, extensions), and registration order breaks ties within a
    category.
    """
    return _ORDERED_IDS


def experiment_specs() -> tuple[ExperimentSpec, ...]:
    """All registered specs, in the same order as :func:`experiment_ids`."""
    return tuple(SPECS[eid] for eid in _ORDERED_IDS)


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up one spec by id, with a closest-match hint on failure."""
    try:
        return SPECS[experiment_id]
    except KeyError:
        matches = difflib.get_close_matches(experiment_id, _ORDERED_IDS, n=3, cutoff=0.4)
        hint = f" (did you mean: {', '.join(matches)}?)" if matches else ""
        known = ", ".join(_ORDERED_IDS)
        raise RegistryError(
            f"unknown experiment {experiment_id!r}{hint}; known: {known}"
        ) from None


def stable_seed(experiment_id: str, attempt: int = 0) -> int:
    """Deterministic 32-bit seed derived from the experiment id.

    ``attempt`` salts the seed on retries (retry-with-reseed): attempt 0
    reproduces the golden-baseline seed exactly, while a fault-driven
    retry re-rolls the global RNG stream so a seed-correlated transient
    failure is not replayed deterministically.
    """
    token = experiment_id if attempt == 0 else f"{experiment_id}#retry{attempt}"
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def run_experiment(experiment_id: str, attempt: int = 0) -> ExperimentResult:
    """Run one experiment by id.

    Global RNGs are seeded from the id first, so a result never depends on
    which experiments ran before it (or in which process).  ``attempt``
    feeds :func:`stable_seed`'s retry salt; the first attempt (0) is the
    canonical, baseline-pinned seeding.
    """
    spec = get_spec(experiment_id)
    seed = stable_seed(experiment_id, attempt)
    random.seed(seed)
    np.random.seed(seed)
    return spec.runner()
