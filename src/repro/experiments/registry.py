"""Registry mapping experiment ids to their runner callables."""

from __future__ import annotations

from typing import Callable

from repro.errors import RegistryError
from repro.experiments import (
    ablations,
    appendix,
    extensions,
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    text_metrics,
)
from repro.experiments.base import ExperimentResult

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig1": fig01.run,
    "fig2": fig02.run,
    "fig3": fig03.run,
    "fig4": fig04.run,
    "fig5": fig05.run,
    "fig6": fig06.run,
    "fig7": fig07.run,
    "fig8": fig08.run,
    "fig9": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "text-gpudays": text_metrics.run_gpudays,
    "text-quant": text_metrics.run_quantization,
    "text-sampling": text_metrics.run_sampling,
    "text-halflife": text_metrics.run_halflife,
    "appendix-ssl": appendix.run_ssl,
    "appendix-disagg": appendix.run_disaggregation,
    "ablation-sched": ablations.run_scheduling,
    "ablation-earlystop": ablations.run_earlystop,
    "ablation-nas": ablations.run_nas,
    "ablation-compression": ablations.run_compression,
    "ext-moe": extensions.run_moe,
    "ext-scopes": extensions.run_scopes,
    "ext-geo": extensions.run_geo,
    "ext-flselect": extensions.run_fl_selection,
    "ext-idle": extensions.run_idle,
    "ext-carbonnas": extensions.run_carbon_nas,
    "ext-leaderboard": extensions.run_leaderboard,
    "ext-predict": extensions.run_predictive_tracking,
    "ext-capacity": extensions.run_capacity,
    "ext-serving": extensions.run_serving_mechanics,
    "ext-sdc": extensions.run_sdc,
    "ext-tenancy": extensions.run_multitenancy,
    "ext-hwchoice": extensions.run_hardware_choice,
    "ext-asyncfl": extensions.run_async_fl,
    "ext-sharding": extensions.run_sharding,
    "ext-tvtracking": extensions.run_time_varying,
    "ext-autoscale": extensions.run_autoscale,
    "ext-forecast": extensions.run_forecast,
    "ext-uncertainty": extensions.run_uncertainty,
    "ext-ingestion": extensions.run_ingestion,
    "ext-bom": extensions.run_bom,
    "ext-mempool": extensions.run_memory_pooling,
}


def experiment_ids() -> tuple[str, ...]:
    """All registered experiment ids, figures first."""
    return tuple(EXPERIMENTS)


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(experiment_ids())
        raise RegistryError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return runner()
