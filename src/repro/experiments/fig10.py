"""Figure 10: GPU utilization histogram across experimentation workflows."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.fleet.utilization import (
    EXPERIMENTATION_UTILIZATION,
    utilization_histogram,
)


def run(n_workflows: int = 50_000, seed: int = 0) -> ExperimentResult:
    """The Figure-10 utilization histogram over synthetic workflows."""
    edges, fractions = utilization_histogram(
        n_workflows=n_workflows, bin_width=0.1, seed=seed
    )
    headers = ["utilization bin", "workflow fraction"]
    rows = [
        [f"{lo:.0%}-{lo + 0.1:.0%}", float(frac)]
        for lo, frac in zip(edges, fractions)
    ]
    dist = EXPERIMENTATION_UTILIZATION
    band_30_50, band_above_80 = dist.fractions_in_bands(((0.3, 0.5), (0.8, 1.0)))
    return ExperimentResult(
        experiment_id="fig10",
        title="GPU utilization of experimentation workflows",
        headline={
            "fraction_in_30_50_band": float(band_30_50),
            "mean_utilization": dist.mean,
            "mode_utilization": dist.mode,
            "fraction_above_80": float(band_above_80),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: 'a vast majority of model experimentation (over tens "
            "of thousands of training workflows) utilizes GPUs at only "
            "30-50%' — the 30-50% band holds the distribution's mode and "
            "the largest probability mass."
        ),
    )
