"""Per-experiment profiling: wall time, CPU time, peak RSS, cache traffic.

``sustainable-ai run --profile`` wraps every experiment execution in a
:class:`ProfileTimer`; the resulting :class:`ExperimentProfile` travels
back from pool workers inside the run record payloads, so the parent can
print a "slowest experiments" section and a run-wide substrate-cache
summary, and ``--json`` envelopes carry the numbers for offline analysis.

Only the standard library is used: ``resource.getrusage`` supplies the
peak-RSS high-water mark (no psutil dependency).  Note the high-water
semantics — the kernel reports the maximum RSS *since process start*, so
an experiment that runs after a larger one in the same worker reports
the larger experiment's peak.  Wall/CPU deltas are per-experiment exact.
"""

from __future__ import annotations

import resource
import sys
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core import memo


def process_peak_rss_kb() -> int:
    """Peak RSS of this process in KiB (high-water mark since start)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KiB elsewhere
        peak //= 1024
    return int(peak)


@dataclass(frozen=True)
class ExperimentProfile:
    """Resource usage of one experiment execution."""

    wall_s: float
    cpu_s: float
    peak_rss_kb: int
    #: Per-substrate cache-counter increments during the execution
    #: (see :data:`repro.core.memo.STAT_FIELDS` for the columns).
    cache: dict[str, dict[str, int]] = field(default_factory=dict)

    def to_payload(self) -> dict[str, object]:
        return {
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_rss_kb": self.peak_rss_kb,
            "cache": {name: dict(row) for name, row in sorted(self.cache.items())},
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ExperimentProfile":
        return cls(
            wall_s=float(payload["wall_s"]),
            cpu_s=float(payload["cpu_s"]),
            peak_rss_kb=int(payload["peak_rss_kb"]),
            cache={
                str(name): {str(k): int(v) for k, v in dict(row).items()}
                for name, row in dict(payload.get("cache", {})).items()
            },
        )


class ProfileTimer:
    """Context manager measuring one experiment execution.

    Usage::

        with ProfileTimer() as timer:
            result = run_experiment(exp_id)
        profile = timer.profile
    """

    def __init__(self) -> None:
        self.profile: ExperimentProfile | None = None
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._cache0: dict[str, dict[str, int]] = {}

    def __enter__(self) -> "ProfileTimer":
        self._cache0 = memo.stats_snapshot()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        self.profile = ExperimentProfile(
            wall_s=wall,
            cpu_s=cpu,
            peak_rss_kb=process_peak_rss_kb(),
            cache=memo.stats_delta(self._cache0, memo.stats_snapshot()),
        )


def merge_cache_stats(
    profiles: Mapping[str, ExperimentProfile],
) -> dict[str, dict[str, int]]:
    """Run-wide per-substrate cache counters across all profiles."""
    merged: dict[str, dict[str, int]] = {}
    for profile in profiles.values():
        memo.merge_stats(merged, profile.cache)
    return merged


def cache_hit_rate(stats: Mapping[str, Mapping[str, int]]) -> float | None:
    """Fraction of substrate calls served from either tier (None if no calls).

    A disk hit also counts as an in-process miss, so the rate is
    ``(hits + disk_hits) / (hits + misses + bypasses)``.
    """
    t = memo.totals(stats)
    calls = t["hits"] + t["misses"] + t["bypasses"]
    if calls == 0:
        return None
    return (t["hits"] + t["disk_hits"]) / calls


def render_profile_report(
    profiles: Mapping[str, ExperimentProfile], limit: int = 10
) -> str:
    """The ``--profile`` stdout section: slowest experiments + cache totals."""
    lines = [f"=== profile: slowest experiments (top {limit}) ==="]
    ranked = sorted(profiles.items(), key=lambda kv: kv[1].wall_s, reverse=True)
    for exp_id, p in ranked[:limit]:
        lines.append(
            f"  {exp_id:24s} wall {p.wall_s:8.3f}s  cpu {p.cpu_s:8.3f}s  "
            f"peak RSS {p.peak_rss_kb / 1024:7.1f} MiB"
        )
    total_wall = sum(p.wall_s for p in profiles.values())
    lines.append(f"  total experiment wall time: {total_wall:.3f}s")

    merged = merge_cache_stats(profiles)
    lines.append("=== profile: substrate cache ===")
    if not merged:
        lines.append("  no substrate cache traffic")
        return "\n".join(lines)
    for name in sorted(merged):
        row = merged[name]
        lines.append(
            f"  {name}: "
            + ", ".join(f"{k}={row[k]}" for k in memo.STAT_FIELDS if row[k])
        )
    t = memo.totals(merged)
    rate = cache_hit_rate(merged)
    lines.append(
        "  totals: "
        + ", ".join(f"{k}={t[k]}" for k in memo.STAT_FIELDS)
        + (f", hit_rate={rate:.1%}" if rate is not None else "")
    )
    return "\n".join(lines)


def profiles_from_records(records: Sequence[object]) -> dict[str, ExperimentProfile]:
    """Extract profiles from run records that carry one (skips the rest)."""
    out: dict[str, ExperimentProfile] = {}
    for record in records:
        profile = getattr(record, "profile", None)
        if profile is not None:
            out[record.experiment_id] = profile  # type: ignore[attr-defined]
    return out
