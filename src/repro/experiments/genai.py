"""GenAI extension experiments: LLM training + inference-serving scenarios.

The paper's workload mix (Figure 1's RM-dominated fleet) predates the
scaling-law era.  These experiments put the :mod:`repro.workloads.genai`
layer on the record with golden baselines:

* ``ext-genai-inventory`` — a model-family ladder's training footprint;
* ``ext-genai-crossover`` — when cumulative inference carbon overtakes
  the one-time training cost, and how lifetime QPS moves the crossover;
* ``ext-genai-fleet`` — embodied share of an autoscaled accelerator
  serving fleet (the Figure-9 utilization argument at fleet scale);
* ``ext-genai-checkpoint`` — checkpoint-interval sensitivity of training
  overhead around the Young/Daly optimum.

Everything is analytic or seeded — results are bit-reproducible and
pinned by ``sustainable-ai verify``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.base import ExperimentResult
from repro.workloads.genai import (
    MODEL_INVENTORY,
    default_genai_context,
    default_serving_spec,
    inventory_spec,
    lifetime_crossover,
    scale_qps,
    serving_fleet,
    training_footprint,
)

#: Lifetime horizon (days) for the inference-share headline.
LIFETIME_DAYS = 4 * 365


def run_inventory() -> ExperimentResult:
    """Training footprint of the LLM family ladder."""
    context = default_genai_context()
    headers = [
        "family", "params", "tokens", "EFLOPs", "device-hours",
        "wall-clock (d)", "IT energy (MWh)", "operational (t)",
        "embodied (t)", "total (t)",
    ]
    rows = []
    total_kg = 0.0
    largest = None
    for spec in MODEL_INVENTORY:
        fp = training_footprint(spec, context)
        total_kg += fp.total.kg
        if largest is None or fp.total.kg > largest[1].total.kg:
            largest = (spec, fp)
        rows.append(
            [
                spec.name,
                f"{spec.n_params:.2g}",
                f"{spec.n_tokens:.2g}",
                f"{spec.total_training_flops / 1e18:,.0f}",
                f"{spec.accelerator_hours:,.0f}",
                f"{spec.wall_clock_days:.1f}",
                f"{fp.it_energy.mwh:,.1f}",
                f"{fp.operational.kg / 1000:,.1f}",
                f"{fp.embodied.kg / 1000:,.1f}",
                f"{fp.total.kg / 1000:,.1f}",
            ]
        )
    assert largest is not None
    largest_spec, largest_fp = largest
    return ExperimentResult(
        experiment_id="ext-genai-inventory",
        title="GenAI model inventory: the training cost of an LLM ladder",
        headline={
            "inventory_total_tonnes": total_kg / 1000.0,
            "largest_run_mwh": largest_fp.facility_energy.mwh,
            "largest_run_device_hours": largest_spec.accelerator_hours,
            "largest_run_embodied_share": largest_fp.embodied_share,
            "overhead_multiplier": largest_spec.overhead_multiplier,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Chinchilla-proportioned 1B/7B/70B families plus a GPT-3-era "
            "under-trained 175B for contrast; 6*params*tokens FLOPs at the "
            "achieved MFU on tensor-core peaks, with checkpoint-write, "
            "lost-work, and failed-run overheads included.  The paper's "
            "operational/embodied split applies unchanged — only the "
            "workload scale is new."
        ),
    )


def run_crossover() -> ExperimentResult:
    """Training-vs-inference lifetime crossover vs lifetime QPS."""
    context = default_genai_context()
    training = inventory_spec("llm-7b")
    base = default_serving_spec(n_params=training.n_params, peak_qps=100.0)

    headers = [
        "peak QPS", "serving (kg/day)", "crossover (days)",
        "inference share @ 4 yr",
    ]
    rows = []
    for factor in (0.5, 1.0, 2.0, 4.0, 8.0):
        crossing = lifetime_crossover(training, scale_qps(base, factor), context)
        rows.append(
            [
                f"{base.peak_qps * factor:g}",
                f"{crossing.serving_kg_per_day:.1f}",
                f"{crossing.crossover_days:,.1f}",
                f"{crossing.inference_share_after(LIFETIME_DAYS):.1%}",
            ]
        )
    base_crossing = lifetime_crossover(training, base, context)
    doubled = lifetime_crossover(training, scale_qps(base, 2.0), context)
    return ExperimentResult(
        experiment_id="ext-genai-crossover",
        title="Training vs inference: the lifetime crossover",
        headline={
            "crossover_days_base": base_crossing.crossover_days,
            "crossover_days_2x_qps": doubled.crossover_days,
            "inference_share_4yr": base_crossing.inference_share_after(LIFETIME_DAYS),
            "serving_kg_per_day": base_crossing.serving_kg_per_day,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Serving carbon is linear in QPS, so doubling lifetime traffic "
            "halves the crossover — at popular-service traffic the "
            "inference stage dominates the life-cycle footprint within "
            "months, matching the paper's observation that inference "
            "accounts for ~1/3 of fleet-wide ML energy and grows with use."
        ),
    )


def run_fleet() -> ExperimentResult:
    """Embodied share of an autoscaled accelerator serving fleet."""
    context = default_genai_context()
    headers = [
        "peak QPS", "tier servers", "peak freed", "autoscale saving",
        "operational (t)", "embodied (t)", "embodied share",
    ]
    rows = []
    flagship = None
    for qps in (500.0, 2000.0, 8000.0):
        spec = default_serving_spec(n_params=7.0e9, peak_qps=qps)
        fleet = serving_fleet(spec, context)
        if qps == 2000.0:
            flagship = fleet
        rows.append(
            [
                f"{qps:g}",
                str(fleet.tier_servers),
                f"{fleet.autoscale.peak_freed_fraction:.1%}",
                f"{fleet.autoscale.energy_saving_fraction:.1%}",
                f"{fleet.operational.kg / 1000:.2f}",
                f"{fleet.embodied.kg / 1000:.2f}",
                f"{fleet.embodied_share:.1%}",
            ]
        )
    assert flagship is not None
    return ExperimentResult(
        experiment_id="ext-genai-fleet",
        title="GenAI serving fleet: autoscaling and the embodied share",
        headline={
            "tier_servers": float(flagship.tier_servers),
            "fleet_embodied_share": flagship.embodied_share,
            "autoscale_saving_fraction": flagship.autoscale.energy_saving_fraction,
            "peak_freed_fraction": flagship.autoscale.peak_freed_fraction,
        },
        headers=headers,
        rows=rows,
        notes=(
            "A tier sized for peak diurnal QPS frees servers off-peak "
            "(the paper: up to 25% of the web tier), but the *owned* "
            "fleet keeps amortizing manufacturing carbon around the "
            "clock — so autoscaling cuts operational carbon while "
            "raising the embodied share, the fleet-scale version of the "
            "paper's Figure 9 utilization argument."
        ),
    )


def run_checkpoint() -> ExperimentResult:
    """Checkpoint-interval sensitivity of training overhead."""
    context = default_genai_context()
    base = inventory_spec("llm-70b")
    ideal = replace(
        base, checkpoint_cost_hours=0.0, mtbf_hours=1e12, failed_run_fraction=0.0
    )
    ideal_kg = training_footprint(ideal, context).total.kg

    optimum = base.optimal_checkpoint_interval_hours
    headers = [
        "interval (h)", "write overhead", "lost-work overhead",
        "total overhead", "waste vs ideal (t)",
    ]
    rows = []
    for factor in (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 10.0):
        spec = replace(base, checkpoint_interval_hours=optimum * factor)
        kg = training_footprint(spec, context).total.kg
        rows.append(
            [
                f"{spec.checkpoint_interval_hours:.2f}",
                f"{spec.checkpoint_write_overhead:.2%}",
                f"{spec.expected_lost_work_fraction:.2%}",
                f"{spec.restart_overhead_fraction:.2%}",
                f"{(kg - ideal_kg) / 1000:.1f}",
            ]
        )
    at_optimum = replace(base, checkpoint_interval_hours=optimum)
    optimum_kg = training_footprint(at_optimum, context).total.kg
    return ExperimentResult(
        experiment_id="ext-genai-checkpoint",
        title="Checkpoint-overhead sensitivity around the Young/Daly optimum",
        headline={
            "young_daly_interval_hours": optimum,
            "overhead_fraction_at_optimum": at_optimum.restart_overhead_fraction,
            "overhead_fraction_at_1h": base.restart_overhead_fraction,
            "waste_tonnes_at_optimum": (optimum_kg - ideal_kg) / 1000.0,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Total overhead C/I + I/(2*MTBF) is minimized at the "
            "Young/Daly interval sqrt(2*C*MTBF); checkpointing too often "
            "burns writes, too rarely burns lost work, and both burn "
            "carbon in proportion to the run's energy.  Waste rows "
            "include the failed-run surcharge, which interval tuning "
            "cannot recover."
        ),
    )
