"""Appendix experiments: SSL efficiency and pipeline disaggregation."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.reliability.checkpoints import partial_recovery_benefit
from repro.reliability.disaggregation import PAPER_PIPELINE, disaggregation_impact
from repro.ssl_efficiency.pretraining import (
    SIMCLR_PRETRAINING,
    SUPERVISED_TRAINING,
    amortized_cost_per_task,
    effort_ratio,
    regimes_table,
)


def run_ssl() -> ExperimentResult:
    """Appendix C: supervised vs SSL vs PAWS training effort."""
    table = regimes_table()
    headers = [
        "regime",
        "top-1 (%)",
        "epochs",
        "labels",
        "epochs vs supervised",
        "GPU-hours",
        "carbon (kg)",
    ]
    rows = [
        [
            r["regime"],
            r["top1_accuracy"],
            r["epochs"],
            f"{float(r['label_fraction']):.0%}",
            f"{float(r['epochs_vs_supervised']):.2f}x",
            r["gpu_hours"],
            r["carbon_kg"],
        ]
        for r in table
    ]
    amortized_1 = amortized_cost_per_task(SIMCLR_PRETRAINING, 1)
    amortized_20 = amortized_cost_per_task(SIMCLR_PRETRAINING, 20)
    return ExperimentResult(
        experiment_id="appendix-ssl",
        title="Supervised vs self-/semi-supervised pre-training cost",
        headline={
            "ssl_vs_supervised_effort": effort_ratio(
                SIMCLR_PRETRAINING, SUPERVISED_TRAINING
            ),
            "ssl_amortized_over_20_tasks": amortized_20,
            "ssl_single_task_epochs": amortized_1,
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: labels are worth ~10x training effort (SimCLR 69.3% "
            "after 1000 epochs vs supervised 76.1% after 90); PAWS reaches "
            "75.5% in 200 epochs with 10% labels; amortizing one "
            "foundation pre-training across tasks closes the gap."
        ),
    )


def run_disaggregation() -> ExperimentResult:
    """Appendix B: disaggregated ingestion + fault-tolerant checkpointing."""
    impact = disaggregation_impact()
    recovery = partial_recovery_benefit()
    headers = ["metric", "value"]
    rows = [
        ["co-located end-to-end rate", PAPER_PIPELINE.colocated_rate],
        ["disaggregated end-to-end rate", PAPER_PIPELINE.disaggregated_rate],
        ["throughput gain", f"{impact.throughput_gain:.1%}"],
        ["trainer-hours saved", f"{impact.trainer_hours_saved_fraction:.1%}"],
        ["trainer embodied avoided (kg)", impact.trainer_embodied_avoided.kg],
        ["ingest tier embodied charged (kg)", impact.embodied_delta.kg],
        ["full-rollback failure overhead", f"{recovery['full_overhead']:.1%}"],
        ["partial-recovery failure overhead", f"{recovery['partial_overhead']:.1%}"],
    ]
    return ExperimentResult(
        experiment_id="appendix-disagg",
        title="Disaggregated data ingestion and fault tolerance",
        headline={
            "throughput_gain": impact.throughput_gain,
            "net_embodied_saving_kg": impact.net_embodied_saving,
            "recovery_overhead_reduction": 1.0
            - recovery["partial_overhead"] / recovery["full_overhead"],
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: disaggregating ingestion from training raises training "
            "throughput by 56% and, with checkpointing/partial recovery, "
            "cuts the carbon wasted on failure re-runs."
        ),
    )
