"""Golden-baseline regression harness for the experiment suite.

The reproduction's core correctness property is that the 40+ registered
experiments keep producing the calibrated ratios the paper reports.  This
module pins every experiment's headline metrics (and row shapes) into a
checked-in ``golden/baselines.json`` and diffs fresh runs against it with
per-metric relative tolerances:

* :func:`build_baselines` / :func:`write_baselines` snapshot a full run
  (``sustainable-ai verify --update``);
* :func:`load_baselines` / :func:`compare` produce a :class:`VerifyReport`
  with one :class:`Drift` per violation (``sustainable-ai verify``).

A tolerance of ``null`` in the JSON marks a metric informational — its
value is recorded for audit but never failed on (used for wall-clock
timings such as the sampling-study speedup).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.core.report import format_table
from repro.errors import SustainableAIError
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import DEFAULT_REL_TOL, get_spec

SCHEMA_VERSION = 1

#: The checked-in baselines at the repository root.
DEFAULT_BASELINES_PATH = Path(__file__).resolve().parents[3] / "golden" / "baselines.json"


class BaselineError(SustainableAIError, ValueError):
    """The baselines file is missing, malformed, or incompatible."""


@dataclass(frozen=True)
class Drift:
    """One baseline violation (or structural mismatch)."""

    experiment_id: str
    kind: str  # metric-drift | missing-metric | new-metric | shape | missing-baseline | stale-baseline | run-failure
    metric: str = ""
    expected: float | None = None
    actual: float | None = None
    rel_error: float | None = None
    tolerance: float | None = None
    detail: str = ""


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of diffing one run against the golden baselines."""

    drifts: tuple[Drift, ...]
    n_experiments: int
    n_metrics: int

    @property
    def ok(self) -> bool:
        return not self.drifts

    def render(self) -> str:
        """Readable drift report: summary line plus one row per drift."""
        summary = (
            f"golden verify: {self.n_experiments} experiment(s), "
            f"{self.n_metrics} metric(s) checked"
        )
        if self.ok:
            return f"{summary}\nOK — no drift beyond tolerance"
        headers = ["experiment", "metric", "kind", "expected", "actual", "rel-error", "tolerance"]
        rows = [
            [
                d.experiment_id,
                d.metric or "-",
                d.kind,
                "-" if d.expected is None else f"{d.expected:.6g}",
                "-" if d.actual is None else f"{d.actual:.6g}",
                "-" if d.rel_error is None else f"{d.rel_error:.3g}",
                "-" if d.tolerance is None else f"{d.tolerance:.3g}",
            ]
            for d in self.drifts
        ]
        table = format_table(headers, rows)
        details = [f"  {d.experiment_id}: {d.detail}" for d in self.drifts if d.detail]
        parts = [summary, f"DRIFT — {len(self.drifts)} violation(s)", "", table]
        if details:
            parts += [""] + details
        return "\n".join(parts)


def snapshot(result: ExperimentResult) -> dict[str, object]:
    """Baseline entry for one result: headline, tolerances, row shape."""
    spec = get_spec(result.experiment_id)
    headline = {k: float(v) for k, v in sorted(result.headline.items())}
    return {
        "title": result.title,
        "headline": headline,
        "tolerances": {k: spec.tolerance_for(k, result) for k in headline},
        "headers": list(result.headers),
        "n_rows": len(result.rows),
    }


def build_baselines(results: Mapping[str, ExperimentResult]) -> dict[str, object]:
    """Full baselines document for a run of (typically all) experiments."""
    return {
        "schema": SCHEMA_VERSION,
        "experiments": {eid: snapshot(res) for eid, res in results.items()},
    }


def write_baselines(path: Path, baselines: Mapping[str, object]) -> None:
    """Write a baselines document as stable, diff-friendly JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baselines, indent=2, sort_keys=True) + "\n")


def load_baselines(path: Path) -> dict[str, object]:
    """Load and validate a baselines document."""
    path = Path(path)
    if not path.exists():
        raise BaselineError(
            f"baselines file not found: {path} "
            "(generate it with `sustainable-ai verify --update`)"
        )
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baselines file {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "experiments" not in data:
        raise BaselineError(f"baselines file {path} lacks an 'experiments' section")
    if data.get("schema") != SCHEMA_VERSION:
        raise BaselineError(
            f"baselines file {path} has schema {data.get('schema')!r}; "
            f"this library reads schema {SCHEMA_VERSION}"
        )
    return data


def _relative_error(expected: float, actual: float) -> float:
    """Relative error vs the expected value (absolute error when expected=0)."""
    if expected == actual:
        return 0.0
    if expected == 0.0:
        return abs(actual)
    return abs(actual - expected) / abs(expected)


def compare(
    baselines: Mapping[str, object],
    results: Mapping[str, ExperimentResult],
    strict: bool = True,
) -> VerifyReport:
    """Diff a run against baselines.

    ``strict`` also flags baseline entries with no corresponding result
    (stale baselines); disable it when intentionally verifying a subset.
    """
    entries: Mapping[str, Mapping[str, object]] = baselines["experiments"]  # type: ignore[assignment]
    drifts: list[Drift] = []
    n_metrics = 0

    for eid, result in results.items():
        if eid not in entries:
            drifts.append(
                Drift(eid, "missing-baseline", detail="no baseline recorded; re-run with --update")
            )
            continue
        base = entries[eid]
        base_headline: Mapping[str, float] = base.get("headline", {})  # type: ignore[assignment]
        tolerances: Mapping[str, float | None] = base.get("tolerances", {})  # type: ignore[assignment]
        actual_headline = {k: float(v) for k, v in result.headline.items()}

        for metric in sorted(set(base_headline) | set(actual_headline)):
            if metric not in actual_headline:
                drifts.append(
                    Drift(eid, "missing-metric", metric, expected=float(base_headline[metric]))
                )
                continue
            if metric not in base_headline:
                drifts.append(Drift(eid, "new-metric", metric, actual=actual_headline[metric]))
                continue
            n_metrics += 1
            tolerance = tolerances.get(metric, DEFAULT_REL_TOL)
            if tolerance is None:
                continue  # informational metric
            expected = float(base_headline[metric])
            actual = actual_headline[metric]
            rel_error = _relative_error(expected, actual)
            if rel_error > tolerance:
                drifts.append(
                    Drift(eid, "metric-drift", metric, expected, actual, rel_error, tolerance)
                )

        base_headers = list(base.get("headers", []))
        if base_headers != list(result.headers):
            drifts.append(
                Drift(
                    eid,
                    "shape",
                    detail=f"headers changed: {base_headers!r} -> {list(result.headers)!r}",
                )
            )
        base_rows = base.get("n_rows")
        if base_rows is not None and int(base_rows) != len(result.rows):  # type: ignore[arg-type]
            drifts.append(
                Drift(eid, "shape", detail=f"row count changed: {base_rows} -> {len(result.rows)}")
            )

    if strict:
        for eid in entries:
            if eid not in results:
                drifts.append(
                    Drift(eid, "stale-baseline", detail="baseline has no matching experiment")
                )

    return VerifyReport(tuple(drifts), n_experiments=len(results), n_metrics=n_metrics)


def merge_failures(report: VerifyReport, failed_records) -> VerifyReport:
    """Fold failed :class:`~repro.experiments.base.RunRecord`s into a report.

    A crashed/timed-out experiment produced no result, so :func:`compare`
    would misreport its baseline as stale; this replaces those stale
    entries with honest ``run-failure`` drifts carrying the structured
    error, keeping `verify`'s exit nonzero and its table complete.
    """
    failed_ids = {record.experiment_id for record in failed_records}
    kept = tuple(
        d
        for d in report.drifts
        if not (d.kind == "stale-baseline" and d.experiment_id in failed_ids)
    )
    failures = tuple(
        Drift(
            record.experiment_id,
            "run-failure",
            detail=(
                f"{record.error_kind} after {record.attempts} attempt(s): "
                f"{record.error_message}"
            ),
        )
        for record in failed_records
    )
    return VerifyReport(
        kept + failures,
        n_experiments=report.n_experiments,
        n_metrics=report.n_metrics,
    )
