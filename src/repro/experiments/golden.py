"""Golden-baseline compatibility shim over the carbon ledger.

Historically this module owned drift detection: it pinned every
experiment's headline metrics into ``golden/baselines.json`` and diffed
fresh runs against that file.  The source of truth has since moved to
:mod:`repro.core.ledger` — an append-only, content-addressed store of
claim bundles with provenance — and ``sustainable-ai verify`` is now a
ledger diff against a pinned epoch (the checked-in baselines import as
epoch ``"0"``).

What remains here is the experiment-facing surface:

* the baselines *file* format (:func:`load_baselines`,
  :func:`write_baselines`, :func:`snapshot`, :func:`build_baselines`) —
  still the checked-in, diff-friendly representation of epoch 0;
* bridges from experiment results/records to claim bundles
  (:func:`bundle_from_result`, :func:`bundle_from_record`,
  :func:`bundles_from_results`);
* the legacy API (:func:`compare`, :func:`merge_failures`,
  :class:`Drift`, :class:`VerifyReport`), now thin delegations to
  :func:`repro.core.ledger.diff_bundles` / ``fold_failures`` — reports
  and exit codes are byte-identical to the pre-ledger implementation.

A tolerance of ``null`` in the JSON marks a metric informational — its
value is recorded for audit but never failed on (used for wall-clock
timings such as the sampling-study speedup).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.core import ledger
from repro.core.canonical import canonical_dumps
from repro.core.ledger import (  # noqa: F401  (legacy re-exports)
    Bundle,
    Claim,
    Drift,
    VerifyReport,
    bundles_from_baselines,
    diff_bundles,
    fold_failures,
    units_for_metric,
)
from repro.errors import SustainableAIError
from repro.experiments.base import ExperimentResult, RunRecord
from repro.experiments.registry import DEFAULT_REL_TOL, get_spec  # noqa: F401

SCHEMA_VERSION = 1

#: The checked-in baselines at the repository root.
DEFAULT_BASELINES_PATH = Path(__file__).resolve().parents[3] / "golden" / "baselines.json"


class BaselineError(SustainableAIError, ValueError):
    """The baselines file is missing, malformed, or incompatible."""


def snapshot(result: ExperimentResult) -> dict[str, object]:
    """Baseline entry for one result: headline, tolerances, row shape."""
    spec = get_spec(result.experiment_id)
    headline = {k: float(v) for k, v in sorted(result.headline.items())}
    return {
        "title": result.title,
        "headline": headline,
        "tolerances": {k: spec.tolerance_for(k, result) for k in headline},
        "headers": list(result.headers),
        "n_rows": len(result.rows),
    }


def build_baselines(results: Mapping[str, ExperimentResult]) -> dict[str, object]:
    """Full baselines document for a run of (typically all) experiments."""
    return {
        "schema": SCHEMA_VERSION,
        "experiments": {eid: snapshot(res) for eid, res in results.items()},
    }


def write_baselines(path: Path, baselines: Mapping[str, object]) -> None:
    """Write a baselines document as stable, diff-friendly JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_dumps(baselines) + "\n")


def load_baselines(path: Path) -> dict[str, object]:
    """Load and validate a baselines document."""
    path = Path(path)
    if not path.exists():
        raise BaselineError(
            f"baselines file not found: {path} "
            "(generate it with `sustainable-ai verify --update`)"
        )
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baselines file {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "experiments" not in data:
        raise BaselineError(f"baselines file {path} lacks an 'experiments' section")
    if data.get("schema") != SCHEMA_VERSION:
        raise BaselineError(
            f"baselines file {path} has schema {data.get('schema')!r}; "
            f"this library reads schema {SCHEMA_VERSION}"
        )
    return data


def _relative_error(expected: float, actual: float) -> float:
    """Relative error vs the expected value (absolute error when expected=0)."""
    return ledger._relative_error(expected, actual)


# ---------------------------------------------------------------------------
# Result/record -> claim bundle bridges
# ---------------------------------------------------------------------------


def bundle_from_result(
    result: ExperimentResult,
    *,
    substrates: Sequence[tuple[str, str | None]] = (),
    invariant_status: str = "not-checked",
    recorded_at: float | None = None,
    source: str = "runner",
) -> Bundle:
    """A claim bundle for one successful experiment result.

    Claims mirror the golden snapshot exactly — sorted headline metrics
    with the registry's per-metric tolerances — and the bundle carries
    the full result payload, so any historical report can be
    reconstructed byte-identically from the ledger.
    """
    spec = get_spec(result.experiment_id)
    claims = tuple(
        Claim(
            metric=metric,
            value=float(value),
            units=units_for_metric(metric),
            tolerance=spec.tolerance_for(metric, result),
        )
        for metric, value in sorted(result.headline.items())
    )
    config = {
        "shape": {
            "headers": list(result.headers),
            "n_rows": len(result.rows),
        }
    }
    return Bundle(
        experiment_id=result.experiment_id,
        title=result.title,
        status="ok",
        claims=claims,
        provenance=ledger.default_provenance(
            config=config,
            substrates=substrates,
            invariant_status=invariant_status,
            recorded_at=recorded_at,
            source=source,
        ),
        payload=result.to_payload(),
    )


def bundle_from_record(
    record: RunRecord,
    *,
    invariant_status: str = "not-checked",
    recorded_at: float | None = None,
    source: str = "runner",
) -> Bundle:
    """A claim bundle for one run record — success *or* structured failure.

    Failed records produce claimless ``status="failed"`` bundles carrying
    the structured error (kind, message, attempts), so a crashed run is
    ledgered as honestly as a passing one.
    """
    if record.ok:
        return bundle_from_result(
            record.result(),
            substrates=record.substrates,
            invariant_status=invariant_status,
            recorded_at=recorded_at,
            source=source,
        )
    return Bundle(
        experiment_id=record.experiment_id,
        title="",
        status="failed",
        claims=(),
        provenance=ledger.default_provenance(
            substrates=record.substrates,
            invariant_status=invariant_status,
            recorded_at=recorded_at,
            source=source,
        ),
        error={
            "kind": record.error_kind or "exception",
            "message": record.error_message or "",
            "attempts": record.attempts,
        },
    )


def bundles_from_results(
    results: Mapping[str, ExperimentResult],
    *,
    invariant_status: str = "not-checked",
    recorded_at: float | None = None,
    source: str = "runner",
) -> dict[str, Bundle]:
    """Claim bundles for a result mapping, preserving iteration order."""
    return {
        eid: bundle_from_result(
            result,
            invariant_status=invariant_status,
            recorded_at=recorded_at,
            source=source,
        )
        for eid, result in results.items()
    }


# ---------------------------------------------------------------------------
# Legacy diff API (delegates to the ledger)
# ---------------------------------------------------------------------------


def compare(
    baselines: Mapping[str, object],
    results: Mapping[str, ExperimentResult],
    strict: bool = True,
) -> VerifyReport:
    """Diff a run against baselines (now a ledger claim diff).

    ``strict`` also flags baseline entries with no corresponding result
    (stale baselines); disable it when intentionally verifying a subset.
    """
    baseline_bundles = bundles_from_baselines(baselines)
    current_bundles = bundles_from_results(results)
    return diff_bundles(baseline_bundles, current_bundles, strict=strict)


def merge_failures(report: VerifyReport, failed_records) -> VerifyReport:
    """Fold failed :class:`~repro.experiments.base.RunRecord`s into a report.

    A crashed/timed-out experiment produced no result, so :func:`compare`
    would misreport its baseline as stale; this replaces those stale
    entries with honest ``run-failure`` drifts carrying the structured
    error, keeping `verify`'s exit nonzero and its table complete.
    """
    failed_bundles = [bundle_from_record(record) for record in failed_records]
    return fold_failures(report, failed_bundles)
