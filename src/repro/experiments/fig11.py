"""Figure 11: federated learning vs centralized Transformer_Big training."""

from __future__ import annotations

from repro.edge.comparison import figure11_bars, fl_vs_centralized_ratio
from repro.edge.fl import analyze_app
from repro.edge.logs import FL1, FL2
from repro.experiments.base import ExperimentResult


def run(days: int = 90, seed: int = 0) -> ExperimentResult:
    """The Figure-11 FL-vs-centralized comparison bars."""
    bars = figure11_bars(days=days, seed=seed)
    headers = ["bar", "carbon (kg)", "setting"]
    rows = [[b.label, b.carbon.kg, b.setting] for b in bars]

    fl1 = analyze_app(FL1, days=days, seed=seed)
    fl2 = analyze_app(FL2, days=days, seed=seed + 1)
    return ExperimentResult(
        experiment_id="fig11",
        title="Federated learning carbon vs centralized training",
        headline={
            "fl_vs_p100_ratio": fl_vs_centralized_ratio(days, seed),
            "fl1_communication_share": fl1.communication_share,
            "fl2_communication_share": fl2.communication_share,
            "green_bars_near_zero": float(
                all(b.carbon.kg < 5.0 for b in bars if b.setting == "datacenter-green")
            ),
        },
        headers=headers,
        rows=rows,
        notes=(
            "Paper: two production FL apps emit carbon comparable to "
            "training Transformer_Big centrally; wireless communication is "
            "a significant share; the datacenter's green option does not "
            "exist at the edge (FL bars have no green variant)."
        ),
    )
