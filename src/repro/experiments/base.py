"""Common experiment result type and rendering.

Every experiment module exposes ``run(**kwargs) -> ExperimentResult``.
The result carries the same rows/series the corresponding paper figure
reports, plus a ``headline`` dict of the single numbers the paper quotes
in prose (these are what EXPERIMENTS.md tracks paper-vs-measured).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.report import format_table


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one reproduced figure/experiment."""

    experiment_id: str
    title: str
    headline: dict[str, float]
    headers: Sequence[str] = field(default_factory=tuple)
    rows: Sequence[Sequence[object]] = field(default_factory=tuple)
    notes: str = ""

    def render(self) -> str:
        """Human-readable rendering (what the bench harness prints)."""
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        if self.headline:
            for key, value in self.headline.items():
                lines.append(f"  {key}: {value:,.4g}")
        if self.rows:
            lines.append("")
            lines.append(format_table(self.headers, self.rows))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)
