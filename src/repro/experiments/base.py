"""Common experiment result type and rendering.

Every experiment module exposes ``run(**kwargs) -> ExperimentResult``.
The result carries the same rows/series the corresponding paper figure
reports, plus a ``headline`` dict of the single numbers the paper quotes
in prose (these are what EXPERIMENTS.md tracks paper-vs-measured).

Results are serializable: :meth:`ExperimentResult.to_payload` produces the
stable JSON schema used by ``sustainable-ai run --json`` and by the golden
baselines in ``golden/baselines.json``; :meth:`ExperimentResult.from_payload`
round-trips it.  An experiment that produces a headline metric which is
*not* bit-reproducible (e.g. a wall-clock speedup) declares that next to
the metric via ``tolerances``: a per-metric relative tolerance, or ``None``
to mark the metric informational (tracked in baselines, never failed on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.report import format_table
from repro.experiments.profiling import ExperimentProfile


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one reproduced figure/experiment."""

    experiment_id: str
    title: str
    headline: dict[str, float]
    headers: Sequence[str] = field(default_factory=tuple)
    rows: Sequence[Sequence[object]] = field(default_factory=tuple)
    notes: str = ""
    #: Per-metric relative tolerance overrides for golden verification.
    #: ``None`` marks a metric informational (e.g. wall-clock timings).
    tolerances: Mapping[str, float | None] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable rendering (what the bench harness prints)."""
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        if self.headline:
            for key, value in self.headline.items():
                lines.append(f"  {key}: {value:,.4g}")
        if self.rows:
            lines.append("")
            lines.append(format_table(self.headers, self.rows))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def to_payload(self) -> dict[str, object]:
        """JSON-serializable payload with a stable, sorted-key schema."""
        payload: dict[str, object] = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headline": {k: float(v) for k, v in self.headline.items()},
            "headers": list(self.headers),
            "rows": [[str(c) for c in row] for row in self.rows],
            "notes": self.notes,
        }
        if self.tolerances:
            payload["tolerances"] = dict(self.tolerances)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ExperimentResult":
        """Reconstruct a result from :meth:`to_payload` output.

        Row cells come back as strings (the payload stringifies them); the
        headline, shape, and tolerance information survives exactly.
        """
        return cls(
            experiment_id=str(payload["experiment_id"]),
            title=str(payload["title"]),
            headline={k: float(v) for k, v in dict(payload["headline"]).items()},
            headers=tuple(payload.get("headers", ())),
            rows=tuple(tuple(row) for row in payload.get("rows", ())),
            notes=str(payload.get("notes", "")),
            tolerances=dict(payload.get("tolerances", {})),
        )


@dataclass(frozen=True)
class RunRecord:
    """Outcome of attempting one experiment in a (possibly parallel) run.

    The runner never lets a single worker failure abort a fan-out: every
    experiment resolves to a record — ``status == "ok"`` with the result
    payload, or ``status == "failed"`` with a structured error
    (``error_kind`` is ``exception``, ``crash``, or ``timeout``) after the
    bounded retry budget is exhausted.
    """

    experiment_id: str
    status: str  # "ok" | "failed"
    attempts: int
    payload: Mapping[str, object] | None = None
    rendered: str | None = None
    error_kind: str | None = None
    error_message: str | None = None
    #: Resource usage of the successful execution (``run --profile`` only);
    #: ``None`` keeps the payload schema byte-identical to unprofiled runs.
    profile: ExperimentProfile | None = None
    #: ``(qualname, content digest)`` of every memoized substrate the
    #: execution consumed (see :func:`repro.core.memo.collect_substrates`).
    #: Ledger provenance only — never serialized into :meth:`to_payload`,
    #: so ``run --json`` bytes are unchanged by collection.
    substrates: tuple[tuple[str, str | None], ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def result(self) -> ExperimentResult:
        """The reconstructed result of a successful record."""
        if self.payload is None:
            raise ValueError(
                f"experiment {self.experiment_id} failed "
                f"({self.error_kind}); no result payload"
            )
        return ExperimentResult.from_payload(self.payload)

    def to_payload(self) -> dict[str, object]:
        """Stable JSON schema of this record.

        Successful records serialize as the plain result payload (the
        schema ``run --json`` has always written), so downstream
        consumers only see the envelope fields on failures.
        """
        if self.ok and self.payload is not None:
            payload = dict(self.payload)
            if self.profile is not None:
                payload["profile"] = self.profile.to_payload()
            return payload
        return {
            "experiment_id": self.experiment_id,
            "status": self.status,
            "attempts": self.attempts,
            "error": {
                "kind": self.error_kind or "exception",
                "message": self.error_message or "",
            },
        }

    def describe_failure(self) -> str:
        """One-paragraph human rendering of a failed record."""
        return (
            f"=== {self.experiment_id}: FAILED "
            f"({self.error_kind} after {self.attempts} attempt(s)) ===\n"
            f"  {self.error_message}"
        )
