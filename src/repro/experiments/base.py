"""Common experiment result type and rendering.

Every experiment module exposes ``run(**kwargs) -> ExperimentResult``.
The result carries the same rows/series the corresponding paper figure
reports, plus a ``headline`` dict of the single numbers the paper quotes
in prose (these are what EXPERIMENTS.md tracks paper-vs-measured).

Results are serializable: :meth:`ExperimentResult.to_payload` produces the
stable JSON schema used by ``sustainable-ai run --json`` and by the golden
baselines in ``golden/baselines.json``; :meth:`ExperimentResult.from_payload`
round-trips it.  An experiment that produces a headline metric which is
*not* bit-reproducible (e.g. a wall-clock speedup) declares that next to
the metric via ``tolerances``: a per-metric relative tolerance, or ``None``
to mark the metric informational (tracked in baselines, never failed on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.report import format_table


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one reproduced figure/experiment."""

    experiment_id: str
    title: str
    headline: dict[str, float]
    headers: Sequence[str] = field(default_factory=tuple)
    rows: Sequence[Sequence[object]] = field(default_factory=tuple)
    notes: str = ""
    #: Per-metric relative tolerance overrides for golden verification.
    #: ``None`` marks a metric informational (e.g. wall-clock timings).
    tolerances: Mapping[str, float | None] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable rendering (what the bench harness prints)."""
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        if self.headline:
            for key, value in self.headline.items():
                lines.append(f"  {key}: {value:,.4g}")
        if self.rows:
            lines.append("")
            lines.append(format_table(self.headers, self.rows))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def to_payload(self) -> dict[str, object]:
        """JSON-serializable payload with a stable, sorted-key schema."""
        payload: dict[str, object] = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headline": {k: float(v) for k, v in self.headline.items()},
            "headers": list(self.headers),
            "rows": [[str(c) for c in row] for row in self.rows],
            "notes": self.notes,
        }
        if self.tolerances:
            payload["tolerances"] = dict(self.tolerances)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ExperimentResult":
        """Reconstruct a result from :meth:`to_payload` output.

        Row cells come back as strings (the payload stringifies them); the
        headline, shape, and tolerance information survives exactly.
        """
        return cls(
            experiment_id=str(payload["experiment_id"]),
            title=str(payload["title"]),
            headline={k: float(v) for k, v in dict(payload["headline"]).items()},
            headers=tuple(payload.get("headers", ())),
            rows=tuple(tuple(row) for row in payload.get("rows", ())),
            notes=str(payload.get("notes", "")),
            tolerances=dict(payload.get("tolerances", {})),
        )
