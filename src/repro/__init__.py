"""sustainable-ai-repro: holistic operational + embodied carbon accounting
for machine-learning systems.

Reproduction of Wu et al., "Sustainable AI: Environmental Implications,
Challenges and Opportunities" (MLSys 2022).

Quickstart::

    from repro import FootprintAnalyzer, TaskDescription, PhaseWorkload, Phase

    task = TaskDescription(
        name="my-model",
        workloads=(
            PhaseWorkload(Phase.OFFLINE_TRAINING, device_hours=5_000),
            PhaseWorkload(Phase.INFERENCE, device_hours=20_000),
        ),
    )
    print(FootprintAnalyzer().analyze(task).describe())
"""

from repro._version import __version__
from repro.core.analyzer import FootprintAnalyzer, PhaseWorkload, TaskDescription


def run_experiment(experiment_id: str):
    """Run one of the paper's reproduced experiments by id.

    Thin convenience over :func:`repro.experiments.registry.run_experiment`
    (imported lazily so `import repro` stays light).
    """
    from repro.experiments.registry import run_experiment as _run

    return _run(experiment_id)


def experiment_ids() -> tuple[str, ...]:
    """Ids of every reproduced figure / in-text claim / extension."""
    from repro.experiments.registry import experiment_ids as _ids

    return _ids()


def verify_experiments(baselines_path=None, jobs: int = 1):
    """Run every experiment and diff it against the golden baselines.

    Returns a :class:`repro.experiments.golden.VerifyReport`; ``report.ok``
    is the pass/fail verdict the ``sustainable-ai verify`` CLI exposes as
    its exit code.
    """
    from repro.experiments import golden
    from repro.experiments.base import ExperimentResult
    from repro.experiments.registry import experiment_ids as _ids
    from repro.experiments.runner import _run_many

    outputs = _run_many(_ids(), jobs)
    results = {
        out["payload"]["experiment_id"]: ExperimentResult.from_payload(out["payload"])
        for out in outputs
    }
    baselines = golden.load_baselines(baselines_path or golden.DEFAULT_BASELINES_PATH)
    return golden.compare(baselines, results)


from repro.core.footprint import (
    EmbodiedFootprint,
    OperationalFootprint,
    Phase,
    TotalFootprint,
)
from repro.core.quantities import Carbon, Energy, Power
from repro.core.scenario import Scenario, evaluate_work, utilization_sweep

__all__ = [
    "Carbon",
    "EmbodiedFootprint",
    "Energy",
    "FootprintAnalyzer",
    "OperationalFootprint",
    "Phase",
    "PhaseWorkload",
    "Power",
    "Scenario",
    "TaskDescription",
    "TotalFootprint",
    "__version__",
    "evaluate_work",
    "experiment_ids",
    "run_experiment",
    "utilization_sweep",
    "verify_experiments",
]
