"""AccountingContext: the one bundle of accounting assumptions.

The paper's footprint identity has three knobs that every simulator must
agree on: the grid (time-varying hourly intensity, or a static average),
facility overhead (PUE), and how embodied manufacturing carbon is
amortized over server lifetime.  :class:`AccountingContext` bundles them
so a simulator takes *one* object instead of re-implementing the
arithmetic — the consolidation argument of ACT (Gupta et al.) and
experiment-impact-tracker (Henderson et al.) applied to this codebase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import math

from repro.carbon.embodied import AmortizationPolicy
from repro.core.quantities import Carbon, Energy
from repro.core.series import HourlySeries, runtime_checks_enabled
from repro.errors import InvariantViolation, UnitError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (grid imports core)
    from repro.carbon.grid import GridTrace
    from repro.carbon.intensity import CarbonIntensity


@dataclass(frozen=True)
class AccountingContext:
    """Grid, PUE, and embodied-amortization policy in one object.

    Exactly one of ``grid`` (hourly :class:`~repro.carbon.grid.GridTrace`)
    or ``intensity`` (static :class:`~repro.carbon.intensity.CarbonIntensity`)
    drives operational accounting; supplying neither leaves operational
    methods unusable (embodied-only contexts are valid).
    """

    grid: Optional["GridTrace"] = None
    intensity: Optional["CarbonIntensity"] = None
    pue: float = 1.0
    amortization: AmortizationPolicy = field(default_factory=AmortizationPolicy)

    def __post_init__(self) -> None:
        if self.grid is not None and self.intensity is not None:
            raise UnitError(
                "provide either a time-varying grid or a static intensity, not both"
            )
        if not (math.isfinite(self.pue) and self.pue >= 1.0):
            # `self.pue < 1.0` alone is False for NaN, which would let a
            # NaN PUE silently poison every downstream footprint.
            raise UnitError(f"PUE must be finite and >= 1, got {self.pue}")

    # -- facility overhead -------------------------------------------------
    def facility_series(self, it_series: HourlySeries) -> HourlySeries:
        """Facility-level hourly kWh for an IT-level hourly kWh series."""
        return it_series.scale(self.pue)

    def facility_energy(self, it_energy: Energy) -> Energy:
        """Facility-level energy for IT-level energy."""
        return Energy(it_energy.kwh * self.pue)

    # -- operational carbon ------------------------------------------------
    def operational(self, it_series: HourlySeries, start_hour: int = 0) -> Carbon:
        """Operational carbon of an IT-level hourly kWh series.

        Applies PUE, then integrates against the context's grid (hour by
        hour) or static intensity (on total energy).
        """
        facility = self.facility_series(it_series)
        if runtime_checks_enabled():
            # PUE-amplification invariant: facility energy is exactly
            # PUE x IT energy, and with PUE >= 1 it never shrinks.
            it_total, facility_total = it_series.total(), facility.total()
            if facility_total < it_total * (1 - 1e-9) or not math.isclose(
                facility_total, self.pue * it_total, rel_tol=1e-9, abs_tol=1e-12
            ):
                raise InvariantViolation(
                    f"PUE amplification broke: facility {facility_total} kWh vs "
                    f"pue({self.pue}) x IT {it_total} kWh"
                )
        if self.grid is not None:
            return facility.emissions(self.grid, start_hour=start_hour)
        if self.intensity is not None:
            return Carbon(facility.total() * self.intensity.kg_per_kwh)
        raise UnitError("accounting context has neither a grid nor an intensity")

    def operational_for_energy(self, it_energy: Energy) -> Carbon:
        """Operational carbon of a total IT energy under a static intensity.

        With a time-varying grid this uses the grid's *average* intensity —
        use :meth:`operational` with an hourly series when timing matters.
        """
        facility = self.facility_energy(it_energy)
        if self.intensity is not None:
            return Carbon(facility.kwh * self.intensity.kg_per_kwh)
        if self.grid is not None:
            return Carbon(facility.kwh * self.grid.average_intensity().kg_per_kwh)
        raise UnitError("accounting context has neither a grid nor an intensity")

    # -- embodied carbon ---------------------------------------------------
    def amortized_embodied(
        self, manufacturing: Carbon, server_hours: float, n_servers: float = 1.0
    ) -> Carbon:
        """Embodied carbon of ``server_hours`` of utilized server time.

        Uncapped linear amortization at the policy rate — attribution
        studies (e.g. a model family's whole training program) routinely
        attribute more hours than one server's lifetime, which is
        physically many servers' worth of manufacturing.  Use
        ``amortization.amortize`` directly when a per-task cap is wanted.
        """
        if server_hours < 0:
            raise UnitError(f"server hours must be non-negative, got {server_hours}")
        rate = self.amortization.rate_per_utilized_hour(manufacturing)
        return Carbon(rate * server_hours * n_servers)
