"""Footprint records: operational + embodied carbon, with breakdowns.

The paper's central accounting identity::

    total = operational (energy x carbon intensity, across ML phases)
          + embodied    (manufacturing carbon amortized over the share of
                         hardware life consumed by the task)

Operational footprints are broken down by ML development phase (offline
training — which folds in experimentation —, online training, inference)
matching the stacked bars of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.quantities import Carbon, Energy, carbon_sum, energy_sum
from repro.errors import UnitError


class Phase(str, Enum):
    """Phases of the ML model development cycle (Section II-A).

    ``DATA`` covers storage + ingestion; ``EXPERIMENTATION`` the research
    sweep; ``OFFLINE_TRAINING`` the production training with historical
    data; ``ONLINE_TRAINING`` continuous refresh (recommendation models);
    ``INFERENCE`` serving.
    """

    DATA = "data"
    EXPERIMENTATION = "experimentation"
    OFFLINE_TRAINING = "offline-training"
    ONLINE_TRAINING = "online-training"
    INFERENCE = "inference"


#: Order used for rendering stacked breakdowns, matching Figure 4's legend.
PHASE_ORDER: tuple[Phase, ...] = (
    Phase.DATA,
    Phase.EXPERIMENTATION,
    Phase.OFFLINE_TRAINING,
    Phase.ONLINE_TRAINING,
    Phase.INFERENCE,
)


@dataclass(frozen=True, slots=True)
class PhaseFootprint:
    """Energy and carbon attributed to one phase of one ML task."""

    phase: Phase
    energy: Energy
    carbon: Carbon

    def scaled(self, factor: float) -> "PhaseFootprint":
        if factor < 0:
            raise UnitError(f"scale factor must be non-negative, got {factor}")
        return PhaseFootprint(self.phase, self.energy * factor, self.carbon * factor)


@dataclass(frozen=True)
class OperationalFootprint:
    """Operational (product-use) footprint of an ML task, by phase."""

    phases: tuple[PhaseFootprint, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen: set[Phase] = set()
        for pf in self.phases:
            if pf.phase in seen:
                raise UnitError(f"duplicate phase in footprint: {pf.phase}")
            seen.add(pf.phase)

    @classmethod
    def from_mapping(cls, mapping: dict[Phase, tuple[Energy, Carbon]]):
        return cls(
            tuple(
                PhaseFootprint(phase, energy, carbon)
                for phase, (energy, carbon) in mapping.items()
            )
        )

    @property
    def energy(self) -> Energy:
        return energy_sum(pf.energy for pf in self.phases)

    @property
    def carbon(self) -> Carbon:
        return carbon_sum(pf.carbon for pf in self.phases)

    def phase_carbon(self, phase: Phase) -> Carbon:
        for pf in self.phases:
            if pf.phase is phase:
                return pf.carbon
        return Carbon.zero()

    def phase_energy(self, phase: Phase) -> Energy:
        for pf in self.phases:
            if pf.phase is phase:
                return pf.energy
        return Energy.zero()

    def carbon_shares(self) -> dict[Phase, float]:
        """Fraction of operational carbon per phase (empty if total is 0)."""
        total = self.carbon.kg
        if total == 0:
            return {}
        return {pf.phase: pf.carbon.kg / total for pf in self.phases}

    def energy_shares(self) -> dict[Phase, float]:
        """Fraction of operational energy per phase (empty if total is 0)."""
        total = self.energy.kwh
        if total == 0:
            return {}
        return {pf.phase: pf.energy.kwh / total for pf in self.phases}

    def training_inference_split(self) -> tuple[float, float]:
        """(training-side, inference) carbon fractions.

        Training side aggregates experimentation + offline + online
        training; data is excluded to match Figure 4's categories.
        """
        train = (
            self.phase_carbon(Phase.EXPERIMENTATION)
            + self.phase_carbon(Phase.OFFLINE_TRAINING)
            + self.phase_carbon(Phase.ONLINE_TRAINING)
        )
        infer = self.phase_carbon(Phase.INFERENCE)
        total = train.kg + infer.kg
        if total == 0:
            return (0.0, 0.0)
        return (train.kg / total, infer.kg / total)

    def merged(self, other: "OperationalFootprint") -> "OperationalFootprint":
        """Phase-wise sum of two operational footprints."""
        acc: dict[Phase, tuple[Energy, Carbon]] = {
            pf.phase: (pf.energy, pf.carbon) for pf in self.phases
        }
        for pf in other.phases:
            if pf.phase in acc:
                e, c = acc[pf.phase]
                acc[pf.phase] = (e + pf.energy, c + pf.carbon)
            else:
                acc[pf.phase] = (pf.energy, pf.carbon)
        ordered = {p: acc[p] for p in PHASE_ORDER if p in acc}
        return OperationalFootprint.from_mapping(ordered)


@dataclass(frozen=True, slots=True)
class EmbodiedFootprint:
    """Manufacturing carbon amortized onto an ML task.

    ``total_manufacturing`` is the full manufacturing footprint of the
    hardware involved; ``amortized`` is the share attributed to this task
    (per the life-cycle amortization model in :mod:`repro.carbon.embodied`).
    """

    amortized: Carbon
    total_manufacturing: Carbon = Carbon.zero()

    def __post_init__(self) -> None:
        if self.total_manufacturing.kg and self.amortized.kg > self.total_manufacturing.kg * (1 + 1e-9):
            raise UnitError(
                "amortized embodied carbon cannot exceed total manufacturing carbon"
            )


@dataclass(frozen=True, slots=True)
class TotalFootprint:
    """Combined operational + embodied footprint of one ML task."""

    name: str
    operational: OperationalFootprint
    embodied: EmbodiedFootprint

    @property
    def carbon(self) -> Carbon:
        return self.operational.carbon + self.embodied.amortized

    @property
    def embodied_share(self) -> float:
        total = self.carbon.kg
        if total == 0:
            return 0.0
        return self.embodied.amortized.kg / total

    @property
    def operational_share(self) -> float:
        total = self.carbon.kg
        if total == 0:
            return 0.0
        return self.operational.carbon.kg / total

    def describe(self) -> str:
        return (
            f"{self.name}: total {self.carbon}, "
            f"operational {self.operational.carbon} "
            f"({self.operational_share:.0%}), "
            f"embodied {self.embodied.amortized} ({self.embodied_share:.0%})"
        )
