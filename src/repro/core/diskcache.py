"""Content-addressed disk tier for the substrate memo cache.

The in-process tier of :mod:`repro.core.memo` dies with its process, so
every ``ProcessPoolExecutor`` worker used to rebuild the same seeded grid
traces, demand curves, and interaction datasets from scratch.  This module
adds a second, cross-process tier: substrate values are pickled to a cache
directory under a content-addressed name, so any process (a pool worker, a
later ``sustainable-ai run``) warm-starts from disk instead of rebuilding.

Addressing
----------
An entry's filename is ``sha256(qualname | salt | canonical-args)`` where

* ``qualname`` is the substrate function's qualified name,
* ``salt`` folds in the numpy / repro / Python versions, so a library
  upgrade can never serve values built by different float kernels, and
* the canonical argument token (:func:`canonical_token`) is a stable,
  process-independent rendering of the call arguments (dataclasses by
  field, floats by exact ``repr``, arrays by content digest).

Durability
----------
Writes go to a temporary file in the cache directory followed by an
atomic :func:`os.replace`, so a crashed or concurrent writer can never
leave a half-written entry under the final name.  Reads verify a sha256
checksum recorded in the entry header; a truncated, corrupted, or
unreadable entry is treated as a miss (the caller rebuilds and rewrites)
— correctness never depends on the disk tier.

The tier is opt-in through the :data:`CACHE_DIR_ENV_VAR` environment
variable (the CLI enables it by default for ``run``/``report``/``verify``;
see :mod:`repro.experiments.runner`).  Setting it to ``off``, ``none`` or
``0`` disables the tier explicitly.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
from pathlib import Path

import numpy as np

from repro.version import code_version

#: Environment variable naming the disk-tier directory.  Workers inherit
#: it from the parent, which is what makes the tier cross-process.
CACHE_DIR_ENV_VAR = "SUSTAINABLE_AI_CACHE_DIR"

#: Values of :data:`CACHE_DIR_ENV_VAR` that explicitly disable the tier.
DISABLED_VALUES = frozenset({"", "0", "off", "none", "disabled"})

#: Entry header magic; bump when the on-disk layout changes.
_MAGIC = b"SAICACHE1"


class UncacheableArgument(TypeError):
    """An argument has no stable canonical rendering (no disk caching)."""


def default_cache_dir() -> Path:
    """The directory the CLI uses when the environment does not say.

    Follows the XDG convention: ``$XDG_CACHE_HOME/sustainable-ai`` or
    ``~/.cache/sustainable-ai``.
    """
    base = os.environ.get("XDG_CACHE_HOME", "")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "sustainable-ai" / "substrates"


def resolve_cache_dir() -> Path | None:
    """The active disk-tier directory, or ``None`` when the tier is off.

    Only the environment variable is consulted here — library code never
    silently writes to a default location; enabling the default directory
    is a CLI decision (see the runner's ``--cache-dir``).
    """
    raw = os.environ.get(CACHE_DIR_ENV_VAR)
    if raw is None or raw.strip().lower() in DISABLED_VALUES:
        return None
    return Path(raw)


def cache_salt() -> str:
    """Version salt folded into every entry address.

    Substrates are pure functions of their arguments *given* the library
    stack; different numpy/repro/Python versions may produce different
    bits, so they must never share entries.  The salt is the
    :mod:`repro.version` code-version identity — the same triple the
    ledger records in claim provenance, so a cache address and a
    provenance record can never disagree about what produced a value.
    """
    return code_version().salt()


def canonical_token(obj: object) -> str:
    """A stable, process-independent rendering of one argument value.

    Supports the value vocabulary substrates actually use: scalars,
    strings, tuples/lists/dicts, enums, numpy scalars and arrays, and
    (frozen) dataclasses rendered field by field.  Floats use ``repr``,
    which is exact for round-tripping.  Anything else raises
    :class:`UncacheableArgument` — the caller falls back to memory-only
    caching rather than guessing at identity.
    """
    if obj is None or isinstance(obj, (bool, int)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, str):
        return repr(obj)
    if isinstance(obj, bytes):
        return f"bytes:{hashlib.sha256(obj).hexdigest()}"
    if isinstance(obj, enum.Enum):
        return f"enum:{type(obj).__module__}.{type(obj).__qualname__}.{obj.name}"
    if isinstance(obj, np.generic):
        return f"np:{obj.dtype}:{obj.item()!r}"
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()
        return f"nd:{obj.dtype}:{obj.shape}:{digest}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={canonical_token(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"dc:{type(obj).__module__}.{type(obj).__qualname__}({fields})"
    if isinstance(obj, (tuple, list)):
        kind = "t" if isinstance(obj, tuple) else "l"
        return f"{kind}({','.join(canonical_token(item) for item in obj)})"
    if isinstance(obj, (dict,)):
        items = ",".join(
            f"{canonical_token(k)}:{canonical_token(v)}"
            for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return f"d({items})"
    raise UncacheableArgument(
        f"cannot build a canonical cache token for {type(obj).__qualname__}"
    )


def entry_digest(qualname: str, args_token: str) -> str:
    """Content address of one substrate entry.

    This digest is both the disk filename stem and the substrate hash the
    ledger records in claim provenance (:mod:`repro.core.ledger`): an
    auditor holding a ledger trace can locate the exact cached input
    files a reported number was computed from.
    """
    return hashlib.sha256(
        f"{qualname}|{cache_salt()}|{args_token}".encode("utf-8")
    ).hexdigest()


def entry_path(cache_dir: Path, qualname: str, args_token: str) -> Path:
    """Content-addressed path of one substrate entry."""
    digest = entry_digest(qualname, args_token)
    safe = "".join(c if (c.isalnum() or c in "._-") else "_" for c in qualname)
    return cache_dir / safe / f"{digest}.pkl"


def load(path: Path) -> tuple[bool, object]:
    """``(hit, value)`` for one entry; any corruption reads as a miss.

    A missing file, a bad magic/header, a checksum mismatch (truncation,
    bit rot), or an unpicklable body all return ``(False, None)`` — the
    caller rebuilds and overwrites.
    """
    try:
        blob = path.read_bytes()
    except OSError:
        return False, None
    try:
        header, _, body = blob.partition(b"\n")
        magic, _, digest = header.partition(b" ")
        if magic != _MAGIC or not digest:
            return False, None
        if hashlib.sha256(body).hexdigest().encode("ascii") != digest:
            return False, None
        return True, pickle.loads(body)
    except Exception:
        # Unpickling a corrupt body can raise nearly anything (EOFError,
        # UnpicklingError, AttributeError on a renamed class, ...); every
        # failure mode means the same thing: rebuild.
        return False, None


def store(path: Path, value: object) -> bool:
    """Atomically write one entry; best-effort (False on any OS error).

    The temp file lives in the destination directory so ``os.replace``
    stays on one filesystem and is atomic; a concurrent writer racing on
    the same entry simply wins with identical bytes.
    """
    try:
        body = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return False
    header = _MAGIC + b" " + hashlib.sha256(body).hexdigest().encode("ascii") + b"\n"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(header)
                handle.write(body)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False
    return True


def disk_stats(cache_dir: Path) -> dict[str, dict[str, int]]:
    """Per-substrate ``{entries, bytes}`` of one cache directory."""
    stats: dict[str, dict[str, int]] = {}
    if not cache_dir.is_dir():
        return stats
    for sub in sorted(cache_dir.iterdir()):
        if not sub.is_dir():
            continue
        entries = [p for p in sub.iterdir() if p.suffix == ".pkl"]
        if entries:
            stats[sub.name] = {
                "entries": len(entries),
                "bytes": sum(p.stat().st_size for p in entries),
            }
    return stats


def clear_disk(cache_dir: Path) -> int:
    """Delete every entry under ``cache_dir``; returns the count removed."""
    removed = 0
    if not cache_dir.is_dir():
        return removed
    for sub in cache_dir.iterdir():
        if not sub.is_dir():
            continue
        for entry in sub.iterdir():
            if entry.suffix in (".pkl", ".tmp"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        try:
            sub.rmdir()
        except OSError:
            pass
    return removed
