"""Efficiency metrics and carbon-normalized leaderboards (Section V-A).

The appendix diagnoses a "lack of normalization factors: algorithmic
progress ... presented in some measure of model accuracy but without
considering resource requirement as a normalization factor".  This module
supplies the missing machinery:

* :class:`Submission` — a (quality, energy, carbon, hardware) record, the
  disclosure the paper asks every result to carry;
* efficiency scores — quality per kWh / per kgCO2e, and the
  "quality-at-budget" selection a green leaderboard would run;
* :class:`Leaderboard` — ranks submissions under a chosen policy and
  reports how the ranking *changes* once efficiency counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.quantities import Carbon, Energy
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class Submission:
    """One leaderboard entry with its environmental disclosure."""

    name: str
    quality: float  # higher is better (accuracy, BLEU, ...)
    energy: Energy
    carbon: Carbon
    hardware: str = "unspecified"

    def __post_init__(self) -> None:
        if self.energy.kwh <= 0:
            raise UnitError("a submission must disclose positive energy")

    @property
    def quality_per_kwh(self) -> float:
        return self.quality / self.energy.kwh

    @property
    def quality_per_kg(self) -> float:
        if self.carbon.kg == 0:
            return float("inf")
        return self.quality / self.carbon.kg


class RankingPolicy(str, Enum):
    """How a leaderboard orders submissions."""

    QUALITY_ONLY = "quality-only"
    QUALITY_PER_KWH = "quality-per-kwh"
    QUALITY_PER_KG = "quality-per-kg"
    QUALITY_AT_BUDGET = "quality-at-budget"


@dataclass(frozen=True)
class Leaderboard:
    """A set of submissions rankable under different policies."""

    submissions: tuple[Submission, ...]

    def __post_init__(self) -> None:
        if not self.submissions:
            raise UnitError("leaderboard needs at least one submission")
        names = [s.name for s in self.submissions]
        if len(names) != len(set(names)):
            raise UnitError("submission names must be unique")

    def rank(
        self,
        policy: RankingPolicy = RankingPolicy.QUALITY_ONLY,
        carbon_budget: Carbon | None = None,
    ) -> list[Submission]:
        """Submissions best-first under ``policy``.

        ``QUALITY_AT_BUDGET`` drops entries exceeding ``carbon_budget``
        and ranks the rest by quality — the "competitive accuracy at fixed
        environmental cost" framing of Section IV.
        """
        subs = list(self.submissions)
        if policy is RankingPolicy.QUALITY_ONLY:
            return sorted(subs, key=lambda s: -s.quality)
        if policy is RankingPolicy.QUALITY_PER_KWH:
            return sorted(subs, key=lambda s: -s.quality_per_kwh)
        if policy is RankingPolicy.QUALITY_PER_KG:
            return sorted(subs, key=lambda s: -s.quality_per_kg)
        if carbon_budget is None:
            raise UnitError("QUALITY_AT_BUDGET requires a carbon budget")
        eligible = [s for s in subs if s.carbon.kg <= carbon_budget.kg]
        if not eligible:
            raise UnitError("no submission fits the carbon budget")
        return sorted(eligible, key=lambda s: -s.quality)

    def winner(
        self,
        policy: RankingPolicy = RankingPolicy.QUALITY_ONLY,
        carbon_budget: Carbon | None = None,
    ) -> Submission:
        return self.rank(policy, carbon_budget)[0]

    def ranking_change(
        self, policy: RankingPolicy, carbon_budget: Carbon | None = None
    ) -> int:
        """How many positions move between quality-only and ``policy``.

        A nonzero value is the quantitative form of the paper's point:
        once efficiency counts, "progress" reorders.
        """
        base = [s.name for s in self.rank(RankingPolicy.QUALITY_ONLY)]
        other = [s.name for s in self.rank(policy, carbon_budget)]
        moved = 0
        for name in other:
            if name in base and base.index(name) != other.index(name):
                moved += 1
        # Entries excluded by a budget count as moved.
        moved += sum(1 for name in base if name not in other)
        return moved


def marginal_quality_cost(
    cheap: Submission, expensive: Submission
) -> dict[str, float]:
    """Carbon and energy paid per unit of quality gained.

    The Figure-12 framing ("achieving higher model quality ... incurs
    significant energy cost") applied to any two submissions.
    """
    dq = expensive.quality - cheap.quality
    if dq <= 0:
        raise UnitError("'expensive' must have higher quality than 'cheap'")
    return {
        "quality_gain": dq,
        "kwh_per_quality_point": (expensive.energy.kwh - cheap.energy.kwh) / dq,
        "kg_per_quality_point": (expensive.carbon.kg - cheap.carbon.kg) / dq,
    }
