"""Plain-text / markdown rendering of footprint analyses.

The benchmark harness prints the same rows/series the paper's figures
report; this module holds the shared formatting helpers so experiments and
examples render consistently.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.equivalences import describe as describe_equivalence
from repro.core.footprint import PHASE_ORDER, TotalFootprint


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:,.3g}",
) -> str:
    """Render an aligned fixed-width text table."""
    rendered_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bar(fraction: float, width: int = 40, fill: str = "#") -> str:
    """An ASCII bar representing a fraction of the row maximum."""
    fraction = max(0.0, min(1.0, fraction))
    n = round(fraction * width)
    return fill * n


def format_bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 40
) -> str:
    """A labeled horizontal ASCII bar chart, scaled to the max value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    peak = max(values) if values else 0.0
    label_w = max((len(lbl) for lbl in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        frac = value / peak if peak else 0.0
        lines.append(f"{label.ljust(label_w)}  {format_bar(frac, width)} {value:,.3g}")
    return "\n".join(lines)


def footprint_report(footprints: Sequence[TotalFootprint]) -> str:
    """Multi-task footprint report with per-phase breakdown and equivalences."""
    sections = []
    for fp in footprints:
        lines = [fp.describe()]
        shares = fp.operational.carbon_shares()
        for phase in PHASE_ORDER:
            if phase in shares:
                carbon = fp.operational.phase_carbon(phase)
                lines.append(f"  {phase.value:<18} {carbon}  ({shares[phase]:.0%})")
        lines.append(f"  {describe_equivalence(fp.carbon)}")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
