"""In-process memoization for shared simulation substrates.

Many experiments rebuild identical inputs — the same seeded weekly grid
trace, the same diurnal demand curve, the same Poisson experiment stream —
every time they run.  :func:`memoized_substrate` caches those
constructions by argument value so a full ``sustainable-ai run all`` (or
repeated figure runs in one process) builds each substrate once.

Cached values are shared between callers, so every numpy array reachable
from a cached value is frozen (``writeable=False``) before it enters the
cache; a caller that needs a mutable copy must ``np.array(...)`` it.
Unhashable arguments bypass the cache silently — correctness never
depends on a hit.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

F = TypeVar("F", bound=Callable)

#: All caches created by :func:`memoized_substrate`, by function name.
_REGISTRY: dict[str, Callable] = {}

#: Fault-injection hook (see :mod:`repro.testing.faults`): when set, every
#: value leaving a substrate cache passes through it, keyed by the
#: substrate function's qualname.  Production runs leave this ``None``.
_CORRUPTOR: Callable[[str, object], object] | None = None


def set_substrate_corruptor(
    corruptor: Callable[[str, object], object] | None,
) -> None:
    """Install (or clear, with ``None``) the cache fault-injection hook."""
    global _CORRUPTOR
    _CORRUPTOR = corruptor


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss statistics of one substrate cache."""

    hits: int
    misses: int
    size: int


def _freeze(value):
    """Mark every numpy array reachable from ``value`` read-only."""
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        for f in dataclasses.fields(value):
            _freeze(getattr(value, f.name))
    elif isinstance(value, (tuple, list)):
        for item in value:
            _freeze(item)
    return value


def memoized_substrate(func: F) -> F:
    """Cache a substrate constructor by (hashable) argument values."""
    cache: dict[object, object] = {}
    stats = {"hits": 0, "misses": 0}

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        key = (args, tuple(sorted(kwargs.items())))
        try:
            hash(key)
        except TypeError:
            value = func(*args, **kwargs)
            if _CORRUPTOR is not None:
                value = _CORRUPTOR(func.__qualname__, value)
            return value
        try:
            value = cache[key]
        except KeyError:
            stats["misses"] += 1
            value = cache[key] = _freeze(func(*args, **kwargs))
        else:
            stats["hits"] += 1
        if _CORRUPTOR is not None:
            value = _CORRUPTOR(func.__qualname__, value)
        return value

    def cache_info() -> CacheInfo:
        return CacheInfo(hits=stats["hits"], misses=stats["misses"], size=len(cache))

    def cache_clear() -> None:
        cache.clear()
        stats["hits"] = stats["misses"] = 0

    wrapper.cache_info = cache_info  # type: ignore[attr-defined]
    wrapper.cache_clear = cache_clear  # type: ignore[attr-defined]
    _REGISTRY[func.__qualname__] = wrapper
    return wrapper  # type: ignore[return-value]


def substrate_cache_info() -> dict[str, CacheInfo]:
    """Statistics for every registered substrate cache."""
    return {name: fn.cache_info() for name, fn in _REGISTRY.items()}


def clear_substrate_caches() -> None:
    """Empty every registered substrate cache (mainly for tests)."""
    for fn in _REGISTRY.values():
        fn.cache_clear()
