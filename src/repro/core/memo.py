"""Two-tier memoization for shared simulation substrates.

Many experiments rebuild identical inputs — the same seeded weekly grid
trace, the same diurnal demand curve, the same Poisson experiment stream,
the same synthetic interaction dataset — every time they run.
:func:`memoized_substrate` caches those constructions in two tiers:

* an **in-process tier** keyed by argument value, so repeated calls in one
  process share a single object, and
* an optional **disk tier** (:mod:`repro.core.diskcache`), enabled through
  the ``SUSTAINABLE_AI_CACHE_DIR`` environment variable, so pool workers
  and later runs warm-start from a content-addressed file instead of
  rebuilding.  Entries are checksummed; a truncated or corrupt file reads
  as a miss and the substrate is rebuilt (and the entry rewritten).

Cached values are shared between callers, so every numpy array reachable
from a cached value is frozen (``writeable=False``) before it enters the
cache; a caller that needs a mutable copy must ``np.array(...)`` it.
Unhashable arguments bypass both tiers — correctness never depends on a
hit — but bypasses are *counted* (``CacheInfo.bypasses``) and the first
one per substrate emits a :class:`RuntimeWarning`, so a signature that
accidentally defeats the cache shows up as a warning instead of a silent
slowdown.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import warnings
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, TypeVar

import numpy as np

from repro.core import diskcache

F = TypeVar("F", bound=Callable)

#: All caches created by :func:`memoized_substrate`, by function name.
_REGISTRY: dict[str, Callable] = {}

#: Substrates that already warned about an unhashable-argument bypass.
_BYPASS_WARNED: set[str] = set()

#: The statistic fields every substrate cache tracks, in reporting order.
STAT_FIELDS: tuple[str, ...] = (
    "hits",
    "misses",
    "bypasses",
    "disk_hits",
    "disk_misses",
    "disk_errors",
)

#: Fault-injection hook (see :mod:`repro.testing.faults`): when set, every
#: value leaving a substrate cache passes through it, keyed by the
#: substrate function's qualname.  Production runs leave this ``None``.
#: Corrupted values never reach the disk tier — the hook fires on the way
#: *out* of the cache, after any store.
_CORRUPTOR: Callable[[str, object], object] | None = None


def set_substrate_corruptor(
    corruptor: Callable[[str, object], object] | None,
) -> None:
    """Install (or clear, with ``None``) the cache fault-injection hook."""
    global _CORRUPTOR
    _CORRUPTOR = corruptor


class SubstrateCollector:
    """Ordered, deduplicated record of the substrates one computation used.

    Each entry is ``(qualname, digest)`` where ``digest`` is the content
    address of the call (:func:`repro.core.diskcache.entry_digest`) or
    ``None`` when the arguments had no canonical rendering.  The ledger
    records these pairs as claim provenance.
    """

    def __init__(self) -> None:
        self._seen: set[tuple[str, str | None]] = set()
        self.pairs: list[tuple[str, str | None]] = []

    def add(self, qualname: str, digest: str | None) -> None:
        pair = (qualname, digest)
        if pair not in self._seen:
            self._seen.add(pair)
            self.pairs.append(pair)


#: The active substrate-provenance collector, if any.  Installed with
#: :func:`collect_substrates`; every memoized-substrate call (hit, miss,
#: or bypass) reports its content address here while one is active.
_COLLECTOR: SubstrateCollector | None = None


@contextlib.contextmanager
def collect_substrates() -> Iterator[SubstrateCollector]:
    """Record the content address of every substrate call in the block.

    Nesting restores the previous collector on exit; only the innermost
    collector observes calls (the runner wraps one experiment at a time,
    the service wraps one query task at a time).
    """
    global _COLLECTOR
    previous = _COLLECTOR
    collector = SubstrateCollector()
    _COLLECTOR = collector
    try:
        yield collector
    finally:
        _COLLECTOR = previous


@dataclass(frozen=True)
class CacheInfo:
    """Statistics of one substrate cache.

    ``hits``/``misses`` describe the in-process tier (a value served from
    disk still counts as a memory miss).  ``bypasses`` counts calls whose
    arguments were unhashable — the cache was skipped entirely.
    ``disk_hits``/``disk_misses`` describe the disk tier when it is
    enabled, and ``disk_errors`` counts corrupt entries that were detected
    and rebuilt.
    """

    hits: int
    misses: int
    size: int
    bypasses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_errors: int = 0


def _freeze(value):
    """Mark every numpy array reachable from ``value`` read-only."""
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        for f in dataclasses.fields(value):
            _freeze(getattr(value, f.name))
    elif isinstance(value, (tuple, list)):
        for item in value:
            _freeze(item)
    return value


def _warn_bypass(qualname: str) -> None:
    """One-time warning naming a substrate whose cache was bypassed."""
    if qualname in _BYPASS_WARNED:
        return
    _BYPASS_WARNED.add(qualname)
    warnings.warn(
        f"substrate {qualname!r} was called with unhashable arguments; "
        "memoization is bypassed for such calls (every call rebuilds). "
        "Pass tuples/frozen dataclasses instead of lists/dicts to cache.",
        RuntimeWarning,
        stacklevel=4,
    )


def memoized_substrate(func: F) -> F:
    """Cache a substrate constructor by (hashable) argument values."""
    cache: dict[object, object] = {}
    digests: dict[object, str | None] = {}
    stats = dict.fromkeys(STAT_FIELDS, 0)
    qualname = func.__qualname__

    def digest_for(key) -> str | None:
        """Content address of one call, memoized alongside the value cache."""
        try:
            return digests[key]
        except KeyError:
            pass
        try:
            token = diskcache.canonical_token(key)
        except diskcache.UncacheableArgument:
            digest = None
        else:
            digest = diskcache.entry_digest(qualname, token)
        digests[key] = digest
        return digest

    def build_via_disk(args, kwargs):
        """Memory-miss path: consult the disk tier, else build (and store)."""
        cache_dir = diskcache.resolve_cache_dir()
        path = None
        if cache_dir is not None:
            try:
                token = diskcache.canonical_token(
                    (args, tuple(sorted(kwargs.items())))
                )
            except diskcache.UncacheableArgument:
                path = None
            else:
                path = diskcache.entry_path(cache_dir, qualname, token)
                hit, value = diskcache.load(path)
                if hit:
                    stats["disk_hits"] += 1
                    return _freeze(value)
                if path.exists():
                    stats["disk_errors"] += 1
                else:
                    stats["disk_misses"] += 1
        value = _freeze(func(*args, **kwargs))
        if path is not None:
            diskcache.store(path, value)
        return value

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        key = (args, tuple(sorted(kwargs.items())))
        try:
            hash(key)
        except TypeError:
            stats["bypasses"] += 1
            _warn_bypass(qualname)
            if _COLLECTOR is not None:
                _COLLECTOR.add(qualname, None)
            value = func(*args, **kwargs)
            if _CORRUPTOR is not None:
                value = _CORRUPTOR(qualname, value)
            return value
        try:
            value = cache[key]
        except KeyError:
            stats["misses"] += 1
            value = cache[key] = build_via_disk(args, kwargs)
        else:
            stats["hits"] += 1
        if _COLLECTOR is not None:
            _COLLECTOR.add(qualname, digest_for(key))
        if _CORRUPTOR is not None:
            value = _CORRUPTOR(qualname, value)
        return value

    def cache_info() -> CacheInfo:
        return CacheInfo(size=len(cache), **stats)

    def cache_clear() -> None:
        cache.clear()
        digests.clear()
        for field in STAT_FIELDS:
            stats[field] = 0

    wrapper.cache_info = cache_info  # type: ignore[attr-defined]
    wrapper.cache_clear = cache_clear  # type: ignore[attr-defined]
    _REGISTRY[qualname] = wrapper
    return wrapper  # type: ignore[return-value]


def substrate_cache_info() -> dict[str, CacheInfo]:
    """Statistics for every registered substrate cache."""
    return {name: fn.cache_info() for name, fn in _REGISTRY.items()}


def clear_substrate_caches() -> None:
    """Empty every registered in-process substrate cache (mainly tests)."""
    for fn in _REGISTRY.values():
        fn.cache_clear()


# -- stats transport ---------------------------------------------------------
# Pool workers snapshot their counters before/after each experiment and
# send the delta back to the parent as plain dicts (JSON- and
# pickle-friendly), where deltas from every worker are merged into one
# run-wide view.


def stats_snapshot() -> dict[str, dict[str, int]]:
    """Plain-dict snapshot of every substrate cache's counters."""
    return {
        name: {field: getattr(info, field) for field in STAT_FIELDS}
        for name, info in substrate_cache_info().items()
    }


def stats_delta(
    before: Mapping[str, Mapping[str, int]],
    after: Mapping[str, Mapping[str, int]],
) -> dict[str, dict[str, int]]:
    """Counter increments between two snapshots (zero-only rows dropped)."""
    delta: dict[str, dict[str, int]] = {}
    for name, counters in after.items():
        base = before.get(name, {})
        row = {
            field: counters[field] - base.get(field, 0) for field in STAT_FIELDS
        }
        if any(row.values()):
            delta[name] = row
    return delta


def merge_stats(
    into: dict[str, dict[str, int]],
    delta: Mapping[str, Mapping[str, int]],
) -> dict[str, dict[str, int]]:
    """Accumulate one worker's delta into a run-wide tally (in place)."""
    for name, counters in delta.items():
        row = into.setdefault(name, dict.fromkeys(STAT_FIELDS, 0))
        for field in STAT_FIELDS:
            row[field] += int(counters.get(field, 0))
    return into


def totals(stats: Mapping[str, Mapping[str, int]]) -> dict[str, int]:
    """Column sums of a per-substrate stats mapping."""
    out = dict.fromkeys(STAT_FIELDS, 0)
    for counters in stats.values():
        for field in STAT_FIELDS:
            out[field] += int(counters.get(field, 0))
    return out
