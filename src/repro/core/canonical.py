"""The one canonical JSON serialization of the repository.

Every byte-stable artifact the project emits — service response bodies,
``run --json`` envelopes, ``golden/baselines.json``, ledger bundles and
their content addresses — is serialized here, and only here.  Canonical
form is ``json.dumps`` with sorted keys: pretty (two-space indent) for
human-facing documents, compact (no whitespace) for identity strings and
content hashing.

Confining the raw ``json.dumps(..., sort_keys=True)`` idiom to
``repro/core/`` is grep-enforced (``tests/test_canonical.py``), the same
way the kWh x intensity multiplication is confined to the accounting
engine: two modules that serialize "canonically" but differently would
silently break byte-identity guarantees and ledger content addresses.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

__all__ = [
    "canonical_dumps",
    "canonical_bytes",
    "compact_dumps",
    "content_hash",
]


def canonical_dumps(obj: object) -> str:
    """Pretty canonical form: sorted keys, two-space indent, no newline."""
    return json.dumps(obj, indent=2, sort_keys=True)


def canonical_bytes(payload: Mapping[str, object]) -> bytes:
    """Canonical document bytes: pretty form plus a trailing newline.

    This is the exact serialization of every service response body and
    of ledger payload reconstruction — equality of payloads is equality
    of these bytes.
    """
    return (canonical_dumps(payload) + "\n").encode("utf-8")


def compact_dumps(obj: object) -> str:
    """Compact canonical form: sorted keys, no whitespace.

    Used wherever a JSON document *is* an identity — response-cache
    keys, worker task transport, ledger content addressing.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_hash(obj: object) -> str:
    """sha256 hex digest of an object's compact canonical form."""
    return hashlib.sha256(compact_dumps(obj).encode("utf-8")).hexdigest()
