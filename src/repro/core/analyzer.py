"""The holistic footprint analyzer — the paper's primary contribution.

:class:`FootprintAnalyzer` combines the substrates into a single
end-to-end accounting:

* phase workloads (device-hours per ML development phase) are converted to
  IT energy through the device power model,
* IT energy is inflated to facility energy through the datacenter PUE,
* facility energy becomes *operational* carbon through the (location- or
  market-based) carbon intensity,
* device-hours also accrue *embodied* carbon through the life-cycle
  amortization policy,

yielding a :class:`~repro.core.footprint.TotalFootprint` per ML task.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.carbon.embodied import (
    AmortizationPolicy,
    GPU_SERVER_EMBODIED,
)
from repro.carbon.intensity import (
    AccountingMethod,
    CarbonIntensity,
    DualIntensity,
    RENEWABLE_MATCHED_FLEET,
)
from repro.core.footprint import (
    EmbodiedFootprint,
    OperationalFootprint,
    Phase,
    PhaseFootprint,
    TotalFootprint,
)
from repro.core.quantities import Carbon, Energy
from repro.energy.devices import DeviceSpec, V100
from repro.energy.power_model import PowerModel
from repro.energy.pue import Datacenter
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class PhaseWorkload:
    """Work performed in one phase: device-hours at an average utilization.

    ``devices_per_server`` lets embodied accounting convert device-hours to
    server-hours.  The default of 2 matches the paper's embodied anchor:
    the 2000 kgCO2e figure is the LCA of a *dual-GPU* system (Apple Mac
    Pro with two AMD Radeons), so each embodied "server" hosts two
    accelerators.
    """

    phase: Phase
    device_hours: float
    utilization: float = 0.6
    devices_per_server: int = 2

    def __post_init__(self) -> None:
        if self.device_hours < 0:
            raise UnitError(f"device-hours must be non-negative, got {self.device_hours}")
        if not (0 <= self.utilization <= 1):
            raise UnitError(f"utilization must be in [0, 1], got {self.utilization}")
        if self.devices_per_server <= 0:
            raise UnitError(
                f"devices_per_server must be positive, got {self.devices_per_server}"
            )

    @property
    def server_hours(self) -> float:
        return self.device_hours / self.devices_per_server


@dataclass(frozen=True)
class TaskDescription:
    """An ML task described by its per-phase workloads on one device type."""

    name: str
    device: DeviceSpec = V100
    workloads: tuple[PhaseWorkload, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen: set[Phase] = set()
        for wl in self.workloads:
            if wl.phase in seen:
                raise UnitError(f"duplicate phase workload: {wl.phase}")
            seen.add(wl.phase)

    def total_device_hours(self) -> float:
        return sum(wl.device_hours for wl in self.workloads)


@dataclass(frozen=True)
class FootprintAnalyzer:
    """End-to-end operational + embodied carbon accounting.

    Parameters
    ----------
    datacenter:
        Facility (PUE) the task runs in.
    intensity:
        Location- and market-based carbon intensity of the supply.
    accounting:
        Which Scope-2 convention to report operationally.
    amortization:
        How manufacturing carbon is amortized (lifetime, utilization).
    server_embodied:
        Manufacturing footprint of one server hosting the devices.
    host_overhead_watts:
        Per-device share of host (CPU/memory/fans) power added on top of
        the accelerator itself.
    """

    datacenter: Datacenter = Datacenter()
    intensity: DualIntensity = RENEWABLE_MATCHED_FLEET
    accounting: AccountingMethod = AccountingMethod.LOCATION_BASED
    amortization: AmortizationPolicy = AmortizationPolicy()
    server_embodied: Carbon = GPU_SERVER_EMBODIED
    host_overhead_watts: float = 75.0

    def __post_init__(self) -> None:
        if self.host_overhead_watts < 0:
            raise UnitError(
                f"host overhead must be non-negative, got {self.host_overhead_watts}"
            )

    # -- operational ------------------------------------------------------
    def operational_intensity(self) -> CarbonIntensity:
        return self.intensity.for_method(self.accounting)

    def phase_energy(self, device: DeviceSpec, workload: PhaseWorkload) -> Energy:
        """Facility energy of one phase workload (device + host + PUE)."""
        model = PowerModel(device)
        device_power = model.power_at(workload.utilization)
        it_watts = device_power.watts + self.host_overhead_watts
        it_energy = Energy(it_watts * workload.device_hours / 1e3)
        return self.datacenter.facility_energy(it_energy)

    def operational_footprint(self, task: TaskDescription) -> OperationalFootprint:
        intensity = self.operational_intensity()
        phases = []
        for wl in task.workloads:
            energy = self.phase_energy(task.device, wl)
            phases.append(PhaseFootprint(wl.phase, energy, intensity.emissions(energy)))
        return OperationalFootprint(tuple(phases))

    # -- embodied ----------------------------------------------------------
    def embodied_footprint(self, task: TaskDescription) -> EmbodiedFootprint:
        rate = self.amortization.rate_per_utilized_hour(self.server_embodied)
        server_hours = sum(wl.server_hours for wl in task.workloads)
        amortized = Carbon(rate * server_hours)
        return EmbodiedFootprint(
            amortized=amortized,
            total_manufacturing=Carbon(
                max(self.server_embodied.kg, amortized.kg)
            ),
        )

    # -- combined ----------------------------------------------------------
    def analyze(self, task: TaskDescription) -> TotalFootprint:
        """Full operational + embodied analysis of one task."""
        return TotalFootprint(
            name=task.name,
            operational=self.operational_footprint(task),
            embodied=self.embodied_footprint(task),
        )

    def analyze_many(self, tasks: list[TaskDescription]) -> list[TotalFootprint]:
        return [self.analyze(task) for task in tasks]

    def with_accounting(self, method: AccountingMethod) -> "FootprintAnalyzer":
        """A copy of this analyzer using a different Scope-2 convention."""
        return FootprintAnalyzer(
            datacenter=self.datacenter,
            intensity=self.intensity,
            accounting=method,
            amortization=self.amortization,
            server_embodied=self.server_embodied,
            host_overhead_watts=self.host_overhead_watts,
        )
