"""Core: quantities, footprints, the holistic analyzer, scenarios, reports."""

from repro.core.analyzer import FootprintAnalyzer, PhaseWorkload, TaskDescription
from repro.core.context import AccountingContext
from repro.core.equivalences import Equivalences, equivalences, miles_driven
from repro.core.footprint import (
    EmbodiedFootprint,
    OperationalFootprint,
    PHASE_ORDER,
    Phase,
    PhaseFootprint,
    TotalFootprint,
)
from repro.core.metrics import (
    Leaderboard,
    RankingPolicy,
    Submission,
    marginal_quality_cost,
)
from repro.core.incremental import (
    AccountingSnapshot,
    IncrementalAccounting,
    reference_replay,
)
from repro.core.quantities import Carbon, Energy, Power, carbon_sum, energy_sum
from repro.core.series import HourlySeries
from repro.core.report import (
    footprint_report,
    format_bar,
    format_bar_chart,
    format_table,
)
from repro.core.uncertainty import (
    DEFAULT_PRIORS,
    MonteCarloResult,
    ParameterPrior,
    TornadoBar,
    monte_carlo_footprint,
    tornado_sensitivity,
)
from repro.core.scenario import (
    Scenario,
    ScenarioResult,
    evaluate_work,
    renewable_variant,
    utilization_sweep,
)
from repro.core.sweep import (
    ParameterRange,
    SensitivityBar,
    StackedScenarioResult,
    SweepOutcome,
    SweepSpec,
    evaluate_work_stacked,
    pareto_frontier,
    run_sweep,
    sample_points,
    sweep_sensitivity,
)

__all__ = [
    "AccountingContext",
    "AccountingSnapshot",
    "IncrementalAccounting",
    "reference_replay",
    "Carbon",
    "DEFAULT_PRIORS",
    "EmbodiedFootprint",
    "MonteCarloResult",
    "ParameterPrior",
    "TornadoBar",
    "monte_carlo_footprint",
    "tornado_sensitivity",
    "Energy",
    "Equivalences",
    "FootprintAnalyzer",
    "HourlySeries",
    "Leaderboard",
    "OperationalFootprint",
    "RankingPolicy",
    "Submission",
    "marginal_quality_cost",
    "PHASE_ORDER",
    "ParameterRange",
    "Phase",
    "PhaseFootprint",
    "PhaseWorkload",
    "Power",
    "Scenario",
    "ScenarioResult",
    "SensitivityBar",
    "StackedScenarioResult",
    "SweepOutcome",
    "SweepSpec",
    "TaskDescription",
    "TotalFootprint",
    "carbon_sum",
    "energy_sum",
    "equivalences",
    "evaluate_work",
    "evaluate_work_stacked",
    "footprint_report",
    "format_bar",
    "format_bar_chart",
    "format_table",
    "miles_driven",
    "pareto_frontier",
    "renewable_variant",
    "run_sweep",
    "sample_points",
    "sweep_sensitivity",
    "utilization_sweep",
]
