"""Uncertainty and sensitivity analysis for footprint estimates.

The appendix diagnoses that "the measurement methodology is complex —
factors such as datacenter infrastructures, hardware architectures,
energy sources can perturb the final measure easily".  This module makes
that perturbation analysis first-class:

* :class:`ParameterPrior` — a range (triangular distribution) on each
  accounting assumption (grid intensity, PUE, utilization, lifetime,
  server embodied carbon);
* :func:`monte_carlo_footprint` — the footprint *distribution* of a task
  under those priors;
* :func:`tornado_sensitivity` — one-at-a-time swings showing which
  assumption dominates the error bar (the tornado chart's bars).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class ParameterPrior:
    """A triangular prior: (low, mode, high)."""

    low: float
    mode: float
    high: float

    def __post_init__(self) -> None:
        if not (self.low <= self.mode <= self.high):
            raise UnitError(
                f"prior must satisfy low <= mode <= high, got "
                f"({self.low}, {self.mode}, {self.high})"
            )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.low == self.high:
            return np.full(n, self.mode)
        return rng.triangular(self.low, self.mode, self.high, size=n)


#: Default priors spanning the paper's stated ranges.
DEFAULT_PRIORS: dict[str, ParameterPrior] = {
    "intensity_kg_per_kwh": ParameterPrior(0.20, 0.429, 0.70),
    "pue": ParameterPrior(1.05, 1.10, 1.60),
    "device_watts": ParameterPrior(250.0, 330.0, 450.0),
    "utilization": ParameterPrior(0.30, 0.45, 0.60),  # paper: 30-60%
    "lifetime_years": ParameterPrior(3.0, 4.0, 5.0),  # paper: 3-5 years
    "server_embodied_kg": ParameterPrior(1200.0, 2000.0, 3500.0),
    "devices_per_server": ParameterPrior(2.0, 2.0, 2.0),
}


def _footprint_kg(
    device_hours: float,
    intensity_kg_per_kwh: float,
    pue: float,
    device_watts: float,
    utilization: float,
    lifetime_years: float,
    server_embodied_kg: float,
    devices_per_server: float,
) -> float:
    """Closed-form total footprint used by the sampler (kg)."""
    operational = device_hours * device_watts / 1e3 * pue * intensity_kg_per_kwh
    rate = server_embodied_kg / (lifetime_years * units.HOURS_PER_YEAR * utilization)
    embodied = rate * device_hours / devices_per_server
    return operational + embodied


@dataclass(frozen=True)
class MonteCarloResult:
    """Distribution summary of the footprint under the priors."""

    samples_kg: np.ndarray

    @property
    def mean_kg(self) -> float:
        return float(np.mean(self.samples_kg))

    @property
    def p05_kg(self) -> float:
        return float(np.percentile(self.samples_kg, 5))

    @property
    def p95_kg(self) -> float:
        return float(np.percentile(self.samples_kg, 95))

    @property
    def relative_spread(self) -> float:
        """(p95 - p05) / mean — the headline 'how uncertain is this?'."""
        return (self.p95_kg - self.p05_kg) / self.mean_kg if self.mean_kg else 0.0


def monte_carlo_footprint(
    device_hours: float,
    priors: dict[str, ParameterPrior] | None = None,
    n_samples: int = 20_000,
    seed: int = 0,
) -> MonteCarloResult:
    """Sample the footprint of ``device_hours`` of work under the priors."""
    if device_hours < 0:
        raise UnitError("device-hours must be non-negative")
    if n_samples <= 0:
        raise UnitError("sample count must be positive")
    priors = priors or DEFAULT_PRIORS
    missing = set(DEFAULT_PRIORS) - set(priors)
    if missing:
        raise UnitError(f"priors missing parameters: {sorted(missing)}")
    rng = np.random.default_rng(seed)
    draws = {name: prior.sample(n_samples, rng) for name, prior in priors.items()}
    samples = _footprint_kg(device_hours, **draws)
    return MonteCarloResult(samples_kg=np.asarray(samples))


@dataclass(frozen=True, slots=True)
class TornadoBar:
    """One parameter's one-at-a-time swing."""

    parameter: str
    low_kg: float
    high_kg: float
    base_kg: float

    @property
    def swing_kg(self) -> float:
        return abs(self.high_kg - self.low_kg)


def tornado_sensitivity(
    device_hours: float,
    priors: dict[str, ParameterPrior] | None = None,
) -> list[TornadoBar]:
    """One-at-a-time sensitivity, sorted by swing (largest first)."""
    if device_hours < 0:
        raise UnitError("device-hours must be non-negative")
    priors = priors or DEFAULT_PRIORS
    modes = {name: prior.mode for name, prior in priors.items()}
    base = _footprint_kg(device_hours, **modes)

    bars = []
    for name, prior in priors.items():
        if prior.low == prior.high:
            continue
        low_params = dict(modes, **{name: prior.low})
        high_params = dict(modes, **{name: prior.high})
        bars.append(
            TornadoBar(
                parameter=name,
                low_kg=_footprint_kg(device_hours, **low_params),
                high_kg=_footprint_kg(device_hours, **high_params),
                base_kg=base,
            )
        )
    return sorted(bars, key=lambda b: -b.swing_kg)
