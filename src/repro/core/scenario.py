"""What-if scenarios over the holistic accounting (Figures 5 and 9).

A :class:`Scenario` bundles the environmental knobs the paper sweeps —
grid carbon intensity (location vs carbon-free), device utilization,
server lifetime, PUE — and evaluates the total footprint of a fixed
amount of *useful work* under those knobs.

Modeling choices (matching Figure 9's construction):

* The task is defined by the useful work it must complete, so at lower
  utilization the same work holds the hardware for proportionally more
  wall-clock hours.
* Training boards draw close to full board power whenever a job is
  resident, *regardless of achieved utilization* — fleet "GPU
  utilization" metrics measure achieved math throughput while the board
  sits near TDP either way.  ``board_power_fraction`` sets that draw.
  Both energy and embodied amortization therefore scale ~1/utilization,
  which is what makes utilization such a strong lever (~3x from 30% to
  80%).
* "Renewable" supply carries the solar life-cycle residual intensity
  (panel manufacturing), not a literal zero.
* Embodied carbon counts the server (Mac Pro dual-GPU LCA anchor) *plus*
  the datacenter's own construction/networking/storage share via
  ``infrastructure_embodied_factor`` (Gupta et al. 2021 show facility
  embodied carbon is of the same order as IT embodied carbon).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.carbon.embodied import AmortizationPolicy, GPU_SERVER_EMBODIED
from repro.carbon.intensity import CarbonIntensity, SOLAR_LIFECYCLE, US_AVERAGE
from repro.core.context import AccountingContext
from repro.core.quantities import Carbon, Energy
from repro.energy.devices import DeviceSpec, V100
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class Scenario:
    """Environmental knobs for evaluating a fixed quantum of useful work."""

    intensity: CarbonIntensity = US_AVERAGE
    utilization: float = 0.45
    lifetime_years: float = 4.0
    pue: float = 1.10
    device: DeviceSpec = V100
    #: Devices per embodied "server" — 2 matches the dual-GPU LCA anchor.
    devices_per_server: int = 2
    server_embodied: Carbon = GPU_SERVER_EMBODIED
    #: Board power as a fraction of TDP while a job is resident.
    board_power_fraction: float = 0.95
    #: Multiplier folding datacenter construction / network / storage
    #: embodied carbon onto the server's own (Gupta et al. 2021).
    infrastructure_embodied_factor: float = 3.0
    name: str = "baseline"

    def __post_init__(self) -> None:
        # Every numeric check spells out finiteness: a bare `x < 1` or
        # `x <= 0` comparison is False for NaN, which used to let NaN
        # knobs (most visibly PUE) slip through and surface later as
        # silent NaN footprints instead of a structured error here.
        if not (math.isfinite(self.utilization) and 0 < self.utilization <= 1):
            raise UnitError(f"utilization must be in (0, 1], got {self.utilization}")
        if self.devices_per_server <= 0:
            raise UnitError("devices_per_server must be positive")
        if not (
            math.isfinite(self.board_power_fraction)
            and 0 < self.board_power_fraction <= 1
        ):
            raise UnitError(
                f"board power fraction must be in (0, 1], got {self.board_power_fraction}"
            )
        if not (
            math.isfinite(self.infrastructure_embodied_factor)
            and self.infrastructure_embodied_factor >= 1
        ):
            raise UnitError(
                "infrastructure factor must be finite and >= 1, "
                f"got {self.infrastructure_embodied_factor}"
            )
        if not (math.isfinite(self.lifetime_years) and self.lifetime_years > 0):
            raise UnitError(
                f"lifetime must be finite and positive, got {self.lifetime_years}"
            )
        if not (math.isfinite(self.pue) and self.pue >= 1):
            raise UnitError(f"PUE must be finite and >= 1, got {self.pue}")

    def but(self, **changes) -> "Scenario":
        """A modified copy (``scenario.but(utilization=0.8)``)."""
        return replace(self, **changes)

    def accounting_context(self) -> AccountingContext:
        """This scenario's knobs as the shared accounting bundle.

        The amortization policy spreads the (infrastructure-inclusive)
        server footprint over *wall-clock* lifetime hours — residency,
        not achieved utilization, is what occupies the server here, so
        ``average_utilization`` is pinned at 1.0 and the utilization knob
        instead stretches residency in :func:`evaluate_work`.
        """
        return AccountingContext(
            intensity=self.intensity,
            pue=self.pue,
            amortization=AmortizationPolicy(
                lifetime_years=self.lifetime_years,
                average_utilization=1.0,
                devices_per_server=float(self.devices_per_server),
                infrastructure_factor=self.infrastructure_embodied_factor,
            ),
        )


@dataclass(frozen=True, slots=True)
class ScenarioResult:
    """Footprint of the work quantum under one scenario."""

    scenario: Scenario
    energy: Energy
    operational: Carbon
    embodied: Carbon

    @property
    def total(self) -> Carbon:
        return self.operational + self.embodied

    @property
    def embodied_share(self) -> float:
        total = self.total.kg
        return self.embodied.kg / total if total else 0.0


def evaluate_work(busy_device_hours: float, scenario: Scenario) -> ScenarioResult:
    """Footprint of ``busy_device_hours`` of *fully-busy-equivalent* work.

    ``busy_device_hours`` is the device time the work would take at 100%
    utilization.  Under ``scenario.utilization`` the device is resident
    (and drawing board power) for ``busy/utilization`` wall-clock hours
    and occupies servers for the whole window, accruing embodied carbon.
    """
    if not (
        isinstance(busy_device_hours, (int, float))
        and math.isfinite(busy_device_hours)
    ):
        raise UnitError(
            f"busy device-hours must be a finite number, got {busy_device_hours!r}"
        )
    if busy_device_hours < 0:
        raise UnitError("busy device-hours must be non-negative")
    context = scenario.accounting_context()
    resident_hours = busy_device_hours / scenario.utilization
    board_watts = scenario.device.tdp_watts * scenario.board_power_fraction
    it_energy = Energy(board_watts * resident_hours / 1e3)
    facility = context.facility_energy(it_energy)
    operational = context.operational_for_energy(it_energy)

    # Occupying a server for H hours consumes H / lifetime of its
    # (infrastructure-inclusive) manufacturing footprint.
    server_hours = resident_hours / scenario.devices_per_server
    embodied = context.amortized_embodied(scenario.server_embodied, server_hours)
    return ScenarioResult(scenario, facility, operational, embodied)


def utilization_sweep(
    busy_device_hours: float,
    utilizations: np.ndarray,
    base: Scenario | None = None,
) -> list[ScenarioResult]:
    """Evaluate the work quantum across a range of utilizations (Fig. 9)."""
    base = base or Scenario()
    return [
        evaluate_work(busy_device_hours, base.but(utilization=float(u), name=f"util={u:.0%}"))
        for u in np.asarray(utilizations, dtype=float)
    ]


def renewable_variant(scenario: Scenario) -> Scenario:
    """The same scenario on solar supply (life-cycle residual intensity)."""
    return scenario.but(intensity=SOLAR_LIFECYCLE, name=f"{scenario.name}+green")
