"""O(Δ) incremental energy/carbon accounting, bit-equal to batch replay.

Every consumer in the library prices energy the same way —
``operational = sum_h kWh_h x intensity_h`` (see :mod:`repro.core.series`)
— but until now every consumer recomputed that sum over the *full*
horizon on each update.  Fine for batch replay; fatal for a live service
folding tick-level grid-intensity updates at interactive rates.

:class:`IncrementalAccounting` maintains the running aggregates so that
folding a new or revised tick costs **O(one window)**, not O(trace
length), while staying **bit-equal** (``==`` on floats) to a full batch
recompute of the same tick log.  The construction, following the PR-4 /
PR-6 reference-kernel discipline (same op order, no re-association,
never a different summation tree):

* the horizon is cut into fixed ``window_hours`` windows (default 24);
* each window's energy/emissions subtotal is one ``np.sum`` over the
  window's *observed* hours, always recomputed wholesale from the
  window's current arrays by the shared :func:`_window_subtotals`
  helper — so the subtotal's bits depend only on the window's final
  state, never on the order ticks arrived in;
* the grand totals are a strictly sequential left-fold of the window
  subtotals (:func:`_fold_prefix`).  Folding a tick for hour ``h``
  recomputes window ``h // window_hours``'s subtotal and re-folds the
  prefix from that window to the last populated window.

A *revision* (a corrected intensity for an already-observed hour) is
therefore a per-window subtotal rollback: O(1 window) plus the prefix
tail, never a replay.  Late/out-of-order arrivals are the same code
path — the window subtotal does not care which hour of the window
landed last.

:func:`reference_replay` is the retained ``_reference_*``-style batch
path: it applies the whole tick log to fresh arrays and prices every
window through the *same two helpers*.  Both paths end at identical
(values, order) reductions, so ``IncrementalAccounting.snapshot() ==
reference_replay(...)`` holds exactly, not to a tolerance — pinned by
the ``stream-matches-batch-replay`` / ``stream-revision-rollback-exact``
registry invariants and the Hypothesis property suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

from repro.core.series import HourlySeries, runtime_checks_enabled
from repro.errors import InvariantViolation, UnitError

#: Default accounting window: one day, matching the diurnal structure of
#: both the synthetic grids and the revision lag of real intensity feeds.
DEFAULT_WINDOW_HOURS = 24


@dataclass(frozen=True)
class AccountingSnapshot:
    """The running aggregates at one point in a tick stream.

    Dataclass equality is exact float equality — the whole point: a
    snapshot from the incremental fold must ``==`` the snapshot from
    :func:`reference_replay` of the same tick log, bit for bit.
    """

    hours: int
    ticks_folded: int
    hours_observed: int
    contiguous_hours: int
    it_energy_kwh: float
    operational_kg: float

    def to_payload(self) -> dict[str, object]:
        return {
            "hours": self.hours,
            "ticks_folded": self.ticks_folded,
            "hours_observed": self.hours_observed,
            "contiguous_hours": self.contiguous_hours,
            "it_energy_kwh": self.it_energy_kwh,
            "operational_kg": self.operational_kg,
        }


def _window_subtotals(
    load_kwh: np.ndarray,
    intensity: np.ndarray,
    observed: np.ndarray,
    start: int,
    stop: int,
    pue: float,
) -> tuple[float, float]:
    """(IT kWh, emissions kg) of one window's observed hours.

    The single shared pricing expression for both the incremental and the
    replay path — one masked gather, one product, one ``np.sum`` each.
    Any change here changes both paths identically, which is what keeps
    the bit-equality claim structural rather than empirical.
    """
    mask = observed[start:stop]
    vals = load_kwh[start:stop][mask]
    inten = intensity[start:stop][mask]
    energy = float(np.sum(vals))
    emissions = float(np.sum((vals * pue) * inten))
    return energy, emissions


def _fold_prefix(
    energy_sub: Sequence[float],
    emissions_sub: Sequence[float],
    start: int,
    upto: int,
    energy_prefix: np.ndarray,
    emissions_prefix: np.ndarray,
) -> None:
    """Sequential left-fold of window subtotals into prefix arrays.

    Strictly ordered scalar adds over windows ``start..upto`` — the one
    place totals are combined, shared by both paths so the summation
    tree can never diverge between them.
    """
    energy_acc = float(energy_prefix[start - 1]) if start > 0 else 0.0
    emissions_acc = float(emissions_prefix[start - 1]) if start > 0 else 0.0
    for k in range(start, upto + 1):
        energy_acc = energy_acc + float(energy_sub[k])
        emissions_acc = emissions_acc + float(emissions_sub[k])
        energy_prefix[k] = energy_acc
        emissions_prefix[k] = emissions_acc


class IncrementalAccounting:
    """Streaming energy/carbon aggregates over a fixed hourly load profile.

    ``load_kwh`` is the full-horizon hourly IT energy (an
    :class:`HourlySeries` or 1-D array); intensity arrives tick by tick
    through :meth:`fold`.  An hour contributes to the aggregates once its
    intensity has been observed; a re-fold of an already-observed hour is
    a revision and replaces the previous value exactly.
    """

    def __init__(
        self,
        load_kwh: Union[HourlySeries, np.ndarray, Sequence[float]],
        pue: float = 1.0,
        window_hours: int = DEFAULT_WINDOW_HOURS,
    ) -> None:
        series = load_kwh if isinstance(load_kwh, HourlySeries) else HourlySeries(
            np.asarray(load_kwh, dtype=float)
        )
        if not np.isfinite(pue) or pue < 1.0:
            raise UnitError(f"PUE must be a finite value >= 1.0, got {pue}")
        if int(window_hours) < 1:
            raise UnitError(f"window_hours must be >= 1, got {window_hours}")
        self._load = series.values
        self._pue = float(pue)
        self._window = int(window_hours)
        hours = len(self._load)
        n_windows = -(-hours // self._window)  # ceil
        self._intensity = np.full(hours, np.nan)
        self._observed = np.zeros(hours, dtype=bool)
        self._energy_sub = np.zeros(n_windows)
        self._emissions_sub = np.zeros(n_windows)
        self._energy_prefix = np.zeros(n_windows)
        self._emissions_prefix = np.zeros(n_windows)
        self._last_window = -1  # highest window with any observed hour
        self._hours_observed = 0
        self._contiguous = 0
        self._ticks_folded = 0
        self._log: list[tuple[int, float]] = []

    # -- shape -------------------------------------------------------------
    @property
    def hours(self) -> int:
        return len(self._load)

    @property
    def window_hours(self) -> int:
        return self._window

    @property
    def pue(self) -> float:
        return self._pue

    @property
    def ticks_folded(self) -> int:
        return self._ticks_folded

    @property
    def hours_observed(self) -> int:
        return self._hours_observed

    @property
    def contiguous_hours(self) -> int:
        """Length of the fully-observed prefix (hours ``0..k-1`` all seen)."""
        return self._contiguous

    def intensity_at(self, hour: int) -> float:
        """Latest folded intensity for ``hour`` (NaN if never observed)."""
        return float(self._intensity[int(hour)])

    def contiguous_intensity(self) -> np.ndarray:
        """A copy of the contiguous observed-intensity prefix (for forecasts)."""
        return self._intensity[: self._contiguous].copy()

    # -- folding -----------------------------------------------------------
    def fold(self, hour: int, intensity_kg_per_kwh: float) -> None:
        """Fold one (possibly late, possibly revised) tick in O(one window)."""
        h = int(hour)
        value = float(intensity_kg_per_kwh)
        if not (0 <= h < len(self._load)):
            raise UnitError(f"tick hour {h} outside the {len(self._load)}-hour horizon")
        if not np.isfinite(value) or value < 0.0:
            raise UnitError(f"tick intensity must be finite and non-negative, got {value}")
        self._intensity[h] = value
        if not self._observed[h]:
            self._observed[h] = True
            self._hours_observed += 1
            while self._contiguous < len(self._load) and self._observed[self._contiguous]:
                self._contiguous += 1
        w = h // self._window
        start = w * self._window
        stop = min(start + self._window, len(self._load))
        self._energy_sub[w], self._emissions_sub[w] = _window_subtotals(
            self._load, self._intensity, self._observed, start, stop, self._pue
        )
        # When the tick jumps more than one window past the frontier the
        # gap windows (subtotal 0.0, nothing observed yet) still need
        # their prefix entries written, or a later read of prefix[w-1]
        # would restart the accumulator from zero.  Folding them adds
        # exact 0.0s — the same adds the reference path performs.
        refold_from = min(w, self._last_window + 1)
        if w > self._last_window:
            self._last_window = w
        _fold_prefix(
            self._energy_sub,
            self._emissions_sub,
            refold_from,
            self._last_window,
            self._energy_prefix,
            self._emissions_prefix,
        )
        self._ticks_folded += 1
        self._log.append((h, value))

    def fold_many(self, ticks: Iterable[tuple[int, float]]) -> None:
        for hour, value in ticks:
            self.fold(hour, value)

    # -- reductions --------------------------------------------------------
    @property
    def it_energy_kwh(self) -> float:
        if self._last_window < 0:
            return 0.0
        return float(self._energy_prefix[self._last_window])

    @property
    def operational_kg(self) -> float:
        if self._last_window < 0:
            return 0.0
        return float(self._emissions_prefix[self._last_window])

    def snapshot(self) -> AccountingSnapshot:
        """The current aggregates (self-verifying under ``--check-invariants``)."""
        snap = AccountingSnapshot(
            hours=len(self._load),
            ticks_folded=self._ticks_folded,
            hours_observed=self._hours_observed,
            contiguous_hours=self._contiguous,
            it_energy_kwh=self.it_energy_kwh,
            operational_kg=self.operational_kg,
        )
        if runtime_checks_enabled():
            ref = reference_replay(
                self._load, self._log, pue=self._pue, window_hours=self._window
            )
            if snap != ref:
                raise InvariantViolation(
                    "incremental accounting diverged from batch replay: "
                    f"{snap} != {ref}"
                )
        return snap


def reference_replay(
    load_kwh: Union[HourlySeries, np.ndarray, Sequence[float]],
    ticks: Sequence[tuple[int, float]],
    pue: float = 1.0,
    window_hours: int = DEFAULT_WINDOW_HOURS,
) -> AccountingSnapshot:
    """Full batch recompute of a tick log — the retained reference path.

    Applies every tick to fresh arrays, then prices each populated window
    through the same :func:`_window_subtotals` and combines them with the
    same :func:`_fold_prefix` as the incremental engine.  O(trace); the
    ground truth the O(Δ) path is pinned against.
    """
    series = load_kwh if isinstance(load_kwh, HourlySeries) else HourlySeries(
        np.asarray(load_kwh, dtype=float)
    )
    load = series.values
    if not np.isfinite(pue) or pue < 1.0:
        raise UnitError(f"PUE must be a finite value >= 1.0, got {pue}")
    window = int(window_hours)
    if window < 1:
        raise UnitError(f"window_hours must be >= 1, got {window}")
    hours = len(load)
    n_windows = -(-hours // window)
    intensity = np.full(hours, np.nan)
    observed = np.zeros(hours, dtype=bool)
    for hour, value in ticks:
        h = int(hour)
        v = float(value)
        if not (0 <= h < hours):
            raise UnitError(f"tick hour {h} outside the {hours}-hour horizon")
        if not np.isfinite(v) or v < 0.0:
            raise UnitError(f"tick intensity must be finite and non-negative, got {v}")
        intensity[h] = v
        observed[h] = True
    energy_sub = np.zeros(n_windows)
    emissions_sub = np.zeros(n_windows)
    last_window = -1
    for w in range(n_windows):
        start = w * window
        stop = min(start + window, hours)
        if not np.any(observed[start:stop]):
            continue
        energy_sub[w], emissions_sub[w] = _window_subtotals(
            load, intensity, observed, start, stop, pue
        )
        last_window = w
    energy_prefix = np.zeros(n_windows)
    emissions_prefix = np.zeros(n_windows)
    if last_window >= 0:
        _fold_prefix(
            energy_sub, emissions_sub, 0, last_window, energy_prefix, emissions_prefix
        )
    contiguous = 0
    while contiguous < hours and observed[contiguous]:
        contiguous += 1
    return AccountingSnapshot(
        hours=hours,
        ticks_folded=len(ticks),
        hours_observed=int(np.count_nonzero(observed)),
        contiguous_hours=contiguous,
        it_energy_kwh=float(energy_prefix[last_window]) if last_window >= 0 else 0.0,
        operational_kg=float(emissions_prefix[last_window]) if last_window >= 0 else 0.0,
    )


__all__ = [
    "DEFAULT_WINDOW_HOURS",
    "AccountingSnapshot",
    "IncrementalAccounting",
    "reference_replay",
]
