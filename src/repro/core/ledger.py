"""Append-only, content-addressed carbon ledger with claim-level provenance.

The paper's central measurement complaint is that AI carbon numbers are
reported without enough context to audit or reproduce them.  This module
is the repository's answer: every experiment or service result is
recorded as an atomic **bundle of claims** — one claim per headline
metric (name, value, units, tolerance) — where the bundle carries full
provenance:

* the substrate content hashes (:mod:`repro.core.diskcache` addresses)
  of every memoized input the computation touched,
* the code version (:mod:`repro.version`) that produced the numbers,
* the canonical config (result shape, query parameters, sweep spec),
* the invariant-check status of the run, and
* a caller-supplied timestamp (the ledger itself never reads a clock,
  so records are exactly as reproducible as their inputs).

Bundles are content-addressed: ``bundle_id`` is the sha256 of the
bundle's compact canonical form *excluding the timestamp*, so two runs
that produce identical numbers from identical inputs share one bundle.
A :class:`Ledger` persists bundles to an append-only JSONL store with
named **runs** (one recorded execution sweep) and pinned **epochs**
(named baselines; ``golden/baselines.json`` imports as epoch ``"0"``).

``diff_bundles`` compares two bundle sets claim by claim and is what
``sustainable-ai verify`` now runs under the hood — the legacy
:mod:`repro.experiments.golden` module is a compatibility shim over it.
``Ledger.trace`` resolves a headline metric back to the substrate
content hashes that produced it, and ``Bundle.reconstruct`` replays the
recorded payload through the canonical serializer, byte-identical to the
original ``run --json`` / service response bytes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.core.canonical import canonical_bytes, canonical_dumps, compact_dumps, content_hash
from repro.core.report import format_table
from repro.errors import SustainableAIError
from repro.version import code_version

SCHEMA_VERSION = 1

#: Default per-claim relative tolerance (shared with the experiment
#: registry).  Results are seeded and deterministic, so drift beyond this
#: means a behavioral change, not noise.
DEFAULT_REL_TOL = 1e-6

#: Environment variable naming the default ledger directory for the CLI.
LEDGER_DIR_ENV_VAR = "SUSTAINABLE_AI_LEDGER_DIR"

#: The epoch name ``golden/baselines.json`` imports as.
GOLDEN_EPOCH = "0"


class LedgerError(SustainableAIError, ValueError):
    """A ledger store, reference, or bundle document is invalid."""


# ---------------------------------------------------------------------------
# Units
# ---------------------------------------------------------------------------

#: Metric-name suffix -> unit label, checked in order (first match wins).
_UNIT_SUFFIXES: tuple[tuple[str, str], ...] = (
    ("_kg_per_kwh", "kgCO2e/kWh"),
    ("_kwh", "kWh"),
    ("_kg", "kgCO2e"),
    ("_tco2e", "tCO2e"),
    ("_kw", "kW"),
    ("_mwh", "MWh"),
    ("_hours", "h"),
    ("_years", "yr"),
    ("_share", "ratio"),
    ("_fraction", "ratio"),
    ("_ratio", "ratio"),
    ("_pct", "%"),
)


def units_for_metric(metric: str) -> str:
    """Best-effort unit label from the repository's metric naming scheme.

    Headline metrics follow a ``<name>_<unit>`` convention (``total_kg``,
    ``facility_energy_kwh``); anything unrecognized is dimensionless
    (gains, speedups, counts) and gets an empty label.
    """
    lowered = metric.lower()
    for suffix, unit in _UNIT_SUFFIXES:
        if lowered.endswith(suffix):
            return unit
    return ""


# ---------------------------------------------------------------------------
# Claims, provenance, bundles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Claim:
    """One asserted metric value with its verification tolerance."""

    metric: str
    value: float
    units: str = ""
    #: Relative tolerance for drift checks; ``None`` marks the claim
    #: informational (recorded for audit, never failed on).
    tolerance: float | None = DEFAULT_REL_TOL

    def to_payload(self) -> dict[str, object]:
        return {
            "metric": self.metric,
            "value": float(self.value),
            "units": self.units,
            "tolerance": self.tolerance,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "Claim":
        tolerance = payload.get("tolerance", DEFAULT_REL_TOL)
        return cls(
            metric=str(payload["metric"]),
            value=float(payload["value"]),  # type: ignore[arg-type]
            units=str(payload.get("units", "")),
            tolerance=None if tolerance is None else float(tolerance),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class SubstrateRef:
    """One memoized substrate the computation consumed.

    ``digest`` is the content address of the substrate's inputs — the
    same sha256(qualname | code-version salt | canonical args) the disk
    cache files entries under — or ``None`` when the call's arguments
    had no stable canonical rendering (the cache was bypassed).
    """

    qualname: str
    digest: str | None

    def to_payload(self) -> dict[str, object]:
        return {"substrate": self.qualname, "digest": self.digest}

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "SubstrateRef":
        digest = payload.get("digest")
        return cls(qualname=str(payload["substrate"]), digest=None if digest is None else str(digest))


@dataclass(frozen=True)
class Provenance:
    """Where a bundle's numbers came from."""

    code_version: Mapping[str, str]
    config: Mapping[str, object]
    substrates: tuple[SubstrateRef, ...] = ()
    invariant_status: str = "not-checked"  # ok | violated | not-checked
    #: Caller-supplied POSIX timestamp; excluded from the bundle's
    #: content address so identical results share one bundle id.
    recorded_at: float | None = None
    source: str = "runner"  # runner | service | golden-import

    @property
    def config_hash(self) -> str:
        return content_hash(self.config)

    def to_payload(self) -> dict[str, object]:
        return {
            "code_version": dict(self.code_version),
            "config": dict(self.config),
            "config_hash": self.config_hash,
            "substrates": [ref.to_payload() for ref in self.substrates],
            "invariant_status": self.invariant_status,
            "recorded_at": self.recorded_at,
            "source": self.source,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "Provenance":
        recorded_at = payload.get("recorded_at")
        return cls(
            code_version=dict(payload.get("code_version", {})),  # type: ignore[arg-type]
            config=dict(payload.get("config", {})),  # type: ignore[arg-type]
            substrates=tuple(
                SubstrateRef.from_payload(ref)
                for ref in payload.get("substrates", ())  # type: ignore[union-attr]
            ),
            invariant_status=str(payload.get("invariant_status", "not-checked")),
            recorded_at=None if recorded_at is None else float(recorded_at),  # type: ignore[arg-type]
            source=str(payload.get("source", "runner")),
        )


def default_provenance(
    *,
    config: Mapping[str, object] | None = None,
    substrates: Iterable[tuple[str, str | None]] = (),
    invariant_status: str = "not-checked",
    recorded_at: float | None = None,
    source: str = "runner",
) -> Provenance:
    """A provenance record stamped with the running code version."""
    return Provenance(
        code_version=code_version().to_payload(),
        config=dict(config or {}),
        substrates=tuple(SubstrateRef(q, d) for q, d in substrates),
        invariant_status=invariant_status,
        recorded_at=recorded_at,
        source=source,
    )


@dataclass(frozen=True)
class Bundle:
    """One atomic, content-addressed record of a result's claims."""

    experiment_id: str
    title: str
    status: str  # ok | failed
    claims: tuple[Claim, ...]
    provenance: Provenance
    #: The full canonical result payload (``None`` for imported golden
    #: baselines, which only pinned headline metrics and shape).
    payload: Mapping[str, object] | None = None
    #: Structured failure of a crashed/timed-out run: kind, message, attempts.
    error: Mapping[str, object] | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def bundle_id(self) -> str:
        """Content address: sha256 of the bundle body minus its timestamp."""
        body = self.to_payload()
        body["provenance"].pop("recorded_at", None)  # type: ignore[union-attr]
        return content_hash(body)

    def claim(self, metric: str) -> Claim | None:
        for claim in self.claims:
            if claim.metric == metric:
                return claim
        return None

    def headline(self) -> dict[str, float]:
        return {c.metric: c.value for c in self.claims}

    def shape(self) -> Mapping[str, object] | None:
        shape = self.provenance.config.get("shape")
        return shape if isinstance(shape, Mapping) else None

    def reconstruct(self) -> bytes:
        """The recorded payload's canonical bytes — byte-identical to the
        ``run --json`` record / service response that produced it."""
        if self.payload is None:
            raise LedgerError(
                f"bundle for {self.experiment_id!r} carries no payload "
                "(imported golden baselines pin claims only)"
            )
        return canonical_bytes(self.payload)

    def to_payload(self) -> dict[str, object]:
        body: dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "status": self.status,
            "claims": [claim.to_payload() for claim in self.claims],
            "provenance": self.provenance.to_payload(),
        }
        if self.payload is not None:
            body["payload"] = dict(self.payload)
        if self.error is not None:
            body["error"] = dict(self.error)
        return body

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "Bundle":
        if payload.get("schema") != SCHEMA_VERSION:
            raise LedgerError(
                f"bundle document has schema {payload.get('schema')!r}; "
                f"this library reads schema {SCHEMA_VERSION}"
            )
        raw_payload = payload.get("payload")
        raw_error = payload.get("error")
        return cls(
            experiment_id=str(payload["experiment_id"]),
            title=str(payload.get("title", "")),
            status=str(payload.get("status", "ok")),
            claims=tuple(Claim.from_payload(c) for c in payload.get("claims", ())),  # type: ignore[union-attr]
            provenance=Provenance.from_payload(payload.get("provenance", {})),  # type: ignore[arg-type]
            payload=None if raw_payload is None else dict(raw_payload),  # type: ignore[arg-type]
            error=None if raw_error is None else dict(raw_error),  # type: ignore[arg-type]
        )


def bundle_from_payload(
    payload: Mapping[str, object],
    *,
    kind: str = "experiment",
    substrates: Iterable[tuple[str, str | None]] = (),
    invariant_status: str = "not-checked",
    recorded_at: float | None = None,
    source: str = "service",
) -> Bundle | None:
    """A claim bundle from any of the repository's result payloads.

    Accepts the three payload families the engine produces — runner
    envelopes (``experiment_id`` + ``headline``), service query payloads
    (``query`` + ``headline``), and sweep documents (``spec`` +
    ``headline``) — and returns ``None`` for payloads that carry no
    headline claims (e.g. error bodies).
    """
    headline = payload.get("headline")
    if not isinstance(headline, Mapping) or not headline:
        return None
    tolerances = payload.get("tolerances")
    tolerances = tolerances if isinstance(tolerances, Mapping) else {}
    claims = tuple(
        Claim(
            metric=str(metric),
            value=float(value),  # type: ignore[arg-type]
            units=units_for_metric(str(metric)),
            tolerance=tolerances.get(metric, DEFAULT_REL_TOL),  # type: ignore[arg-type]
        )
        for metric, value in sorted(headline.items())
    )
    config: dict[str, object]
    if "experiment_id" in payload:
        experiment_id = str(payload["experiment_id"])
        title = str(payload.get("title", ""))
        config = {
            "shape": {
                "headers": list(payload.get("headers", ())),  # type: ignore[arg-type]
                "n_rows": len(payload.get("rows", ())),  # type: ignore[arg-type]
            }
        }
    elif "spec" in payload:
        config = {"spec": dict(payload["spec"])}  # type: ignore[arg-type]
        experiment_id = f"sweep:{content_hash(config)[:12]}"
        title = "stacked scenario sweep (service)"
    elif isinstance(payload.get("query"), Mapping):
        config = {"query": dict(payload["query"])}  # type: ignore[arg-type]
        experiment_id = f"{kind}:{content_hash(config)[:12]}"
        title = f"carbon-query service response ({kind})"
    else:
        return None
    return Bundle(
        experiment_id=experiment_id,
        title=title,
        status="ok",
        claims=claims,
        provenance=default_provenance(
            config=config,
            substrates=substrates,
            invariant_status=invariant_status,
            recorded_at=recorded_at,
            source=source,
        ),
        payload=dict(payload),
    )


def bundles_from_baselines(doc: Mapping[str, object]) -> dict[str, Bundle]:
    """Claim bundles from a ``golden/baselines.json`` document.

    The import preserves exactly what the golden file pinned: headline
    values, per-metric tolerances, and the result shape.  Imported
    bundles carry no payload and no substrate hashes — their provenance
    source is ``golden-import``.
    """
    entries = doc.get("experiments")
    if not isinstance(entries, Mapping):
        raise LedgerError("baselines document lacks an 'experiments' section")
    bundles: dict[str, Bundle] = {}
    for experiment_id, entry in entries.items():
        headline: Mapping[str, object] = entry.get("headline", {})  # type: ignore[union-attr]
        tolerances: Mapping[str, object] = entry.get("tolerances", {})  # type: ignore[union-attr]
        claims = tuple(
            Claim(
                metric=str(metric),
                value=float(value),  # type: ignore[arg-type]
                units=units_for_metric(str(metric)),
                tolerance=tolerances.get(metric, DEFAULT_REL_TOL),  # type: ignore[arg-type]
            )
            for metric, value in sorted(headline.items())
        )
        shape = {
            "headers": list(entry.get("headers", ())),  # type: ignore[union-attr]
            "n_rows": entry.get("n_rows"),  # type: ignore[union-attr]
        }
        bundles[str(experiment_id)] = Bundle(
            experiment_id=str(experiment_id),
            title=str(entry.get("title", "")),  # type: ignore[union-attr]
            status="ok",
            claims=claims,
            provenance=default_provenance(
                config={"shape": shape}, source="golden-import"
            ),
        )
    return bundles


# ---------------------------------------------------------------------------
# Claim-level diffing (the engine behind `sustainable-ai verify`)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Drift:
    """One baseline violation (or structural mismatch)."""

    experiment_id: str
    kind: str  # metric-drift | missing-metric | new-metric | shape | missing-baseline | stale-baseline | run-failure
    metric: str = ""
    expected: float | None = None
    actual: float | None = None
    rel_error: float | None = None
    tolerance: float | None = None
    detail: str = ""

    def to_payload(self) -> dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "kind": self.kind,
            "metric": self.metric,
            "expected": self.expected,
            "actual": self.actual,
            "rel_error": self.rel_error,
            "tolerance": self.tolerance,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of diffing one bundle set against a baseline set."""

    drifts: tuple[Drift, ...]
    n_experiments: int
    n_metrics: int

    @property
    def ok(self) -> bool:
        return not self.drifts

    def render(self) -> str:
        """Readable drift report: summary line plus one row per drift."""
        summary = (
            f"golden verify: {self.n_experiments} experiment(s), "
            f"{self.n_metrics} metric(s) checked"
        )
        if self.ok:
            return f"{summary}\nOK — no drift beyond tolerance"
        headers = ["experiment", "metric", "kind", "expected", "actual", "rel-error", "tolerance"]
        rows = [
            [
                d.experiment_id,
                d.metric or "-",
                d.kind,
                "-" if d.expected is None else f"{d.expected:.6g}",
                "-" if d.actual is None else f"{d.actual:.6g}",
                "-" if d.rel_error is None else f"{d.rel_error:.3g}",
                "-" if d.tolerance is None else f"{d.tolerance:.3g}",
            ]
            for d in self.drifts
        ]
        table = format_table(headers, rows)
        details = [f"  {d.experiment_id}: {d.detail}" for d in self.drifts if d.detail]
        parts = [summary, f"DRIFT — {len(self.drifts)} violation(s)", "", table]
        if details:
            parts += [""] + details
        return "\n".join(parts)

    def to_payload(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "n_experiments": self.n_experiments,
            "n_metrics": self.n_metrics,
            "drifts": [d.to_payload() for d in self.drifts],
        }


def _relative_error(expected: float, actual: float) -> float:
    """Relative error vs the expected value (absolute error when expected=0)."""
    if expected == actual:
        return 0.0
    if expected == 0.0:
        return abs(actual)
    return abs(actual - expected) / abs(expected)


def diff_bundles(
    baseline: Mapping[str, Bundle],
    current: Mapping[str, Bundle],
    strict: bool = True,
) -> VerifyReport:
    """Claim-by-claim diff of two bundle sets.

    Baseline-side claims carry the tolerances; ``strict`` also flags
    baseline bundles with no corresponding current bundle (stale
    baselines) — disable it when intentionally diffing a subset.
    """
    drifts: list[Drift] = []
    n_metrics = 0

    for eid, bundle in current.items():
        if eid not in baseline:
            drifts.append(
                Drift(eid, "missing-baseline", detail="no baseline recorded; re-run with --update")
            )
            continue
        base = baseline[eid]
        base_claims = {c.metric: c for c in base.claims}
        cur_claims = {c.metric: c for c in bundle.claims}

        for metric in sorted(set(base_claims) | set(cur_claims)):
            if metric not in cur_claims:
                drifts.append(
                    Drift(eid, "missing-metric", metric, expected=base_claims[metric].value)
                )
                continue
            if metric not in base_claims:
                drifts.append(Drift(eid, "new-metric", metric, actual=cur_claims[metric].value))
                continue
            n_metrics += 1
            tolerance = base_claims[metric].tolerance
            if tolerance is None:
                continue  # informational claim
            expected = base_claims[metric].value
            actual = cur_claims[metric].value
            rel_error = _relative_error(expected, actual)
            if rel_error > tolerance:
                drifts.append(
                    Drift(eid, "metric-drift", metric, expected, actual, rel_error, tolerance)
                )

        base_shape, cur_shape = base.shape(), bundle.shape()
        if base_shape is not None and cur_shape is not None:
            base_headers = list(base_shape.get("headers", ()))  # type: ignore[arg-type]
            cur_headers = list(cur_shape.get("headers", ()))  # type: ignore[arg-type]
            if base_headers != cur_headers:
                drifts.append(
                    Drift(
                        eid,
                        "shape",
                        detail=f"headers changed: {base_headers!r} -> {cur_headers!r}",
                    )
                )
            base_rows, cur_rows = base_shape.get("n_rows"), cur_shape.get("n_rows")
            if base_rows is not None and cur_rows is not None and int(base_rows) != int(cur_rows):  # type: ignore[arg-type]
                drifts.append(
                    Drift(eid, "shape", detail=f"row count changed: {base_rows} -> {cur_rows}")
                )

    if strict:
        for eid in baseline:
            if eid not in current:
                drifts.append(
                    Drift(eid, "stale-baseline", detail="baseline has no matching experiment")
                )

    return VerifyReport(tuple(drifts), n_experiments=len(current), n_metrics=n_metrics)


def fold_failures(report: VerifyReport, failed_bundles: Sequence[Bundle]) -> VerifyReport:
    """Fold failed-run bundles into a diff report.

    A crashed/timed-out experiment produced no claims, so
    :func:`diff_bundles` would misreport its baseline as stale; this
    replaces those stale entries with honest ``run-failure`` drifts
    carrying the structured error, keeping verify's exit nonzero and its
    table complete.
    """
    failed_ids = {bundle.experiment_id for bundle in failed_bundles}
    kept = tuple(
        d
        for d in report.drifts
        if not (d.kind == "stale-baseline" and d.experiment_id in failed_ids)
    )
    failures = []
    for bundle in failed_bundles:
        error = bundle.error or {}
        failures.append(
            Drift(
                bundle.experiment_id,
                "run-failure",
                detail=(
                    f"{error.get('kind', 'exception')} after "
                    f"{error.get('attempts', 1)} attempt(s): {error.get('message', '')}"
                ),
            )
        )
    return VerifyReport(
        kept + tuple(failures),
        n_experiments=report.n_experiments,
        n_metrics=report.n_metrics,
    )


# ---------------------------------------------------------------------------
# The persistent store
# ---------------------------------------------------------------------------


@dataclass
class RunEntry:
    """One recorded run: which bundle answered each experiment."""

    run_id: str
    recorded_at: float | None
    experiments: dict[str, str]  # experiment_id -> bundle_id
    meta: dict[str, object] = field(default_factory=dict)

    def to_payload(self) -> dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "recorded_at": self.recorded_at,
            "experiments": dict(self.experiments),
            "meta": dict(self.meta),
        }


def resolve_ledger_dir(explicit: str | None = None) -> Path | None:
    """The active ledger directory: explicit flag, else the environment."""
    if explicit:
        return Path(explicit)
    raw = os.environ.get(LEDGER_DIR_ENV_VAR, "").strip()
    return Path(raw) if raw else None


def run_id_for(bundle_ids: Iterable[str]) -> str:
    """Deterministic run id: a short content hash of the member bundles."""
    return "run-" + content_hash(sorted(bundle_ids))[:12]


class Ledger:
    """An append-only bundle store with runs and pinned epochs.

    Directory layout (all files optional until first write)::

        bundles.jsonl   one compact-canonical bundle per line, deduped by id
        runs.jsonl      run membership deltas (later lines merge by run_id)
        epochs.json     pinned name -> {experiments, meta} table

    ``directory=None`` keeps everything in memory (the service's default
    mode).  Loading tolerates torn trailing lines — a malformed line is
    counted and skipped, never fatal, mirroring the disk cache's
    corruption-is-a-miss stance.
    """

    def __init__(self, directory: Path | None = None) -> None:
        self.directory = directory
        self.bundles: dict[str, Bundle] = {}
        self.runs: dict[str, RunEntry] = {}
        self.epochs: dict[str, dict[str, object]] = {}
        self.corrupt_lines = 0
        if directory is not None:
            self._load(directory)

    # -- construction ------------------------------------------------------

    @classmethod
    def open(cls, directory: Path | str) -> "Ledger":
        """Open (creating lazily on first write) a directory-backed ledger."""
        return cls(Path(directory))

    @classmethod
    def in_memory(cls) -> "Ledger":
        return cls(None)

    def _load(self, directory: Path) -> None:
        import json

        bundles_file = directory / "bundles.jsonl"
        if bundles_file.exists():
            for line in bundles_file.read_text().splitlines():
                if not line.strip():
                    continue
                try:
                    doc = json.loads(line)
                    bundle = Bundle.from_payload(doc["bundle"])
                    self.bundles[str(doc["bundle_id"])] = bundle
                except (ValueError, KeyError, TypeError, LedgerError):
                    self.corrupt_lines += 1
        runs_file = directory / "runs.jsonl"
        if runs_file.exists():
            for line in runs_file.read_text().splitlines():
                if not line.strip():
                    continue
                try:
                    doc = json.loads(line)
                    run_id = str(doc["run_id"])
                    recorded_at = doc.get("recorded_at")
                    entry = self.runs.get(run_id)
                    if entry is None:
                        entry = RunEntry(run_id, recorded_at, {}, {})
                        self.runs[run_id] = entry
                    entry.experiments.update(
                        {str(k): str(v) for k, v in doc.get("experiments", {}).items()}
                    )
                    entry.meta.update(doc.get("meta", {}))
                    if recorded_at is not None:
                        entry.recorded_at = float(recorded_at)
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1
        epochs_file = directory / "epochs.json"
        if epochs_file.exists():
            try:
                doc = json.loads(epochs_file.read_text())
                self.epochs = dict(doc.get("epochs", {}))
            except (ValueError, AttributeError):
                self.corrupt_lines += 1

    # -- appends -----------------------------------------------------------

    def _append(self, filename: str, doc: Mapping[str, object]) -> None:
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.directory / filename, "a", encoding="utf-8") as handle:
            handle.write(compact_dumps(doc) + "\n")

    def _write_epochs(self) -> None:
        if self.directory is None:
            return
        import os as _os
        import tempfile

        self.directory.mkdir(parents=True, exist_ok=True)
        target = self.directory / "epochs.json"
        body = canonical_dumps({"schema": SCHEMA_VERSION, "epochs": self.epochs}) + "\n"
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with _os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
            _os.replace(tmp, target)
        except BaseException:
            try:
                _os.unlink(tmp)
            except OSError:
                pass
            raise

    def record(self, bundle: Bundle) -> str:
        """Append one bundle (idempotent per content address)."""
        bundle_id = bundle.bundle_id
        if bundle_id not in self.bundles:
            self.bundles[bundle_id] = bundle
            self._append("bundles.jsonl", {"bundle_id": bundle_id, "bundle": bundle.to_payload()})
        return bundle_id

    def record_run(
        self,
        bundles: Sequence[Bundle],
        *,
        run_id: str | None = None,
        recorded_at: float | None = None,
        meta: Mapping[str, object] | None = None,
    ) -> str:
        """Record an atomic bundle set as one run; returns the run id."""
        ids = {bundle.experiment_id: self.record(bundle) for bundle in bundles}
        rid = run_id or run_id_for(ids.values())
        entry = self.runs.get(rid)
        if entry is None:
            entry = RunEntry(rid, recorded_at, {}, dict(meta or {}))
            self.runs[rid] = entry
        entry.experiments.update(ids)
        entry.meta.update(meta or {})
        if recorded_at is not None:
            entry.recorded_at = recorded_at
        self._append(
            "runs.jsonl",
            {
                "schema": SCHEMA_VERSION,
                "run_id": rid,
                "recorded_at": recorded_at,
                "experiments": ids,
                "meta": dict(meta or {}),
            },
        )
        return rid

    def update_run(
        self,
        run_id: str,
        bundle: Bundle,
        *,
        recorded_at: float | None = None,
        meta: Mapping[str, object] | None = None,
    ) -> str:
        """Record one bundle into a (possibly ongoing) run — the service's
        record-on-execute path appends a delta line per execution."""
        self.record_run(
            [bundle], run_id=run_id, recorded_at=recorded_at, meta=meta
        )
        return bundle.bundle_id

    def pin_epoch(
        self,
        name: str,
        bundles: Mapping[str, Bundle] | None = None,
        *,
        run_id: str | None = None,
        meta: Mapping[str, object] | None = None,
    ) -> None:
        """Pin a named epoch from a bundle mapping or an existing run."""
        if (bundles is None) == (run_id is None):
            raise LedgerError("pin_epoch needs exactly one of bundles= or run_id=")
        if run_id is not None:
            if run_id not in self.runs:
                raise LedgerError(f"unknown run {run_id!r}")
            experiments = dict(self.runs[run_id].experiments)
        else:
            experiments = {eid: self.record(b) for eid, b in (bundles or {}).items()}
        self.epochs[name] = {"experiments": experiments, "meta": dict(meta or {})}
        self._write_epochs()

    # -- queries -----------------------------------------------------------

    def refs(self) -> tuple[str, ...]:
        """Every resolvable reference: epoch names then run ids."""
        return tuple(self.epochs) + tuple(self.runs)

    def resolve(self, ref: str) -> dict[str, Bundle]:
        """Bundle set of one reference: an epoch name, a run id, or a
        unique run-id prefix (>= 4 characters)."""
        if ref in self.epochs:
            mapping = self.epochs[ref].get("experiments", {})
        elif ref in self.runs:
            mapping = self.runs[ref].experiments
        else:
            matches = [rid for rid in self.runs if rid.startswith(ref)] if len(ref) >= 4 else []
            if len(matches) != 1:
                known = ", ".join(self.refs()) or "(none)"
                raise LedgerError(f"unknown ledger ref {ref!r}; known: {known}")
            mapping = self.runs[matches[0]].experiments
        out: dict[str, Bundle] = {}
        for eid, bundle_id in mapping.items():  # type: ignore[union-attr]
            bundle = self.bundles.get(str(bundle_id))
            if bundle is None:
                raise LedgerError(
                    f"ref {ref!r} names bundle {bundle_id!r} for {eid!r}, "
                    "but the bundle store has no such entry"
                )
            out[str(eid)] = bundle
        return out

    def latest_bundle(self, experiment_id: str, ref: str | None = None) -> tuple[str, Bundle] | None:
        """``(ref, bundle)`` for an experiment: from ``ref`` when given,
        else the most recently recorded run, else any pinned epoch."""
        if ref is not None:
            bundles = self.resolve(ref)
            bundle = bundles.get(experiment_id)
            return None if bundle is None else (ref, bundle)
        for run_id in reversed(list(self.runs)):
            bundle_id = self.runs[run_id].experiments.get(experiment_id)
            if bundle_id is not None and bundle_id in self.bundles:
                return run_id, self.bundles[bundle_id]
        for name in reversed(list(self.epochs)):
            mapping = self.epochs[name].get("experiments", {})
            bundle_id = mapping.get(experiment_id)  # type: ignore[union-attr]
            if bundle_id is not None and str(bundle_id) in self.bundles:
                return name, self.bundles[str(bundle_id)]
        return None

    def diff(self, ref_a: str, ref_b: str, strict: bool = True) -> VerifyReport:
        """Claim-by-claim diff of two references (baseline = ``ref_a``)."""
        return diff_bundles(self.resolve(ref_a), self.resolve(ref_b), strict=strict)

    def diff_payload(self, ref_a: str, ref_b: str, strict: bool = True) -> dict[str, object]:
        """The diff as a JSON document (the ``/ledger/diff`` body)."""
        side_a, side_b = self.resolve(ref_a), self.resolve(ref_b)
        report = diff_bundles(side_a, side_b, strict=strict)

        def _version_of(side: Mapping[str, Bundle]) -> dict[str, str]:
            for bundle in side.values():
                return dict(bundle.provenance.code_version)
            return {}

        return {
            "a": ref_a,
            "b": ref_b,
            "strict": strict,
            "code_versions": {"a": _version_of(side_a), "b": _version_of(side_b)},
            **report.to_payload(),
        }

    def trace(
        self, experiment_id: str, metric: str, ref: str | None = None
    ) -> dict[str, object]:
        """Resolve a headline metric to the provenance that produced it.

        The trace document names the claim (value, units, tolerance), its
        bundle and run/epoch, the code version, canonical-config hash,
        invariant status, and — the audit payoff — the substrate content
        hashes of every memoized input the computation consumed.
        """
        found = self.latest_bundle(experiment_id, ref)
        if found is None:
            known = ", ".join(self.refs()) or "(none)"
            raise LedgerError(
                f"no recorded bundle for experiment {experiment_id!r}"
                + (f" in ref {ref!r}" if ref is not None else f"; recorded refs: {known}")
            )
        ref_name, bundle = found
        claim = bundle.claim(metric)
        if claim is None:
            metrics = ", ".join(c.metric for c in bundle.claims) or "(none)"
            raise LedgerError(
                f"bundle for {experiment_id!r} carries no claim {metric!r}; "
                f"claims: {metrics}"
            )
        return {
            "experiment_id": experiment_id,
            "metric": metric,
            "value": claim.value,
            "units": claim.units,
            "tolerance": claim.tolerance,
            "ref": ref_name,
            "bundle_id": bundle.bundle_id,
            "status": bundle.status,
            "provenance": bundle.provenance.to_payload(),
        }

    def stats(self) -> dict[str, object]:
        """Summary counts (the ``/ledger`` body and ``/metrics`` block)."""
        return {
            "bundles": len(self.bundles),
            "runs": list(self.runs),
            "epochs": list(self.epochs),
            "corrupt_lines": self.corrupt_lines,
            "directory": None if self.directory is None else str(self.directory),
        }

    # -- retention ---------------------------------------------------------

    def gc(self, *, older_than: float | None = None, dry_run: bool = False) -> "GcReport":
        """Compact the store and prune old runs (``sustainable-ai ledger gc``).

        Long-lived service ledgers grow one ``runs.jsonl`` delta line per
        executed query and re-append nothing else — compaction rewrites
        both journals to their minimal form and applies retention:

        * runs whose ``recorded_at`` is older than ``older_than`` (a POSIX
          timestamp) are pruned; runs with no timestamp are kept (age
          unprovable).  ``older_than=None`` prunes nothing and only
          compacts.
        * **epochs are the pins**: every bundle referenced by any pinned
          epoch — the golden epoch ``"0"`` included — survives no matter
          how old the runs that produced it are.  ``epochs.json`` is
          never touched.
        * surviving runs are consolidated to one line each (the service
          run's N delta lines become 1), duplicate and torn bundle lines
          are dropped, and bundles referenced by neither an epoch nor a
          surviving run are removed.

        The rewrite is atomic per file (tmp + ``os.replace``).  With
        ``dry_run=True`` nothing is modified; the report shows what a
        real pass would do.  In-memory ledgers compact their dicts only.
        """
        import os as _os
        import tempfile

        pinned: set[str] = set()
        for epoch in self.epochs.values():
            mapping = epoch.get("experiments", {})
            pinned.update(str(bundle_id) for bundle_id in mapping.values())  # type: ignore[union-attr]

        pruned_runs = tuple(
            run_id
            for run_id, entry in self.runs.items()
            if older_than is not None
            and entry.recorded_at is not None
            and entry.recorded_at < older_than
        )
        kept_runs = {
            run_id: entry for run_id, entry in self.runs.items() if run_id not in pruned_runs
        }
        live: set[str] = set(pinned)
        for entry in kept_runs.values():
            live.update(str(bundle_id) for bundle_id in entry.experiments.values())
        kept_bundles = {
            bundle_id: bundle
            for bundle_id, bundle in self.bundles.items()
            if bundle_id in live
        }
        removed_bundles = len(self.bundles) - len(kept_bundles)

        def _file_stats(name: str) -> tuple[int, int]:
            if self.directory is None:
                return 0, 0
            path = self.directory / name
            if not path.exists():
                return 0, 0
            text = path.read_text()
            return len(text.encode("utf-8")), sum(1 for ln in text.splitlines() if ln.strip())

        bundle_bytes, bundle_lines = _file_stats("bundles.jsonl")
        run_bytes, run_lines = _file_stats("runs.jsonl")

        bundle_out = [
            compact_dumps({"bundle_id": bundle_id, "bundle": bundle.to_payload()})
            for bundle_id, bundle in kept_bundles.items()
        ]
        run_out = [compact_dumps(entry.to_payload()) for entry in kept_runs.values()]

        report = GcReport(
            dry_run=dry_run,
            runs_pruned=pruned_runs,
            runs_kept=len(kept_runs),
            bundles_removed=removed_bundles,
            bundles_kept=len(kept_bundles),
            epochs_pinned=len(self.epochs),
            lines_before=bundle_lines + run_lines,
            lines_after=len(bundle_out) + len(run_out),
            bytes_before=bundle_bytes + run_bytes,
            bytes_after=sum(len(line) + 1 for line in bundle_out + run_out),
        )
        if dry_run:
            return report

        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            for name, lines in (("bundles.jsonl", bundle_out), ("runs.jsonl", run_out)):
                target = self.directory / name
                fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
                try:
                    with _os.fdopen(fd, "w", encoding="utf-8") as handle:
                        for line in lines:
                            handle.write(line + "\n")
                    _os.replace(tmp, target)
                except BaseException:
                    try:
                        _os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        self.bundles = kept_bundles
        self.runs = kept_runs
        return report


@dataclass(frozen=True)
class GcReport:
    """Outcome of one :meth:`Ledger.gc` pass."""

    dry_run: bool
    runs_pruned: tuple[str, ...]
    runs_kept: int
    bundles_removed: int
    bundles_kept: int
    epochs_pinned: int
    lines_before: int
    lines_after: int
    bytes_before: int
    bytes_after: int

    def to_payload(self) -> dict[str, object]:
        return {
            "dry_run": self.dry_run,
            "runs_pruned": list(self.runs_pruned),
            "runs_kept": self.runs_kept,
            "bundles_removed": self.bundles_removed,
            "bundles_kept": self.bundles_kept,
            "epochs_pinned": self.epochs_pinned,
            "lines_before": self.lines_before,
            "lines_after": self.lines_after,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
        }

    def render(self) -> str:
        verb = "would prune" if self.dry_run else "pruned"
        lines = [
            f"{verb} {len(self.runs_pruned)} run(s), removed "
            f"{self.bundles_removed} bundle(s); kept {self.runs_kept} run(s), "
            f"{self.bundles_kept} bundle(s), {self.epochs_pinned} pinned epoch(s)",
            f"  journal: {self.lines_before} -> {self.lines_after} line(s), "
            f"{self.bytes_before} -> {self.bytes_after} byte(s)",
        ]
        if self.runs_pruned:
            lines.append("  pruned: " + ", ".join(self.runs_pruned))
        return "\n".join(lines)


__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_REL_TOL",
    "LEDGER_DIR_ENV_VAR",
    "GOLDEN_EPOCH",
    "LedgerError",
    "units_for_metric",
    "Claim",
    "SubstrateRef",
    "Provenance",
    "default_provenance",
    "Bundle",
    "bundle_from_payload",
    "bundles_from_baselines",
    "Drift",
    "VerifyReport",
    "diff_bundles",
    "fold_failures",
    "RunEntry",
    "resolve_ledger_dir",
    "run_id_for",
    "GcReport",
    "Ledger",
]
