"""Stacked scenario sweeps: thousands of what-if points as one ndarray program.

:mod:`repro.core.scenario` evaluates one :class:`~repro.core.scenario.Scenario`
at a time; the paper's lever analysis (Figures 5 and 9) only needs a
handful.  A production system asking "which knob matters most, and where
is the carbon/throughput Pareto frontier?" needs *thousands* of
parameter combinations, and after PR 4 vectorized the per-hour kernels
the per-scenario axis was the last scalar loop on the hot path.  This
module adds that batch axis:

* :class:`SweepSpec` — a frozen, hashable description of a sweep: which
  of the six scenario knobs (:data:`SWEEP_PARAMETERS`) vary, over which
  ranges, sampled how (full grid or scrambled Sobol), for how much work.
  Frozen dataclasses canonical-tokenize (:mod:`repro.core.diskcache`),
  so a spec is also a disk-cache key — interrupted sweeps warm-start.
* :func:`evaluate_work_stacked` — the stacked kernel: every arithmetic
  step replicates :func:`~repro.core.scenario.evaluate_work`'s exact
  operation order element-wise, so results are **bit-equal** (``==`` on
  floats, no tolerance) to the retained scalar reference path
  (:func:`_reference_evaluate_stacked`), which the property suite pins.
* :func:`run_sweep` — chunked evaluation through the two-tier substrate
  cache (:func:`sweep_chunk`), so re-running a partially completed sweep
  only computes the missing chunks.
* :func:`sweep_sensitivity` / :func:`pareto_frontier` — tornado-style
  one-at-a-time sensitivity and the carbon-vs-throughput Pareto set.

The bit-equality claim rests on IEEE 754: numpy's float64 element-wise
multiply/divide/add are correctly rounded, exactly like Python ``float``
arithmetic, so *identical operation ordering* gives identical bits.  The
kernel therefore never re-associates, never fuses, and never uses
``np.power`` (whose SIMD path may drift 1 ULP).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro import units
from repro.carbon.intensity import CarbonIntensity, US_AVERAGE
from repro.core.memo import memoized_substrate
from repro.core.scenario import Scenario, evaluate_work
from repro.errors import UnitError

__all__ = [
    "SWEEP_PARAMETERS",
    "PARAMETER_BOUNDS",
    "MAX_SWEEP_POINTS",
    "DEFAULT_CHUNK_POINTS",
    "DEFAULT_RANGES",
    "ParameterRange",
    "SweepSpec",
    "StackedScenarioResult",
    "SweepOutcome",
    "SensitivityBar",
    "sample_points",
    "scenario_at",
    "evaluate_work_stacked",
    "sweep_chunk",
    "run_sweep",
    "sweep_sensitivity",
    "pareto_frontier",
    "spec_to_params",
    "spec_from_params",
]

#: The sweepable scenario knobs, in canonical (grid-axis) order.
#: ``intensity_scale`` multiplies the spec's base grid intensity via
#: :meth:`~repro.carbon.intensity.CarbonIntensity.scaled`.
SWEEP_PARAMETERS: tuple[str, ...] = (
    "pue",
    "utilization",
    "lifetime_years",
    "board_power_fraction",
    "infrastructure_embodied_factor",
    "intensity_scale",
)

#: Inclusive range bounds a :class:`ParameterRange` may span, per knob.
#: Chosen to keep every sampled point a *valid* :class:`Scenario` (so the
#: scalar reference path never rejects a point the stacked path accepted)
#: and the arithmetic well-scaled.
PARAMETER_BOUNDS: dict[str, tuple[float, float]] = {
    "pue": (1.0, 10.0),
    "utilization": (0.01, 1.0),
    "lifetime_years": (0.25, 100.0),
    "board_power_fraction": (0.05, 1.0),
    "infrastructure_embodied_factor": (1.0, 100.0),
    "intensity_scale": (0.0, 100.0),
}

#: Validation domain of each knob inside the stacked kernel itself:
#: ``(lo, hi, lo_open)``.  Wider than :data:`PARAMETER_BOUNDS` — these are
#: the physical domains :class:`~repro.core.scenario.Scenario` enforces.
_DOMAINS: dict[str, tuple[float, float, bool]] = {
    "pue": (1.0, math.inf, False),
    "utilization": (0.0, 1.0, True),
    "lifetime_years": (0.0, math.inf, True),
    "board_power_fraction": (0.0, 1.0, True),
    "infrastructure_embodied_factor": (1.0, math.inf, False),
    "intensity_scale": (0.0, math.inf, False),
}

#: Hard cap on a single sweep's point count (grid product or Sobol draw).
MAX_SWEEP_POINTS = 1_000_000

#: Default chunk granularity of :func:`run_sweep` — small enough that a
#: resumed sweep skips most of the work, large enough that per-chunk
#: cache overhead is noise.
DEFAULT_CHUNK_POINTS = 2048

#: Rows of the Pareto frontier listed verbatim in payloads; the full
#: frontier size always rides in the headline (``pareto_points``).
MAX_PARETO_ROWS = 64


@dataclass(frozen=True, slots=True)
class ParameterRange:
    """One swept knob: ``points`` grid steps over ``[lo, hi]``.

    ``points`` is the grid-axis resolution; Sobol sampling ignores it and
    draws :attr:`SweepSpec.n_points` joint samples from the box instead.
    """

    name: str
    lo: float
    hi: float
    points: int = 5

    def __post_init__(self) -> None:
        if self.name not in SWEEP_PARAMETERS:
            raise UnitError(
                f"unknown sweep parameter {self.name!r}; "
                f"sweepable: {', '.join(SWEEP_PARAMETERS)}"
            )
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)):
            raise UnitError(f"range for {self.name!r} must be finite")
        if self.lo > self.hi:
            raise UnitError(
                f"range for {self.name!r} must satisfy lo <= hi, "
                f"got [{self.lo}, {self.hi}]"
            )
        bound_lo, bound_hi = PARAMETER_BOUNDS[self.name]
        if self.lo < bound_lo or self.hi > bound_hi:
            raise UnitError(
                f"range for {self.name!r} must lie within "
                f"[{bound_lo}, {bound_hi}], got [{self.lo}, {self.hi}]"
            )
        if self.points < 1:
            raise UnitError(f"range for {self.name!r} needs >= 1 point")

    def axis(self) -> np.ndarray:
        """The grid-axis values: ``points`` evenly spaced floats."""
        if self.points == 1:
            return np.array([self.lo], dtype=float)
        return np.linspace(self.lo, self.hi, self.points)


#: The default sweep box: the paper's stated ranges for the four headline
#: levers (utilization 30-60%+, lifetime 3-5y, PUE, grid cleanliness).
DEFAULT_RANGES: tuple[ParameterRange, ...] = (
    ParameterRange("utilization", 0.30, 0.80, 6),
    ParameterRange("pue", 1.05, 1.60, 4),
    ParameterRange("lifetime_years", 3.0, 5.0, 3),
    ParameterRange("intensity_scale", 0.25, 1.50, 4),
)


@dataclass(frozen=True, slots=True)
class SweepSpec:
    """A frozen, hashable, disk-cacheable description of one sweep.

    ``sampling`` selects the point set: ``"grid"`` takes the cartesian
    product of each range's :meth:`~ParameterRange.axis` (total = product
    of ``points``); ``"sobol"`` draws ``n_points`` scrambled-Sobol joint
    samples from the box (seeded, deterministic).  Knobs without a range
    stay at the base-scenario value.
    """

    busy_device_hours: float = 1000.0
    ranges: tuple[ParameterRange, ...] = DEFAULT_RANGES
    sampling: str = "grid"
    n_points: int = 1024
    seed: int = 0
    intensity_kg_per_kwh: float = US_AVERAGE.kg_per_kwh
    intensity_label: str = US_AVERAGE.label
    devices_per_server: int = 2

    def __post_init__(self) -> None:
        if not (
            isinstance(self.busy_device_hours, (int, float))
            and math.isfinite(self.busy_device_hours)
        ):
            raise UnitError(
                f"busy device-hours must be finite, got {self.busy_device_hours!r}"
            )
        if self.busy_device_hours < 0:
            raise UnitError("busy device-hours must be non-negative")
        if not self.ranges:
            raise UnitError("a sweep needs at least one parameter range")
        names = [r.name for r in self.ranges]
        if len(set(names)) != len(names):
            raise UnitError(f"duplicate sweep parameter(s) in {names}")
        if self.sampling not in ("grid", "sobol"):
            raise UnitError(
                f"sampling must be 'grid' or 'sobol', got {self.sampling!r}"
            )
        if self.sampling == "sobol" and not (1 <= self.n_points <= MAX_SWEEP_POINTS):
            raise UnitError(
                f"sobol n_points must be in [1, {MAX_SWEEP_POINTS}], "
                f"got {self.n_points}"
            )
        if self.total_points() > MAX_SWEEP_POINTS:
            raise UnitError(
                f"sweep would evaluate {self.total_points()} points; "
                f"the cap is {MAX_SWEEP_POINTS}"
            )
        if not math.isfinite(self.intensity_kg_per_kwh) or self.intensity_kg_per_kwh < 0:
            raise UnitError(
                f"base intensity must be finite and non-negative, "
                f"got {self.intensity_kg_per_kwh!r}"
            )
        if not (1 <= self.devices_per_server <= 1024):
            raise UnitError(
                f"devices_per_server must be in [1, 1024], got {self.devices_per_server}"
            )

    def total_points(self) -> int:
        """How many scenario points this spec evaluates."""
        if self.sampling == "sobol":
            return self.n_points
        total = 1
        for r in self.ranges:
            total *= r.points
        return total

    def base_scenario(self) -> Scenario:
        """The scenario every un-swept knob is held at."""
        return Scenario(
            intensity=CarbonIntensity(self.intensity_kg_per_kwh, self.intensity_label),
            devices_per_server=self.devices_per_server,
            name="sweep-base",
        )


def sample_points(spec: SweepSpec) -> dict[str, np.ndarray]:
    """The spec's point set: one float64 array per swept knob.

    All arrays share one length (:meth:`SweepSpec.total_points`) and are
    in deterministic order — grid points in ``meshgrid(indexing="ij")``
    raster order over :data:`SWEEP_PARAMETERS`-ordered axes, Sobol points
    in draw order.
    """
    ordered = sorted(spec.ranges, key=lambda r: SWEEP_PARAMETERS.index(r.name))
    if spec.sampling == "grid":
        axes = [r.axis() for r in ordered]
        mesh = np.meshgrid(*axes, indexing="ij")
        return {
            r.name: np.ascontiguousarray(m.reshape(-1))
            for r, m in zip(ordered, mesh)
        }
    from scipy.stats import qmc

    sampler = qmc.Sobol(d=len(ordered), scramble=True, seed=spec.seed)
    with warnings.catch_warnings():
        # Sobol balance only holds at powers of two; a sweep is a survey,
        # not an integrator, so any n is fine.
        warnings.simplefilter("ignore", UserWarning)
        unit = sampler.random(spec.n_points)
    lows = np.array([r.lo for r in ordered])
    highs = np.array([r.hi for r in ordered])
    # Affine map of the unit hypercube by hand rather than `qmc.scale`,
    # which rejects degenerate (lo == hi) axes that are perfectly valid
    # sweep pins; u in [0, 1) keeps every value inside [lo, hi].
    scaled = lows + unit * (highs - lows)
    return {
        r.name: np.ascontiguousarray(scaled[:, i]) for i, r in enumerate(ordered)
    }


def scenario_at(base: Scenario, point: Mapping[str, float]) -> Scenario:
    """The scalar :class:`Scenario` at one sweep point.

    This is the bridge the reference path (and any debugging session)
    uses: ``intensity_scale`` becomes ``base.intensity.scaled(value)``,
    every other knob is a plain field override.
    """
    changes: dict[str, object] = {}
    for name, value in point.items():
        if name == "intensity_scale":
            changes["intensity"] = base.intensity.scaled(float(value))
        else:
            changes[name] = float(value)
    return base.but(**changes)


@dataclass(frozen=True)
class StackedScenarioResult:
    """Per-point footprints of a stacked evaluation (float64 arrays).

    ``energy_kwh`` is facility-level energy, mirroring
    :attr:`~repro.core.scenario.ScenarioResult.energy`.
    """

    energy_kwh: np.ndarray
    operational_kg: np.ndarray
    embodied_kg: np.ndarray

    def __len__(self) -> int:
        return len(self.energy_kwh)

    @property
    def total_kg(self) -> np.ndarray:
        """Per-point ``operational + embodied`` (the scalar ``total`` op)."""
        return self.operational_kg + self.embodied_kg

    @property
    def embodied_share(self) -> np.ndarray:
        """Per-point embodied share of the total (0 where total is 0)."""
        total = self.total_kg
        out = np.zeros(len(total))
        np.divide(self.embodied_kg, total, out=out, where=total != 0)
        return out


def _validate_axis(name: str, values: np.ndarray) -> None:
    """Reject non-finite / out-of-domain values with a structured error."""
    lo, hi, lo_open = _DOMAINS[name]
    finite = np.isfinite(values)
    if not finite.all():
        index = int(np.argmin(finite))
        raise UnitError(
            f"sweep parameter {name!r} must be finite; "
            f"point {index} is {values[index]!r}"
        )
    bad = (values < lo) | (values > hi) | ((values == lo) if lo_open else False)
    if np.any(bad):
        index = int(np.argmax(bad))
        bracket = "(" if lo_open else "["
        raise UnitError(
            f"sweep parameter {name!r} must be in {bracket}{lo}, {hi}]; "
            f"point {index} is {values[index]!r}"
        )


def _axis_arrays(
    base: Scenario, params: Mapping[str, np.ndarray]
) -> tuple[int, dict[str, np.ndarray]]:
    """Validated (n, full axis dict) with un-swept knobs broadcast to n."""
    if not params:
        raise UnitError("stacked evaluation needs at least one swept parameter")
    arrays: dict[str, np.ndarray] = {}
    n: int | None = None
    for name, values in params.items():
        if name not in SWEEP_PARAMETERS:
            raise UnitError(
                f"unknown sweep parameter {name!r}; "
                f"sweepable: {', '.join(SWEEP_PARAMETERS)}"
            )
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1 or len(arr) == 0:
            raise UnitError(
                f"sweep parameter {name!r} must be a non-empty 1-D array"
            )
        if n is None:
            n = len(arr)
        elif len(arr) != n:
            raise UnitError(
                f"sweep parameter arrays disagree on length: "
                f"{name!r} has {len(arr)} points, expected {n}"
            )
        _validate_axis(name, arr)
        arrays[name] = arr
    assert n is not None
    base_values = {
        "pue": base.pue,
        "utilization": base.utilization,
        "lifetime_years": base.lifetime_years,
        "board_power_fraction": base.board_power_fraction,
        "infrastructure_embodied_factor": base.infrastructure_embodied_factor,
        "intensity_scale": 1.0,
    }
    for name in SWEEP_PARAMETERS:
        if name not in arrays:
            arrays[name] = np.full(n, base_values[name])
            _validate_axis(name, arrays[name])
    return n, arrays


def evaluate_work_stacked(
    busy_device_hours: float,
    base: Scenario,
    params: Mapping[str, np.ndarray],
) -> StackedScenarioResult:
    """Evaluate ``busy_device_hours`` of work across all points at once.

    Bit-equal to calling :func:`~repro.core.scenario.evaluate_work` at
    :func:`scenario_at` of every point: each line below performs the same
    IEEE 754 double operation, in the same order, as the scalar path —
    element-wise instead of one point at a time.  Comments cite the
    scalar statement being mirrored.
    """
    if not (
        isinstance(busy_device_hours, (int, float))
        and math.isfinite(busy_device_hours)
    ):
        raise UnitError(
            f"busy device-hours must be finite, got {busy_device_hours!r}"
        )
    if busy_device_hours < 0:
        raise UnitError("busy device-hours must be non-negative")
    n, axes = _axis_arrays(base, params)

    # evaluate_work: resident_hours = busy / utilization
    resident_hours = busy_device_hours / axes["utilization"]
    # evaluate_work: board_watts = tdp * board_power_fraction
    board_watts = base.device.tdp_watts * axes["board_power_fraction"]
    # evaluate_work: it_energy = (board_watts * resident_hours) / 1e3
    it_kwh = board_watts * resident_hours / 1e3
    # AccountingContext.facility_energy: it * pue
    facility_kwh = it_kwh * axes["pue"]
    # CarbonIntensity.scaled: kg_per_kwh * factor, then
    # operational_for_energy: (it * pue) * kg_per_kwh
    kg_per_kwh = base.intensity.kg_per_kwh * axes["intensity_scale"]
    operational_kg = it_kwh * axes["pue"] * kg_per_kwh
    # evaluate_work: server_hours = resident_hours / devices_per_server
    server_hours = resident_hours / base.devices_per_server
    # AmortizationPolicy: utilized = (lifetime_years * HOURS_PER_YEAR) * 1.0
    utilized_hours = (
        axes["lifetime_years"] * units.HOURS_PER_YEAR
    ) * 1.0
    # rate_per_utilized_hour: (manufacturing * infrastructure) / utilized
    rate = (
        base.server_embodied.kg * axes["infrastructure_embodied_factor"]
    ) / utilized_hours
    # amortized_embodied: (rate * server_hours) * n_servers(=1.0)
    embodied_kg = rate * server_hours * 1.0
    return StackedScenarioResult(
        energy_kwh=facility_kwh,
        operational_kg=operational_kg,
        embodied_kg=embodied_kg,
    )


def _reference_evaluate_stacked(
    busy_device_hours: float,
    base: Scenario,
    params: Mapping[str, np.ndarray],
) -> StackedScenarioResult:
    """The retained scalar path: one ``evaluate_work`` call per point.

    This is the ground truth the stacked kernel is pinned against
    (``tests/test_sweep_property.py``, benchmarks) — never delete it.
    """
    names = list(params)
    n = len(next(iter(params.values())))
    results = [
        evaluate_work(
            busy_device_hours,
            scenario_at(base, {name: float(params[name][i]) for name in names}),
        )
        for i in range(n)
    ]
    return StackedScenarioResult(
        energy_kwh=np.array([r.energy.kwh for r in results]),
        operational_kg=np.array([r.operational.kg for r in results]),
        embodied_kg=np.array([r.embodied.kg for r in results]),
    )


# ---------------------------------------------------------------------------
# Chunked execution through the substrate cache (resumption)
# ---------------------------------------------------------------------------


@memoized_substrate
def sweep_chunk(
    spec: SweepSpec, start: int, stop: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One contiguous slice ``[start, stop)`` of a sweep's point set.

    Memoized in both cache tiers: the spec (a frozen dataclass) plus the
    slice bounds content-address the chunk, so an interrupted or repeated
    sweep — CLI re-run, service worker restart — recomputes only missing
    chunks.  Returns ``(energy_kwh, operational_kg, embodied_kg)`` arrays.
    """
    points = sample_points(spec)
    sliced = {name: values[start:stop] for name, values in points.items()}
    stacked = evaluate_work_stacked(
        spec.busy_device_hours, spec.base_scenario(), sliced
    )
    return (stacked.energy_kwh, stacked.operational_kg, stacked.embodied_kg)


def chunk_bounds(total: int, chunk_points: int) -> list[tuple[int, int]]:
    """The ``[start, stop)`` slice list covering ``total`` points."""
    if chunk_points < 1:
        raise UnitError(f"chunk size must be >= 1, got {chunk_points}")
    return [
        (start, min(start + chunk_points, total))
        for start in range(0, total, chunk_points)
    ]


@dataclass(frozen=True)
class SweepOutcome:
    """A completed sweep: the spec, its point set, and per-point results."""

    spec: SweepSpec
    params: Mapping[str, np.ndarray]
    results: StackedScenarioResult

    @property
    def throughput(self) -> np.ndarray:
        """Work throughput per point: useful work per resident device-hour.

        Equals the utilization axis (work at rate ``u`` per hour of
        residency) — the x-axis of the carbon/throughput Pareto report.
        """
        if "utilization" in self.params:
            return np.asarray(self.params["utilization"], dtype=float)
        base = self.spec.base_scenario()
        return np.full(len(self.results), base.utilization)

    def pareto_indices(self) -> np.ndarray:
        """Indices of the carbon/throughput Pareto frontier."""
        return pareto_frontier(self.results.total_kg, self.throughput)

    def to_payload(self, include_points: bool = False) -> dict[str, object]:
        """The canonical JSON-safe document of this sweep.

        The service endpoint, the CLI ``--json`` output, and direct
        library callers all serialize this payload through
        :func:`repro.service.queries.render_payload`, so all three are
        byte-identical for one spec.
        """
        results = self.results
        total = results.total_kg
        share = results.embodied_share
        bars = sweep_sensitivity(self.spec)
        frontier = self.pareto_indices()
        throughput = self.throughput
        payload: dict[str, object] = {
            "spec": spec_to_params(self.spec),
            "headline": {
                "n_points": float(len(results)),
                "total_kg_min": float(total.min()),
                "total_kg_max": float(total.max()),
                "total_kg_mean": float(total.mean()),
                "operational_kg_mean": float(results.operational_kg.mean()),
                "embodied_kg_mean": float(results.embodied_kg.mean()),
                "embodied_share_min": float(share.min()),
                "embodied_share_max": float(share.max()),
                "pareto_points": float(len(frontier)),
                "top_lever_swing_kg": float(bars[0].swing_kg) if bars else 0.0,
            },
            "sensitivity": [
                {
                    "parameter": bar.parameter,
                    "low_total_kg": bar.low_total_kg,
                    "high_total_kg": bar.high_total_kg,
                    "base_total_kg": bar.base_total_kg,
                    "swing_kg": bar.swing_kg,
                }
                for bar in bars
            ],
            "pareto": [
                {
                    "index": int(i),
                    "throughput": float(throughput[i]),
                    "total_kg": float(total[i]),
                }
                for i in frontier[:MAX_PARETO_ROWS]
            ],
        }
        if include_points:
            payload["points"] = {
                "params": {
                    name: [float(v) for v in values]
                    for name, values in sorted(self.params.items())
                },
                "energy_kwh": [float(v) for v in results.energy_kwh],
                "operational_kg": [float(v) for v in results.operational_kg],
                "embodied_kg": [float(v) for v in results.embodied_kg],
            }
        return payload


def run_sweep(
    spec: SweepSpec,
    chunk_points: int = DEFAULT_CHUNK_POINTS,
    progress: Callable[[int, int], None] | None = None,
) -> SweepOutcome:
    """Evaluate a spec chunk-by-chunk through the substrate cache.

    ``progress(completed_points, total_points)`` fires after every chunk
    (monotonically non-decreasing) — the hook the CLI and the service's
    poll endpoint report from.
    """
    total = spec.total_points()
    pieces = []
    done = 0
    for start, stop in chunk_bounds(total, chunk_points):
        pieces.append(sweep_chunk(spec, start, stop))
        done += stop - start
        if progress is not None:
            progress(done, total)
    return SweepOutcome(
        spec=spec,
        params=sample_points(spec),
        results=assemble_chunks(pieces),
    )


def assemble_chunks(
    pieces: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> StackedScenarioResult:
    """Concatenate ``sweep_chunk`` outputs back into one stacked result."""
    if not pieces:
        raise UnitError("cannot assemble an empty chunk list")
    return StackedScenarioResult(
        energy_kwh=np.concatenate([p[0] for p in pieces]),
        operational_kg=np.concatenate([p[1] for p in pieces]),
        embodied_kg=np.concatenate([p[2] for p in pieces]),
    )


# ---------------------------------------------------------------------------
# Reports: tornado sensitivity and the Pareto frontier
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SensitivityBar:
    """One knob's one-at-a-time swing (a tornado-chart bar)."""

    parameter: str
    low_total_kg: float
    high_total_kg: float
    base_total_kg: float

    @property
    def swing_kg(self) -> float:
        """Absolute total-footprint swing across the knob's range."""
        return abs(self.high_total_kg - self.low_total_kg)


def sweep_sensitivity(spec: SweepSpec) -> list[SensitivityBar]:
    """Tornado-style sensitivity: each swept knob at its lo/hi, others base.

    Uses the scalar path (two evaluations per knob — sensitivity needs
    exactness at a handful of points, not throughput), sorted by swing
    descending with the knob name as a deterministic tiebreak.
    """
    base = spec.base_scenario()
    busy = spec.busy_device_hours
    base_total = evaluate_work(busy, base).total.kg
    bars = []
    for r in spec.ranges:
        low = evaluate_work(busy, scenario_at(base, {r.name: r.lo})).total.kg
        high = evaluate_work(busy, scenario_at(base, {r.name: r.hi})).total.kg
        bars.append(
            SensitivityBar(
                parameter=r.name,
                low_total_kg=low,
                high_total_kg=high,
                base_total_kg=base_total,
            )
        )
    return sorted(bars, key=lambda b: (-b.swing_kg, b.parameter))


def pareto_frontier(total_kg: np.ndarray, throughput: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated (min carbon, max throughput) points.

    A point is on the frontier iff no other point has throughput >= its
    and carbon < its (with the first-seen point winning exact ties, so
    duplicate points contribute one frontier entry).  Returned in
    throughput-descending order.
    """
    total_kg = np.asarray(total_kg, dtype=float)
    throughput = np.asarray(throughput, dtype=float)
    if total_kg.shape != throughput.shape or total_kg.ndim != 1:
        raise UnitError("pareto inputs must be 1-D arrays of one length")
    if len(total_kg) == 0:
        return np.array([], dtype=int)
    # Sort by throughput descending; stable tiebreak on carbon ascending,
    # then index, so frontier membership is deterministic.
    order = np.lexsort((np.arange(len(total_kg)), total_kg, -throughput))
    sorted_total = total_kg[order]
    running_min = np.minimum.accumulate(sorted_total)
    keep = np.empty(len(order), dtype=bool)
    keep[0] = True
    keep[1:] = sorted_total[1:] < running_min[:-1]
    return order[keep]


# ---------------------------------------------------------------------------
# JSON transport of a spec (service/CLI boundary)
# ---------------------------------------------------------------------------


def spec_to_params(spec: SweepSpec) -> dict[str, object]:
    """The JSON-safe dict form of a spec (floats round-trip exactly)."""
    return {
        "busy_device_hours": spec.busy_device_hours,
        "ranges": [
            {"name": r.name, "lo": r.lo, "hi": r.hi, "points": r.points}
            for r in spec.ranges
        ],
        "sampling": spec.sampling,
        "n_points": spec.n_points,
        "seed": spec.seed,
        "intensity_kg_per_kwh": spec.intensity_kg_per_kwh,
        "intensity_label": spec.intensity_label,
        "devices_per_server": spec.devices_per_server,
    }


def spec_from_params(params: Mapping[str, object]) -> SweepSpec:
    """Rebuild a spec from :func:`spec_to_params` output.

    Raises :class:`~repro.errors.UnitError` on malformed input; the
    service layer wraps this with its own coercion and turns violations
    into structured 400s.
    """
    try:
        ranges = tuple(
            ParameterRange(
                name=str(row["name"]),
                lo=float(row["lo"]),
                hi=float(row["hi"]),
                points=int(row["points"]),
            )
            for row in params.get("ranges", ())  # type: ignore[union-attr]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise UnitError(f"malformed sweep ranges: {exc}") from exc
    try:
        return SweepSpec(
            busy_device_hours=float(params["busy_device_hours"]),  # type: ignore[arg-type]
            ranges=ranges,
            sampling=str(params.get("sampling", "grid")),
            n_points=int(params.get("n_points", 1024)),  # type: ignore[arg-type]
            seed=int(params.get("seed", 0)),  # type: ignore[arg-type]
            intensity_kg_per_kwh=float(
                params.get("intensity_kg_per_kwh", US_AVERAGE.kg_per_kwh)  # type: ignore[arg-type]
            ),
            intensity_label=str(params.get("intensity_label", US_AVERAGE.label)),
            devices_per_server=int(params.get("devices_per_server", 2)),  # type: ignore[arg-type]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise UnitError(f"malformed sweep spec: {exc}") from exc
