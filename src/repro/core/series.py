"""The shared hourly-series engine behind all energy/carbon accounting.

Every simulator in the library ultimately reasons about the same object:
a non-negative quantity sampled once per hour (IT kilowatt-hours, a load
profile in kW — numerically identical over one-hour steps — busy-GPU
counts, procured renewable supply).  :class:`HourlySeries` makes that
object first-class: an immutable, alignment-checked, numpy-backed hourly
series carrying exactly the algebra that is physically meaningful —

* ``+`` of two aligned series, scaling by a dimensionless factor,
* elementwise ``minimum`` / ``maximum`` against a series or scalar
  (capacity capping, 24/7 CFE matching),
* periodic ``tile_to`` a longer horizon (a week-long trace modeling
  repeating weeks),
* ``integrate() -> Energy`` (the hourly Riemann sum is exact for
  hour-sampled power), and
* ``emissions(grid) -> Carbon`` — the paper's accounting identity
  ``sum_h kWh_h x intensity_h`` in one vectorized place.

The carbon integration lives *only* here: no module outside
``repro/core/`` multiplies an hourly energy array by an intensity array
directly (enforced by a grep-based test), so time-varying accounting
cannot silently diverge between simulators.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.core.quantities import Carbon, Energy
from repro.errors import InvariantViolation, UnitError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (grid imports core)
    from repro.carbon.grid import GridTrace

#: Environment toggle for the runtime accounting self-checks (set by
#: ``sustainable-ai ... --check-invariants``, inherited by pool workers).
CHECK_ENV_VAR = "SUSTAINABLE_AI_CHECK_INVARIANTS"


def runtime_checks_enabled() -> bool:
    """Whether the in-line accounting invariant checks are switched on."""
    return os.environ.get(CHECK_ENV_VAR, "0") not in ("", "0")


@dataclass(frozen=True)
class HourlySeries:
    """An immutable non-negative quantity sampled once per hour.

    ``values`` is canonically kWh-per-hour (numerically equal to average
    kW over each hour); dimensionless hourly series (utilization, shares)
    reuse the same algebra and simply never call :meth:`integrate`.
    """

    values: np.ndarray

    def __post_init__(self) -> None:
        arr = np.array(self.values, dtype=float, copy=True)
        if arr.ndim != 1:
            raise UnitError(f"hourly series must be 1-D, got shape {arr.shape}")
        if len(arr) == 0:
            raise UnitError("hourly series must cover at least one hour")
        if not np.all(np.isfinite(arr)):
            raise UnitError("hourly series values must be finite")
        if np.any(arr < 0):
            raise UnitError("hourly series values must be non-negative")
        arr.flags.writeable = False
        object.__setattr__(self, "values", arr)

    # -- constructors ------------------------------------------------------
    @classmethod
    def constant(cls, value: float, hours: int) -> "HourlySeries":
        """A flat series: ``value`` every hour for ``hours`` hours."""
        if hours <= 0:
            raise UnitError(f"series length must be positive, got {hours}")
        return cls(np.full(int(hours), float(value)))

    @classmethod
    def zeros(cls, hours: int) -> "HourlySeries":
        return cls.constant(0.0, hours)

    @classmethod
    def from_power_watts(cls, watts: np.ndarray) -> "HourlySeries":
        """Hourly kWh from an hourly power series in watts."""
        return cls(np.asarray(watts, dtype=float) / 1e3)

    # -- shape -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    @property
    def hours(self) -> int:
        return len(self)

    def _check_aligned(self, other: "HourlySeries") -> None:
        if len(self) != len(other):
            raise UnitError(
                f"hourly series are misaligned: {len(self)} vs {len(other)} hours"
            )

    # -- algebra -----------------------------------------------------------
    def __add__(self, other: "HourlySeries") -> "HourlySeries":
        if not isinstance(other, HourlySeries):
            return NotImplemented
        self._check_aligned(other)
        return HourlySeries(self.values + other.values)

    def scale(self, factor: float) -> "HourlySeries":
        """This series scaled by a dimensionless non-negative factor."""
        if isinstance(factor, HourlySeries):
            raise UnitError("scale expects a scalar; use elementwise helpers")
        if factor < 0:
            raise UnitError(f"scale factor must be non-negative, got {factor}")
        return HourlySeries(self.values * float(factor))

    def __mul__(self, factor: float) -> "HourlySeries":
        if isinstance(factor, HourlySeries):
            return NotImplemented
        return self.scale(factor)

    __rmul__ = __mul__

    def minimum(self, other: Union["HourlySeries", float]) -> "HourlySeries":
        """Elementwise minimum against an aligned series or a scalar cap."""
        if isinstance(other, HourlySeries):
            self._check_aligned(other)
            return HourlySeries(np.minimum(self.values, other.values))
        return HourlySeries(np.minimum(self.values, float(other)))

    def maximum(self, other: Union["HourlySeries", float]) -> "HourlySeries":
        """Elementwise maximum against an aligned series or a scalar floor."""
        if isinstance(other, HourlySeries):
            self._check_aligned(other)
            return HourlySeries(np.maximum(self.values, other.values))
        return HourlySeries(np.maximum(self.values, float(other)))

    def tile_to(self, horizon_hours: int) -> "HourlySeries":
        """This series repeated periodically out to ``horizon_hours``."""
        if horizon_hours <= 0:
            raise UnitError(f"horizon must be positive, got {horizon_hours}")
        idx = np.arange(int(horizon_hours)) % len(self)
        return HourlySeries(self.values[idx])

    # -- streaming ---------------------------------------------------------
    def append(self, value: float) -> "HourlySeries":
        """A new series with one more hour appended (immutably)."""
        return HourlySeries(np.concatenate([self.values, [float(value)]]))

    def extend(self, tail: Union["HourlySeries", "np.ndarray", list]) -> "HourlySeries":
        """A new series with ``tail`` (series or array-like) appended."""
        extra = tail.values if isinstance(tail, HourlySeries) else np.asarray(tail, dtype=float)
        if extra.ndim != 1:
            raise UnitError(f"extension must be 1-D, got shape {extra.shape}")
        if len(extra) == 0:
            return self
        return HourlySeries(np.concatenate([self.values, extra]))

    def window(self, start: int, stop: int) -> "HourlySeries":
        """The half-open hourly slice ``[start, stop)`` as a new series."""
        start, stop = int(start), int(stop)
        if not (0 <= start < stop <= len(self)):
            raise UnitError(
                f"window [{start}, {stop}) out of range for {len(self)}-hour series"
            )
        return HourlySeries(self.values[start:stop])

    # -- reductions --------------------------------------------------------
    def total(self) -> float:
        """Plain sum of the hourly values (unit follows the series)."""
        return float(np.sum(self.values))

    def mean(self) -> float:
        return float(np.mean(self.values))

    def peak(self) -> float:
        return float(np.max(self.values))

    def integrate(self) -> Energy:
        """Energy of the series, treating values as kWh per hour."""
        return Energy(self.total())

    def emissions(self, grid: "GridTrace", start_hour: int = 0) -> Carbon:
        """Carbon of this kWh-per-hour series on a time-varying grid.

        ``grid`` is any GridTrace-like object exposing ``__len__`` and an
        ``intensity_kg_per_kwh`` array (kgCO2e/kWh per hour).  The trace
        tiles periodically when the series outruns it, anchored at
        ``start_hour`` — the single vectorized home of the paper's
        ``operational = sum_h energy_h x intensity_h`` identity.
        """
        trace_hours = len(grid)
        if trace_hours == 0:
            raise UnitError("grid trace must cover at least one hour")
        idx = (int(start_hour) + np.arange(len(self))) % trace_hours
        intensity = grid.intensity_kg_per_kwh[idx]
        kg = float(np.sum(self.values * intensity))
        if runtime_checks_enabled():
            # Dimensional sanity: the integral must land between the
            # cleanest-possible and dirtiest-possible pricing of the same
            # energy, and be a finite non-negative mass.
            total = self.total()
            lo = float(np.min(intensity)) * total
            hi = float(np.max(intensity)) * total
            if not np.isfinite(kg) or kg < 0.0:
                raise InvariantViolation(
                    f"emissions integral produced an unphysical mass: {kg!r} kg"
                )
            if not (lo * (1 - 1e-9) - 1e-9 <= kg <= hi * (1 + 1e-9) + 1e-9):
                raise InvariantViolation(
                    "emissions integral escaped its intensity bounds: "
                    f"{kg} kg outside [{lo}, {hi}] for {total} kWh"
                )
        return Carbon(kg)
