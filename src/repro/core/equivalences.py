"""EPA greenhouse-gas equivalencies.

The paper motivates its analysis with "training one large ML model is
equivalent to 242,231 miles driven by an average passenger vehicle"
(Meena, via the EPA calculator).  This module reproduces that calculator
so reports can translate kgCO2e into human-scale quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.core.quantities import Carbon


@dataclass(frozen=True, slots=True)
class Equivalences:
    """Human-scale equivalents of a carbon mass."""

    passenger_vehicle_miles: float
    passenger_vehicle_years: float
    homes_electricity_years: float
    gallons_of_gasoline: float
    tree_seedlings_grown_10yr: float
    smartphone_charges: float

    def as_dict(self) -> dict[str, float]:
        return {
            "passenger_vehicle_miles": self.passenger_vehicle_miles,
            "passenger_vehicle_years": self.passenger_vehicle_years,
            "homes_electricity_years": self.homes_electricity_years,
            "gallons_of_gasoline": self.gallons_of_gasoline,
            "tree_seedlings_grown_10yr": self.tree_seedlings_grown_10yr,
            "smartphone_charges": self.smartphone_charges,
        }


def equivalences(carbon: Carbon) -> Equivalences:
    """EPA calculator equivalents for ``carbon``."""
    kg = carbon.kg
    return Equivalences(
        passenger_vehicle_miles=kg / units.KG_CO2E_PER_PASSENGER_VEHICLE_MILE,
        passenger_vehicle_years=kg / units.KG_CO2E_PER_PASSENGER_VEHICLE_YEAR,
        homes_electricity_years=kg / units.KG_CO2E_PER_HOME_ELECTRICITY_YEAR,
        gallons_of_gasoline=kg / units.KG_CO2E_PER_GALLON_GASOLINE,
        tree_seedlings_grown_10yr=kg / units.KG_CO2E_PER_TREE_SEEDLING_10YR,
        smartphone_charges=kg / units.KG_CO2E_PER_SMARTPHONE_CHARGE,
    )


def miles_driven(carbon: Carbon) -> float:
    """Equivalent passenger-vehicle miles for ``carbon``."""
    return equivalences(carbon).passenger_vehicle_miles


def describe(carbon: Carbon) -> str:
    """One-line human-readable equivalence summary."""
    eq = equivalences(carbon)
    return (
        f"{carbon} ≈ {eq.passenger_vehicle_miles:,.0f} passenger-vehicle miles, "
        f"{eq.homes_electricity_years:,.1f} home-years of electricity, "
        f"{eq.tree_seedlings_grown_10yr:,.0f} tree seedlings grown for 10 years"
    )
