"""Checked value types for the three physical dimensions the library uses.

:class:`Energy`, :class:`Power`, and :class:`Carbon` are small frozen
dataclasses wrapping a float in the library's canonical unit (kWh, W,
kgCO2e respectively).  They support the arithmetic that is physically
meaningful — adding two energies, scaling by a dimensionless factor,
dividing energies to get a ratio, multiplying power by a duration to get
energy, multiplying energy by a carbon intensity to get carbon — and
reject the rest at construction or operation time.

These types are deliberately *thin*: hot loops inside the simulators work
on raw numpy arrays and only wrap their results at API boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units
from repro.errors import UnitError


def _check_finite(value: float, what: str) -> float:
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise UnitError(f"{what} must be finite, got {value!r}")
    return value


def _check_non_negative(value: float, what: str) -> float:
    value = _check_finite(value, what)
    if value < 0:
        raise UnitError(f"{what} must be non-negative, got {value!r}")
    return value


@dataclass(frozen=True, slots=True)
class Energy:
    """An amount of electrical energy, canonically in kilowatt-hours."""

    kwh: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "kwh", _check_non_negative(self.kwh, "energy"))

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_joules(cls, joules: float) -> "Energy":
        return cls(units.joules_to_kwh(joules))

    @classmethod
    def from_wh(cls, wh: float) -> "Energy":
        return cls(units.wh_to_kwh(wh))

    @classmethod
    def from_mwh(cls, mwh: float) -> "Energy":
        return cls(units.mwh_to_kwh(mwh))

    @classmethod
    def zero(cls) -> "Energy":
        return cls(0.0)

    # -- views -------------------------------------------------------------
    @property
    def joules(self) -> float:
        return units.kwh_to_joules(self.kwh)

    @property
    def mwh(self) -> float:
        return units.kwh_to_mwh(self.kwh)

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: "Energy") -> "Energy":
        if not isinstance(other, Energy):
            return NotImplemented
        return Energy(self.kwh + other.kwh)

    def __sub__(self, other: "Energy") -> "Energy":
        if not isinstance(other, Energy):
            return NotImplemented
        if other.kwh > self.kwh:
            raise UnitError(
                f"energy subtraction would be negative: {self.kwh} - {other.kwh} kWh"
            )
        return Energy(self.kwh - other.kwh)

    def __mul__(self, factor: float) -> "Energy":
        if isinstance(factor, (Energy, Power, Carbon)):
            return NotImplemented
        return Energy(self.kwh * float(factor))

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, Energy):
            if other.kwh == 0:
                raise UnitError("cannot divide by zero energy")
            return self.kwh / other.kwh
        if isinstance(other, (Power, Carbon)):
            return NotImplemented
        divisor = float(other)
        if divisor == 0:
            raise UnitError("cannot divide energy by zero")
        return Energy(self.kwh / divisor)

    def __lt__(self, other: "Energy") -> bool:
        return self.kwh < other.kwh

    def __le__(self, other: "Energy") -> bool:
        return self.kwh <= other.kwh

    def isclose(self, other: "Energy", rel_tol: float = 1e-9) -> bool:
        return math.isclose(self.kwh, other.kwh, rel_tol=rel_tol, abs_tol=1e-12)

    def __str__(self) -> str:
        if self.kwh >= units.KWH_PER_GWH:
            return f"{self.kwh / units.KWH_PER_GWH:,.2f} GWh"
        if self.kwh >= units.KWH_PER_MWH:
            return f"{self.mwh:,.2f} MWh"
        return f"{self.kwh:,.3f} kWh"


@dataclass(frozen=True, slots=True)
class Power:
    """An electrical power draw, canonically in watts."""

    watts: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "watts", _check_non_negative(self.watts, "power"))

    @classmethod
    def from_kw(cls, kw: float) -> "Power":
        return cls(kw * 1e3)

    @classmethod
    def from_mw(cls, mw: float) -> "Power":
        return cls(mw * 1e6)

    @classmethod
    def zero(cls) -> "Power":
        return cls(0.0)

    @property
    def kw(self) -> float:
        return self.watts / 1e3

    @property
    def mw(self) -> float:
        return self.watts / 1e6

    def over_hours(self, hours: float) -> Energy:
        """Energy accumulated by this power draw over ``hours`` hours."""
        return Energy(units.watts_hours_to_kwh(self.watts, hours))

    def over_seconds(self, seconds: float) -> Energy:
        """Energy accumulated by this power draw over ``seconds`` seconds."""
        return self.over_hours(seconds / units.SECONDS_PER_HOUR)

    def __add__(self, other: "Power") -> "Power":
        if not isinstance(other, Power):
            return NotImplemented
        return Power(self.watts + other.watts)

    def __sub__(self, other: "Power") -> "Power":
        if not isinstance(other, Power):
            return NotImplemented
        if other.watts > self.watts:
            raise UnitError(
                f"power subtraction would be negative: {self.watts} - {other.watts} W"
            )
        return Power(self.watts - other.watts)

    def __mul__(self, factor: float) -> "Power":
        if isinstance(factor, (Energy, Power, Carbon)):
            return NotImplemented
        return Power(self.watts * float(factor))

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, Power):
            if other.watts == 0:
                raise UnitError("cannot divide by zero power")
            return self.watts / other.watts
        if isinstance(other, (Energy, Carbon)):
            return NotImplemented
        divisor = float(other)
        if divisor == 0:
            raise UnitError("cannot divide power by zero")
        return Power(self.watts / divisor)

    def __lt__(self, other: "Power") -> bool:
        return self.watts < other.watts

    def __le__(self, other: "Power") -> bool:
        return self.watts <= other.watts

    def __str__(self) -> str:
        if self.watts >= 1e6:
            return f"{self.mw:,.2f} MW"
        if self.watts >= 1e3:
            return f"{self.kw:,.2f} kW"
        return f"{self.watts:,.1f} W"


@dataclass(frozen=True, slots=True)
class Carbon:
    """A mass of CO2-equivalent emissions, canonically in kilograms."""

    kg: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "kg", _check_non_negative(self.kg, "carbon"))

    @classmethod
    def from_tonnes(cls, tonnes: float) -> "Carbon":
        return cls(units.tonnes_to_kg(tonnes))

    @classmethod
    def from_grams(cls, grams: float) -> "Carbon":
        return cls(units.grams_to_kg(grams))

    @classmethod
    def zero(cls) -> "Carbon":
        return cls(0.0)

    @property
    def tonnes(self) -> float:
        return units.kg_to_tonnes(self.kg)

    @property
    def grams(self) -> float:
        return self.kg / units.KG_PER_GRAM

    def __add__(self, other: "Carbon") -> "Carbon":
        if not isinstance(other, Carbon):
            return NotImplemented
        return Carbon(self.kg + other.kg)

    def __sub__(self, other: "Carbon") -> "Carbon":
        if not isinstance(other, Carbon):
            return NotImplemented
        if other.kg > self.kg:
            raise UnitError(
                f"carbon subtraction would be negative: {self.kg} - {other.kg} kg"
            )
        return Carbon(self.kg - other.kg)

    def __mul__(self, factor: float) -> "Carbon":
        if isinstance(factor, (Energy, Power, Carbon)):
            return NotImplemented
        return Carbon(self.kg * float(factor))

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, Carbon):
            if other.kg == 0:
                raise UnitError("cannot divide by zero carbon")
            return self.kg / other.kg
        if isinstance(other, (Energy, Power)):
            return NotImplemented
        divisor = float(other)
        if divisor == 0:
            raise UnitError("cannot divide carbon by zero")
        return Carbon(self.kg / divisor)

    def __lt__(self, other: "Carbon") -> bool:
        return self.kg < other.kg

    def __le__(self, other: "Carbon") -> bool:
        return self.kg <= other.kg

    def isclose(self, other: "Carbon", rel_tol: float = 1e-9) -> bool:
        return math.isclose(self.kg, other.kg, rel_tol=rel_tol, abs_tol=1e-12)

    def __str__(self) -> str:
        if self.kg >= units.KG_PER_TONNE:
            return f"{self.tonnes:,.2f} tCO2e"
        if self.kg < 1.0:
            return f"{self.grams:,.1f} gCO2e"
        return f"{self.kg:,.2f} kgCO2e"


def energy_sum(items) -> Energy:
    """Sum an iterable of :class:`Energy` values (empty iterable -> zero)."""
    total = 0.0
    for item in items:
        if not isinstance(item, Energy):
            raise UnitError(f"energy_sum expects Energy items, got {type(item)!r}")
        total += item.kwh
    return Energy(total)


def carbon_sum(items) -> Carbon:
    """Sum an iterable of :class:`Carbon` values (empty iterable -> zero)."""
    total = 0.0
    for item in items:
        if not isinstance(item, Carbon):
            raise UnitError(f"carbon_sum expects Carbon items, got {type(item)!r}")
        total += item.kg
    return Carbon(total)
