"""Supervised vs self-/semi-supervised pre-training costs (Appendix C).

The paper's worked example on ImageNet with ResNet-50:

* **supervised**: 76.1% top-1 after 90 epochs with 100% labels;
* **SimCLR (SSL)**: 69.3% after 1000 pre-training epochs (+60 linear-eval
  epochs), no labels — "labels are worth a roughly 10x reduction in
  training effort";
* **PAWS (semi-supervised)**: 75.5% after 200 epochs with only 10% of the
  labels (~16 hours on 64 V100s).

Effort is measured in dataset epochs, the paper's own unit; the module
also amortizes a foundation model's one-off pre-training across
down-stream tasks and computes the label-cost break-even the paper says
"substantial additional research" should map.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class PretrainingRegime:
    """One training paradigm's cost/quality operating point."""

    name: str
    top1_accuracy: float
    epochs: float
    label_fraction: float
    finetune_epochs_per_task: float = 0.0

    def __post_init__(self) -> None:
        if not (0 < self.top1_accuracy < 100):
            raise UnitError("accuracy must be a percentage in (0, 100)")
        if self.epochs <= 0:
            raise UnitError("epochs must be positive")
        if not (0 <= self.label_fraction <= 1):
            raise UnitError("label fraction must be in [0, 1]")
        if self.finetune_epochs_per_task < 0:
            raise UnitError("fine-tune epochs must be non-negative")

    @property
    def total_epochs(self) -> float:
        return self.epochs + self.finetune_epochs_per_task


SUPERVISED_TRAINING = PretrainingRegime("supervised", 76.1, 90.0, 1.0)
SIMCLR_PRETRAINING = PretrainingRegime(
    "simclr-ssl", 69.3, 1000.0, 0.0, finetune_epochs_per_task=60.0
)
PAWS_PRETRAINING = PretrainingRegime("paws-semi", 75.5, 200.0, 0.10)


def effort_ratio(a: PretrainingRegime, b: PretrainingRegime) -> float:
    """Total-epoch ratio a/b — the paper's '~10x' supervised advantage."""
    return a.total_epochs / b.total_epochs


def amortized_cost_per_task(
    regime: PretrainingRegime, n_downstream_tasks: int
) -> float:
    """Epochs per task when one pre-training serves many tasks.

    The foundation-model argument: "a single foundation model can be
    trained (expensive) but then fine-tuned (inexpensive), amortizing the
    up-front cost across many tasks".
    """
    if n_downstream_tasks <= 0:
        raise UnitError("task count must be positive")
    return regime.epochs / n_downstream_tasks + regime.finetune_epochs_per_task


def label_cost_break_even(
    supervised: PretrainingRegime = SUPERVISED_TRAINING,
    ssl: PretrainingRegime = SIMCLR_PRETRAINING,
    epoch_cost: float = 1.0,
) -> float:
    """Labeling cost (in epoch-equivalents) at which SSL breaks even.

    If annotating the full dataset costs more than this, SSL's extra
    compute is the cheaper path despite the ~10x epoch overhead.
    """
    if epoch_cost <= 0:
        raise UnitError("epoch cost must be positive")
    extra_compute = (ssl.total_epochs - supervised.total_epochs) * epoch_cost
    label_need = supervised.label_fraction - ssl.label_fraction
    if label_need <= 0:
        raise UnitError("supervised regime must use more labels than SSL")
    return extra_compute / label_need


#: The paper's hardware anchor for PAWS: "Running on 64 V100 GPUs, this
#: takes roughly 16 hours" for 200 epochs -> GPU-hours per ImageNet epoch.
PAWS_GPU_HOURS = 64.0 * 16.0
GPU_HOURS_PER_EPOCH = PAWS_GPU_HOURS / PAWS_PRETRAINING.epochs


def regime_carbon(
    regime: PretrainingRegime,
    gpu_hours_per_epoch: float = GPU_HOURS_PER_EPOCH,
    watts_per_gpu: float = 330.0,
    pue: float = 1.1,
    kg_per_kwh: float = 0.429,
) -> dict[str, float]:
    """Energy and carbon of one regime via the PAWS hardware anchor.

    Converts the Appendix-C epoch counts to GPU-hours (64 V100 x 16 h for
    PAWS' 200 epochs fixes the rate), then through the standard
    power -> PUE -> intensity chain.
    """
    if gpu_hours_per_epoch <= 0 or watts_per_gpu <= 0:
        raise UnitError("anchor rates must be positive")
    if pue < 1.0:
        raise UnitError("PUE must be >= 1")
    gpu_hours = regime.total_epochs * gpu_hours_per_epoch
    kwh = gpu_hours * watts_per_gpu / 1e3 * pue
    return {
        "gpu_hours": gpu_hours,
        "energy_kwh": kwh,
        "carbon_kg": kwh * kg_per_kwh,
    }


def regimes_table() -> list[dict[str, float | str]]:
    """The Appendix-C comparison as rows (one per regime)."""
    rows = []
    for regime in (SUPERVISED_TRAINING, SIMCLR_PRETRAINING, PAWS_PRETRAINING):
        carbon = regime_carbon(regime)
        rows.append(
            {
                "regime": regime.name,
                "top1_accuracy": regime.top1_accuracy,
                "epochs": regime.total_epochs,
                "label_fraction": regime.label_fraction,
                "epochs_vs_supervised": effort_ratio(regime, SUPERVISED_TRAINING),
                "gpu_hours": carbon["gpu_hours"],
                "carbon_kg": carbon["carbon_kg"],
            }
        )
    return rows
