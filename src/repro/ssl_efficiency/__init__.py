"""Self-supervised vs supervised pre-training cost trade-offs (Appendix C)."""

from repro.ssl_efficiency.pretraining import (
    GPU_HOURS_PER_EPOCH,
    PAWS_PRETRAINING,
    PretrainingRegime,
    SIMCLR_PRETRAINING,
    SUPERVISED_TRAINING,
    amortized_cost_per_task,
    effort_ratio,
    label_cost_break_even,
    regime_carbon,
    regimes_table,
)

__all__ = [
    "GPU_HOURS_PER_EPOCH",
    "PAWS_PRETRAINING",
    "PretrainingRegime",
    "SIMCLR_PRETRAINING",
    "SUPERVISED_TRAINING",
    "amortized_cost_per_task",
    "effort_ratio",
    "label_cost_break_even",
    "regime_carbon",
    "regimes_table",
]
