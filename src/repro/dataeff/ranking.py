"""Ranking-preservation study: does a sub-sample rank algorithms the same?

The SVP-CF experiment (Section IV-A): evaluate a panel of recommenders on
the full dataset and on a sub-sample; if the sample orders the algorithms
the same way (Kendall tau = 1), model selection can run on the sample at
a fraction of the cost — the paper quotes a 5.8x average speedup at 10%
data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from scipy import stats

from repro.dataeff.recommenders import EvalResult, Recommender, default_algorithms, evaluate
from repro.dataeff.synthetic import InteractionDataset
from repro.errors import UnitError


@dataclass(frozen=True)
class PanelResult:
    """Evaluation of the full algorithm panel on one dataset."""

    results: tuple[EvalResult, ...]
    wall_time_s: float
    #: Deterministic cost measure: interactions processed across the panel
    #: (fit + evaluate).  Speedups are reported from this, not wall clock,
    #: so repeated runs are bit-reproducible.
    work_units: float = 0.0

    def ranking(self) -> tuple[str, ...]:
        """Algorithm names ordered best-to-worst by NDCG."""
        ordered = sorted(self.results, key=lambda r: -r.ndcg_at_k)
        return tuple(r.algorithm for r in ordered)

    def scores(self) -> dict[str, float]:
        return {r.algorithm: r.ndcg_at_k for r in self.results}


def run_panel(
    data: InteractionDataset,
    algorithms: list[Recommender] | None = None,
    k: int = 10,
    seed: int = 0,
) -> PanelResult:
    """Fit + evaluate every algorithm on ``data``, timing the whole panel."""
    algorithms = algorithms if algorithms is not None else default_algorithms(seed)
    train, test = data.leave_last_out()
    if not test:
        raise UnitError("dataset too small to produce a test split")
    start = time.perf_counter()
    results = []
    for algo in algorithms:
        algo.fit(train)
        results.append(evaluate(algo, train, test, k=k, seed=seed))
    elapsed = time.perf_counter() - start
    work = float(len(algorithms) * (len(train) + len(test)))
    return PanelResult(tuple(results), elapsed, work)


def kendall_tau(full: PanelResult, sampled: PanelResult) -> float:
    """Kendall tau between algorithm scores on full vs sampled data."""
    full_scores = full.scores()
    sample_scores = sampled.scores()
    names = sorted(full_scores)
    if sorted(sample_scores) != names:
        raise UnitError("panels evaluated different algorithm sets")
    a = [full_scores[n] for n in names]
    b = [sample_scores[n] for n in names]
    tau, _ = stats.kendalltau(a, b)
    return float(tau)


@dataclass(frozen=True, slots=True)
class SamplingStudyRow:
    """One row of the sampling study table."""

    sampler: str
    rate: float
    tau: float
    speedup: float
    ranking_preserved: bool


def sampling_study(
    data: InteractionDataset,
    rates: tuple[float, ...] = (0.1,),
    sampler_names: tuple[str, ...] = ("random", "svp", "head-users", "recent"),
    seed: int = 0,
) -> list[SamplingStudyRow]:
    """The full SVP-CF-style study: tau and speedup per sampler x rate."""
    from repro.dataeff.sampling import SAMPLERS

    full = run_panel(data, seed=seed)
    rows = []
    for name in sampler_names:
        if name not in SAMPLERS:
            raise UnitError(f"unknown sampler {name!r}")
        sampler = SAMPLERS[name]
        for rate in rates:
            sample = sampler(data, rate, seed=seed)
            panel = run_panel(sample, seed=seed)
            tau = kendall_tau(full, panel)
            rows.append(
                SamplingStudyRow(
                    sampler=name,
                    rate=rate,
                    tau=tau,
                    speedup=full.work_units / max(panel.work_units, 1e-9),
                    ranking_preserved=full.ranking() == panel.ranking(),
                )
            )
    return rows
