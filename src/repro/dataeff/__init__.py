"""Data utilization efficiency: sampling, recommenders, perishability."""

from repro.dataeff.perishability import (
    HalfLifeModel,
    NL_DATA_HALF_LIFE_YEARS,
    fit_half_life,
    measure_value_decay,
)
from repro.dataeff.ranking import (
    PanelResult,
    SamplingStudyRow,
    kendall_tau,
    run_panel,
    sampling_study,
)
from repro.dataeff.recommenders import (
    BiasMF,
    EvalResult,
    ItemKNN,
    ItemPop,
    Recommender,
    default_algorithms,
    evaluate,
)
from repro.dataeff.sampling import (
    SAMPLERS,
    head_users,
    random_interactions,
    recent_interactions,
    svp_users,
)
from repro.dataeff.synthetic import InteractionDataset, LatentFactorWorld

__all__ = [
    "BiasMF",
    "EvalResult",
    "HalfLifeModel",
    "InteractionDataset",
    "ItemKNN",
    "ItemPop",
    "LatentFactorWorld",
    "NL_DATA_HALF_LIFE_YEARS",
    "PanelResult",
    "Recommender",
    "SAMPLERS",
    "SamplingStudyRow",
    "default_algorithms",
    "evaluate",
    "fit_half_life",
    "head_users",
    "kendall_tau",
    "measure_value_decay",
    "random_interactions",
    "recent_interactions",
    "run_panel",
    "sampling_study",
    "svp_users",
]
