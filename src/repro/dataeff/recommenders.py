"""Small, real recommender implementations for data-efficiency studies.

Three classic collaborative-filtering algorithms with a common interface,
spanning the complexity range SVP-CF evaluates:

* :class:`ItemPop` — popularity ranking (the trivial baseline);
* :class:`ItemKNN` — item-item cosine neighborhood model;
* :class:`BiasMF` — logistic matrix factorization trained by SGD with
  negative sampling.

Evaluation is the standard sampled leave-one-out protocol: for each test
user, rank the held-out item against ``n_negatives`` sampled unseen items
and report HR@K and NDCG@K.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataeff.synthetic import InteractionDataset
from repro.errors import UnitError


class Recommender:
    """Interface: fit on interactions, score (user, items) pairs."""

    name = "base"

    def fit(self, data: InteractionDataset) -> "Recommender":
        raise NotImplementedError

    def score(self, user: int, items: np.ndarray) -> np.ndarray:
        raise NotImplementedError


@dataclass
class ItemPop(Recommender):
    """Rank items by global interaction count."""

    name: str = "ItemPop"
    _pop: np.ndarray | None = field(default=None, repr=False)

    def fit(self, data: InteractionDataset) -> "ItemPop":
        self._pop = np.bincount(data.items, minlength=data.n_items).astype(float)
        return self

    def score(self, user: int, items: np.ndarray) -> np.ndarray:
        if self._pop is None:
            raise UnitError("fit() before score()")
        return self._pop[np.asarray(items, dtype=int)]


@dataclass
class ItemKNN(Recommender):
    """Item-item cosine similarity over the binary interaction matrix."""

    name: str = "ItemKNN"
    shrinkage: float = 10.0
    _sim: np.ndarray | None = field(default=None, repr=False)
    _user_items: list[np.ndarray] | None = field(default=None, repr=False)

    def fit(self, data: InteractionDataset) -> "ItemKNN":
        matrix = np.zeros((data.n_users, data.n_items))
        matrix[data.users, data.items] = 1.0
        co = matrix.T @ matrix
        norms = np.sqrt(np.diag(co))
        denom = np.outer(norms, norms) + self.shrinkage
        with np.errstate(divide="ignore", invalid="ignore"):
            sim = np.where(denom > 0, co / denom, 0.0)
        np.fill_diagonal(sim, 0.0)
        self._sim = sim
        self._user_items = [
            np.unique(data.items[data.users == u]) for u in range(data.n_users)
        ]
        return self

    def score(self, user: int, items: np.ndarray) -> np.ndarray:
        if self._sim is None or self._user_items is None:
            raise UnitError("fit() before score()")
        history = self._user_items[user]
        if len(history) == 0:
            return np.zeros(len(items))
        return self._sim[np.ix_(np.asarray(items, dtype=int), history)].sum(axis=1)


@dataclass
class BiasMF(Recommender):
    """Logistic matrix factorization with SGD and negative sampling."""

    name: str = "BiasMF"
    n_factors: int = 16
    n_epochs: int = 10
    lr: float = 0.05
    reg: float = 0.002
    n_negatives: int = 2
    seed: int = 0
    _U: np.ndarray | None = field(default=None, repr=False)
    _V: np.ndarray | None = field(default=None, repr=False)
    _bi: np.ndarray | None = field(default=None, repr=False)

    def fit(self, data: InteractionDataset) -> "BiasMF":
        rng = np.random.default_rng(self.seed)
        scale = 0.1 / np.sqrt(self.n_factors)
        U = rng.normal(0.0, scale, (data.n_users, self.n_factors))
        V = rng.normal(0.0, scale, (data.n_items, self.n_factors))
        bi = np.zeros(data.n_items)

        n = len(data)
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            # Mini-batched vectorized SGD: positives + sampled negatives.
            batch = 512
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                users = data.users[idx]
                pos = data.items[idx]
                self._sgd_step(U, V, bi, users, pos, 1.0)
                for _ in range(self.n_negatives):
                    neg = rng.integers(0, data.n_items, len(idx))
                    self._sgd_step(U, V, bi, users, neg, 0.0)
        self._U, self._V, self._bi = U, V, bi
        return self

    def _sgd_step(
        self,
        U: np.ndarray,
        V: np.ndarray,
        bi: np.ndarray,
        users: np.ndarray,
        items: np.ndarray,
        label: float,
    ) -> None:
        u_vec = U[users]
        v_vec = V[items]
        # Clip logits: keeps the sigmoid finite even if parameters have
        # been perturbed to extreme values (see reliability.sdc_injection).
        logits = np.clip(np.sum(u_vec * v_vec, axis=1) + bi[items], -30.0, 30.0)
        preds = 1.0 / (1.0 + np.exp(-logits))
        err = (label - preds)[:, None]
        grad_u = err * v_vec - self.reg * u_vec
        grad_v = err * u_vec - self.reg * v_vec
        # Scatter-add handles duplicate users/items within a batch.
        np.add.at(U, users, self.lr * grad_u)
        np.add.at(V, items, self.lr * grad_v)
        np.add.at(bi, items, self.lr * (err[:, 0] - self.reg * bi[items]))

    def score(self, user: int, items: np.ndarray) -> np.ndarray:
        if self._U is None or self._V is None or self._bi is None:
            raise UnitError("fit() before score()")
        items = np.asarray(items, dtype=int)
        return self._U[user] @ self._V[items].T + self._bi[items]


@dataclass(frozen=True, slots=True)
class EvalResult:
    """Sampled leave-one-out ranking quality of one recommender."""

    algorithm: str
    hr_at_k: float
    ndcg_at_k: float
    k: int
    n_users_evaluated: int


def evaluate(
    model: Recommender,
    train: InteractionDataset,
    test: dict[int, int],
    k: int = 10,
    n_negatives: int = 99,
    seed: int = 0,
) -> EvalResult:
    """HR@K and NDCG@K over sampled negatives (standard protocol)."""
    if not test:
        raise UnitError("empty test set")
    rng = np.random.default_rng(seed)
    hits = 0.0
    ndcg = 0.0
    for user, held_out in test.items():
        negatives = rng.integers(0, train.n_items, n_negatives)
        candidates = np.concatenate(([held_out], negatives))
        scores = model.score(user, candidates)
        rank = int(np.sum(scores > scores[0]))  # items strictly ahead
        if rank < k:
            hits += 1.0
            ndcg += 1.0 / np.log2(rank + 2)
    n = len(test)
    return EvalResult(model.name, hits / n, ndcg / n, k, n)


def default_algorithms(seed: int = 0) -> list[Recommender]:
    """The three-algorithm panel used in the sampling study."""
    return [ItemPop(), ItemKNN(), BiasMF(seed=seed)]
