"""Data perishability: the half-life of predictive value (Section IV-A).

"Data collected over time loses its predictive value gradually ... natural
language data sets can lose half of their predictive value in the time
period of less than 7 years (the half-life time of data)."

Two layers:

* an analytic :class:`HalfLifeModel` — exponential decay of predictive
  value with age, invertible to a retention schedule: how aggressively to
  sub-sample data of each age so storage cost tracks residual value;
* an *empirical* pipeline — train a recommender on data of increasing age
  (from the drifting synthetic world), measure quality decay against
  fresh test data, and fit the half-life from the measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.dataeff.recommenders import BiasMF, ItemPop, evaluate
from repro.dataeff.synthetic import LatentFactorWorld
from repro.errors import CalibrationError, UnitError

#: The paper's NL-data anchor: half-life under 7 years.
NL_DATA_HALF_LIFE_YEARS = 7.0


@dataclass(frozen=True, slots=True)
class HalfLifeModel:
    """Exponential decay of predictive value with data age."""

    half_life_years: float
    floor: float = 0.0  # residual value that never decays

    def __post_init__(self) -> None:
        if self.half_life_years <= 0:
            raise UnitError("half-life must be positive")
        if not (0 <= self.floor < 1):
            raise UnitError("floor must be in [0, 1)")

    def value_at_age(self, age_years: float) -> float:
        """Relative predictive value of data aged ``age_years``."""
        if age_years < 0:
            raise UnitError("age must be non-negative")
        decay = 0.5 ** (age_years / self.half_life_years)
        return self.floor + (1.0 - self.floor) * decay

    def retention_schedule(
        self, ages_years: np.ndarray, budget_fraction: float
    ) -> np.ndarray:
        """Per-age retention rates proportional to residual value.

        Allocates a storage budget (fraction of all data kept) across age
        buckets in proportion to value, capped at 1 per bucket — the
        "sampling strategies to subset data at different rates based on
        its half-life" the paper proposes.
        """
        if not (0 < budget_fraction <= 1):
            raise UnitError("budget fraction must be in (0, 1]")
        ages = np.asarray(ages_years, dtype=float)
        values = np.array([self.value_at_age(a) for a in ages])
        raw = values / values.sum() * budget_fraction * len(ages)
        # Redistribute overflow from capped buckets onto the rest.
        rates = np.minimum(raw, 1.0)
        for _ in range(16):
            overflow = float(np.sum(raw - rates))
            if overflow <= 1e-12:
                break
            open_mask = rates < 1.0
            if not np.any(open_mask):
                break
            share = values * open_mask
            if share.sum() == 0:
                break
            raw = rates + overflow * share / share.sum()
            rates = np.minimum(raw, 1.0)
        return rates

    def storage_saving(self, ages_years: np.ndarray, budget_fraction: float) -> float:
        """Fraction of bytes avoided versus keeping everything."""
        rates = self.retention_schedule(ages_years, budget_fraction)
        return 1.0 - float(np.mean(rates))


def fit_half_life(ages_years: np.ndarray, values: np.ndarray) -> HalfLifeModel:
    """Least-squares fit of the decay model to (age, value) measurements."""
    ages = np.asarray(ages_years, dtype=float)
    vals = np.asarray(values, dtype=float)
    if ages.shape != vals.shape or len(ages) < 3:
        raise CalibrationError("need >= 3 aligned (age, value) points")

    def residuals(params: np.ndarray) -> np.ndarray:
        half_life, floor = params
        model = HalfLifeModel(max(half_life, 1e-6), min(max(floor, 0.0), 0.99))
        return np.array([model.value_at_age(a) for a in ages]) - vals

    result = optimize.least_squares(
        residuals, x0=np.array([5.0, 0.1]), bounds=([1e-3, 0.0], [100.0, 0.99])
    )
    half_life, floor = result.x
    return HalfLifeModel(float(half_life), float(floor))


def measure_value_decay(
    ages_years: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0),
    drift_per_year: float = 0.55,
    n_interactions: int = 20_000,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical (age, relative *personalization* value) curve.

    For each age, train BiasMF on a snapshot collected ``age`` years
    before the evaluation window and test against fresh interactions.
    Predictive value is the NDCG lift *over a popularity baseline trained
    on the same snapshot* (popularity barely drifts, so raw NDCG would
    hide the decay), normalized to the age-0 lift.
    """
    if drift_per_year <= 0:
        raise CalibrationError("drift must be positive to measure decay")
    world = LatentFactorWorld(
        n_users=600, n_items=400, drift_per_year=drift_per_year, seed=seed
    )
    lifts = []
    # Fresh evaluation data, collected "now" (= the oldest snapshot's age).
    horizon = max(ages_years)
    fresh = world.sample(
        n_interactions, window_years=0.25, time_offset_years=horizon, seed_offset=999
    )
    _, test = fresh.leave_last_out()
    for i, age in enumerate(ages_years):
        # A snapshot collected `age` years before the evaluation window.
        aged = world.sample(
            n_interactions,
            window_years=0.25,
            time_offset_years=horizon - age,
            seed_offset=i,
        )
        model = BiasMF(seed=seed).fit(aged)
        baseline = ItemPop().fit(aged)
        model_ndcg = evaluate(model, aged, test, seed=seed).ndcg_at_k
        base_ndcg = evaluate(baseline, aged, test, seed=seed).ndcg_at_k
        lifts.append(max(0.0, model_ndcg - base_ndcg))
    values = np.asarray(lifts)
    if values[0] <= 0:
        raise CalibrationError("age-0 personalization lift is zero; increase data size")
    return np.asarray(ages_years, dtype=float), values / values[0]
