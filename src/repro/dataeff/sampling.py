"""Data sampling strategies, including selection-via-proxy (SVP-CF).

Section IV-A: "Sachdeva et al. demonstrated that intelligent data sampling
with merely 10% of data sub-samples can effectively preserve the relative
ranking performance of different recommendation algorithms ... with an
average of 5.8x execution-time speedup."

Strategies, each mapping a dataset to a sub-dataset at a target rate:

* :func:`random_interactions` — uniform interaction sampling;
* :func:`head_users` — keep the most active users (full histories);
* :func:`recent_interactions` — temporal tail (freshest data);
* :func:`svp_users` — **selection via proxy**: train a cheap proxy model
  (ItemPop), score each user's held-out item, and keep the users the
  proxy finds *hardest* — the informative ones that differentiate
  stronger algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.dataeff.recommenders import ItemPop
from repro.dataeff.synthetic import InteractionDataset
from repro.errors import UnitError


def _check_rate(rate: float) -> None:
    if not (0 < rate <= 1):
        raise UnitError(f"sampling rate must be in (0, 1], got {rate}")


def random_interactions(
    data: InteractionDataset, rate: float, seed: int = 0
) -> InteractionDataset:
    """Uniformly sample interactions at ``rate``."""
    _check_rate(rate)
    rng = np.random.default_rng(seed)
    mask = rng.random(len(data)) < rate
    if not np.any(mask):
        mask[rng.integers(0, len(data))] = True
    return data.subset(mask)


def head_users(data: InteractionDataset, rate: float) -> InteractionDataset:
    """Keep the most active users until ``rate`` of interactions remain."""
    _check_rate(rate)
    counts = np.bincount(data.users, minlength=data.n_users)
    order = np.argsort(counts)[::-1]
    target = rate * len(data)
    kept_users: set[int] = set()
    total = 0
    for user in order:
        if total >= target:
            break
        kept_users.add(int(user))
        total += int(counts[user])
    mask = np.isin(data.users, list(kept_users))
    return data.subset(mask)


def recent_interactions(data: InteractionDataset, rate: float) -> InteractionDataset:
    """Keep the most recent ``rate`` fraction of interactions."""
    _check_rate(rate)
    cutoff = np.quantile(data.timestamps, 1.0 - rate)
    mask = data.timestamps >= cutoff
    if not np.any(mask):
        mask = data.timestamps >= data.timestamps.max()
    return data.subset(mask)


def svp_users(
    data: InteractionDataset,
    rate: float,
    seed: int = 0,
    difficulty_band: tuple[float, float] = (0.1, 0.9),
) -> InteractionDataset:
    """Selection via proxy: keep informative users, full histories.

    The proxy (ItemPop) ranks each user's most recent item against
    sampled negatives, yielding a per-user difficulty.  Users in the
    middle ``difficulty_band`` (quantiles of difficulty) are the
    informative ones: trivially-easy users are explained by popularity
    alone and cannot separate CF algorithms, while the hardest tail is
    noise no algorithm predicts.  Within the band, the most active users
    are retained first so the sample keeps realistic per-user density.
    """
    _check_rate(rate)
    lo, hi = difficulty_band
    if not (0 <= lo < hi <= 1):
        raise UnitError("difficulty band must satisfy 0 <= lo < hi <= 1")
    rng = np.random.default_rng(seed)
    train, held = data.leave_last_out()
    proxy = ItemPop().fit(train)

    difficulty = np.full(data.n_users, -1.0)
    for user, item in held.items():
        negatives = rng.integers(0, data.n_items, 50)
        candidates = np.concatenate(([item], negatives))
        scores = proxy.score(user, candidates)
        difficulty[user] = float(np.sum(scores > scores[0]))

    counts = np.bincount(data.users, minlength=data.n_users)
    valid = difficulty >= 0
    if not np.any(valid):
        raise UnitError("no users have enough history for proxy scoring")
    q_lo, q_hi = np.quantile(difficulty[valid], [lo, hi])
    in_band = valid & (difficulty >= q_lo) & (difficulty <= q_hi)

    order = np.argsort(np.where(in_band, counts, -1))[::-1]
    target = rate * len(data)
    kept: set[int] = set()
    total = 0
    for user in order:
        if total >= target:
            break
        if not in_band[user] or counts[user] == 0:
            continue
        kept.add(int(user))
        total += int(counts[user])
    mask = np.isin(data.users, list(kept))
    return data.subset(mask)


SAMPLERS = {
    "random": random_interactions,
    "head-users": lambda data, rate, seed=0: head_users(data, rate),
    "recent": lambda data, rate, seed=0: recent_interactions(data, rate),
    "svp": svp_users,
}
