"""Synthetic implicit-feedback interaction data for recommender studies.

Substitute for the proprietary recommendation datasets behind the paper's
data-utilization results (Sachdeva et al.'s SVP-CF and the data-half-life
analysis).  Interactions are drawn from a latent-factor ground truth:

* users and items get latent vectors; affinity = sigmoid(u . v + biases);
* item popularity is Zipf-distributed (head items dominate, as in real
  catalogs);
* timestamps are uniform over the collection window, and latent factors
  can *drift* over time — the mechanism behind data perishability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.memo import memoized_substrate
from repro.errors import UnitError


@dataclass(frozen=True)
class InteractionDataset:
    """Implicit-feedback interactions (user, item, timestamp)."""

    n_users: int
    n_items: int
    users: np.ndarray
    items: np.ndarray
    timestamps: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.users)
        if len(self.items) != n or len(self.timestamps) != n:
            raise UnitError("interaction arrays must align")
        if n == 0:
            raise UnitError("dataset must contain interactions")

    def __len__(self) -> int:
        return len(self.users)

    def subset(self, mask: np.ndarray) -> "InteractionDataset":
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(self):
            raise UnitError("mask length must match dataset size")
        if not np.any(mask):
            raise UnitError("subset would be empty")
        return InteractionDataset(
            self.n_users,
            self.n_items,
            self.users[mask],
            self.items[mask],
            self.timestamps[mask],
        )

    def leave_last_out(self) -> tuple["InteractionDataset", dict[int, int]]:
        """Split: each user's last interaction becomes the test item.

        Users with fewer than two interactions stay entirely in train.
        Returns (train set, {user: held-out item}).
        """
        order = np.lexsort((self.timestamps, self.users))
        users = self.users[order]
        items = self.items[order]
        times = self.timestamps[order]
        test: dict[int, int] = {}
        keep = np.ones(len(users), dtype=bool)
        # The last row of each user's block is their most recent event.
        boundaries = np.nonzero(np.diff(users))[0]
        last_rows = np.append(boundaries, len(users) - 1)
        counts = np.bincount(users, minlength=self.n_users)
        for row in last_rows:
            u = int(users[row])
            if counts[u] >= 2:
                test[u] = int(items[row])
                keep[row] = False
        train = InteractionDataset(
            self.n_users, self.n_items, users[keep], items[keep], times[keep]
        )
        return train, test


@dataclass(frozen=True, slots=True)
class LatentFactorWorld:
    """Ground-truth generative model of user-item affinity."""

    n_users: int = 2000
    n_items: int = 1000
    n_factors: int = 8
    zipf_exponent: float = 1.05
    drift_per_year: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.n_users, self.n_items, self.n_factors) <= 0:
            raise UnitError("world dimensions must be positive")
        if self.zipf_exponent <= 0:
            raise UnitError("zipf exponent must be positive")
        if self.drift_per_year < 0:
            raise UnitError("drift must be non-negative")

    def _factors(
        self, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        scale = 1.0 / np.sqrt(self.n_factors)
        U = rng.normal(0.0, scale, (self.n_users, self.n_factors))
        V = rng.normal(0.0, scale, (self.n_items, self.n_factors))
        # A second, independent item embedding: preferences rotate from V
        # toward V_alt over time, so data from different eras reflects
        # genuinely different (not just noisier) tastes.
        V_alt = rng.normal(0.0, scale, (self.n_items, self.n_factors))
        ranks = np.arange(1, self.n_items + 1, dtype=float)
        popularity = ranks**-self.zipf_exponent
        item_bias = np.log(popularity / popularity.sum() * self.n_items)
        return U, V, V_alt, item_bias

    def item_factors_at(self, t_years: float) -> np.ndarray:
        """Ground-truth item factors at absolute time ``t_years``."""
        rng = np.random.default_rng(self.seed)
        _, V, V_alt, _ = self._factors(rng)
        angle = self.drift_per_year * t_years
        return np.cos(angle) * V + np.sin(angle) * V_alt

    @memoized_substrate
    def sample(
        self,
        n_interactions: int = 60_000,
        window_years: float = 1.0,
        time_offset_years: float = 0.0,
        seed_offset: int = 0,
    ) -> InteractionDataset:
        """Draw interactions over a window starting at ``time_offset_years``.

        Item factors rotate deterministically at ``drift_per_year`` over
        *absolute* time; a snapshot collected at an earlier offset reflects
        earlier preferences and therefore mis-predicts later ones — the
        half-life mechanism.  Factor draws use only the world seed, so
        snapshots from different calls share one ground truth.

        Memoized (both tiers): the dataset is the single most expensive
        substrate in the suite, and identical worlds/windows recur across
        the sampling, half-life, and SDC experiments.  Returned arrays are
        frozen; ``np.array(...)`` them for a mutable copy.
        """
        if n_interactions <= 0 or window_years <= 0:
            raise UnitError("interactions and window must be positive")
        if time_offset_years < 0:
            raise UnitError("time offset must be non-negative")
        factor_rng = np.random.default_rng(self.seed)
        U, V, V_alt, item_bias = self._factors(factor_rng)
        rng = np.random.default_rng(self.seed + 7919 * (seed_offset + 1))

        times = np.sort(rng.uniform(0.0, window_years, n_interactions))
        users = rng.integers(0, self.n_users, n_interactions)

        # Popularity-biased candidate sampling, affinity-weighted pick.
        items = np.empty(n_interactions, dtype=int)
        n_candidates = 20
        pop_weights = np.exp(item_bias)
        pop_weights = pop_weights / pop_weights.sum()
        candidates = rng.choice(
            self.n_items, size=(n_interactions, n_candidates), p=pop_weights
        )
        sharpness = 3.0  # concentrates picks on the truly-preferred items
        # One pre-drawn uniform per pick replaces the per-row
        # ``rng.choice(n_candidates, p=probs)`` call bit-exactly: a single
        # weighted Generator.choice consumes exactly one double and picks
        # ``searchsorted(normalized cdf, u, side="right")``, which is what
        # the loop body below replays without the per-call Generator
        # overhead.  The drift rotation is likewise hoisted out of the
        # loop (elementwise cos/sin over the time axis is bit-identical to
        # the former scalar-per-row evaluation).
        pick_uniforms = rng.random(n_interactions)
        angles = self.drift_per_year * (time_offset_years + times)
        cos_a = np.cos(angles)
        sin_a = np.sin(angles)
        root_factors = np.sqrt(self.n_factors)
        for i in range(n_interactions):
            cand = candidates[i]
            V_t = cos_a[i] * V[cand] + sin_a[i] * V_alt[cand]
            scores = sharpness * (U[users[i]] @ V_t.T) * root_factors
            probs = np.exp(scores - scores.max())
            probs /= probs.sum()
            cdf = probs.cumsum()
            cdf /= cdf[-1]
            items[i] = cand[cdf.searchsorted(pick_uniforms[i], side="right")]

        return InteractionDataset(
            self.n_users,
            self.n_items,
            users,
            items,
            times + time_offset_years,
        )
