"""FLOP and parameter-count estimators for the model families the paper
analyzes: Transformers (LM) and deep learning recommendation models (RM).

The estimators follow the standard accounting used by Patterson et al.
(2021) and the scaling-law literature:

* a dense Transformer forward pass costs ~2 FLOPs per parameter per
  token; training (forward + backward) ~6 FLOPs per parameter per token;
* MLP layers cost 2 * in * out FLOPs per sample (multiply-accumulate
  counted as 2).

These feed the energy models: device-hours = FLOPs / (peak * efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnitError

#: FLOPs per parameter per token, dense forward pass.
FORWARD_FLOPS_PER_PARAM_TOKEN = 2.0
#: FLOPs per parameter per token, forward + backward (training step).
TRAIN_FLOPS_PER_PARAM_TOKEN = 6.0


@dataclass(frozen=True, slots=True)
class TransformerConfig:
    """Architectural description of a dense Transformer."""

    n_layers: int
    d_model: int
    n_heads: int
    d_ff: int
    vocab_size: int = 250_000
    tied_embeddings: bool = True

    def __post_init__(self) -> None:
        if min(self.n_layers, self.d_model, self.n_heads, self.d_ff, self.vocab_size) <= 0:
            raise UnitError("all transformer dimensions must be positive")
        if self.d_model % self.n_heads != 0:
            raise UnitError(
                f"d_model ({self.d_model}) must be divisible by n_heads ({self.n_heads})"
            )

    @property
    def attention_params_per_layer(self) -> int:
        # Q, K, V, and output projections.
        return 4 * self.d_model * self.d_model

    @property
    def ffn_params_per_layer(self) -> int:
        return 2 * self.d_model * self.d_ff

    @property
    def embedding_params(self) -> int:
        factor = 1 if self.tied_embeddings else 2
        return factor * self.vocab_size * self.d_model

    @property
    def n_params(self) -> int:
        per_layer = self.attention_params_per_layer + self.ffn_params_per_layer
        return self.n_layers * per_layer + self.embedding_params

    def forward_flops_per_token(self, seq_len: int = 512) -> float:
        """FLOPs to process one token (attention term grows with seq_len)."""
        if seq_len <= 0:
            raise UnitError(f"sequence length must be positive, got {seq_len}")
        dense = FORWARD_FLOPS_PER_PARAM_TOKEN * self.n_params
        # Attention score/value matmuls: 2 * seq_len * d_model per token,
        # for the QK^T and attn*V products, per layer.
        attention = 2 * 2 * seq_len * self.d_model * self.n_layers
        return dense + attention

    def training_flops(self, n_tokens: float, seq_len: int = 512) -> float:
        """Total FLOPs to train on ``n_tokens`` tokens."""
        if n_tokens < 0:
            raise UnitError("token count must be non-negative")
        return 3.0 * self.forward_flops_per_token(seq_len) * n_tokens


#: Transformer Big (Vaswani et al. 2017), the Figure-11 baseline workload.
TRANSFORMER_BIG = TransformerConfig(
    n_layers=6 * 2,  # encoder + decoder stacks
    d_model=1024,
    n_heads=16,
    d_ff=4096,
    vocab_size=37_000,
)

#: An XLM-R-like cross-lingual LM (the paper's LM task).
XLMR_LM = TransformerConfig(
    n_layers=24,
    d_model=1024,
    n_heads=16,
    d_ff=4096,
    vocab_size=250_000,
)


def mlp_forward_flops(layer_sizes: tuple[int, ...]) -> float:
    """FLOPs of one forward pass through a dense MLP, per sample."""
    if len(layer_sizes) < 2:
        raise UnitError("an MLP needs at least input and output sizes")
    if min(layer_sizes) <= 0:
        raise UnitError("layer sizes must be positive")
    return float(
        sum(2 * a * b for a, b in zip(layer_sizes[:-1], layer_sizes[1:]))
    )


def mlp_params(layer_sizes: tuple[int, ...]) -> int:
    """Parameter count (weights + biases) of a dense MLP."""
    if len(layer_sizes) < 2:
        raise UnitError("an MLP needs at least input and output sizes")
    return sum(a * b + b for a, b in zip(layer_sizes[:-1], layer_sizes[1:]))


def device_hours_for_flops(
    total_flops: float, peak_tflops: float, efficiency: float = 0.30
) -> float:
    """Device-hours to execute ``total_flops`` at a utilization efficiency.

    ``efficiency`` is achieved FLOPs / peak FLOPs (30% is typical for
    well-tuned large-model training; the paper's Figure 10 shows research
    workloads often sit at 30-50%).
    """
    if total_flops < 0:
        raise UnitError("FLOP count must be non-negative")
    if peak_tflops <= 0:
        raise UnitError("peak throughput must be positive")
    if not (0 < efficiency <= 1):
        raise UnitError(f"efficiency must be in (0, 1], got {efficiency}")
    achieved_flops_per_s = peak_tflops * 1e12 * efficiency
    seconds = total_flops / achieved_flops_per_s
    return seconds / 3600.0
